#!/usr/bin/env python3
"""A static race detector fed by persistent pointer information.

The Section 7.1.1 scenario end to end: analyse a worker-pool style program
once, persist the pointer information, then compute the conflicting
load/store base-pointer pairs two ways —

* Method 1: enumerate base-pointer pairs through IsAlias;
* Method 2: one ListAliases query per base pointer (the paper's 123.6×
  faster route).

Run:  python examples/race_detector.py
"""

import os
import tempfile
import time

from repro.analysis import andersen, parse_program
from repro.analysis.ir import Load, Store
from repro.baselines.demand import DemandDriven
from repro.clients.race import (
    aliasing_pairs_by_is_alias,
    aliasing_pairs_by_list_aliases,
    conflict_report,
)
from repro.core.pipeline import load_index, persist

WORKER_POOL = """
global queue
global results

func new_task() {
  t = alloc Task
  return t
}

func enqueue(item) {
  *queue = item
  return
}

func dequeue() {
  item = *queue
  return item
}

func worker() {
  job = call dequeue()
  out = alloc Result
  *job = out
  *results = out
  return
}

func finalizer() {
  last = call dequeue()
  status = alloc Status
  *last = status
  return
}

func producer() {
  t1 = call new_task()
  call enqueue(t1)
  t2 = call new_task()
  call enqueue(t2)
  return
}

func main() {
  queue = alloc Queue
  results = alloc Results
  call producer()
  while {
    call worker()
    call finalizer()
  }
  return
}
"""


def main() -> None:
    program = parse_program(WORKER_POOL)
    result = andersen.analyze(program)
    matrix = result.to_matrix()
    symbols = result.symbols
    print("analysed %d statements -> %d pointers, %d objects, %d facts"
          % (program.statement_count(), matrix.n_pointers, matrix.n_objects,
             matrix.fact_count()))

    # Base pointers: every variable used as a load source or store target.
    base = set()
    for function in program.functions.values():
        for stmt in function.simple_statements():
            if isinstance(stmt, Store):
                base.add(symbols.variable(function.name, stmt.target))
            elif isinstance(stmt, Load):
                base.add(symbols.variable(function.name, stmt.source))
    base = sorted(base)
    names = symbols.variable_names()
    print("base pointers:", ", ".join(names[p] for p in base))

    # Persist once; every later detector run starts from the file.
    path = os.path.join(tempfile.mkdtemp(), "pool.pes")
    persist(matrix, path)
    index = load_index(path)

    start = time.perf_counter()
    via_is_alias = aliasing_pairs_by_is_alias(index, base)
    t_method1 = time.perf_counter() - start

    start = time.perf_counter()
    via_list_aliases = aliasing_pairs_by_list_aliases(index, base)
    t_method2 = time.perf_counter() - start

    start = time.perf_counter()
    via_demand = aliasing_pairs_by_is_alias(DemandDriven(matrix, universe=base), base)
    t_demand = time.perf_counter() - start

    assert via_is_alias == via_list_aliases == via_demand
    print("\n%d may-race pairs found" % len(via_is_alias))
    for line in conflict_report(via_is_alias, names):
        print(" ", line)

    print("\nmethod timings (identical answers):")
    print("  demand-driven IsAlias enumeration: %.6fs" % t_demand)
    print("  Pestrie IsAlias enumeration:       %.6fs" % t_method1)
    print("  Pestrie ListAliases:               %.6fs" % t_method2)


if __name__ == "__main__":
    main()
