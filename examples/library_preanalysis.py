#!/usr/bin/env python3
"""Library pre-analysis with cross-run variable correlation (Sections 1 & 6.2).

The paper's second motivating scenario: analyse a library once, persist the
pointer information together with the IR, the variable-name mapping, and
the call-edge numbering; later analysis *cycles* reload the archive and
query immediately — no repeated points-to analysis, and names resolve to
the same integers every time.

Run:  python examples/library_preanalysis.py
"""

import os
import tempfile
import time

from repro.analysis import andersen, parse_program
from repro.analysis.correlate import check_correlation, load_archive, save_archive

COLLECTIONS_LIBRARY = """
global registry

func list_new() {
  l = alloc ListHeader
  cell = alloc ListCells
  *l = cell
  return l
}

func list_add(lst, value) {
  cells = *lst
  *cells = value
  return
}

func list_get(lst) {
  cells = *lst
  value = *cells
  return value
}

func map_new() {
  m = alloc MapHeader
  buckets = alloc MapBuckets
  *m = buckets
  return m
}

func map_put(map, value) {
  buckets = *map
  *buckets = value
  return
}

func map_get(map) {
  buckets = *map
  value = *buckets
  return value
}

func register(component) {
  *registry = component
  return
}

func main() {
  registry = alloc Registry
  l = call list_new()
  payload = alloc Payload
  call list_add(l, payload)
  x = call list_get(l)
  m = call map_new()
  call map_put(m, x)
  y = call map_get(m)
  call register(y)
  return
}
"""


def analysis_cycle(directory: str) -> float:
    """One full analysis cycle: parse, analyse, persist.  Returns seconds."""
    start = time.perf_counter()
    program = parse_program(COLLECTIONS_LIBRARY)
    result = andersen.analyze(program)
    save_archive(
        directory,
        program,
        result.to_matrix(),
        dict(result.symbols.variable_ids),
        dict(result.symbols.site_ids),
    )
    return time.perf_counter() - start


def main() -> None:
    root = tempfile.mkdtemp()
    first_dir = os.path.join(root, "release-1.0")
    print("cycle 1: analysing the library and persisting the archive ...")
    t_analyse = analysis_cycle(first_dir)
    print("  analysis + persist: %.4fs -> %s" % (t_analyse, sorted(os.listdir(first_dir))))

    print("\ncycle 2: a later tool reloads the archive (no analysis run)")
    start = time.perf_counter()
    archive = load_archive(first_dir)
    t_load = time.perf_counter() - start
    print("  reload: %.4fs (%.1fx faster than re-analysing)"
          % (t_load, t_analyse / max(t_load, 1e-9)))

    # Source-level queries against the persisted index.
    print("\nqueries on the reloaded archive:")
    print("  ListPointsTo(list_get::value) =", archive.list_points_to("list_get::value"))
    print("  ListPointedBy(main::Payload)  =", archive.list_pointed_by("main::Payload"))
    print("  IsAlias(main::x, main::y)     =", archive.is_alias("main::x", "main::y"))
    print("  ListAliases(main::payload)    =", archive.list_aliases("main::payload"))

    # Correlation: re-analysing the identical release reproduces the ids,
    # so files persisted by different cycles are interchangeable.
    second_dir = os.path.join(root, "release-1.0-rebuild")
    analysis_cycle(second_dir)
    rebuilt = load_archive(second_dir)
    assert check_correlation(archive, rebuilt)
    print("\nvariable correlation across cycles: OK (identical name->id maps)")


if __name__ == "__main__":
    main()
