#!/usr/bin/env python3
"""Change-impact analysis over a persisted release snapshot (Section 1).

The paper's first motivating scenario: pointer information of a tagged
release is persisted once; afterwards, every "what breaks if we change
this?" question is answered straight from the file.  Here a config-object
refactoring is assessed: which pointers may reference the old config cells
(`ListPointedBy`), and which further pointers could observe the change
through aliasing (`ListAliases` closure).

Run:  python examples/change_impact.py
"""

import os
import tempfile

from repro.analysis import andersen, parse_program
from repro.analysis.correlate import load_archive, save_archive
from repro.clients.impact import direct_impact, transitive_impact

RELEASE = """
global app_config
global log_sink

func config_new() {
  c = alloc Config
  defaults = alloc Defaults
  *c = defaults
  return c
}

func config_get(cfg) {
  value = *cfg
  return value
}

func logger_new(cfg) {
  lg = alloc Logger
  opts = call config_get(cfg)
  *lg = opts
  return lg
}

func server_new(cfg) {
  srv = alloc Server
  opts = call config_get(cfg)
  *srv = opts
  return srv
}

func metrics_new() {
  m = alloc Metrics
  return m
}

func main() {
  app_config = call config_new()
  lg = call logger_new(app_config)
  log_sink = lg
  srv = call server_new(app_config)
  metrics = call metrics_new()
  if {
    fallback = call config_new()
  }
  else {
    fallback = call metrics_new()
  }
  probe = metrics
  return
}
"""


def main() -> None:
    # Release engineering: analyse once, archive next to the tag.
    program = parse_program(RELEASE)
    result = andersen.analyze(program)
    archive_dir = os.path.join(tempfile.mkdtemp(), "release-2.4")
    save_archive(
        archive_dir,
        program,
        result.to_matrix(),
        dict(result.symbols.variable_ids),
        dict(result.symbols.site_ids),
    )
    print("release snapshot archived at", archive_dir)

    # Weeks later: assess a change to the Config allocation site, without
    # re-running any pointer analysis.
    archive = load_archive(archive_dir)
    object_names = {index: name for name, index in archive.object_index.items()}
    pointer_names = {index: name for name, index in archive.pointer_index.items()}

    changed = [archive.object_id("config_new::Config")]
    print("\nchanged allocation sites:", [object_names[o] for o in changed])

    direct = direct_impact(archive.index, changed)
    print("\npointers that may reference a changed object:")
    for pointer in sorted(direct):
        print("  ", pointer_names[pointer])

    widened = transitive_impact(archive.index, changed, rounds=1)
    print("\nadditionally exposed through aliasing:")
    for pointer in sorted(widened - direct):
        print("  ", pointer_names[pointer])

    untouched = archive.pointer_id("main::lg")
    assert untouched not in widened
    print("\nunaffected (checked): main::lg — the Logger never holds a Config")


if __name__ == "__main__":
    main()
