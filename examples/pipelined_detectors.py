#!/usr/bin/env python3
"""Three detectors, one persisted file (Section 1, scenario 1).

"When a memory leak detector is used together with a race detector, the
persisted pointer information could be shared among different analysis
stages" — here a release snapshot is analysed and persisted once, then a
race detector, an escape analysis, and a change-impact check all boot from
the same ``.pes`` file, each in milliseconds.

Run:  python examples/pipelined_detectors.py
"""

import os
import tempfile
import time

from repro.analysis import andersen, parse_program
from repro.analysis.ir import Load, Store
from repro.clients.escape import classify_sites, escape_summary
from repro.clients.impact import transitive_impact
from repro.clients.race import aliasing_pairs_by_list_aliases, conflict_report
from repro.core.pipeline import load_index, persist

SERVICE = """
global sessions
global metrics

func session_new() {
  s = alloc Session
  buf = alloc Buffer
  *s = buf
  return s
}

func session_touch(sess) {
  b = *sess
  stamp = alloc Stamp
  *b = stamp
  return
}

func metrics_new() {
  m = alloc Counters
  return m
}

func handler() {
  active = *sessions
  call session_touch(active)
  scratch = alloc Scratch
  tmp = scratch
  return
}

func reaper() {
  victim = *sessions
  gone = alloc Tombstone
  *victim = gone
  return
}

func main() {
  sessions = alloc SessionTable
  first = call session_new()
  *sessions = first
  metrics = call metrics_new()
  while {
    call handler()
    call reaper()
  }
  return
}
"""


def main() -> None:
    # --- One analysis + persist, at release time -------------------------
    program = parse_program(SERVICE)
    start = time.perf_counter()
    result = andersen.analyze(program)
    matrix = result.to_matrix()
    analysis_time = time.perf_counter() - start
    path = os.path.join(tempfile.mkdtemp(), "service.pes")
    persist(matrix, path)
    symbols = result.symbols
    names = symbols.variable_names()
    print("analysed once (%.4fs), persisted to %s" % (analysis_time, path))

    # --- Detector 1: data races -----------------------------------------
    start = time.perf_counter()
    index = load_index(path)
    base = sorted(
        {
            symbols.variable(f.name, s.target if isinstance(s, Store) else s.source)
            for f in program.functions.values()
            for s in f.simple_statements()
            if isinstance(s, (Store, Load))
        }
    )
    races = aliasing_pairs_by_list_aliases(index, base)
    t_race = time.perf_counter() - start
    print("\n[race detector]   %.4fs — %d conflicting base-pointer pairs"
          % (t_race, len(races)))
    for line in conflict_report(races, names)[:4]:
        print("   ", line)

    # --- Detector 2: escape analysis ------------------------------------
    start = time.perf_counter()
    index = load_index(path)
    reports = classify_sites(index, symbols.site_names(), names)
    summary = escape_summary(reports)
    t_escape = time.perf_counter() - start
    print("\n[escape analysis] %.4fs — %d of %d sites escape"
          % (t_escape, summary["escaping"], summary["sites"]))
    for report in reports:
        if not report.escapes:
            print("    function-local (no outside pointer):", report.site_name)

    # --- Detector 3: change impact --------------------------------------
    start = time.perf_counter()
    index = load_index(path)
    changed = [symbols.site("session_new", "Buffer")]
    impacted = transitive_impact(index, changed, rounds=1)
    t_impact = time.perf_counter() - start
    print("\n[change impact]   %.4fs — touching session_new::Buffer affects %d pointers"
          % (t_impact, len(impacted)))
    for pointer in sorted(impacted)[:6]:
        print("   ", names[pointer])

    total = t_race + t_escape + t_impact
    print("\nall three detectors together: %.4fs (the analysis itself ran once: %.4fs)"
          % (total, analysis_time))


if __name__ == "__main__":
    main()
