#!/usr/bin/env python3
"""Quickstart: persist pointer information and query it back.

Builds the worked example from the paper (Table 3: seven pointers, five
objects), persists it as a Pestrie file, reloads it, and serves all four
Table 1 queries.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import PointsToMatrix, load_index, persist


def main() -> None:
    # The paper's sample points-to matrix (pointers p1..p7, objects o1..o5).
    pointers = ["p1", "p2", "p3", "p4", "p5", "p6", "p7"]
    objects = ["o1", "o2", "o3", "o4", "o5"]
    facts = {
        "p1": ["o1", "o5"],
        "p2": ["o1"],
        "p3": ["o1", "o2", "o3", "o5"],
        "p4": ["o1", "o2", "o3", "o4"],
        "p5": ["o4"],
        "p6": ["o2"],
        "p7": ["o3", "o5"],
    }
    matrix = PointsToMatrix(
        len(pointers), len(objects), pointer_names=pointers, object_names=objects
    )
    for pointer, targets in facts.items():
        for obj in targets:
            matrix.add(pointers.index(pointer), objects.index(obj))

    # Persist: one compact file holds both points-to and alias information.
    path = os.path.join(tempfile.mkdtemp(), "example.pes")
    size = persist(matrix, path)
    print("persisted %d facts into %s (%d bytes)" % (matrix.fact_count(), path, size))

    # Reload (no pointer analysis re-run!) and query.
    index = load_index(path)

    p, q = pointers.index("p1"), pointers.index("p7")
    print("\nIsAlias(p1, p7)      =", index.is_alias(p, q), " (both may point to o5)")
    print("IsAlias(p5, p6)      =", index.is_alias(pointers.index("p5"),
                                                   pointers.index("p6")))

    p4 = pointers.index("p4")
    print("ListPointsTo(p4)     =", sorted(objects[o] for o in index.list_points_to(p4)))
    print("  note: o5 correctly absent — the xi-condition rejects the spurious path")

    o5 = objects.index("o5")
    print("ListPointedBy(o5)    =", sorted(pointers[x] for x in index.list_pointed_by(o5)))

    p2 = pointers.index("p2")
    print("ListAliases(p2)      =", sorted(pointers[x] for x in index.list_aliases(p2)))

    # The whole matrix round-trips.
    assert index.materialize() == matrix
    print("\nround-trip check: decoded index reproduces the matrix exactly")


if __name__ == "__main__":
    main()
