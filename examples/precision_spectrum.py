#!/usr/bin/env python3
"""One program, four analyses, four persistent files (Section 6 in action).

Runs the same source through the whole precision spectrum — Steensgaard,
Andersen, flow-sensitive, and 2-callsite context-sensitive with heap
cloning — canonicalises each result into the points-to matrix (the
Section 6.1 transforms), persists each with Pestrie, and shows how
precision changes both the facts and a client-visible query.

Run:  python examples/precision_spectrum.py
"""

import os
import tempfile

from repro.analysis import (
    andersen,
    context_sensitive,
    flow_sensitive,
    parse_program,
    steensgaard,
)
from repro.analysis.transform import (
    context_sensitive_to_matrix,
    flow_sensitive_to_matrix,
)
from repro.core.pipeline import load_index, persist

SOURCE = """
func box(v) {
  b = alloc Box
  *b = v
  return b
}

func main() {
  x = alloc X
  y = alloc Y
  bx = call box(x)
  by = call box(y)
  u = *bx
  w = *by
  r = x
  r = y
  return
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    directory = tempfile.mkdtemp()
    rows = []

    # --- Steensgaard (coarsest) and Andersen -----------------------------
    st_matrix = steensgaard.analyze(program).to_matrix()
    an_result = andersen.analyze(program)
    an_matrix = an_result.to_matrix()

    # --- Flow-sensitive: (l, p) -> p_l rows -------------------------------
    fs_named = flow_sensitive_to_matrix(flow_sensitive.analyze(program))

    # --- 2-callsite with heap cloning: (c, p) -> p_c rows ------------------
    cs_named = context_sensitive_to_matrix(context_sensitive.analyze(program, k=2))

    for label, matrix in (
        ("steensgaard", st_matrix),
        ("andersen", an_matrix),
        ("flow-sensitive", fs_named.matrix),
        ("2-callsite", cs_named.matrix),
    ):
        path = os.path.join(directory, label + ".pes")
        size = persist(matrix, path)
        index = load_index(path)
        assert index.materialize() == matrix
        rows.append((label, matrix.n_pointers, matrix.n_objects,
                     matrix.fact_count(), size))

    print("%-16s %9s %9s %7s %10s" % ("analysis", "pointers", "objects", "facts",
                                      "PesP bytes"))
    for label, pointers, objects, facts, size in rows:
        print("%-16s %9d %9d %7d %10d" % (label, pointers, objects, facts, size))

    # Precision visible through one client question: do the two boxes alias?
    print("\ndo bx and by alias?  (they never should — distinct boxes)")

    symbols = an_result.symbols
    bx, by = symbols.variable("main", "bx"), symbols.variable("main", "by")
    print("  steensgaard:    ", st_matrix.is_alias(bx, by), "(unification merges them)")
    print("  andersen:       ", an_matrix.is_alias(bx, by), "(one Box site for both calls)")

    cs = cs_named.matrix
    cs_bx = cs_named.pointer_id("main::bx")
    cs_by = cs_named.pointer_id("main::by")
    print("  2-callsite:     ", cs.is_alias(cs_bx, cs_by), "(heap cloning splits the site)")

    print("\ndoes the killed definition of r still alias x?  (r = x, then r = y)")
    fs = fs_named.matrix
    r_first = fs_named.pointer_id("main::r@L6")
    r_second = fs_named.pointer_id("main::r@L7")
    fs_x = fs_named.pointer_id("main::x@L0")
    print("  r@L6 (r = x):   ", fs.is_alias(r_first, fs_x))
    print("  r@L7 (r = y):   ", fs.is_alias(r_second, fs_x),
          "(flow-sensitivity kills the earlier binding)")
    an_r = symbols.variable("main", "r")
    an_x = symbols.variable("main", "x")
    print("  andersen's r:   ", an_matrix.is_alias(an_r, an_x),
          "(flow-insensitive: one r for both bindings)")


if __name__ == "__main__":
    main()
