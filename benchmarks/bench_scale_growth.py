"""Scaling — how Pestrie's costs grow with matrix size.

The paper's complexity claims: construction O(nm) worst case (far better in
practice under the hub order), decoding linear in the file, IsAlias
O(log n).  This bench sweeps calibrated synthetic matrices across a 6×
pointer range and checks the *growth shape*: per-query IsAlias cost must
grow far slower than the matrix (logarithmically), and decode must stay a
small multiple of the file size.
"""

import random

from repro.bench.harness import Table, timed
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.core.pipeline import encode, index_from_bytes

from conftest import write_result

SIZES = ((5_000, 1_200), (15_000, 3_600), (30_000, 7_500))
QUERIES = 20_000


def test_cost_growth(benchmark):
    table = Table(
        title="Scaling — pipeline cost growth with matrix size",
        columns=("#pointers", "#facts", "encode (s)", "file (KB)", "decode (s)",
                 "IsAlias (us/query)"),
        note="IsAlias must grow ~log n while the matrix grows 6x.",
    )
    per_query = []
    rng = random.Random(0)
    smallest_index = None
    for n_pointers, n_objects in SIZES:
        matrix = synthesize(SyntheticSpec(n_pointers=n_pointers, n_objects=n_objects,
                                          seed=1))
        enc = timed(lambda: encode(matrix))
        dec = timed(lambda: index_from_bytes(enc.result))
        index = dec.result
        if smallest_index is None:
            smallest_index = index
        pairs = [(rng.randrange(n_pointers), rng.randrange(n_pointers))
                 for _ in range(QUERIES)]
        query = timed(lambda: sum(1 for p, q in pairs if index.is_alias(p, q)))
        microseconds = 1e6 * query.seconds / QUERIES
        per_query.append(microseconds)
        table.add(
            **{
                "#pointers": n_pointers,
                "#facts": matrix.fact_count(),
                "encode (s)": enc.seconds,
                "file (KB)": len(enc.result) / 1024,
                "decode (s)": dec.seconds,
                "IsAlias (us/query)": microseconds,
            }
        )
    write_result("scale_growth.txt", table.render())

    # 6x more pointers must cost clearly less than 6x per query
    # (sublinear; the slack absorbs cache effects and timer noise).
    assert per_query[-1] < per_query[0] * 5.0, per_query

    pairs = [(rng.randrange(5_000), rng.randrange(5_000)) for _ in range(5_000)]
    benchmark(lambda: sum(1 for p, q in pairs if smallest_index.is_alias(p, q)))
