"""Scaling — how Pestrie's costs grow with matrix size.

The paper's complexity claims: construction O(nm) worst case (far better in
practice under the hub order), decoding linear in the file, IsAlias
O(log n).  This bench has two faces:

* the pytest ``test_cost_growth`` sweeps calibrated synthetic matrices
  across a 6x pointer range and checks the *growth shape*: per-query
  IsAlias cost must grow far slower than the matrix (logarithmically),
  and decode must stay a small multiple of the file size;

* script mode (``python bench_scale_growth.py [--quick]``) drives the
  staged build pipeline two orders of magnitude further — up to 10^6
  pointers — printing per-stage wall-clock and peak-RSS columns from the
  ``BuildReport``, asserting near-linear encode growth in the fact
  count, and checking that a multi-process encode is byte-identical to
  the serial one (with a wall-clock speedup bar that only applies when
  the machine actually has spare cores).

``--quick`` stops at 10^5 pointers and is the CI guard
(``make bench-scale-smoke``).
"""

import os
import random
import resource
import sys

from repro.bench.harness import Table, timed
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.core.pipeline import encode, index_from_bytes
from repro.core.stages import BuildReport, ProcessExecutor, run_pipeline

SIZES = ((5_000, 1_200), (15_000, 3_600), (30_000, 7_500))
QUERIES = 20_000

# Script-mode sweeps: (n_pointers, n_objects).  Objects stay at 1/4 of the
# pointers so density (facts per pointer) is roughly constant across sizes
# and seconds-per-fact is a fair linearity measure.
SCALE_SIZES_QUICK = ((10_000, 2_500), (100_000, 25_000))
SCALE_SIZES_FULL = ((10_000, 2_500), (100_000, 25_000), (1_000_000, 250_000))

# Near-linear bar: seconds per unit of *work* (input facts + output image
# bytes) at the largest size may exceed the smallest size's by at most
# this factor.  Facts alone are the wrong denominator: in the calibrated
# synthetic family the kept-rectangle count — and hence the image — grows
# ~facts^1.4 (hub origins accumulate cross edges, and Case-2 candidates
# are pairs), so even a perfect encoder is super-linear in facts because
# its *output* is.  Normalising by input+output makes the bar a genuine
# algorithmic guard: a near-linear encode scores ~1x across the 10x-100x
# sweep, while the quadratic hot spots this guard exists to catch (the
# legacy segment-tree insert-probe loop, footprint slab walks) blow
# through it.
NEAR_LINEAR_FACTOR = 3.0


def test_cost_growth(benchmark):
    table = Table(
        title="Scaling — pipeline cost growth with matrix size",
        columns=("#pointers", "#facts", "encode (s)", "file (KB)", "decode (s)",
                 "IsAlias (us/query)"),
        note="IsAlias must grow ~log n while the matrix grows 6x.",
    )
    per_query = []
    rng = random.Random(0)
    smallest_index = None
    for n_pointers, n_objects in SIZES:
        matrix = synthesize(SyntheticSpec(n_pointers=n_pointers, n_objects=n_objects,
                                          seed=1))
        enc = timed(lambda: encode(matrix))
        dec = timed(lambda: index_from_bytes(enc.result))
        index = dec.result
        if smallest_index is None:
            smallest_index = index
        pairs = [(rng.randrange(n_pointers), rng.randrange(n_pointers))
                 for _ in range(QUERIES)]
        query = timed(lambda: sum(1 for p, q in pairs if index.is_alias(p, q)))
        microseconds = 1e6 * query.seconds / QUERIES
        per_query.append(microseconds)
        table.add(
            **{
                "#pointers": n_pointers,
                "#facts": matrix.fact_count(),
                "encode (s)": enc.seconds,
                "file (KB)": len(enc.result) / 1024,
                "decode (s)": dec.seconds,
                "IsAlias (us/query)": microseconds,
            }
        )
    from conftest import write_result

    write_result("scale_growth.txt", table.render())

    # 6x more pointers must cost clearly less than 6x per query
    # (sublinear; the slack absorbs cache effects and timer noise).
    assert per_query[-1] < per_query[0] * 5.0, per_query

    pairs = [(rng.randrange(5_000), rng.randrange(5_000)) for _ in range(5_000)]
    benchmark(lambda: sum(1 for p, q in pairs if smallest_index.is_alias(p, q)))


# ----------------------------------------------------------------------
# Script mode — staged pipeline to 10^6 pointers
# ----------------------------------------------------------------------


def _stage_table(n_pointers, facts, report):
    rows = ["  %-12s %9.3fs  peak RSS %7.1f MB"
            % (entry.name, entry.seconds, entry.peak_rss_kb / 1024)
            for entry in report.stages]
    header = "n=%d facts=%d total=%.2fs jobs=%d" % (
        n_pointers, facts, report.total_seconds(), report.jobs)
    return "\n".join([header] + rows)


def _run_scale(sizes):
    """Encode each size serially, print per-stage wall/RSS, return samples."""
    samples = []
    for n_pointers, n_objects in sizes:
        synth = timed(lambda: synthesize(SyntheticSpec(
            n_pointers=n_pointers, n_objects=n_objects, seed=1)))
        matrix = synth.result
        facts = matrix.fact_count()
        report = BuildReport()
        enc = timed(lambda: run_pipeline(matrix, report=report))
        print("synthesize %.1fs" % synth.seconds)
        print(_stage_table(n_pointers, facts, report))
        print("  %-12s %9d bytes" % ("image", len(enc.result)))
        sys.stdout.flush()
        samples.append((n_pointers, facts, enc.seconds, matrix, enc.result))
    return samples


def _assert_near_linear(samples):
    (_, facts_lo, secs_lo, _, bytes_lo) = samples[0]
    (_, facts_hi, secs_hi, _, bytes_hi) = samples[-1]
    work_lo = facts_lo + len(bytes_lo)
    work_hi = facts_hi + len(bytes_hi)
    per_unit_lo = secs_lo / work_lo
    per_unit_hi = secs_hi / work_hi
    growth = per_unit_hi / per_unit_lo
    print("near-linear check: %.2e -> %.2e s/work-unit (%.2fx across %.0fx "
          "facts, %.0fx output bytes)"
          % (per_unit_lo, per_unit_hi, growth, facts_hi / facts_lo,
             len(bytes_hi) / len(bytes_lo)))
    assert growth < NEAR_LINEAR_FACTOR, (
        "encode is super-linear: seconds per work unit grew %.2fx (bar %.1fx)"
        % (growth, NEAR_LINEAR_FACTOR))


def _check_parallel(samples, jobs):
    """Byte-identity (always) and speedup (only with spare cores)."""
    n_pointers, facts, serial_seconds, matrix, serial_bytes = samples[-1]
    executor = ProcessExecutor(jobs)
    try:
        par = timed(lambda: run_pipeline(matrix, executor=executor))
    finally:
        executor.close()
    identical = par.result == serial_bytes
    print("parallel jobs=%d at n=%d: %.2fs vs serial %.2fs, byte-identical=%s"
          % (jobs, n_pointers, par.seconds, serial_seconds, identical))
    assert identical, "parallel encode diverged from serial bytes"
    # The speedup bar is meaningful only when the host can actually run
    # the workers concurrently; on a 1-2 core box the fork/pickle overhead
    # dominates and the byte-identity check above is the whole guard.
    cores = os.cpu_count() or 1
    if cores >= jobs + 1 and facts >= 1_000_000:
        assert par.seconds < serial_seconds * 0.75, (
            "expected parallel speedup on %d cores: %.2fs vs %.2fs"
            % (cores, par.seconds, serial_seconds))


def main(argv):
    quick = "--quick" in argv
    sizes = SCALE_SIZES_QUICK if quick else SCALE_SIZES_FULL
    print("scale growth (%s): sizes %s" % (
        "quick" if quick else "full", [n for n, _ in sizes]))
    samples = _run_scale(sizes)
    _assert_near_linear(samples)
    _check_parallel(samples, jobs=2 if quick else 4)
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print("OK: near-linear to n=%d, parallel output byte-identical "
          "(process peak RSS %.1f MB)" % (samples[-1][0], peak / 1024))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
