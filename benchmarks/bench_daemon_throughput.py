"""Extension — daemon tier throughput: concurrent socket clients vs in-process.

The daemon exists so many processes can share one mapped index; the toll it
charges is framing, a unix-socket round trip, and the executor hop.  This
bench measures that toll: the same ``is_alias`` batch workload is replayed
(a) in-process through ``AliasService.is_alias_batch`` and (b) over the
socket by ``N_CLIENTS`` concurrent ``DaemonClient`` threads, and the socket
path must land within ``MAX_SLOWDOWN``× of the in-process rate.  A second
phase replays batches while a writer streams ``apply_delta`` calls through
the same daemon, differential-checking every answer against the prefix
states of the delta script — the acceptance bar is zero wrong answers, not
just zero crashes.  The run finishes with a ``/metrics`` scrape and a clean
shutdown.

Runs with a tiny workload when ``BENCH_SMOKE`` is set (the ``make
daemon-smoke`` CI guard).
"""

import copy
import os
import random
import threading
import urllib.request

from repro.bench.harness import Table, timed
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.clients import DaemonClient
from repro.core.pipeline import encode, index_from_bytes, persist
from repro.daemon import AliasDaemon, ThreadedDaemon
from repro.delta import DeltaLog
from repro.serve import AliasService

from conftest import write_result

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_POINTERS = 240 if SMOKE else 1000
N_OBJECTS = 60 if SMOKE else 250
N_CLIENTS = 4 if SMOKE else 8
BATCH = 128
BATCHES_PER_CLIENT = 8 if SMOKE else 60
DELTA_ROUNDS = 4 if SMOKE else 12

#: Acceptance bar: batched socket throughput at N_CLIENTS concurrent
#: clients within 5x of in-process batched throughput.
MAX_SLOWDOWN = 5.0


def _pair_batches(matrix, seed, count):
    rng = random.Random(seed)
    return [
        [(rng.randrange(matrix.n_pointers), rng.randrange(matrix.n_pointers))
         for _ in range(BATCH)]
        for _ in range(count)
    ]


def _serve(tmp_path, matrix, **daemon_options):
    path = os.path.join(tmp_path, "bench.pes")
    persist(matrix, path, version=4)
    service = AliasService.from_files([path], lazy=True)
    socket_path = os.path.join(tmp_path, "bench.sock")
    daemon = AliasDaemon(service, socket_path=socket_path, http_port=0,
                         close_service=True, **daemon_options)
    return socket_path, daemon


def test_daemon_throughput(tmp_path):
    matrix = synthesize(SyntheticSpec(n_pointers=N_POINTERS,
                                      n_objects=N_OBJECTS, seed=5))
    per_client = [_pair_batches(matrix, 100 + slot, BATCHES_PER_CLIENT)
                  for slot in range(N_CLIENTS)]
    all_batches = [batch for batches in per_client for batch in batches]
    total_queries = sum(len(batch) for batch in all_batches)

    # (a) In-process baseline: same batches, straight into the service.
    service = AliasService.from_index(index_from_bytes(encode(matrix)),
                                      cache_size=0)
    expected = {}
    def in_process():
        for slot, batches in enumerate(per_client):
            for index, batch in enumerate(batches):
                expected[(slot, index)] = service.is_alias_batch(batch)
    local = timed(in_process)

    # (b) The same batches over the socket, N_CLIENTS concurrent clients.
    socket_path, daemon = _serve(str(tmp_path), matrix,
                                 max_pending=2 * N_CLIENTS)
    answers = {}
    errors = []

    def client_run(slot):
        try:
            with DaemonClient(socket_path) as client:
                for index, batch in enumerate(per_client[slot]):
                    answers[(slot, index)] = client.is_alias_batch(batch)
        except Exception as error:  # pragma: no cover - debugging aid
            errors.append((slot, repr(error)))

    with ThreadedDaemon(daemon):
        threads = [threading.Thread(target=client_run, args=(slot,))
                   for slot in range(N_CLIENTS)]
        remote = timed(lambda: [
            [thread.start() for thread in threads],
            [thread.join() for thread in threads],
        ])
        assert not errors, errors
        assert answers == expected  # byte-for-byte answer parity

        host, port = daemon.http_address
        metrics = urllib.request.urlopen(
            "http://%s:%d/metrics" % (host, port)).read().decode()
        assert "repro_daemon_requests_total" in metrics
        assert "repro_daemon_request_seconds" in metrics

    local_qps = total_queries / max(local.seconds, 1e-9)
    remote_qps = total_queries / max(remote.seconds, 1e-9)
    slowdown = local_qps / max(remote_qps, 1e-9)

    table = Table(
        title="Extension — daemon throughput (batched IsAlias, %d clients)"
              % N_CLIENTS,
        columns=("Scenario", "queries", "seconds", "q/s"),
        note="Same %d-wide batches; socket path must stay within %.0fx of "
             "in-process." % (BATCH, MAX_SLOWDOWN),
    )
    table.add(Scenario="in-process batched", queries=total_queries,
              seconds=local.seconds, **{"q/s": local_qps})
    table.add(Scenario="socket, %d clients" % N_CLIENTS,
              queries=total_queries, seconds=remote.seconds,
              **{"q/s": remote_qps})
    write_result("daemon_throughput.txt", table.render())

    assert slowdown <= MAX_SLOWDOWN, (
        "socket tier %.1fx slower than in-process (bar: %.0fx)"
        % (slowdown, MAX_SLOWDOWN))


def test_daemon_deltas_under_load(tmp_path):
    """Hot apply_delta with concurrent readers: zero wrong answers.

    Readers hammer touched and untouched pointers while a writer streams
    delta logs through the same socket.  Every batch answer is checked
    against the overlay oracle: untouched rows must match the base matrix
    exactly at all times; touched answers must match one of the prefix
    states of the delta script (a reader may race a swap, never invent).
    """
    matrix = synthesize(SyntheticSpec(n_pointers=N_POINTERS,
                                      n_objects=N_OBJECTS, seed=6))
    touched = list(range(8))
    untouched = list(range(8, min(N_POINTERS, 48)))

    rng = random.Random(42)
    logs, states = [], [matrix]
    for _ in range(DELTA_ROUNDS):
        log = DeltaLog()
        for _ in range(6):
            pointer, obj = rng.choice(touched), rng.randrange(N_OBJECTS)
            if rng.random() < 0.5:
                log.insert(pointer, obj)
            else:
                log.delete(pointer, obj)
        logs.append(log)
        state = copy.deepcopy(states[-1])
        for op, pointer, obj in log:
            if op == "+":
                state.add(pointer, obj)
            else:
                state.rows[pointer].discard(obj)
        states.append(state)

    base_points = {u: matrix.list_points_to(u) for u in untouched}
    ok_points = {t: {tuple(state.list_points_to(t)) for state in states}
                 for t in touched}

    socket_path, daemon = _serve(str(tmp_path), matrix,
                                 max_pending=2 * N_CLIENTS, coalesce=False)
    wrong = []
    checked = [0]
    stop = threading.Event()

    def reader(slot):
        reader_rng = random.Random(900 + slot)
        try:
            with DaemonClient(socket_path) as client:
                while not stop.is_set():
                    sample = (reader_rng.sample(untouched, 4)
                              + [reader_rng.choice(touched)])
                    rows = client.points_to_batch(sample)
                    for pointer, row in zip(sample, rows):
                        checked[0] += 1
                        if pointer in base_points:
                            if sorted(row) != base_points[pointer]:
                                wrong.append(("untouched", pointer, row))
                        elif tuple(sorted(row)) not in ok_points[pointer]:
                            wrong.append(("touched", pointer, row))
        except Exception as error:  # pragma: no cover - debugging aid
            wrong.append(("reader exception", slot, repr(error)))

    def writer():
        try:
            with DaemonClient(socket_path) as client:
                for log in logs:
                    stop.wait(0.02)
                    client.apply_delta(log)
        except Exception as error:  # pragma: no cover - debugging aid
            wrong.append(("writer exception", repr(error)))
        finally:
            stop.set()

    with ThreadedDaemon(daemon):
        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(max(2, N_CLIENTS // 2))]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not wrong, wrong[:10]

        final = states[-1]
        with DaemonClient(socket_path) as client:
            probe = touched + untouched
            rows = client.points_to_batch(probe)
            assert [sorted(row) for row in rows] == [
                final.list_points_to(pointer) for pointer in probe
            ]

    write_result(
        "daemon_deltas_under_load.txt",
        "daemon hot-reload differential check: %d batch rows verified, "
        "%d delta logs applied, 0 wrong answers" % (checked[0], len(logs)),
    )
