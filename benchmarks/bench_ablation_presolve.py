"""Ablation — offline copy-cycle presolve for Andersen's analysis.

The paper builds on prior equivalence work (Rountev/Chandra offline
variable substitution, Hardekopf/Lin cycle collapsing) that detects
equivalent pointers *before* the analysis; Pestrie exploits the equivalence
that remains *after* it.  This ablation quantifies the front half on our
subjects: fixpoint iterations and wall-clock with the presolve on vs off —
identical solutions asserted.
"""

from repro.analysis import andersen
from repro.analysis.presolve import collapse_statistics, copy_graph_sccs
from repro.bench.harness import Table, geometric_mean, timed
from repro.bench.programs import generate_program
from repro.bench.suite import SUITE

from conftest import write_result


def test_ablation_presolve(benchmark):
    table = Table(
        title="Ablation — Andersen offline presolve (copy-cycle collapsing)",
        columns=("Program", "variables", "collapsed", "iters off", "iters on",
                 "time off (s)", "time on (s)"),
        note="Solutions are asserted identical; collapsing only changes the work done.",
    )
    iteration_ratios = []
    for spec in SUITE[:6]:
        program = generate_program(spec.program)
        plain_run = timed(lambda: andersen.analyze(program, optimize=False))
        fast_run = timed(lambda: andersen.analyze(program, optimize=True))
        plain = plain_run.result
        fast = fast_run.result
        assert plain.to_matrix() == fast.to_matrix(), spec.name

        from repro.analysis.andersen import _collect
        from repro.analysis.ir import SymbolTable

        symbols = SymbolTable(program)
        constraints = _collect(program, symbols)
        stats = collapse_statistics(
            copy_graph_sccs(symbols.n_variables, constraints.copies)
        )
        iteration_ratios.append(plain.iterations / max(fast.iterations, 1))
        table.add(
            Program=spec.name,
            variables=stats["variables"],
            collapsed=stats["collapsed"],
            **{
                "iters off": plain.iterations,
                "iters on": fast.iterations,
                "time off (s)": plain_run.seconds,
                "time on (s)": fast_run.seconds,
            },
        )
    table.note = (table.note or "") + "\ngeomean iteration ratio off/on: %.2fx" % (
        geometric_mean(iteration_ratios)
    )
    write_result("ablation_presolve.txt", table.render())

    program = generate_program(SUITE[3].program)
    benchmark.pedantic(
        lambda: andersen.analyze(program, optimize=True), rounds=2, iterations=1
    )
