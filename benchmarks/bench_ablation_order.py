"""Ablation — object-order heuristics (justifying Section 5.2's choice).

The paper argues for the Definition 1 hub degree over the naive pointed-by
count via Theorem 3 (uneven partitions maximise internal pairs) and
Comer's trie heuristic.  This ablation measures all four orders on every
subject: cross-edge count, internal pairs, stored rectangles, and file
size — quantities the paper reasons about but does not tabulate.
"""

from repro.bench.harness import Table, geometric_mean
from repro.core.builder import build_pestrie
from repro.core.hub import partition_objective
from repro.core.intervals import assign_intervals
from repro.core.pipeline import encode
from repro.core.rectangles import generate_rectangles

from conftest import write_result

ORDERS = ("hub", "simple", "identity", "random")


def _measure(matrix, order):
    pestrie = build_pestrie(matrix, order=order, seed=1)
    assign_intervals(pestrie)
    rects = generate_rectangles(pestrie)
    stats = pestrie.stats()
    size = len(encode(matrix, order=order, seed=1))
    return {
        "cross_edges": stats["cross_edges"],
        "internal_pairs": stats["internal_pairs"],
        "rectangles": len(rects.rects),
        "size": size,
        "objective": partition_objective(matrix, pestrie.object_order),
    }


def test_ablation_object_orders(encoded_suite, benchmark):
    table = Table(
        title="Ablation — object order vs encoding quality",
        columns=("Program", "Order", "cross edges", "internal pairs", "rectangles",
                 "size (KB)", "OPP objective"),
        note="hub = Definition 1; simple = pointed-by count; random seed fixed.",
    )
    per_order_sizes = {order: [] for order in ORDERS}
    per_order_objectives = {order: [] for order in ORDERS}
    subjects = ("postgreSQL", "antlr", "luindex", "sunflow")
    for name in subjects:
        matrix = encoded_suite[name].subject.matrix
        for order in ORDERS:
            result = _measure(matrix, order)
            per_order_sizes[order].append(result["size"])
            per_order_objectives[order].append(result["objective"])
            table.add(
                Program=name,
                Order=order,
                **{
                    "cross edges": result["cross_edges"],
                    "internal pairs": result["internal_pairs"],
                    "rectangles": result["rectangles"],
                    "size (KB)": result["size"] / 1024,
                    "OPP objective": result["objective"],
                },
            )
    write_result("ablation_order.txt", table.render())

    # Shape: the hub order must produce smaller files than random order
    # (the core Section 5.2 claim), subject by subject.
    for hub_size, rand_size in zip(per_order_sizes["hub"], per_order_sizes["random"]):
        assert hub_size <= rand_size * 1.1

    # Theorem 3 direction: hub ordering should win the OPP objective more
    # often than random does.
    hub_wins = sum(
        1
        for hub, rand in zip(per_order_objectives["hub"], per_order_objectives["random"])
        if hub >= rand
    )
    assert hub_wins >= len(subjects) // 2

    matrix = encoded_suite["antlr"].subject.matrix
    benchmark.pedantic(lambda: _measure(matrix, "hub"), rounds=2, iterations=1)
