"""Ablation — query-structure choice: ptList slabs vs segment tree.

Section 4 builds per-column rectangle lists (``ptList``) — realised here
as event-sweep slabs sharing one entry list per run of columns — trading
some memory for O(log R) point queries; the construction-time segment
tree could serve queries instead at O(log² n) with strictly O(R) memory.
The paper keeps the lists and reports the memory in Table 7; this
ablation measures both sides of that trade on our subjects.
"""

from repro.bench.harness import Table, geometric_mean, sample_pairs, timed
from repro.core.pipeline import load_index

from conftest import write_result

PAIR_LIMIT = 8_000


def test_query_mode_trade(encoded_suite, benchmark):
    table = Table(
        title="Ablation — ptList vs segment-tree query structure",
        columns=("Program", "mem ptList (MB)", "mem segment (MB)",
                 "IsAlias ptList (s)", "IsAlias segment (s)",
                 "decode ptList (s)", "decode segment (s)"),
        note="ptList: O(log R) queries, slab-shared memory; segment: O(log^2 n), O(R).",
    )
    memory_ratios = []
    time_ratios = []
    for name in ("samba", "postgreSQL", "antlr", "chart", "tomcat", "fop"):
        encoded = encoded_suite[name]
        ptlist_decode = timed(lambda: load_index(encoded.pes_path, mode="ptlist"))
        segment_decode = timed(lambda: load_index(encoded.pes_path, mode="segment"))
        ptlist = ptlist_decode.result
        segment = segment_decode.result

        pairs = sample_pairs(encoded.subject.base_pointers, PAIR_LIMIT)
        ptlist_time = timed(lambda: sum(1 for p, q in pairs if ptlist.is_alias(p, q)))
        segment_time = timed(lambda: sum(1 for p, q in pairs if segment.is_alias(p, q)))
        assert ptlist_time.result == segment_time.result

        memory_ratios.append(
            ptlist.memory_footprint() / max(segment.memory_footprint(), 1)
        )
        time_ratios.append(segment_time.seconds / max(ptlist_time.seconds, 1e-9))
        table.add(
            Program=name,
            **{
                "mem ptList (MB)": ptlist.memory_footprint() / 1e6,
                "mem segment (MB)": segment.memory_footprint() / 1e6,
                "IsAlias ptList (s)": ptlist_time.seconds,
                "IsAlias segment (s)": segment_time.seconds,
                "decode ptList (s)": ptlist_decode.seconds,
                "decode segment (s)": segment_decode.seconds,
            },
        )
    table.note = (table.note or "") + (
        "\ngeomeans: ptList/segment memory %.2fx, segment/ptList IsAlias time %.2fx"
        % (geometric_mean(memory_ratios), geometric_mean(time_ratios))
    )
    write_result("ablation_query_mode.txt", table.render())

    encoded = encoded_suite["antlr"]
    segment = load_index(encoded.pes_path, mode="segment")
    pairs = sample_pairs(encoded.subject.base_pointers, 2000)
    benchmark(lambda: sum(1 for p, q in pairs if segment.is_alias(p, q)))
