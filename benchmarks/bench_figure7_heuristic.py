"""Figure 7 — hub-degree heuristic vs random object order (Pes_rand).

Paper: against the hub-ordered PesP, the random-order Pes_rand takes 3.2×
longer to decode, 1.8× longer on IsAlias, 5.3× longer to construct, and
produces 5.9× larger files — all because random order creates many more
cross edges and small rectangles.
"""

import os

from repro.bench.harness import Table, geometric_mean, sample_pairs, timed
from repro.core.builder import build_pestrie
from repro.core.pipeline import load_index, persist

from conftest import write_result

PAIR_LIMIT = 6_000

#: One random order per subject, fixed for reproducibility.
RAND_SEED = 9


def test_figure7_random_vs_hub_order(encoded_suite, benchmark, artefact_dir):
    table = Table(
        title="Figure 7 — Pes_rand / PesP ratios (higher = hub order wins)",
        columns=("Program", "size ratio", "construct ratio", "decode ratio",
                 "IsAlias ratio", "cross edges rand", "cross edges hub"),
        note="Paper averages: size 5.9x, construction 5.3x, decode 3.2x, IsAlias 1.8x.",
    )
    size_ratios, construct_ratios, decode_ratios, query_ratios = [], [], [], []
    for encoded in encoded_suite.values():
        matrix = encoded.subject.matrix
        rand_path = os.path.join(artefact_dir, encoded.name + ".rand.pes")
        rand_construct = timed(
            lambda: persist(matrix, rand_path, order="random", seed=RAND_SEED)
        )
        rand_decode = timed(lambda: load_index(rand_path))
        rand_index = rand_decode.result

        pairs = sample_pairs(encoded.subject.base_pointers, PAIR_LIMIT)
        hub_query = timed(
            lambda: sum(1 for p, q in pairs if encoded.pestrie.is_alias(p, q))
        )
        rand_query = timed(lambda: sum(1 for p, q in pairs if rand_index.is_alias(p, q)))
        assert hub_query.result == rand_query.result, "orders must agree semantically"

        hub_edges = build_pestrie(matrix, order="hub").stats()["cross_edges"]
        rand_edges = build_pestrie(matrix, order="random", seed=RAND_SEED).stats()[
            "cross_edges"
        ]

        size_ratio = rand_construct.result / encoded.pes_size
        construct_ratio = rand_construct.seconds / max(encoded.pes_construct_seconds, 1e-9)
        decode_ratio = rand_decode.seconds / max(encoded.pes_decode_seconds, 1e-9)
        query_ratio = rand_query.seconds / max(hub_query.seconds, 1e-9)
        size_ratios.append(size_ratio)
        construct_ratios.append(construct_ratio)
        decode_ratios.append(decode_ratio)
        query_ratios.append(query_ratio)
        table.add(
            Program=encoded.name,
            **{
                "size ratio": size_ratio,
                "construct ratio": construct_ratio,
                "decode ratio": decode_ratio,
                "IsAlias ratio": query_ratio,
                "cross edges rand": rand_edges,
                "cross edges hub": hub_edges,
            },
        )
    summary = (
        "geomeans here: size %.2fx, construct %.2fx, decode %.2fx, IsAlias %.2fx"
        % (
            geometric_mean(size_ratios),
            geometric_mean(construct_ratios),
            geometric_mean(decode_ratios),
            geometric_mean(query_ratios),
        )
    )
    table.note = (table.note or "") + "\n" + summary
    write_result("figure7.txt", table.render())

    # The paper's core heuristic claim: random order persists bigger files.
    assert geometric_mean(size_ratios) > 1.0

    sample = encoded_suite["php"]
    benchmark.pedantic(
        lambda: build_pestrie(sample.subject.matrix, order="hub"),
        rounds=2,
        iterations=1,
    )
