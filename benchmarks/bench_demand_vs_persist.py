"""Extension — demand-driven analysis vs persistence (Section 8's argument).

The paper positions persistence against demand-driven points-to analyses:
one demand query is cheap (it solves only its support), but query-intensive
clients re-pay that cost per query, while a persisted file pays decode once
and answers from the index.  With a real on-demand solver
(`repro.analysis.ondemand`) this becomes measurable.

Two query profiles per subject:

* **shallow** — an allocator helper's local: the tiny-support case demand
  analyses shine on;
* **deep** — a variable of ``main``: its support reaches the globals and
  with them most of the program, where a fresh demand solve can cost *more*
  than one optimised exhaustive solve (an effect the demand-driven
  literature knows as query-dependent blowup).

The break-even column answers "after how many queries does persisting win
even against the cheapest demand queries".
"""

from repro.analysis import andersen
from repro.analysis.ondemand import OnDemandAndersen
from repro.bench.harness import Table, timed
from repro.bench.programs import generate_program
from repro.bench.suite import SUITE
from repro.core.pipeline import load_index, persist

from conftest import write_result

QUERIES = 300


def test_demand_vs_persist(benchmark, tmp_path_factory):
    table = Table(
        title="Extension — on-demand analysis vs persisted index",
        columns=("Program", "setup (s)", "shallow demand (s)", "support %",
                 "deep demand (s)", "deep support %", "full solve (s)",
                 "decode (s)", "index query (s)", "break-even #queries"),
        note=(
            "break-even = decode cost / per-query saving of the index over the\n"
            "cheapest (shallow) demand query; clients past it should persist."
        ),
    )
    directory = str(tmp_path_factory.mktemp("demand"))
    for spec in SUITE[:4]:
        program = generate_program(spec.program)
        full_run = timed(lambda: andersen.analyze(program))
        full = full_run.result
        matrix = full.to_matrix()

        shallow_target = full.symbols.variable("make_t0", "fresh")
        deep_target = full.symbols.variable("main", "v0")

        # One-time program indexing (any demand engine keeps this resident).
        setup_run = timed(lambda: OnDemandAndersen(program))
        solver = setup_run.result

        shallow_run = timed(lambda: solver.query(shallow_target))
        shallow_support = solver.support_size()
        assert shallow_run.result == set(full.var_pts[shallow_target])

        solver.reset()
        deep_run = timed(lambda: solver.query(deep_target))
        deep_support = solver.support_size()
        assert deep_run.result == set(full.var_pts[deep_target])

        n_vars = max(full.symbols.n_variables, 1)
        path = "%s/%s.pes" % (directory, spec.name)
        persist(matrix, path)
        decode_run = timed(lambda: load_index(path))
        index = decode_run.result
        index_query = timed(
            lambda: [index.list_points_to(shallow_target) for _ in range(QUERIES)]
        )
        per_index_query = index_query.seconds / QUERIES
        saving = max(shallow_run.seconds - per_index_query, 1e-9)
        break_even = decode_run.seconds / saving

        table.add(
            Program=spec.name,
            **{
                "setup (s)": setup_run.seconds,
                "shallow demand (s)": shallow_run.seconds,
                "support %": 100.0 * shallow_support / n_vars,
                "deep demand (s)": deep_run.seconds,
                "deep support %": 100.0 * deep_support / n_vars,
                "full solve (s)": full_run.seconds,
                "decode (s)": decode_run.seconds,
                "index query (s)": per_index_query,
                "break-even #queries": break_even,
            },
        )
        # The paper's two-sided claim, on the favourable-profile query:
        # a demand solve undercuts the exhaustive solve, and the persisted
        # index undercuts the demand solve per query by far.
        assert shallow_run.seconds < full_run.seconds
        assert per_index_query < shallow_run.seconds
    write_result("demand_vs_persist.txt", table.render())

    program = generate_program(SUITE[3].program)
    probe = OnDemandAndersen(program)
    target = probe.symbols.variable("make_t0", "fresh")

    def cold_query():
        probe.reset()
        return probe.query(target)

    benchmark(cold_query)
