"""Ablation — Theorem 2 redundant-rectangle pruning on/off.

The paper prunes every rectangle whose corner is covered by a stored one
(Theorem 2 guarantees full enclosure).  This ablation quantifies what the
segment-tree pass buys: stored-rectangle count and the resulting persistent
file size with pruning disabled.
"""

from repro.bench.harness import Table, geometric_mean
from repro.core.builder import build_pestrie
from repro.core.encoder import PestrieEncoder
from repro.core.intervals import assign_intervals
from repro.core.pipeline import rectangles_for
from repro.core.rectangles import generate_rectangles

from conftest import write_result


def _sizes(matrix, prune):
    pestrie = build_pestrie(matrix, order="hub")
    assign_intervals(pestrie)
    rects = generate_rectangles(pestrie, prune=prune)
    data = PestrieEncoder(pestrie, rects.rects).to_bytes()
    return len(rects.rects), len(rects.pruned), len(data)


def test_ablation_pruning(encoded_suite, benchmark):
    table = Table(
        title="Ablation — Theorem 2 pruning",
        columns=("Program", "kept rects", "pruned rects", "size pruned (KB)",
                 "size unpruned (KB)", "size saving"),
    )
    savings = []
    for name in ("samba", "php", "antlr", "chart", "fop"):
        matrix = encoded_suite[name].subject.matrix
        kept, pruned, size_pruned = _sizes(matrix, prune=True)
        unpruned_total, _, size_unpruned = _sizes(matrix, prune=False)
        assert unpruned_total == kept + pruned
        saving = size_unpruned / size_pruned
        savings.append(saving)
        table.add(
            Program=name,
            **{
                "kept rects": kept,
                "pruned rects": pruned,
                "size pruned (KB)": size_pruned / 1024,
                "size unpruned (KB)": size_unpruned / 1024,
                "size saving": saving,
            },
        )
    table.note = "geomean size saving from pruning: %.2fx" % geometric_mean(savings)
    write_result("ablation_pruning.txt", table.render())

    # Pruning must never enlarge the file.
    assert all(saving >= 1.0 for saving in savings)

    matrix = encoded_suite["antlr"].subject.matrix
    benchmark.pedantic(
        lambda: rectangles_for(matrix, prune=True), rounds=2, iterations=1
    )
