"""Scaling experiment — where Pestrie's O(log n) IsAlias beats the
demand-driven set intersection.

The paper's 2.9× IsAlias win over demand querying comes from MLoC subjects
whose points-to sets hold hundreds of objects: intersecting two sparse
bitmaps costs O(set size), while Pestrie answers in O(log n) regardless.
Our 1/100-scale subjects have single-digit set sizes, where intersection is
nearly free — so this bench sweeps the mean points-to set size on
calibrated synthetic matrices and locates the crossover, reproducing the
paper's claim as a trend rather than a single point.
"""

from repro.bench.harness import Table, sample_pairs, timed
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.baselines.demand import DemandDriven
from repro.core.pipeline import encode, index_from_bytes

from conftest import write_result

MEAN_SIZES = (4, 16, 64, 192)
N_POINTERS = 1200
N_OBJECTS = 500
PAIRS = 4_000


def test_isalias_crossover_with_set_size(benchmark):
    table = Table(
        title="Scaling — IsAlias cost vs mean points-to set size",
        columns=("mean |pts|", "measured avg |pts|", "PesP (s)", "Demand (s)",
                 "BitP probe (s)", "Demand/PesP"),
        note=(
            "Paper operating point: hundreds of objects per set -> demand pays,"
            " Pestrie stays O(log n).  The ratio must grow with set size."
        ),
    )
    ratios = []
    last_index = None
    for mean in MEAN_SIZES:
        spec = SyntheticSpec(
            n_pointers=N_POINTERS,
            n_objects=N_OBJECTS,
            mean_points_to=float(mean),
            size_sigma=0.4,
            seed=mean,
        )
        matrix = synthesize(spec)
        avg = matrix.fact_count() / matrix.n_pointers
        index = index_from_bytes(encode(matrix))
        last_index = index
        demand = DemandDriven(matrix)
        alias = matrix.alias_matrix()
        pairs = sample_pairs(list(range(N_POINTERS)), PAIRS)

        pes = timed(lambda: sum(1 for p, q in pairs if index.is_alias(p, q)))
        dem = timed(lambda: sum(1 for p, q in pairs if demand.is_alias(p, q)))
        bitp = timed(lambda: sum(1 for p, q in pairs if q in alias.rows[p]))
        assert pes.result == dem.result == bitp.result
        ratio = dem.seconds / max(pes.seconds, 1e-9)
        ratios.append(ratio)
        table.add(
            **{
                "mean |pts|": mean,
                "measured avg |pts|": avg,
                "PesP (s)": pes.seconds,
                "Demand (s)": dem.seconds,
                "BitP probe (s)": bitp.seconds,
                "Demand/PesP": ratio,
            }
        )
    write_result("scaling_crossover.txt", table.render())

    # The trend the paper's 2.9x rests on: the demand/Pestrie ratio grows
    # monotonically-ish with set size and demand loses at the top end.
    assert ratios[-1] > ratios[0], "demand cost must grow with set size"
    assert ratios[-1] > 1.0, "demand must lose once sets are paper-sized"

    pairs = sample_pairs(list(range(N_POINTERS)), 1000)
    benchmark(lambda: sum(1 for p, q in pairs if last_index.is_alias(p, q)))
