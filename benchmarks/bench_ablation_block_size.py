"""Ablation — sparse-bitmap block width (the paper's 128-bit default).

Section 7: "We use the default 128 bits for each sparse bitmap block, which
is optimal in our evaluation."  This ablation recomputes the BitP storage
analytically for block widths 32..1024 on our subjects — wide blocks waste
payload bits on sparse rows, narrow blocks multiply per-block overhead
(block index + next pointer, 8 bytes here as in GCC) — and reports where
the optimum lands at our scale.
"""

from typing import Dict

from repro.bench.harness import Table
from repro.matrix.points_to import PointsToMatrix

from conftest import write_result

WIDTHS = (32, 64, 128, 256, 512, 1024)

#: Per-block metadata: 32-bit index + 64-bit next pointer, GCC-style.
BLOCK_OVERHEAD_BYTES = 8


def storage_bytes(matrix: PointsToMatrix, width: int) -> int:
    """BitP bytes for PM + AM rows under a given block width."""
    total = 0
    for source in (matrix, matrix.alias_matrix()):
        seen_rows = set()
        for row in source.rows:
            if id(row) in seen_rows:
                continue  # merged equivalent rows are stored once
            seen_rows.add(id(row))
            blocks = {element // width for element in row}
            total += len(blocks) * (width // 8 + BLOCK_OVERHEAD_BYTES)
    return total


def test_ablation_block_width(encoded_suite, benchmark):
    table = Table(
        title="Ablation — sparse-bitmap block width vs BitP storage (KB)",
        columns=("Program",) + tuple("w=%d" % width for width in WIDTHS) + ("best",),
        note="Paper: 128 bits (GCC default) optimal on MLoC subjects.",
    )
    best_counts: Dict[int, int] = {width: 0 for width in WIDTHS}
    for name in ("samba", "postgreSQL", "antlr", "chart", "tomcat", "fop"):
        matrix = encoded_suite[name].subject.matrix
        sizes = {width: storage_bytes(matrix, width) for width in WIDTHS}
        best = min(sizes, key=lambda width: sizes[width])
        best_counts[best] += 1
        table.add(
            Program=name,
            best=best,
            **{"w=%d" % width: sizes[width] / 1024 for width in WIDTHS},
        )
    write_result("ablation_block_size.txt", table.render())

    # The optimum must be an interior width: both extremes lose, which is
    # the actual content of the paper's "128 is optimal" remark.
    assert best_counts[WIDTHS[0]] == 0 or best_counts[WIDTHS[-1]] == 0

    matrix = encoded_suite["antlr"].subject.matrix
    benchmark.pedantic(lambda: storage_bytes(matrix, 128), rounds=2, iterations=1)
