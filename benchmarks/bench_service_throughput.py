"""Extension — AliasService throughput: single calls vs threads vs batches.

The serve layer exists so heavy query traffic amortises: the batch APIs
deduplicate repeated queries, sort the remainder by ptList column, and pay
locking/instrumentation once per call.  This bench replays one mixed trace
against the same service configuration three ways — a one-at-a-time loop,
four worker threads issuing single queries, and the batch APIs — and
reports queries/second for each.  All three must return identical answers.

Runs with a tiny workload when ``BENCH_SMOKE`` is set (the ``make
bench-smoke`` CI guard); the batched path must beat the one-at-a-time loop
in both configurations.
"""

import os
import sys
import threading
import time

from repro.bench.harness import Table, timed
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.bench.workloads import IS_ALIAS, TraceSpec, generate_trace
from repro.core.pipeline import encode, index_from_bytes
from repro.serve import AliasService

from conftest import write_metrics_snapshot, write_result

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_POINTERS = 300 if SMOKE else 1200
N_OBJECTS = 80 if SMOKE else 300
TRACE_LENGTH = 4_000 if SMOKE else 24_000
BATCH = 256
THREADS = 4


def _service(data, cache_size=4096):
    return AliasService.from_index(index_from_bytes(data), cache_size=cache_size)


def _replay_single(service, trace):
    checksum = 0
    for kind, operands in trace.operations:
        if kind == IS_ALIAS:
            checksum += 1 if service.is_alias(*operands) else 0
        else:
            checksum += len(getattr(service, kind)(*operands))
    return checksum


def _replay_threaded(service, trace, workers=THREADS):
    operations = trace.operations
    chunk = (len(operations) + workers - 1) // workers
    sums = [0] * workers

    def run(slot):
        total = 0
        for kind, operands in operations[slot * chunk:(slot + 1) * chunk]:
            if kind == IS_ALIAS:
                total += 1 if service.is_alias(*operands) else 0
            else:
                total += len(getattr(service, kind)(*operands))
        sums[slot] = total

    threads = [threading.Thread(target=run, args=(slot,)) for slot in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return sum(sums)


def _replay_batched(service, trace, batch=BATCH):
    """The same trace through the batch APIs, preserving kind order per chunk."""
    checksum = 0
    pending = {}
    dispatch = {
        IS_ALIAS: service.is_alias_batch,
        "list_aliases": service.list_aliases_many,
        "list_points_to": service.points_to_batch,
        "list_pointed_by": service.pointed_by_batch,
    }

    def flush(kind):
        operands = pending.pop(kind, None)
        if not operands:
            return 0
        answers = dispatch[kind](operands)
        if kind == IS_ALIAS:
            return sum(1 for answer in answers if answer)
        return sum(len(answer) for answer in answers)

    for kind, operands in trace.operations:
        queue = pending.setdefault(kind, [])
        queue.append(operands if kind == IS_ALIAS else operands[0])
        if len(queue) >= batch:
            checksum += flush(kind)
    for kind in list(pending):
        checksum += flush(kind)
    return checksum


def test_service_throughput(benchmark):
    matrix = synthesize(SyntheticSpec(n_pointers=N_POINTERS, n_objects=N_OBJECTS,
                                      seed=11))
    data = encode(matrix)
    trace = generate_trace(
        TraceSpec(length=TRACE_LENGTH, seed=3),
        pointers=list(range(matrix.n_pointers)),
        objects=list(range(matrix.n_objects)),
    )

    table = Table(
        title="Extension — AliasService throughput (queries/second)",
        columns=("Scenario", "queries", "seconds", "q/s", "cache hit %"),
        note="Same mixed trace (70/15/5/10 race-detector profile), fresh "
             "service per scenario; %d-thread and %d-wide batch variants."
             % (THREADS, BATCH),
    )

    rows = []
    for label, runner in (
        ("single-threaded", _replay_single),
        ("%d threads" % THREADS, _replay_threaded),
        ("batched", _replay_batched),
    ):
        service = _service(data)
        run = timed(lambda: runner(service, trace))
        snapshot = service.stats()
        assert snapshot.total_queries == len(trace)
        rows.append((label, run.result, run.seconds))
        table.add(
            Scenario=label,
            queries=len(trace),
            seconds=run.seconds,
            **{"q/s": len(trace) / max(run.seconds, 1e-9),
               "cache hit %": 100.0 * snapshot.cache_hit_rate},
        )

    # Every scenario answers the same workload identically.
    checksums = {checksum for _, checksum, _ in rows}
    assert len(checksums) == 1, rows

    timings = {label: seconds for label, _, seconds in rows}
    write_result("service_throughput.txt", table.render())

    # The whole point of the batch APIs: they beat the one-at-a-time loop.
    assert timings["batched"] < timings["single-threaded"], timings

    service = _service(data)
    pairs = [operands for kind, operands in trace.operations if kind == IS_ALIAS]
    benchmark(lambda: service.is_alias_batch(pairs[:BATCH]))
    write_metrics_snapshot("service_throughput_metrics.json")


def test_telemetry_overhead():
    """Acceptance gate: registry instrumentation costs < 5% on batched IsAlias.

    Measures the same warm-cache batched workload with the metrics registry
    enabled (the default) and killed via ``obs.set_enabled(False)``; the
    enabled run must stay within 5% (plus a 2 ms timer-noise floor) of the
    disabled one.  Min-of-repeats on both sides to shed scheduler noise.
    """
    from repro import obs

    matrix = synthesize(SyntheticSpec(n_pointers=N_POINTERS, n_objects=N_OBJECTS,
                                      seed=11))
    data = encode(matrix)
    trace = generate_trace(
        TraceSpec(length=TRACE_LENGTH, seed=3),
        pointers=list(range(matrix.n_pointers)),
        objects=list(range(matrix.n_objects)),
    )
    pairs = [operands for kind, operands in trace.operations
             if kind == IS_ALIAS][:BATCH]
    repeats = 5
    calls = 50 if SMOKE else 200

    def measure() -> float:
        service = _service(data)
        service.is_alias_batch(pairs)  # warm the cache and the stat handles
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(calls):
                service.is_alias_batch(pairs)
            best = min(best, time.perf_counter() - start)
        return best

    enabled = measure()
    obs.set_enabled(False)
    try:
        disabled = measure()
    finally:
        obs.set_enabled(True)
    assert enabled < disabled * 1.05 + 0.002, (
        "instrumented batched is_alias took %.3f ms vs %.3f ms uninstrumented "
        "(> 5%% overhead)" % (1e3 * enabled, 1e3 * disabled)
    )


def emit_metrics() -> int:
    """Script mode (``--emit-metrics``): exercise the full pipeline, archive
    the registry snapshot, and fail when the export misses catalogued
    families or the exercised ones carry no data.  This is the CI
    ``metrics-smoke`` guard: it catches an instrumentation call site that
    silently stopped recording.
    """
    import tempfile

    from repro.delta import DeltaLog, append_delta
    from repro.obs import CATALOGUE, get_registry, record_index_footprint

    matrix = synthesize(SyntheticSpec(n_pointers=N_POINTERS, n_objects=N_OBJECTS,
                                      seed=11))
    data = encode(matrix)
    with tempfile.TemporaryDirectory(prefix="repro-metrics-") as directory:
        path = os.path.join(directory, "m.pes")
        with open(path, "wb") as stream:
            stream.write(data)
        append_delta(path, DeltaLog().insert(0, 0))
    index = index_from_bytes(data)
    record_index_footprint(index)
    service = AliasService.from_index(index)
    trace = generate_trace(
        TraceSpec(length=TRACE_LENGTH, seed=3),
        pointers=list(range(matrix.n_pointers)),
        objects=list(range(matrix.n_objects)),
    )
    _replay_batched(service, trace)

    registry = get_registry()
    snapshot = registry.snapshot()
    write_metrics_snapshot("metrics_smoke.json")

    missing = sorted(set(CATALOGUE) - set(snapshot))
    if missing:
        print("metrics snapshot misses catalogued families: %s"
              % ", ".join(missing), file=sys.stderr)
        return 1
    # The workload above touched every pipeline stage, so its key families
    # must carry data — an empty one means a call site went dark.
    exercised = (
        "repro_build_runs_total", "repro_encode_runs_total",
        "repro_encode_rectangles_total", "repro_decode_total",
        "repro_delta_appends_total", "repro_serve_queries_total",
        "repro_serve_batched_queries_total", "repro_index_footprint_bytes",
    )
    dark = [name for name in exercised if not snapshot[name]["series"]]
    if dark:
        print("metrics snapshot has no data for exercised families: %s"
              % ", ".join(dark), file=sys.stderr)
        return 1
    print("metrics smoke OK: %d families exported, %d exercised"
          % (len(snapshot), len(exercised)))
    return 0


if __name__ == "__main__":
    if "--emit-metrics" in sys.argv[1:]:
        sys.exit(emit_metrics())
    print("usage: bench_service_throughput.py --emit-metrics "
          "(or run under pytest)", file=sys.stderr)
    sys.exit(2)
