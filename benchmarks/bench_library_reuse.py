"""Extension — library pre-analysis reuse (the paper's stated future work).

Section 9 proposes persisting pre-computed pointer information for
libraries to cut client analysis cost.  We implement it (seeded Andersen,
`repro.analysis.library`) and measure, per synthetic "framework" split:
from-scratch analysis of client+library vs loading the persisted library
summary and solving only the client-dependent part.  Results are identical
(asserted); the saved fixpoint work is the payoff.
"""

from repro.analysis import andersen
from repro.analysis.ir import Program
from repro.analysis.library import analyze_client, analyze_library, load_library, save_library
from repro.bench.harness import Table, geometric_mean, timed
from repro.bench.programs import ProgramSpec, generate_program

from conftest import write_result


def _split(program: Program):
    """Call-closed prefix = library, remainder (with main) = client."""
    names = list(program.functions)
    cut = int(len(names) * 0.7)  # frameworks dwarf their clients
    library_names = set(names[:cut])
    library = Program(entry=names[0])
    client = Program(entry="main")
    for name, function in program.functions.items():
        (library if name in library_names else client).functions[name] = function
    library.globals = list(program.globals)
    client.globals = list(program.globals)
    return library, client


def test_library_reuse(benchmark, tmp_path_factory):
    table = Table(
        title="Extension — client analysis with a persisted library summary",
        columns=("framework", "lib funcs", "client funcs", "scratch iters",
                 "seeded iters", "work saved %", "scratch (s)", "load+solve (s)"),
        note="Identical solutions asserted; 'work saved' is fixpoint iterations avoided.",
    )
    savings = []
    directory = str(tmp_path_factory.mktemp("libs"))
    for seed, functions in ((1, 60), (2, 90), (3, 120)):
        program = generate_program(
            ProgramSpec(name="fw%d" % seed, n_functions=functions,
                        statements_per_function=30, n_types=12, seed=seed)
        )
        library, client = _split(program)

        # Offline: analyse and persist the library once.
        summary = analyze_library(library)
        lib_dir = "%s/fw%d" % (directory, seed)
        save_library(summary, lib_dir)

        # Client build 1: from scratch over the merged program.
        scratch_run = timed(lambda: analyze_client(client, _empty_summary(library)))
        scratch = scratch_run.result.result

        # Client build 2: reload the persisted summary and solve seeded.
        def seeded_build():
            reloaded = load_library(lib_dir)
            return analyze_client(client, reloaded)

        seeded_run = timed(seeded_build)
        seeded = seeded_run.result.result

        assert seeded.to_matrix() == scratch.to_matrix(), "seeding changed the answer"
        saved = 1.0 - seeded.iterations / max(scratch.iterations, 1)
        savings.append(max(saved, 1e-6))
        table.add(
            framework="fw%d" % seed,
            **{
                "lib funcs": len(library.functions),
                "client funcs": len(client.functions),
                "scratch iters": scratch.iterations,
                "seeded iters": seeded.iterations,
                "work saved %": 100.0 * saved,
                "scratch (s)": scratch_run.seconds,
                "load+solve (s)": seeded_run.seconds,
            },
        )
    table.note = (table.note or "") + "\ngeomean fraction of iterations saved: %.0f%%" % (
        100.0 * geometric_mean(savings)
    )
    write_result("library_reuse.txt", table.render())

    # The future-work claim: pre-analysis must save real fixpoint work.
    assert all(saving > 0.0 for saving in savings)

    program = generate_program(
        ProgramSpec(name="fw1", n_functions=60, statements_per_function=30,
                    n_types=12, seed=1)
    )
    library, client = _split(program)
    summary = analyze_library(library)
    benchmark.pedantic(lambda: analyze_client(client, summary), rounds=2, iterations=1)


def _empty_summary(library: Program):
    """A summary with no facts: forces the full merged solve."""
    from repro.analysis.library import LibrarySummary

    return LibrarySummary(program=library, var_facts={}, obj_facts={})
