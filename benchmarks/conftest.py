"""Shared benchmark fixtures: built subjects and their encoded artefacts.

Everything heavyweight is session-scoped so the whole benchmark run builds
each subject and each persistent encoding exactly once.  Paper-style result
tables are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

import pytest

from repro.baselines.bitmap_persist import BitmapIndex, BitmapPersistence
from repro.baselines.bzip_persist import BzipPersistence
from repro.baselines.cha_bitvector import ChaBitVectorIndex, ChaBitVectorPersistence
from repro.baselines.demand import DemandDriven
from repro.bdd.encode import PointsToBdd, encode_matrix
from repro.bdd.persist import BddPersistence
from repro.bench.harness import timed
from repro.bench.suite import BDD_SUBJECTS, SUBJECT_NAMES, Subject, get_subject
from repro.core.pipeline import load_index, persist
from repro.core.query import PestrieIndex

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclass
class EncodedSubject:
    """One subject plus every persistent artefact and decoded index."""

    subject: Subject
    pes_path: str
    pes_size: int
    pes_construct_seconds: float
    pes_decode_seconds: float
    pestrie: PestrieIndex

    bitp_path: str
    bitp_size: int
    bitp_construct_seconds: float
    bitp_decode_seconds: float
    bitp: BitmapIndex

    bzip_path: str
    bzip_size: int
    bzip_construct_seconds: float

    cha_path: str
    cha_size: int
    cha_construct_seconds: float
    cha_decode_seconds: float
    cha: ChaBitVectorIndex

    demand: DemandDriven

    bdd_path: Optional[str] = None
    bdd_size: Optional[int] = None
    bdd_construct_seconds: Optional[float] = None
    bdd: Optional[PointsToBdd] = None

    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.subject.name


def _encode_subject(subject: Subject, directory: str) -> EncodedSubject:
    matrix = subject.matrix
    pes_path = os.path.join(directory, subject.name + ".pes")
    construct = timed(lambda: persist(matrix, pes_path))
    decode = timed(lambda: load_index(pes_path))

    bitp_path = os.path.join(directory, subject.name + ".bitp")
    bitp_construct = timed(lambda: BitmapPersistence.encode_to_file(matrix, bitp_path))
    bitp_decode = timed(lambda: BitmapPersistence.decode_from_file(bitp_path))

    bzip_path = os.path.join(directory, subject.name + ".bz")
    bzip_construct = timed(lambda: BzipPersistence.encode_to_file(matrix, bzip_path))

    cha_path = os.path.join(directory, subject.name + ".chbv")
    cha_construct = timed(lambda: ChaBitVectorPersistence.encode_to_file(matrix, cha_path))
    cha_decode = timed(lambda: ChaBitVectorPersistence.decode_from_file(cha_path))

    encoded = EncodedSubject(
        subject=subject,
        pes_path=pes_path,
        pes_size=construct.result,
        pes_construct_seconds=construct.seconds,
        pes_decode_seconds=decode.seconds,
        pestrie=decode.result,
        bitp_path=bitp_path,
        bitp_size=bitp_construct.result,
        bitp_construct_seconds=bitp_construct.seconds,
        bitp_decode_seconds=bitp_decode.seconds,
        bitp=bitp_decode.result,
        bzip_path=bzip_path,
        bzip_size=bzip_construct.result,
        bzip_construct_seconds=bzip_construct.seconds,
        cha_path=cha_path,
        cha_size=cha_construct.result,
        cha_construct_seconds=cha_construct.seconds,
        cha_decode_seconds=cha_decode.seconds,
        cha=cha_decode.result,
        demand=DemandDriven(matrix, universe=subject.base_pointers),
    )

    if subject.name in BDD_SUBJECTS:
        bdd_path = os.path.join(directory, subject.name + ".bdd")
        build = timed(lambda: encode_matrix(matrix))
        encoded.bdd = build.result
        write = timed(lambda: BddPersistence.encode_to_file(build.result, bdd_path))
        encoded.bdd_path = bdd_path
        encoded.bdd_size = write.result
        encoded.bdd_construct_seconds = build.seconds + write.seconds
    return encoded


@pytest.fixture(scope="session")
def artefact_dir(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("pestrie-bench"))


@pytest.fixture(scope="session")
def encoded_suite(artefact_dir) -> Dict[str, EncodedSubject]:
    """Every subject, built, analysed, and encoded by all backends."""
    return {
        name: _encode_subject(get_subject(name), artefact_dir)
        for name in SUBJECT_NAMES
    }


def write_result(filename: str, text: str) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, filename), "w") as stream:
        stream.write(text + "\n")
    print(text)


def write_metrics_snapshot(filename: str) -> None:
    """Archive the process telemetry registry (JSON) next to the tables.

    Benchmarks exercise the instrumented pipeline anyway, so their runs
    double as metric fixtures: the snapshot shows exactly which counters
    and histograms the measured workload moved.
    """
    from repro.obs import get_registry

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, filename), "w") as stream:
        stream.write(get_registry().to_json() + "\n")
