"""Cold start: open-to-first-query latency and peak memory, eager vs lazy.

The storage layer's pitch is that opening a persisted file costs the header
validation, and a query pays only for the structures it touches.  This
bench measures, on one synthetic program sized past the largest Table 2
subject, four cold-start scenarios against the same ``PESTRIE3`` file:

* ``eager``  — ``load_index(path)``: full decode + full index build, then
  the first ``is_alias``;
* ``lazy, same-ES query`` — ``load_index(path, lazy=True)`` answering the
  same question: two pointers in one equivalence set resolve from the two
  timestamp sections alone, so the ptList sweep is never built.  This is
  the gated scenario — the lazy answer must arrive before the eager path
  finishes decoding;
* ``lazy, cross-ES query`` — the lazy worst case: the first query needs
  the column sweep, so it materialises the same structure the eager build
  pays for (parity within noise, reported but not gated);
* ``lazy open only`` — header + table-of-contents + CRC validation alone,
  the cost paid by ``info``-style tools that never query;
* ``flat, same/cross-ES query`` — the same two questions against a
  ``PESTRIE4`` encoding of the same program, answered by the zero-copy
  :class:`~repro.core.flat.FlatIndex`.  The cross-ES case is the headline:
  where the ``PESTRIE3`` lazy path must materialise the whole column sweep
  for its first cross-set answer, the flat engine binary-searches the
  mapped slab arrays directly, so the gate requires it to come in under a
  quarter of the materialising cross-ES time (and in single-digit
  milliseconds at full scale).

Latency is min-of-repeats with the scenarios interleaved, so scheduler
drift hits every side equally; peak memory is ``tracemalloc`` over one
fresh run of each scenario.  ``make bench-smoke`` runs this gate in CI.
"""

import os
import time

from repro.bench.harness import Table, traced_memory
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.core.pipeline import encode, load_index

from conftest import write_result

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_POINTERS = 600 if SMOKE else 4000
N_OBJECTS = 150 if SMOKE else 800
REPEATS = 5 if SMOKE else 7


def _equivalent_pair(matrix):
    """Two distinct pointers with identical points-to sets.

    Identical rows merge into one equivalence set during construction, so
    the pair shares a PES and ``is_alias`` resolves it from the timestamp
    sections alone.  The synthetic generator clusters pointers into classes
    (Figure 1's 18.5% distinct-set ratio), so such a pair always exists.
    """
    first_with = {}
    for p in range(matrix.n_pointers):
        if not matrix.rows[p]:
            continue
        key = frozenset(matrix.rows[p])
        if key in first_with:
            return first_with[key], p
        first_with[key] = p
    raise AssertionError("synthetic program has no equivalent pointer pair")


def _cross_pair(matrix):
    """The first and last tracked pointers — almost surely different sets."""
    tracked = [p for p in range(matrix.n_pointers) if matrix.rows[p]]
    return tracked[0], tracked[-1]


def test_cold_start(tmp_path):
    matrix = synthesize(SyntheticSpec(n_pointers=N_POINTERS, n_objects=N_OBJECTS,
                                      seed=21))
    path = str(tmp_path / "cold.pes")
    data = encode(matrix)
    with open(path, "wb") as stream:
        stream.write(data)
    flat_path = str(tmp_path / "cold_v4.pes")
    flat_data = encode(matrix, version=4)
    with open(flat_path, "wb") as stream:
        stream.write(flat_data)
    same_p, same_q = _equivalent_pair(matrix)
    cross_p, cross_q = _cross_pair(matrix)

    def eager():
        return load_index(path).is_alias(same_p, same_q)

    def lazy_same_es():
        index = load_index(path, lazy=True)
        try:
            return index.is_alias(same_p, same_q)
        finally:
            index.close()

    def lazy_cross_es():
        index = load_index(path, lazy=True)
        try:
            return index.is_alias(cross_p, cross_q)
        finally:
            index.close()

    def lazy_open_only():
        load_index(path, lazy=True).close()
        return None

    def flat_same_es():
        index = load_index(flat_path, lazy=True)
        try:
            return index.is_alias(same_p, same_q)
        finally:
            index.close()

    def flat_cross_es():
        index = load_index(flat_path, lazy=True)
        try:
            return index.is_alias(cross_p, cross_q)
        finally:
            index.close()

    scenarios = (("eager decode + first is_alias", eager),
                 ("lazy open + same-ES is_alias", lazy_same_es),
                 ("lazy open + cross-ES is_alias", lazy_cross_es),
                 ("lazy open only", lazy_open_only),
                 ("flat v4 open + same-ES is_alias", flat_same_es),
                 ("flat v4 open + cross-ES is_alias", flat_cross_es))

    # Interleave the repeats so clock drift cannot favour one scenario.
    latency = {label: float("inf") for label, _ in scenarios}
    answers = {}
    for _ in range(REPEATS):
        for label, runner in scenarios:
            start = time.perf_counter()
            answers[label] = runner()
            latency[label] = min(latency[label], time.perf_counter() - start)

    peaks = {}
    for label, runner in scenarios:
        with traced_memory() as stats:
            runner()
        peaks[label] = stats["peak_bytes"]

    table = Table(
        title="Unified storage — cold start, %d pointers / %d objects (%d bytes)"
              % (N_POINTERS, N_OBJECTS, len(data)),
        columns=("Scenario", "open-to-answer ms", "peak KiB"),
        note="min of %d interleaved repeats; peak is tracemalloc over one "
             "fresh run (decoded structures included, mmap pages excluded)."
             % REPEATS,
    )
    for label, _ in scenarios:
        table.add(**{"Scenario": label,
                     "open-to-answer ms": 1e3 * latency[label],
                     "peak KiB": peaks[label] / 1024.0})
    write_result("cold_start.txt", table.render())

    # Same file, same question, same answer (and the pair really is an alias).
    assert answers["eager decode + first is_alias"] is True
    assert answers["lazy open + same-ES is_alias"] is True
    assert answers["flat v4 open + same-ES is_alias"] is True
    eager_index = load_index(path)
    cross_answer = eager_index.is_alias(cross_p, cross_q)
    assert answers["lazy open + cross-ES is_alias"] == cross_answer
    assert answers["flat v4 open + cross-ES is_alias"] == cross_answer

    # The acceptance gate: the lazy open answers its first query long before
    # the eager path finishes decoding, and a query that needs only the
    # timestamp sections never pays for the sweep (latency or memory).
    gated = latency["lazy open + same-ES is_alias"]
    baseline = latency["eager decode + first is_alias"]
    assert gated < baseline, latency
    assert latency["lazy open only"] < 0.1 * baseline, latency
    assert peaks["lazy open + same-ES is_alias"] < 0.5 * peaks["eager decode + first is_alias"], peaks
    assert peaks["lazy open only"] < 0.1 * peaks["eager decode + first is_alias"], peaks

    # The zero-copy gate: the flat engine's first *cross*-ES answer must not
    # pay for a sweep build — under a quarter of the materialising lazy
    # path, single-digit milliseconds at full scale, and near-zero heap
    # (its query structure is the mapped file, not Python objects).
    flat_cross = latency["flat v4 open + cross-ES is_alias"]
    assert flat_cross < 0.25 * latency["lazy open + cross-ES is_alias"], latency
    if not SMOKE:
        assert flat_cross < 0.010, latency
    assert peaks["flat v4 open + cross-ES is_alias"] < 0.25 * peaks["eager decode + first is_alias"], peaks
