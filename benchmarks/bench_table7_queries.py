"""Table 7 — query time, decode time, and query-structure memory.

Paper findings this bench checks at scale:

* IsAlias: PesP beats BitP (geomean 1.6×) and the demand-driven approach
  (2.9×); BitP is O(n) per probe, PesP O(log n);
* ListAliases: PesP ≈ BitP (both precomputed/output-linear), demand-driven
  is orders of magnitude slower even with its equivalence-class cache —
  123.6× in the paper's client;
* ListPointsTo: PesP is far faster than decoding a BDD (1609.6× in the
  paper);
* decoding a persistent file takes seconds, versus hours for the original
  points-to analysis.

The aliasing-pairs client (Section 7.1.1) is run exactly as described:
conflicting load/store base pointers, Method 1 (IsAlias enumeration)
against Method 2 (ListAliases).
"""

from repro.bench.harness import Table, geometric_mean, sample_pairs, timed
from repro.clients.race import (
    aliasing_pairs_bulk,
    aliasing_pairs_by_is_alias,
    aliasing_pairs_by_list_aliases,
)

from conftest import write_result

#: Workload caps so pure Python finishes; sampling is deterministic.
PAIR_LIMIT = 12_000
ALIAS_QUERY_LIMIT = 600
POINTS_TO_LIMIT = 1_500
BDD_POINTS_TO_LIMIT = 200


def _pair_workload(encoded):
    return sample_pairs(encoded.subject.base_pointers, PAIR_LIMIT)


def test_table7_isalias_and_listaliases(encoded_suite, benchmark):
    table = Table(
        title="Table 7a — IsAlias / ListAliases time (seconds per workload)",
        columns=("Program", "#pairs", "IsAlias PesP", "IsAlias BitP", "IsAlias Demand",
                 "#queries", "ListAliases PesP", "ListAliases BitP", "ListAliases Demand"),
        note="Paper geomeans: PesP 1.6x faster than BitP and 2.9x faster than Demand on IsAlias.",
    )
    ratios_bitp = []
    ratios_demand = []
    list_ratios_demand = []
    for encoded in encoded_suite.values():
        pairs = _pair_workload(encoded)
        queries = encoded.subject.base_pointers[:ALIAS_QUERY_LIMIT]

        def run_pairs(backend):
            def body():
                is_alias = backend.is_alias
                return sum(1 for p, q in pairs if is_alias(p, q))
            return timed(body)

        def run_aliases(backend):
            def body():
                list_aliases = backend.list_aliases
                return sum(len(list_aliases(p)) for p in queries)
            return timed(body)

        pes_pairs = run_pairs(encoded.pestrie)
        bitp_pairs = run_pairs(encoded.bitp)
        demand_pairs = run_pairs(encoded.demand)
        # Answers must agree before their times mean anything.
        assert pes_pairs.result == bitp_pairs.result == demand_pairs.result

        pes_list = run_aliases(encoded.pestrie)
        bitp_list = run_aliases(encoded.bitp)
        demand_list = run_aliases(encoded.demand)
        assert pes_list.result == bitp_list.result
        # The demand client is universe-restricted to base pointers (as in
        # the paper's race detector), so its counts are a subset; verify
        # one query in full.
        assert demand_list.result <= pes_list.result
        universe = set(encoded.subject.base_pointers)
        probe = queries[0]
        assert sorted(encoded.demand.list_aliases(probe)) == sorted(
            q for q in encoded.pestrie.list_aliases(probe) if q in universe
        )

        ratios_bitp.append(bitp_pairs.seconds / pes_pairs.seconds)
        ratios_demand.append(demand_pairs.seconds / pes_pairs.seconds)
        list_ratios_demand.append(demand_list.seconds / max(pes_list.seconds, 1e-9))

        table.add(
            Program=encoded.name,
            **{
                "#pairs": len(pairs),
                "IsAlias PesP": pes_pairs.seconds,
                "IsAlias BitP": bitp_pairs.seconds,
                "IsAlias Demand": demand_pairs.seconds,
                "#queries": len(queries),
                "ListAliases PesP": pes_list.seconds,
                "ListAliases BitP": bitp_list.seconds,
                "ListAliases Demand": demand_list.seconds,
            },
        )
    summary = (
        "geomean speedups over PesP-IsAlias: BitP %.2fx, Demand %.2fx; "
        "Demand-ListAliases/PesP-ListAliases %.1fx"
        % (
            geometric_mean(ratios_bitp),
            geometric_mean(ratios_demand),
            geometric_mean(list_ratios_demand),
        )
    )
    table.note = (table.note or "") + "\n" + summary + (
        "\nNote: at 1/100 scale points-to sets are tiny, so per-query set"
        " intersection is cheap and demand IsAlias can win; the crossover"
        " with set size is measured in bench_scaling_crossover.py."
    )
    write_result("table7_queries.txt", table.render())

    # The output-linear ListAliases advantage is scale-free and must hold.
    assert geometric_mean(list_ratios_demand) > 1.0

    sample = encoded_suite["antlr"]
    sample_pairs_list = _pair_workload(sample)[:2000]
    benchmark(
        lambda: sum(1 for p, q in sample_pairs_list if sample.pestrie.is_alias(p, q))
    )


def test_table7_listpointsto_and_bdd(encoded_suite, benchmark):
    table = Table(
        title="Table 7b — ListPointsTo time (seconds per workload)",
        columns=("Program", "#queries", "PesP", "BDD", "BDD/PesP"),
        note="Paper: BDD is 1609.6x slower on ListPointsTo (antlr: 43.2s vs 0.03s).",
    )
    ratios = []
    for encoded in encoded_suite.values():
        queries = encoded.subject.base_pointers[:POINTS_TO_LIMIT]
        pes = timed(lambda: [encoded.pestrie.list_points_to(p) for p in queries])
        if encoded.bdd is not None:
            bdd_queries = queries[:BDD_POINTS_TO_LIMIT]
            bdd = timed(lambda: [encoded.bdd.list_points_to(p) for p in bdd_queries])
            pes_same = timed(
                lambda: [encoded.pestrie.list_points_to(p) for p in bdd_queries]
            )
            for p in bdd_queries[:50]:
                assert sorted(encoded.pestrie.list_points_to(p)) == encoded.bdd.list_points_to(p)
            ratio = bdd.seconds / max(pes_same.seconds, 1e-9)
            ratios.append(ratio)
            table.add(
                Program=encoded.name,
                **{"#queries": len(queries), "PesP": pes.seconds, "BDD": bdd.seconds,
                   "BDD/PesP": ratio},
            )
        else:
            table.add(Program=encoded.name, **{"#queries": len(queries), "PesP": pes.seconds,
                                               "BDD": "-", "BDD/PesP": "-"})
    table.note = (table.note or "") + "\ngeomean BDD/PesP here: %.1fx" % geometric_mean(ratios)
    write_result("table7_pointsto.txt", table.render())
    assert geometric_mean(ratios) > 1.0, "decoding a BDD must cost more than Pestrie lookup"

    sample = encoded_suite["antlr"]
    base = sample.subject.base_pointers[:100]
    benchmark(lambda: [sample.pestrie.list_points_to(p) for p in base])


def test_table7_decode_time_and_memory(encoded_suite, benchmark):
    from repro.core.pipeline import load_index

    table = Table(
        title="Table 7c — persistence decoding time and query memory",
        columns=("Program", "Decode PesP (s)", "Decode BitP (s)",
                 "Memory PesP (MB)", "Memory BitP (MB)"),
        note="Paper: decoding takes seconds while the original analyses took hours.",
    )
    for encoded in encoded_suite.values():
        table.add(
            Program=encoded.name,
            **{
                "Decode PesP (s)": encoded.pes_decode_seconds,
                "Decode BitP (s)": encoded.bitp_decode_seconds,
                "Memory PesP (MB)": encoded.pestrie.memory_footprint() / 1e6,
                "Memory BitP (MB)": encoded.bitp.memory_footprint() / 1e6,
            },
        )
    write_result("table7_decode.txt", table.render())

    sample = encoded_suite["samba"]
    benchmark.pedantic(lambda: load_index(sample.pes_path), rounds=3, iterations=1)


def test_section_7_1_1_race_client(encoded_suite, benchmark):
    """The aliasing-pairs client: Method 1 (IsAlias) vs Method 2
    (ListAliases), both on the Pestrie index, plus the demand baseline."""
    table = Table(
        title="Section 7.1.1 — aliasing-pairs client for the race detector",
        columns=("Program", "#base ptrs", "Demand IsAlias (s)", "PesP IsAlias (s)",
                 "PesP ListAliases (s)", "PesP bulk (s)",
                 "ListAliases speedup vs demand"),
        note="Paper headline: ListAliases is 123.6x faster than the demand-driven pair generation.",
    )
    speedups = []
    for name in ("antlr", "luindex", "bloat", "chart"):
        encoded = encoded_suite[name]
        base = encoded.subject.base_pointers[:400]
        demand_t = timed(lambda: aliasing_pairs_by_is_alias(encoded.demand, base))
        pes_is = timed(lambda: aliasing_pairs_by_is_alias(encoded.pestrie, base))
        pes_list = timed(lambda: aliasing_pairs_by_list_aliases(encoded.pestrie, base))
        pes_bulk = timed(lambda: aliasing_pairs_bulk(encoded.pestrie, base))
        assert demand_t.result == pes_is.result == pes_list.result == pes_bulk.result
        speedup = demand_t.seconds / max(pes_list.seconds, 1e-9)
        speedups.append(speedup)
        table.add(
            Program=name,
            **{
                "#base ptrs": len(base),
                "Demand IsAlias (s)": demand_t.seconds,
                "PesP IsAlias (s)": pes_is.seconds,
                "PesP ListAliases (s)": pes_list.seconds,
                "PesP bulk (s)": pes_bulk.seconds,
                "ListAliases speedup vs demand": speedup,
            },
        )
    table.note = (table.note or "") + "\ngeomean speedup here: %.1fx" % geometric_mean(speedups)
    write_result("section711_client.txt", table.render())
    assert geometric_mean(speedups) > 1.0

    encoded = encoded_suite["antlr"]
    base = encoded.subject.base_pointers[:200]
    benchmark(lambda: aliasing_pairs_by_list_aliases(encoded.pestrie, base))
