"""Table 2 — benchmark characterisation.

Paper: 12 subjects, 67K–2.1M LOC, 270K–1.2M pointers, 70K–237K objects.
Here: the same 12 names at ~1/100 scale, with real analyses producing the
matrices (flow-sensitive for the C group, k-callsite cloning with heap
cloning for the Java groups).  The bench regenerates the table and times
the full subject pipeline (generate → analyse → canonicalise).
"""

from repro.bench.harness import Table
from repro.bench.suite import SUITE, build_subject, get_subject

from conftest import write_result


def test_table2_rows(benchmark, encoded_suite):
    """Regenerate Table 2; the timed region is one full subject build."""
    table = Table(
        title="Table 2 — benchmark characterisation (scaled ~1/100)",
        columns=("Program", "Language", "Analysis", "LOC", "#Pointers", "#Objects",
                 "#Base ptrs"),
        note="LOC = IR simple-statement count (the paper counts LLVM/Jimple instructions).",
    )
    for encoded in encoded_suite.values():
        subject = encoded.subject
        table.add(
            Program=subject.name,
            Language=subject.spec.language,
            Analysis=subject.spec.analysis,
            LOC=subject.loc,
            **{
                "#Pointers": subject.matrix.n_pointers,
                "#Objects": subject.matrix.n_objects,
                "#Base ptrs": len(subject.base_pointers),
            },
        )
    write_result("table2.txt", table.render())

    # Timed: the smallest C subject's full pipeline, end to end.
    benchmark.pedantic(lambda: build_subject(SUITE[3]), rounds=2, iterations=1)


def test_subject_pipeline_is_deterministic(benchmark):
    """Rebuilding a subject yields the identical matrix (cache-safe)."""
    first = build_subject(SUITE[5])
    benchmark.pedantic(lambda: build_subject(SUITE[5]), rounds=1, iterations=1)
    second = build_subject(SUITE[5])
    assert first.matrix == second.matrix
    assert first.base_pointers == second.base_pointers
    assert get_subject("luindex").matrix == first.matrix
