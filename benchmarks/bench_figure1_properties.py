"""Figure 1 — the equivalence and hub properties.

Paper: pointer equivalence classes average 18.5% of pointers, object
classes 83%; hub degrees are heavy-tailed with 70.2% of objects above
degree 5000 (at MLoC scale).  This bench re-measures all three statistics
on every subject.  The absolute degree buckets shrink with subject size,
so the scale-free *hub mass* statistic (share of pointer incidences on the
top-decile objects; 10% would mean "no hubs") carries the hub claim here.
"""

from repro.bench.harness import Table, geometric_mean
from repro.bench.metrics import characterize
from repro.bench.suite import get_subject

from conftest import write_result


def test_figure1_equivalence_and_hubs(benchmark, encoded_suite):
    table = Table(
        title="Figure 1 — equivalence classes and hub structure",
        columns=("Program", "ptr classes %", "obj classes %",
                 "hub mass top-10% objs", "max hub degree", "median hub degree"),
        note=(
            "Paper (MLoC subjects): ptr classes 18.5%, obj classes 83% on average;\n"
            "hub mass of a hub-free matrix would be ~10%."
        ),
    )
    stats_list = []
    for encoded in encoded_suite.values():
        stats = characterize(encoded.subject.matrix)
        stats_list.append(stats)
        table.add(
            Program=encoded.name,
            **{
                "ptr classes %": 100.0 * stats.pointer_class_ratio,
                "obj classes %": 100.0 * stats.object_class_ratio,
                "hub mass top-10% objs": 100.0 * stats.hub_mass_top_decile,
                "max hub degree": stats.max_hub_degree,
                "median hub degree": stats.median_hub_degree,
            },
        )
    write_result("figure1.txt", table.render())

    # Shape assertions corresponding to the paper's claims.
    mean_ptr_ratio = geometric_mean([s.pointer_class_ratio for s in stats_list])
    assert mean_ptr_ratio < 0.9, "substantial pointer equivalence must exist"
    for stats in stats_list:
        assert stats.hub_mass_top_decile > 0.10, "hubs must concentrate pointer mass"

    benchmark.pedantic(
        lambda: characterize(get_subject("samba").matrix), rounds=2, iterations=1
    )


def test_figure1_same_analysis_similar_distribution(encoded_suite, benchmark):
    """The paper: subjects under the same points-to algorithm share similar
    equivalence ratios and hub distributions (the properties come from the
    algorithm, not the program)."""
    groups = {}
    for encoded in encoded_suite.values():
        stats = characterize(encoded.subject.matrix)
        groups.setdefault(encoded.subject.spec.analysis, []).append(
            stats.pointer_class_ratio
        )
    for analysis, ratios in groups.items():
        spread = max(ratios) - min(ratios)
        assert spread < 0.35, (analysis, ratios)

    benchmark.pedantic(
        lambda: characterize(get_subject("luindex").matrix), rounds=2, iterations=1
    )
