"""Table 8 — persistent-file sizes and construction times.

Paper findings: PesP is 10.5× smaller than BitP (which must store the alias
matrix too), 17.5× smaller than BDD, and 39.3× smaller than bzip; bitmap
construction wins on sparse matrices, Pestrie on dense ones.

Scale caveat checked in EXPERIMENTS.md: BDD and bzip store only the PM
matrix (the paper does the same), and at 1/100 scale bzip's PM-only file can
drop below PesP — the PesP < BitP and PesP < BDD relations are the
scale-free part of the claim.  Our varint-compressed PesP variant is
reported alongside as an extension.
"""

import os

from repro.bench.harness import Table, geometric_mean
from repro.core.pipeline import persist

from conftest import write_result


def test_table8_storage_and_construction(encoded_suite, benchmark, artefact_dir):
    table = Table(
        title="Table 8 — encoding size (KB) and construction time (s)",
        columns=("Program", "PesP", "PesP-compact", "BitP", "ChaBV", "BDD", "bzip",
                 "T PesP", "T BitP", "T bzip"),
        note="Paper geomeans: BitP/PesP = 10.5x, BDD/PesP = 17.5x, bzip/PesP = 39.3x (MLoC scale).",
    )
    bitp_ratios = []
    bdd_ratios = []
    for encoded in encoded_suite.values():
        compact_path = os.path.join(artefact_dir, encoded.name + ".pesz")
        compact_size = persist(encoded.subject.matrix, compact_path, compact=True)
        encoded.extras["compact_size"] = compact_size
        bitp_ratios.append(encoded.bitp_size / encoded.pes_size)
        if encoded.bdd_size is not None:
            bdd_ratios.append(encoded.bdd_size / encoded.pes_size)
        table.add(
            Program=encoded.name,
            PesP=encoded.pes_size / 1024,
            **{
                "PesP-compact": compact_size / 1024,
                "BitP": encoded.bitp_size / 1024,
                "ChaBV": encoded.cha_size / 1024,
                "BDD": (encoded.bdd_size / 1024) if encoded.bdd_size else "-",
                "bzip": encoded.bzip_size / 1024,
                "T PesP": encoded.pes_construct_seconds,
                "T BitP": encoded.bitp_construct_seconds,
                "T bzip": encoded.bzip_construct_seconds,
            },
        )
    summary = "geomean size ratios here: BitP/PesP %.1fx, BDD/PesP %.1fx" % (
        geometric_mean(bitp_ratios),
        geometric_mean(bdd_ratios),
    )
    table.note = (table.note or "") + "\n" + summary
    write_result("table8.txt", table.render())

    # Shape assertions: Pestrie must be the smallest alias-capable encoding
    # on every subject, and smaller than the BDD wherever BDD ran.  ChaBV
    # (class-dimension bit vectors, lossless by column refinement — see
    # tests/test_cha_bitvector.py) is reported for scenario diversity; it
    # wins on class-heavy subjects and loses where columns rarely repeat,
    # so it gets no universal ordering assertion — only the alias-capable
    # floor against Pestrie.
    for encoded in encoded_suite.values():
        assert encoded.pes_size < encoded.bitp_size, encoded.name
        assert encoded.pes_size < encoded.cha_size, encoded.name
        if encoded.bdd_size is not None:
            assert encoded.pes_size < encoded.bdd_size, encoded.name

    sample = encoded_suite["postgreSQL"]
    out = os.path.join(artefact_dir, "bench-construct.pes")
    benchmark.pedantic(
        lambda: persist(sample.subject.matrix, out), rounds=3, iterations=1
    )
