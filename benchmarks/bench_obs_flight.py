"""Extension — observability overhead: the flight recorder must ride free.

PR 9 leaves the flight recorder on permanently and the cost hooks compiled
into every query path, so this bench is the acceptance gate for that
decision: boot a ``ThreadedDaemon``, drive a mixed traced/untraced batch
workload through it, and

1. assert one traced request produced one *connected* span tree — the
   client-side ``client.request`` and the daemon-side ``daemon.request``
   share the minted request id, and the daemon root reaches down through
   ``serve.*`` into ``index.answer``;
2. assert the flight recorder retained a non-empty structured dump whose
   events cover the request path;
3. replay the same workload with the recorder on and off and require the
   recorder-on rate to stay within ``MAX_OVERHEAD`` (<5%) of recorder-off.

Runs with a tiny workload when ``BENCH_SMOKE`` is set (the ``make
obs-smoke`` CI guard).
"""

import json
import os
import random
import urllib.request

from repro.bench.harness import Table, timed
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.clients import DaemonClient
from repro.core.pipeline import persist
from repro.daemon import AliasDaemon, ThreadedDaemon
from repro.obs import get_flight_recorder, trace
from repro.serve import AliasService

from conftest import write_result

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_POINTERS = 240 if SMOKE else 1000
N_OBJECTS = 60 if SMOKE else 250
BATCH = 64
BATCHES = 24 if SMOKE else 150
#: Overhead acceptance bar for the always-on recorder (fraction).
MAX_OVERHEAD = 0.05
#: Repeat the paired measurement and take the best ratio: single runs of a
#: sub-second workload are noise-bound, and the bar is about systematic
#: cost, not scheduler jitter.
ROUNDS = 3 if SMOKE else 5


def _serve(tmp_path, matrix):
    path = os.path.join(tmp_path, "obs.pes")
    persist(matrix, path, version=4)
    service = AliasService.from_files([path], lazy=True)
    socket_path = os.path.join(tmp_path, "obs.sock")
    daemon = AliasDaemon(service, socket_path=socket_path, http_port=0,
                         close_service=True)
    return socket_path, daemon


def _batches(matrix, seed, count):
    rng = random.Random(seed)
    return [
        [(rng.randrange(matrix.n_pointers), rng.randrange(matrix.n_pointers))
         for _ in range(BATCH)]
        for _ in range(count)
    ]


def _replay(socket_path, batches):
    with DaemonClient(socket_path) as client:
        for batch in batches:
            client.is_alias_batch(batch)


def test_obs_flight_smoke(tmp_path):
    matrix = synthesize(SyntheticSpec(n_pointers=N_POINTERS,
                                      n_objects=N_OBJECTS, seed=9))
    batches = _batches(matrix, 77, BATCHES)
    total = BATCH * BATCHES
    socket_path, daemon = _serve(str(tmp_path), matrix)
    recorder = get_flight_recorder()

    with ThreadedDaemon(daemon):
        # ------------------------------------------------------------------
        # 1. One traced request = one connected span tree.
        # ------------------------------------------------------------------
        with trace.capture() as spans:
            with DaemonClient(socket_path, trace_requests=True) as client:
                client.is_alias(0, 1)
                request_id = client.last_request_id
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, span)
        client_span = by_name["client.request"]
        daemon_span = by_name["daemon.request"]
        assert client_span.attrs["request_id"] == request_id
        assert daemon_span.attrs["request_id"] == request_id
        serve_span = daemon_span.find("serve.is_alias")
        assert serve_span is not None, "daemon root missing the serve layer"
        assert serve_span.find("index.answer") is not None, \
            "serve layer missing the index leaf"

        # ------------------------------------------------------------------
        # 2. The flight recorder retained structured evidence.
        # ------------------------------------------------------------------
        recorder.clear()
        _replay(socket_path, batches[:4])
        events = json.loads(recorder.dump_json())
        assert events, "flight dump empty after traffic"
        kinds = {event["kind"] for event in events}
        assert "request" in kinds
        assert all({"seq", "wall", "kind"} <= set(event) for event in events)
        host, port = daemon.http_address
        http_events = json.loads(urllib.request.urlopen(
            "http://%s:%d/debug/events?limit=8" % (host, port)).read())
        assert 0 < len(http_events) <= 8

        # ------------------------------------------------------------------
        # 3. Recorder on vs off: same workload, <5% throughput cost.
        # ------------------------------------------------------------------
        best_ratio = float("inf")
        on_seconds = off_seconds = 0.0
        _replay(socket_path, batches)  # warm caches for both arms
        for _ in range(ROUNDS):
            recorder.set_enabled(False)
            off = timed(lambda: _replay(socket_path, batches))
            recorder.set_enabled(True)
            on = timed(lambda: _replay(socket_path, batches))
            best_ratio = min(best_ratio, on.seconds / max(off.seconds, 1e-9))
            on_seconds, off_seconds = on.seconds, off.seconds
        overhead = best_ratio - 1.0

    on_qps = total / max(on_seconds, 1e-9)
    off_qps = total / max(off_seconds, 1e-9)
    table = Table(
        title="Extension — flight recorder overhead (batched IsAlias)",
        columns=("Scenario", "queries", "seconds", "q/s"),
        note="Best-of-%d paired runs; always-on recorder must cost <%.0f%%."
             % (ROUNDS, 100 * MAX_OVERHEAD),
    )
    table.add(Scenario="recorder off", queries=total, seconds=off_seconds,
              **{"q/s": off_qps})
    table.add(Scenario="recorder on", queries=total, seconds=on_seconds,
              **{"q/s": on_qps})
    write_result("obs_flight_overhead.txt", table.render())

    assert overhead < MAX_OVERHEAD, (
        "flight recorder costs %.1f%% throughput (bar: %.0f%%)"
        % (100 * overhead, 100 * MAX_OVERHEAD))
