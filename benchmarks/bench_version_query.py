"""MVCC extension — time-travel query cost: ``as_of(k)`` vs naive rebuild.

The point of the epoch-stamped chain: answering "what did the file say at
version k" should cost a prefix replay of k delta records — not a full
Pestrie re-encode of that version's matrix.  This bench persists a base,
appends a stamped chain, then answers every epoch three ways:

* **naive rebuild** — re-encode the epoch's matrix from scratch and query
  the fresh index (what a consumer without the chain would do);
* **cold as_of** — a fresh ``load_versions`` + ``as_of(k)`` per epoch
  (pays base decode every time, replay cost grows with ``k``);
* **warm as_of** — one ``VersionedOverlay`` asked for every epoch in turn
  (the incremental prefix cache makes each step pay one record).

The acceptance gates: every ``as_of(k)`` must equal the from-scratch
rebuild (the differential oracle, re-checked here on real timings), and
the warm sweep must beat the naive-rebuild sweep by ``MIN_SPEEDUP``.
"""

import copy
import os
import random

from repro.bench.harness import Table, timed
from repro.core.pipeline import encode, index_from_bytes, persist
from repro.delta import DeltaLog, append_delta, load_versions
from repro.matrix.points_to import PointsToMatrix

from conftest import write_metrics_snapshot, write_result

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_POINTERS = 200 if SMOKE else 1200
N_OBJECTS = 60 if SMOKE else 250
CHAIN = 6 if SMOKE else 24
EDITS_PER_EPOCH = 10
MIN_SPEEDUP = 2.0 if SMOKE else 10.0


def _random_matrix(rng):
    matrix = PointsToMatrix(N_POINTERS, N_OBJECTS)
    for pointer in range(N_POINTERS):
        for _ in range(3):
            matrix.add(pointer, rng.randrange(N_OBJECTS))
    return matrix


def _append_chain(path, matrix, rng):
    """Append ``CHAIN`` effective records; return the per-epoch states."""
    states = [matrix]
    while len(states) <= CHAIN:
        log = DeltaLog()
        for _ in range(EDITS_PER_EPOCH):
            pointer, obj = rng.randrange(N_POINTERS), rng.randrange(N_OBJECTS)
            if rng.random() < 0.5:
                log.insert(pointer, obj)
            else:
                log.delete(pointer, obj)
        inserts, deletes = log.net()
        if not inserts and not deletes:
            continue
        append_delta(path, log)
        state = copy.deepcopy(states[-1])
        for pointer, obj in inserts:
            state.add(pointer, obj)
        for pointer, obj in deletes:
            state.rows[pointer].discard(obj)
        states.append(state)
    return states


def test_time_travel_query_cost(benchmark, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("version-bench"))
    rng = random.Random(37)
    matrix = _random_matrix(rng)
    path = os.path.join(directory, "chain.pes")
    persist(matrix, path)
    states = _append_chain(path, matrix, rng)
    epochs = list(range(len(states)))

    # Naive rebuild: re-encode each epoch's matrix, then answer one row.
    rebuild_seconds = []
    for epoch in epochs:
        run = timed(lambda: index_from_bytes(encode(states[epoch])))
        rebuild_seconds.append(run.seconds)

    # Cold as_of: fresh open per epoch — base decode + k-record replay.
    cold_seconds = []
    for epoch in epochs:
        def cold_open(epoch=epoch):
            versioned = load_versions(path)
            try:
                return versioned.as_of(epoch).list_points_to(0)
            finally:
                versioned.close()
        cold_seconds.append(timed(cold_open).seconds)

    # Warm as_of: one handle, every epoch — each step extends the cached
    # prefix by one record.  Differential gate: every epoch must equal
    # the from-scratch rebuild of its state.
    versioned = load_versions(path)
    try:
        warm = timed(lambda: [versioned.as_of(epoch).list_points_to(0)
                              for epoch in epochs])
        for epoch in (0, len(states) // 2, len(states) - 1):
            assert versioned.as_of(epoch).materialize() == states[epoch], (
                "as_of(%d) diverged from the rebuild oracle" % epoch
            )
        benchmark(lambda: versioned.as_of(len(states) - 1).is_alias(0, 1))
    finally:
        versioned.close()

    total_rebuild = sum(rebuild_seconds)
    total_cold = sum(cold_seconds)
    mean_warm = warm.seconds / len(epochs)

    table = Table(
        title="MVCC — time-travel query cost (%d pointers, %d objects, "
              "%d-record chain)" % (N_POINTERS, N_OBJECTS, CHAIN),
        columns=("Path", "mean ms/epoch", "vs rebuild"),
        note="Answering every epoch 0..%d once.  Cold as_of pays base "
             "decode per open; the warm handle replays each record once."
             % (len(states) - 1),
    )
    for label, mean_seconds in (
        ("naive full re-encode", total_rebuild / len(epochs)),
        ("cold as_of (open per epoch)", total_cold / len(epochs)),
        ("warm as_of (shared handle)", mean_warm),
    ):
        table.add(
            Path=label,
            **{"mean ms/epoch": 1e3 * mean_seconds,
               "vs rebuild": "%.0fx" % (total_rebuild / len(epochs)
                                        / max(mean_seconds, 1e-9))},
        )
    write_result("version_query.txt", table.render())
    write_metrics_snapshot("version_query_metrics.json")

    assert mean_warm * MIN_SPEEDUP <= total_rebuild / len(epochs), (
        "warm as_of %.3f ms/epoch is not %.0fx faster than rebuild %.3f ms"
        % (1e3 * mean_warm, MIN_SPEEDUP,
           1e3 * total_rebuild / len(epochs))
    )
