"""Extension — incremental update latency: DELTA append vs full re-encode.

The reason the delta subsystem exists: a single new points-to fact should
not cost a full Pestrie rebuild (object ordering + trie construction +
rectangle generation + encode).  This bench applies single-fact edits to a
medium synthetic workload three ways — full re-encode to disk, durable
DELTA append (read, verify, append, atomic rewrite), and pure in-memory
overlay extension — and reports per-update latency for each.

The acceptance gate: the durable append path must be at least 10× faster
than the rebuild path (2× under ``BENCH_SMOKE``, where the base is small
enough that fixed per-call costs dominate).
"""

import os
import random

from repro.bench.harness import Table, timed
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.core.pipeline import persist
from repro.delta import DeltaLog, append_delta, compact_file, load_overlay

from conftest import write_metrics_snapshot, write_result

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_POINTERS = 300 if SMOKE else 1500
N_OBJECTS = 80 if SMOKE else 300
UPDATES = 8 if SMOKE else 20
MIN_SPEEDUP = 2.0 if SMOKE else 10.0


def _absent_fact(rng, matrix):
    while True:
        pointer = rng.randrange(matrix.n_pointers)
        obj = rng.randrange(matrix.n_objects)
        if obj not in matrix.rows[pointer]:
            return pointer, obj


def test_delta_update_latency(benchmark, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("delta-bench"))
    matrix = synthesize(SyntheticSpec(n_pointers=N_POINTERS, n_objects=N_OBJECTS,
                                      seed=21))
    path = os.path.join(directory, "base.pes")
    build = timed(lambda: persist(matrix, path))
    rng = random.Random(21)

    # Baseline: one inserted fact, full re-encode to disk.
    rebuild_path = os.path.join(directory, "rebuild.pes")
    rebuild_seconds = []
    for _ in range(UPDATES):
        pointer, obj = _absent_fact(rng, matrix)
        matrix.add(pointer, obj)
        rebuild_seconds.append(timed(lambda: persist(matrix, rebuild_path)).seconds)
        matrix.rows[pointer].discard(obj)

    # Durable path: verify base + chain, append one checksummed record.
    applied = []
    append_seconds = []
    for _ in range(UPDATES):
        pointer, obj = _absent_fact(rng, matrix)
        log = DeltaLog().insert(pointer, obj)
        append_seconds.append(timed(lambda: append_delta(path, log)).seconds)
        applied.append((pointer, obj))
        matrix.add(pointer, obj)  # track the evolving ground truth

    # The appended answers must be the real answers.
    overlay = load_overlay(path)
    assert overlay.materialize() == matrix
    for pointer, obj in applied:
        assert overlay.points_to_contains(pointer, obj)

    # In-memory path: extend a live overlay, no disk at all.
    extend_seconds = []
    for _ in range(UPDATES):
        pointer, obj = _absent_fact(rng, matrix)
        log = DeltaLog().insert(pointer, obj)
        run = timed(lambda: overlay.extend(log))
        extend_seconds.append(run.seconds)

    compaction = timed(lambda: compact_file(path))
    assert load_overlay(path).materialize() == matrix

    mean_rebuild = sum(rebuild_seconds) / len(rebuild_seconds)
    mean_append = sum(append_seconds) / len(append_seconds)
    mean_extend = sum(extend_seconds) / len(extend_seconds)

    table = Table(
        title="Extension — single-fact update latency (%d pointers, %d objects, "
              "%d facts)" % (N_POINTERS, N_OBJECTS, matrix.fact_count()),
        columns=("Path", "mean ms/update", "vs rebuild"),
        note="Mean of %d single-fact inserts.  Initial build %.1f ms; "
             "compacting the %d-record chain back to a clean base took %.1f ms."
             % (UPDATES, 1e3 * build.seconds, UPDATES, 1e3 * compaction.seconds),
    )
    for label, seconds in (
        ("full re-encode", mean_rebuild),
        ("durable DELTA append", mean_append),
        ("in-memory overlay extend", mean_extend),
    ):
        table.add(
            Path=label,
            **{"mean ms/update": 1e3 * seconds,
               "vs rebuild": "%.0fx" % (mean_rebuild / max(seconds, 1e-9))},
        )
    write_result("delta_update.txt", table.render())
    write_metrics_snapshot("delta_update_metrics.json")

    assert mean_append * MIN_SPEEDUP <= mean_rebuild, (
        "durable append %.3f ms is not %.0fx faster than rebuild %.3f ms"
        % (1e3 * mean_append, MIN_SPEEDUP, 1e3 * mean_rebuild)
    )
    assert mean_extend <= mean_append

    pointer, obj = _absent_fact(rng, matrix)
    benchmark(lambda: append_delta(path, DeltaLog().insert(pointer, obj)))
