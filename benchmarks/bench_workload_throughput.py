"""Extension — end-to-end client throughput on mixed query traces.

The single-query tables (Table 7) isolate one operation at a time; a real
query-intensive client interleaves them.  This bench replays a reproducible
race-detector-profile trace (70% IsAlias, 15% ListPointsTo, 5%
ListPointedBy, 10% ListAliases, Zipf-hot operands) against every backend
and reports queries/second.
"""

from repro.bench.harness import Table, geometric_mean, timed
from repro.bench.workloads import TraceSpec, generate_trace, replay

from conftest import write_result

TRACE_LENGTH = 8_000


def test_mixed_trace_throughput(encoded_suite, benchmark):
    table = Table(
        title="Extension — mixed-trace throughput (queries/second)",
        columns=("Program", "trace", "PesP q/s", "BitP q/s", "Demand q/s",
                 "PesP/Demand"),
        note="Race-detector mix: 70% IsAlias, 15% ListPointsTo, 5% ListPointedBy, 10% ListAliases.",
    )
    ratios = []
    for name in ("samba", "postgreSQL", "antlr", "chart", "tomcat", "fop"):
        encoded = encoded_suite[name]
        matrix = encoded.subject.matrix
        trace = generate_trace(
            TraceSpec(length=TRACE_LENGTH, seed=5),
            pointers=encoded.subject.base_pointers,
            objects=list(range(matrix.n_objects)),
        )
        pes = timed(lambda: replay(trace, encoded.pestrie))
        bitp = timed(lambda: replay(trace, encoded.bitp))

        # The demand baseline restricts ListAliases to its universe, so its
        # checksum differs; compare PesP/BitP strictly, demand for time.
        assert pes.result == bitp.result
        demand = timed(lambda: replay(trace, encoded.demand))

        pes_qps = TRACE_LENGTH / pes.seconds
        ratio = demand.seconds / pes.seconds
        ratios.append(ratio)
        table.add(
            Program=name,
            trace=len(trace),
            **{
                "PesP q/s": pes_qps,
                "BitP q/s": TRACE_LENGTH / bitp.seconds,
                "Demand q/s": TRACE_LENGTH / demand.seconds,
                "PesP/Demand": ratio,
            },
        )
    table.note = (table.note or "") + "\ngeomean demand-time/PesP-time: %.2fx" % (
        geometric_mean(ratios)
    )
    write_result("workload_throughput.txt", table.render())

    # On a mixed trace the ListAliases share dominates demand cost:
    # Pestrie must win end to end even at 1/100 scale.
    assert geometric_mean(ratios) > 1.0

    encoded = encoded_suite["antlr"]
    trace = generate_trace(
        TraceSpec(length=2_000, seed=7),
        pointers=encoded.subject.base_pointers,
        objects=list(range(encoded.subject.matrix.n_objects)),
    )
    benchmark(lambda: replay(trace, encoded.pestrie))
