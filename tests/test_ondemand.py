"""On-demand points-to queries vs the exhaustive solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import andersen
from repro.analysis.ondemand import OnDemandAndersen
from repro.analysis.parser import parse_program
from repro.bench.programs import ProgramSpec, generate_program


class TestHandwritten:
    def test_simple_chain(self):
        program = parse_program(
            "func main() {\n  a = alloc A\n  b = a\n  c = b\n  return\n}\n"
        )
        demand = OnDemandAndersen(program)
        full = andersen.analyze(program)
        c = full.symbols.variable("main", "c")
        assert demand.query(c) == set(full.var_pts[c])

    def test_store_load_dependency(self):
        program = parse_program(
            "func main() {\n"
            "  p = alloc Cell\n"
            "  v = alloc V\n"
            "  *p = v\n"
            "  r = *p\n"
            "  return\n"
            "}\n"
        )
        demand = OnDemandAndersen(program)
        assert demand.query_named("main", "r") == {"main::V"}

    def test_query_skips_unrelated_code(self):
        """The support set must stay a fraction of the program."""
        source_parts = ["func main() {\n  t = alloc T\n  u = t\n  return\n}\n"]
        for index in range(30):
            source_parts.append(
                "func noise%d() {\n  x = alloc N%d\n  y = x\n  return y\n}\n"
                % (index, index)
            )
        program = parse_program("".join(source_parts))
        demand = OnDemandAndersen(program)
        assert demand.query_named("main", "u") == {"main::T"}
        assert demand.support_size() < program.statement_count() / 3

    def test_memoised_across_queries(self):
        program = parse_program(
            "func main() {\n  a = alloc A\n  b = a\n  c = b\n  return\n}\n"
        )
        demand = OnDemandAndersen(program)
        first = demand.query_named("main", "c")
        rounds = demand.solve_rounds
        second = demand.query_named("main", "c")
        assert first == second
        assert demand.solve_rounds <= rounds + 2  # cached support, cheap re-check

    def test_call_flow(self):
        program = parse_program(
            "func id(x) {\n  return x\n}\n"
            "func main() {\n  p = alloc A\n  q = call id(p)\n  return\n}\n"
        )
        demand = OnDemandAndersen(program)
        assert demand.query_named("main", "q") == {"main::A"}

    def test_indirect_call_return_flow(self):
        program = parse_program(
            "func make() {\n  m = alloc M\n  return m\n}\n"
            "func main() {\n  fp = &make\n  r = icall fp()\n  return\n}\n"
        )
        demand = OnDemandAndersen(program)
        assert demand.query_named("main", "r") == {"make::M"}

    def test_indirect_call_argument_flow(self):
        program = parse_program(
            "func sink(v) {\n  keep = v\n  return\n}\n"
            "func main() {\n"
            "  fp = &sink\n"
            "  payload = alloc P\n"
            "  icall fp(payload)\n"
            "  return\n"
            "}\n"
        )
        demand = OnDemandAndersen(program)
        assert demand.query_named("sink", "keep") == {"main::P"}

    def test_bad_variable_id(self):
        program = parse_program("func main() {\n  return\n}\n")
        demand = OnDemandAndersen(program)
        import pytest

        with pytest.raises(IndexError):
            demand.query(10_000)


class TestAgainstExhaustive:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_every_variable_matches(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=6, statements_per_function=10, n_types=3, seed=seed
        )
        program = generate_program(spec)
        full = andersen.analyze(program)
        demand = OnDemandAndersen(program)
        for var in range(0, full.symbols.n_variables, 3):
            assert demand.query(var) == set(full.var_pts[var]), (
                full.symbols.variable_names()[var]
            )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_with_indirect_calls(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=6, statements_per_function=10, n_types=3,
            seed=seed, indirect_call_prob=0.4,
        )
        program = generate_program(spec)
        full = andersen.analyze(program)
        demand = OnDemandAndersen(program)
        for var in range(0, full.symbols.n_variables, 4):
            assert demand.query(var) == set(full.var_pts[var]), (
                full.symbols.variable_names()[var]
            )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_single_query_visits_subset(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=12, statements_per_function=14, n_types=5, seed=seed
        )
        program = generate_program(spec)
        full = andersen.analyze(program)
        # Query one main-local; the support should not be the whole program.
        target = full.symbols.variable("main", "v0")
        demand = OnDemandAndersen(program)
        assert demand.query(target) == set(full.var_pts[target])
        assert demand.support_size() <= full.symbols.n_variables
