"""Snapshot differencing and bulk alias-pair enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients.diff import diff_points_to, impacted_pointers, new_alias_pairs
from repro.core.pipeline import encode, index_from_bytes
from repro.matrix.points_to import PointsToMatrix

from conftest import make_random_matrix, matrices


def _index(matrix):
    return index_from_bytes(encode(matrix))


class TestIterAliasPairs:
    def test_paper_example(self, paper_matrix):
        index = _index(paper_matrix)
        pairs = set(index.iter_alias_pairs())
        expected = {
            (p, q)
            for p in range(7)
            for q in range(p + 1, 7)
            if paper_matrix.is_alias(p, q)
        }
        assert pairs == expected

    def test_no_duplicates(self, paper_matrix):
        index = _index(paper_matrix)
        pairs = list(index.iter_alias_pairs())
        assert len(pairs) == len(set(pairs))

    @settings(max_examples=50)
    @given(matrices())
    def test_matches_oracle(self, matrix):
        index = _index(matrix)
        pairs = list(index.iter_alias_pairs())
        assert len(pairs) == len(set(pairs)), "bulk enumeration must not repeat"
        expected = {
            (p, q)
            for p in range(matrix.n_pointers)
            for q in range(p + 1, matrix.n_pointers)
            if matrix.is_alias(p, q)
        }
        assert set(pairs) == expected

    def test_empty_matrix(self):
        index = _index(PointsToMatrix(3, 2))
        assert list(index.iter_alias_pairs()) == []


class TestDiffPointsTo:
    def test_identical_snapshots(self, paper_matrix):
        old = _index(paper_matrix)
        new = _index(paper_matrix)
        diff = diff_points_to(old, new)
        assert diff.unchanged

    def test_added_and_removed_facts(self):
        old_matrix = PointsToMatrix.from_rows([[0], [1]], 2)
        new_matrix = PointsToMatrix.from_rows([[0, 1], []], 2)
        diff = diff_points_to(_index(old_matrix), _index(new_matrix))
        assert diff.added == [(0, 1)]
        assert diff.removed == [(1, 1)]
        assert not diff.unchanged

    def test_grown_pointer_universe(self):
        old_matrix = PointsToMatrix.from_rows([[0]], 1)
        new_matrix = PointsToMatrix.from_rows([[0], [0]], 1)
        diff = diff_points_to(_index(old_matrix), _index(new_matrix))
        assert diff.added == [(1, 0)]
        assert diff.removed == []

    def test_impacted_pointers(self):
        old_matrix = PointsToMatrix.from_rows([[0], [1], [0]], 2)
        new_matrix = PointsToMatrix.from_rows([[0], [0], [0]], 2)
        impacted = impacted_pointers(_index(old_matrix), _index(new_matrix))
        assert impacted == {1}

    @settings(max_examples=25)
    @given(matrices(max_pointers=8, max_objects=5), matrices(max_pointers=8, max_objects=5))
    def test_diff_is_exact(self, old_matrix, new_matrix):
        diff = diff_points_to(_index(old_matrix), _index(new_matrix))
        old_facts = set(old_matrix.pairs())
        new_facts = set(new_matrix.pairs())
        assert set(diff.added) == new_facts - old_facts
        assert set(diff.removed) == old_facts - new_facts


class TestNewAliasPairs:
    def test_change_introduces_pairs(self):
        old_matrix = PointsToMatrix.from_rows([[0], [1]], 2)
        new_matrix = PointsToMatrix.from_rows([[0], [0]], 2)
        fresh = new_alias_pairs(_index(old_matrix), _index(new_matrix))
        assert fresh == {(0, 1)}

    def test_no_change_no_pairs(self, paper_matrix):
        assert new_alias_pairs(_index(paper_matrix), _index(paper_matrix)) == set()

    def test_limit_respected(self):
        old_matrix = PointsToMatrix(6, 1)
        new_matrix = PointsToMatrix.from_rows([[0]] * 6, 1)
        fresh = new_alias_pairs(_index(old_matrix), _index(new_matrix), limit=3)
        assert len(fresh) == 3

    def test_random_snapshots(self):
        for seed in range(3):
            old_matrix = make_random_matrix(20, 6, density=0.15, seed=seed)
            new_matrix = make_random_matrix(20, 6, density=0.2, seed=seed + 100)
            fresh = new_alias_pairs(_index(old_matrix), _index(new_matrix))
            for p, q in fresh:
                assert new_matrix.is_alias(p, q)
                assert not old_matrix.is_alias(p, q)


def _full_range_diff(old, new):
    """The pre-candidate implementation: scan the whole pointer id range.

    Kept as the reference semantics for the candidate-narrowed scan — the
    optimisation must change cost, never answers.
    """
    from repro.clients.diff import PointsToDiff

    diff = PointsToDiff()
    for pointer in range(max(old.n_pointers, new.n_pointers)):
        old_row = set(old.list_points_to(pointer)) if pointer < old.n_pointers else set()
        new_row = set(new.list_points_to(pointer)) if pointer < new.n_pointers else set()
        for obj in sorted(new_row - old_row):
            diff.added.append((pointer, obj))
        for obj in sorted(old_row - new_row):
            diff.removed.append((pointer, obj))
    return diff


class TestCandidateScanEquality:
    """The candidate-narrowed diff is pinned to the full-range scan."""

    @settings(max_examples=40)
    @given(matrices(max_pointers=10, max_objects=6),
           matrices(max_pointers=10, max_objects=6))
    def test_matches_full_scan_on_plain_indexes(self, old_matrix, new_matrix):
        old, new = _index(old_matrix), _index(new_matrix)
        fast = diff_points_to(old, new)
        slow = _full_range_diff(old, new)
        assert fast.added == slow.added
        assert fast.removed == slow.removed

    def test_matches_full_scan_on_overlays(self):
        """Overlay dirty sets join the candidates: edited rows still diff."""
        import random

        from repro.delta import DeltaLog, OverlayIndex

        for seed in range(6):
            rng = random.Random("diff-pin-%d" % seed)
            old_matrix = make_random_matrix(18, 7, density=0.2, seed=seed)
            new_matrix = make_random_matrix(18, 7, density=0.2, seed=seed + 50)
            log = DeltaLog()
            for _ in range(8):
                pointer, obj = rng.randrange(18), rng.randrange(7)
                if rng.random() < 0.5:
                    log.insert(pointer, obj)
                else:
                    log.delete(pointer, obj)
            old = _index(old_matrix)
            new = OverlayIndex(_index(new_matrix), log)
            fast = diff_points_to(old, new)
            slow = _full_range_diff(old, new)
            assert fast.added == slow.added
            assert fast.removed == slow.removed

    def test_explicit_candidates_narrow_the_scan(self):
        old_matrix = PointsToMatrix.from_rows([[0], [1], [0]], 2)
        new_matrix = PointsToMatrix.from_rows([[1], [0], [0]], 2)
        full = diff_points_to(_index(old_matrix), _index(new_matrix))
        assert set(full.added) == {(0, 1), (1, 0)}
        narrowed = diff_points_to(_index(old_matrix), _index(new_matrix),
                                  candidates=[0])
        # Pointer 1's change is invisible by construction; pointer 0's is kept.
        assert narrowed.added == [(0, 1)]
        assert narrowed.removed == [(0, 0)]
