"""Persistent-format robustness: truncation, corruption, fuzzing.

A decoder fed hostile bytes must fail with ``CorruptFileError`` (a
``ValueError``), never with an uncontrolled ``IndexError``/``struct.error``
or — worse — a silently wrong payload that passes validation with absurd
values.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decoder import CorruptFileError, decode_bytes
from repro.core.pipeline import encode, index_from_bytes

from conftest import make_random_matrix, matrices


def _sample_file(compact=False):
    matrix = make_random_matrix(30, 10, density=0.25, seed=5)
    return encode(matrix, compact=compact)


class TestTruncation:
    @pytest.mark.parametrize("compact", [False, True])
    def test_every_prefix_rejected_cleanly(self, compact):
        data = _sample_file(compact=compact)
        for cut in range(8, len(data), 7):
            with pytest.raises(ValueError):
                decode_bytes(data[:cut])

    def test_empty_and_magic_only(self):
        with pytest.raises(ValueError):
            decode_bytes(b"")
        with pytest.raises(ValueError):
            decode_bytes(b"PESTRIE1")


class TestCorruption:
    def test_bad_object_timestamp(self):
        data = bytearray(_sample_file())
        # Header: magic(8) + 3 u32 + 8 counts; pointer ts section follows,
        # then object ts.  Poke an object timestamp to a huge value.
        n_pointers = 30
        object_ts_offset = 8 + 11 * 4 + n_pointers * 4
        data[object_ts_offset : object_ts_offset + 4] = (10**6).to_bytes(4, "little")
        with pytest.raises(CorruptFileError, match="timestamp"):
            decode_bytes(bytes(data))

    def test_malformed_rectangle_rejected(self):
        data = bytearray(_sample_file())
        # Flip the last four bytes (part of some rectangle) to a huge value.
        data[-4:] = (0xFFFFFF).to_bytes(4, "little")
        with pytest.raises(CorruptFileError):
            decode_bytes(bytes(data))

    def test_overlong_varint(self):
        data = bytearray(_sample_file(compact=True))
        # Continuation bits forever right after the header.
        start = 8 + 11 * 4
        data[start : start + 8] = b"\xff" * 8
        with pytest.raises(ValueError):
            decode_bytes(bytes(data))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_mutations_never_crash_uncontrolled(self, seed):
        rng = random.Random(seed)
        data = bytearray(_sample_file(compact=rng.random() < 0.5))
        for _ in range(rng.randrange(1, 6)):
            position = rng.randrange(8, len(data))
            data[position] = rng.randrange(256)
        try:
            payload = decode_bytes(bytes(data))
        except ValueError:
            return  # controlled rejection
        # If it decoded, the payload must at least be internally sane.
        for rect, _ in payload.rects:
            assert rect.x1 <= rect.x2 < rect.y1 <= rect.y2 < payload.n_groups

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_arbitrary_bytes(self, blob):
        try:
            decode_bytes(b"PESTRIE1" + blob)
        except ValueError:
            pass
        try:
            decode_bytes(b"PESTRIE2" + blob)
        except ValueError:
            pass


class TestRoundTripUnderFuzz:
    @settings(max_examples=40)
    @given(matrices())
    def test_clean_files_always_decode(self, matrix):
        for compact in (False, True):
            data = encode(matrix, compact=compact)
            index = index_from_bytes(data)
            assert index.materialize() == matrix
