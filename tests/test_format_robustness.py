"""Persistent-format robustness: truncation, corruption, fuzzing.

A decoder fed hostile bytes must fail with ``CorruptFileError`` (a
``ValueError``), never with an uncontrolled ``IndexError``/``struct.error``
or — worse — a silently wrong payload that passes validation with absurd
values.  The corpus covers all three format versions: bit flips in header
counts, truncation at every section boundary, trailing garbage, spliced
counts, and checksum attacks on ``PESTRIE3``.
"""

import random
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decoder import CorruptFileError, decode_bytes
from repro.core.pipeline import encode, index_from_bytes

from conftest import make_random_matrix, matrices

#: Every on-disk variant: (version, compact).
VERSIONS = [(1, False), (2, True), (3, False), (3, True)]
VERSION_IDS = ["v1", "v2", "v3-raw", "v3-compact"]


def _sample_file(compact=False, version=3):
    matrix = make_random_matrix(30, 10, density=0.25, seed=5)
    return encode(matrix, compact=compact, version=version)


def _refresh_crc(data: bytes) -> bytes:
    """Recompute a PESTRIE3 trailer after a deliberate payload mutation."""
    body = bytes(data[:-4])
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def _v1_section_boundaries(data: bytes):
    """Byte offsets at which each v1 section ends."""
    header = struct.unpack_from("<11I", data, 8)
    n_pointers, n_objects = header[0], header[1]
    counts = header[3:]
    arity = (2, 3, 3, 4)
    offset = 8 + 11 * 4
    boundaries = []
    for size in (n_pointers, n_objects):
        offset += 4 * size
        boundaries.append(offset)
    for case_index in (0, 1):
        for shape_index in range(4):
            offset += 4 * arity[shape_index] * counts[2 * shape_index + case_index]
            boundaries.append(offset)
    assert offset == len(data)
    return boundaries


def _v3_section_boundaries(data: bytes):
    """Byte offsets at which each PESTRIE3 section ends."""
    lengths = struct.unpack_from("<10I", data, 9 + 11 * 4)
    offset = 8 + 1 + 11 * 4 + 10 * 4
    boundaries = []
    for length in lengths:
        offset += length
        boundaries.append(offset)
    assert offset + 4 == len(data)
    return boundaries


class TestTruncation:
    @pytest.mark.parametrize(("version", "compact"), VERSIONS, ids=VERSION_IDS)
    def test_every_prefix_rejected_cleanly(self, version, compact):
        data = _sample_file(compact=compact, version=version)
        for cut in range(0, len(data), 7):
            with pytest.raises(CorruptFileError):
                decode_bytes(data[:cut])

    @pytest.mark.parametrize(("version", "compact"), VERSIONS, ids=VERSION_IDS)
    def test_truncation_at_every_section_boundary(self, version, compact):
        data = _sample_file(compact=compact, version=version)
        boundaries = (_v3_section_boundaries(data) if version == 3
                      else _v1_section_boundaries(data) if not compact
                      else None)
        if boundaries is None:
            # v2 boundaries are data-dependent varint sums; approximate by
            # cutting at every offset instead.
            boundaries = range(8, len(data))
        for boundary in boundaries:
            if boundary >= len(data):
                continue
            with pytest.raises(CorruptFileError):
                decode_bytes(data[:boundary])

    def test_empty_and_magic_only(self):
        with pytest.raises(CorruptFileError, match="truncated"):
            decode_bytes(b"")
        with pytest.raises(CorruptFileError):
            decode_bytes(b"PESTRIE1")
        with pytest.raises(CorruptFileError):
            decode_bytes(b"PESTRIE3")


class TestTrailingGarbage:
    @pytest.mark.parametrize(("version", "compact"), VERSIONS, ids=VERSION_IDS)
    def test_appended_bytes_rejected(self, version, compact):
        data = _sample_file(compact=compact, version=version)
        for garbage in (b"\x00", b"\xff" * 7, b"PESTRIE1"):
            with pytest.raises(CorruptFileError):
                decode_bytes(data + garbage)


class TestHeaderCountCorruption:
    """Bit flips / splices in header counts must fail fast, pre-allocation."""

    # Header word 2 is n_groups, which only *bounds* timestamps — inflating
    # it loosens validation rather than breaking the layout, so it is not a
    # count in the allocation sense.  Every other word drives a read size.
    COUNT_WORDS = [0, 1] + list(range(3, 11))

    @pytest.mark.parametrize(("version", "compact"), VERSIONS, ids=VERSION_IDS)
    @pytest.mark.parametrize("word", COUNT_WORDS)
    def test_huge_count_rejected_without_allocation(self, version, compact, word):
        data = bytearray(_sample_file(compact=compact, version=version))
        header_offset = 9 if version == 3 else 8
        position = header_offset + 4 * word
        data[position : position + 4] = (0xFFFFFFF0).to_bytes(4, "little")
        blob = _refresh_crc(bytes(data)) if version == 3 else bytes(data)
        with pytest.raises(CorruptFileError):
            decode_bytes(blob)

    def test_single_bit_flips_in_v1_header(self):
        data = _sample_file(version=1)
        for position in range(8, 8 + 11 * 4):
            for bit in range(8):
                blob = bytearray(data)
                blob[position] ^= 1 << bit
                try:
                    payload = decode_bytes(bytes(blob))
                except CorruptFileError:
                    continue
                # Accepted flips must still satisfy every invariant.
                for rect, _ in payload.rects:
                    assert rect.x1 <= rect.x2 < rect.y1 <= rect.y2 < payload.n_groups


class TestCorruption:
    def test_bad_object_timestamp_v1(self):
        data = bytearray(_sample_file(version=1))
        # Header: magic(8) + 3 u32 + 8 counts; pointer ts section follows,
        # then object ts.  Poke an object timestamp to a huge value.
        n_pointers = 30
        object_ts_offset = 8 + 11 * 4 + n_pointers * 4
        data[object_ts_offset : object_ts_offset + 4] = (10**6).to_bytes(4, "little")
        with pytest.raises(CorruptFileError, match="timestamp"):
            decode_bytes(bytes(data))

    def test_bad_object_timestamp_v3_behind_valid_crc(self):
        """Structural validation still runs when the checksum is 'correct'."""
        data = bytearray(_sample_file(version=3))
        n_pointers = 30
        object_ts_offset = 8 + 1 + 11 * 4 + 10 * 4 + n_pointers * 4
        data[object_ts_offset : object_ts_offset + 4] = (10**6).to_bytes(4, "little")
        with pytest.raises(CorruptFileError, match="timestamp"):
            decode_bytes(_refresh_crc(bytes(data)))

    def test_v3_detects_any_payload_flip(self):
        data = _sample_file(version=3)
        rng = random.Random(7)
        for _ in range(300):
            blob = bytearray(data)
            position = rng.randrange(len(blob))
            blob[position] ^= 1 << rng.randrange(8)
            with pytest.raises(CorruptFileError):
                decode_bytes(bytes(blob))

    def test_malformed_rectangle_rejected(self):
        data = bytearray(_sample_file(version=1))
        # Flip the last four bytes (part of some rectangle) to a huge value.
        data[-4:] = (0xFFFFFF).to_bytes(4, "little")
        with pytest.raises(CorruptFileError):
            decode_bytes(bytes(data))

    def test_overlong_varint(self):
        data = bytearray(_sample_file(compact=True, version=2))
        # Continuation bits forever right after the header.
        start = 8 + 11 * 4
        data[start : start + 8] = b"\xff" * 8
        with pytest.raises(CorruptFileError):
            decode_bytes(bytes(data))

    def test_varint_above_u32_rejected(self):
        """Raw and compact formats must accept the same value domain."""
        header = struct.pack("<11I", 1, 1, 1, *([0] * 8))
        # 2^33 - 1 fits in five LEB128 bytes but exceeds uint32.
        oversized = b"\xff\xff\xff\xff\x1f"
        blob = b"PESTRIE2" + header + oversized + b"\x00"
        with pytest.raises(CorruptFileError, match="uint32"):
            decode_bytes(blob)

    def test_varint_absent_sentinel_still_accepted(self):
        """0xFFFFFFFF is exactly the ABSENT sentinel, not an overflow."""
        header = struct.pack("<11I", 1, 1, 1, *([0] * 8))
        absent = b"\xff\xff\xff\xff\x0f"
        blob = b"PESTRIE2" + header + absent + b"\x00"
        payload = decode_bytes(blob)
        assert payload.pointer_ts == [None]
        assert payload.object_ts == [0]

    def test_unknown_v3_flags_rejected(self):
        data = bytearray(_sample_file(version=3))
        data[8] |= 0x80
        with pytest.raises(CorruptFileError, match="flags"):
            decode_bytes(_refresh_crc(bytes(data)))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_mutations_never_crash_uncontrolled(self, seed):
        rng = random.Random(seed)
        version, compact = VERSIONS[rng.randrange(len(VERSIONS))]
        data = bytearray(_sample_file(compact=compact, version=version))
        for _ in range(rng.randrange(1, 6)):
            position = rng.randrange(8, len(data))
            data[position] = rng.randrange(256)
        try:
            payload = decode_bytes(bytes(data))
        except CorruptFileError:
            return  # controlled rejection
        # If it decoded, the payload must at least be internally sane.
        for rect, _ in payload.rects:
            assert rect.x1 <= rect.x2 < rect.y1 <= rect.y2 < payload.n_groups

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_arbitrary_bytes(self, blob):
        for magic in (b"PESTRIE1", b"PESTRIE2", b"PESTRIE3"):
            try:
                decode_bytes(magic + blob)
            except CorruptFileError:
                pass


class TestRoundTripUnderFuzz:
    @settings(max_examples=40)
    @given(matrices())
    def test_clean_files_always_decode(self, matrix):
        for version, compact in VERSIONS:
            data = encode(matrix, compact=compact, version=version)
            index = index_from_bytes(data)
            assert index.materialize() == matrix

    @settings(max_examples=25)
    @given(matrices())
    def test_versions_agree_on_payload(self, matrix):
        payloads = [decode_bytes(encode(matrix, compact=compact, version=version))
                    for version, compact in VERSIONS]
        assert all(payload == payloads[0] for payload in payloads[1:])
