"""The ROBDD engine and the BDD persistence baseline."""

import io
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.encode import encode_matrix
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.persist import BddPersistence
from repro.matrix.points_to import PointsToMatrix

from conftest import make_random_matrix, matrices


def _truth_table(manager, node, n_vars):
    rows = []
    for bits in itertools.product((False, True), repeat=n_vars):
        rows.append(manager.evaluate(node, dict(enumerate(bits))))
    return tuple(rows)


# A tiny expression language for property-testing against truth tables.

@st.composite
def expressions(draw, n_vars=4, depth=4):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, n_vars + 1))
        if choice == n_vars:
            return ("const", False)
        if choice == n_vars + 1:
            return ("const", True)
        return ("var", choice)
    op = draw(st.sampled_from(["and", "or", "xor", "not", "ite"]))
    if op == "not":
        return ("not", draw(expressions(n_vars=n_vars, depth=depth - 1)))
    if op == "ite":
        return (
            "ite",
            draw(expressions(n_vars=n_vars, depth=depth - 1)),
            draw(expressions(n_vars=n_vars, depth=depth - 1)),
            draw(expressions(n_vars=n_vars, depth=depth - 1)),
        )
    return (
        op,
        draw(expressions(n_vars=n_vars, depth=depth - 1)),
        draw(expressions(n_vars=n_vars, depth=depth - 1)),
    )


def _build(manager, expr):
    kind = expr[0]
    if kind == "const":
        return TRUE if expr[1] else FALSE
    if kind == "var":
        return manager.variable(expr[1])
    if kind == "not":
        return manager.not_(_build(manager, expr[1]))
    if kind == "ite":
        return manager.ite(*(_build(manager, sub) for sub in expr[1:]))
    return manager.apply(kind, _build(manager, expr[1]), _build(manager, expr[2]))


def _eval_expr(expr, bits):
    kind = expr[0]
    if kind == "const":
        return expr[1]
    if kind == "var":
        return bits[expr[1]]
    if kind == "not":
        return not _eval_expr(expr[1], bits)
    if kind == "ite":
        return (
            _eval_expr(expr[2], bits)
            if _eval_expr(expr[1], bits)
            else _eval_expr(expr[3], bits)
        )
    a = _eval_expr(expr[1], bits)
    b = _eval_expr(expr[2], bits)
    if kind == "and":
        return a and b
    if kind == "or":
        return a or b
    return a != b  # xor


class TestManager:
    def test_terminals(self):
        manager = BddManager(2)
        assert manager.is_terminal(FALSE)
        assert manager.is_terminal(TRUE)
        assert manager.size() == 2

    def test_mk_reduces_equal_children(self):
        manager = BddManager(2)
        assert manager.mk(0, TRUE, TRUE) == TRUE

    def test_hash_consing(self):
        manager = BddManager(2)
        a = manager.mk(0, FALSE, TRUE)
        b = manager.mk(0, FALSE, TRUE)
        assert a == b
        assert manager.size() == 3

    def test_variable_bounds(self):
        manager = BddManager(2)
        with pytest.raises(IndexError):
            manager.variable(2)

    def test_unknown_operation(self):
        manager = BddManager(1)
        with pytest.raises(ValueError, match="unknown BDD operation"):
            manager.apply("nand", TRUE, TRUE)

    def test_basic_identities(self):
        manager = BddManager(2)
        x = manager.variable(0)
        assert manager.and_(x, TRUE) == x
        assert manager.and_(x, FALSE) == FALSE
        assert manager.or_(x, FALSE) == x
        assert manager.or_(x, TRUE) == TRUE
        assert manager.not_(manager.not_(x)) == x
        assert manager.apply("xor", x, x) == FALSE
        assert manager.apply("diff", x, x) == FALSE

    @settings(max_examples=120, deadline=None)
    @given(expressions())
    def test_semantics_vs_truth_table(self, expr):
        manager = BddManager(4)
        node = _build(manager, expr)
        for bits in itertools.product((False, True), repeat=4):
            assignment = dict(enumerate(bits))
            assert manager.evaluate(node, assignment) == _eval_expr(expr, bits)

    @settings(max_examples=80, deadline=None)
    @given(expressions(), expressions())
    def test_canonicity(self, left, right):
        """Semantically equal functions get the same node id."""
        manager = BddManager(4)
        a = _build(manager, left)
        b = _build(manager, right)
        if _truth_table(manager, a, 4) == _truth_table(manager, b, 4):
            assert a == b
        else:
            assert a != b

    def test_restrict(self):
        manager = BddManager(3)
        x0, x1 = manager.variable(0), manager.variable(1)
        f = manager.and_(x0, x1)
        assert manager.restrict(f, {0: True}) == x1
        assert manager.restrict(f, {0: False}) == FALSE
        assert manager.restrict(f, {0: True, 1: True}) == TRUE

    def test_cube(self):
        manager = BddManager(3)
        cube = manager.cube({0: True, 2: False})
        assert manager.evaluate(cube, {0: True, 1: False, 2: False})
        assert manager.evaluate(cube, {0: True, 1: True, 2: False})
        assert not manager.evaluate(cube, {0: False, 1: True, 2: False})
        assert not manager.evaluate(cube, {0: True, 1: True, 2: True})

    def test_support(self):
        manager = BddManager(3)
        f = manager.or_(manager.variable(0), manager.variable(2))
        assert manager.support(f) == {0, 2}
        assert manager.support(TRUE) == set()

    def test_satisfying_assignments_expand_dont_cares(self):
        manager = BddManager(2)
        x0 = manager.variable(0)
        solutions = list(manager.satisfying_assignments(x0, [0, 1]))
        assert len(solutions) == 2  # x1 is a don't-care, expanded both ways
        assert all(solution[0] is True for solution in solutions)

    def test_satisfying_assignments_require_support(self):
        manager = BddManager(2)
        x1 = manager.variable(1)
        with pytest.raises(ValueError, match="support"):
            list(manager.satisfying_assignments(x1, [0]))

    def test_reachable_count(self):
        manager = BddManager(2)
        f = manager.and_(manager.variable(0), manager.variable(1))
        assert manager.reachable_count(f) == 4  # two terminals + two nodes
        assert manager.reachable_count(TRUE) == 2


class TestPointsToBdd:
    @settings(max_examples=40, deadline=None)
    @given(matrices())
    def test_round_trip(self, matrix):
        assert encode_matrix(matrix).to_matrix() == matrix

    def test_queries_match_oracle(self, paper_matrix):
        encoded = encode_matrix(paper_matrix)
        for p in range(7):
            assert encoded.list_points_to(p) == paper_matrix.list_points_to(p)
            assert encoded.list_aliases(p) == paper_matrix.list_aliases(p)
            for q in range(7):
                assert encoded.is_alias(p, q) == paper_matrix.is_alias(p, q)
        for obj in range(5):
            assert encoded.list_pointed_by(obj) == paper_matrix.list_pointed_by(obj)

    def test_equivalent_rows_share_structure(self):
        """The BDD merges duplicated rows: node count grows sublinearly."""
        base = make_random_matrix(4, 8, density=0.4, seed=3)
        duplicated = PointsToMatrix(64, 8)
        for p in range(64):
            for obj in base.rows[p % 4]:
                duplicated.add(p, obj)
        encoded = encode_matrix(duplicated)
        distinct = encode_matrix(base)
        assert encoded.node_count() < 16 * distinct.node_count()

    def test_empty_matrix(self):
        matrix = PointsToMatrix(3, 3)
        encoded = encode_matrix(matrix)
        assert encoded.root == FALSE
        assert encoded.list_points_to(0) == []
        assert encoded.to_matrix() == matrix


class TestBddPersistence:
    def test_round_trip(self, paper_matrix):
        encoded = encode_matrix(paper_matrix)
        buffer = io.BytesIO()
        BddPersistence.encode(encoded, buffer)
        buffer.seek(0)
        decoded = BddPersistence.decode(buffer)
        assert decoded.to_matrix() == paper_matrix

    @settings(max_examples=25, deadline=None)
    @given(matrices())
    def test_round_trip_any_matrix(self, matrix):
        buffer = io.BytesIO()
        BddPersistence.encode(encode_matrix(matrix), buffer)
        buffer.seek(0)
        assert BddPersistence.decode(buffer).to_matrix() == matrix

    def test_file_size_is_20_bytes_per_node(self, paper_matrix, tmp_path):
        encoded = encode_matrix(paper_matrix)
        path = str(tmp_path / "m.bdd")
        size = BddPersistence.encode_to_file(encoded, path)
        nodes = encoded.node_count() - 2  # terminals are implicit
        assert size == 8 + 24 + 20 * nodes

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="bad magic"):
            BddPersistence.decode(io.BytesIO(b"XXXXXXXX" + b"\x00" * 24))

    def test_constant_root(self):
        matrix = PointsToMatrix(2, 2)
        buffer = io.BytesIO()
        BddPersistence.encode(encode_matrix(matrix), buffer)
        buffer.seek(0)
        assert BddPersistence.decode(buffer).to_matrix() == matrix
