"""The telemetry layer: registry, exposition, tracing, slow-query log."""

import threading

import pytest

from repro.core.pipeline import encode, index_from_bytes
from repro.obs import (
    CATALOGUE,
    DEFAULT_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    get_registry,
    log_buckets,
)
from repro.serve import AliasService

from conftest import make_random_matrix


class TestLogBuckets:
    def test_geometric_progression(self):
        assert log_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)

    def test_default_buckets_span_microseconds_to_seconds(self):
        assert len(DEFAULT_BUCKETS) == 12
        assert DEFAULT_BUCKETS[0] == 1e-6
        assert DEFAULT_BUCKETS[-1] == pytest.approx(4.194304)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 2.0, 3)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0, 3)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, 0)


class TestHistogramBuckets:
    def test_boundary_values_land_in_their_le_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", buckets=(1.0, 2.0, 4.0))
        # A value equal to a bound belongs to that bucket (le = "<=").
        for value in (1.0, 0.5, 1.5, 2.0, 4.0, 4.0001):
            histogram.observe(value)
        counts, total, total_sum = histogram.snapshot()
        assert counts == [2, 2, 1, 1]  # le=1, le=2, le=4, +Inf
        assert total == 6
        assert total_sum == pytest.approx(13.0001)

    def test_quantile_reports_bucket_upper_bound(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.75) == 4.0
        assert histogram.quantile(1.0) == float("inf")
        assert registry.histogram("t_empty", buckets=(1.0,)).quantile(0.5) == 0.0

    def test_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("t_bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("t_dup", buckets=(1.0, 1.0))


class TestRegistry:
    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("t_total").inc(-1)

    def test_same_labels_share_a_series(self):
        registry = MetricsRegistry()
        registry.counter("t_total", kind="a").inc()
        registry.counter("t_total", kind="a").inc()
        registry.counter("t_total", kind="b").inc()
        series = registry.snapshot()["t_total"]["series"]
        assert [(entry["labels"], entry["value"]) for entry in series] == [
            ({"kind": "a"}, 2),
            ({"kind": "b"}, 1),
        ]

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("t_total")
        with pytest.raises(ValueError):
            registry.gauge("t_total")
        with pytest.raises(ValueError):
            registry.describe("t_total", "gauge")

    def test_disabled_registry_mutations_are_noops(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total")
        gauge = registry.gauge("t_value")
        histogram = registry.histogram("t_seconds", buckets=(1.0,))
        registry.set_enabled(False)
        counter.inc()
        gauge.set(5.0)
        histogram.observe(0.5)
        registry.set_enabled(True)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert histogram.count == 0

    def test_catalogued_families_export_before_first_use(self):
        registry = MetricsRegistry(describe_catalogue=True)
        snapshot = registry.snapshot()
        assert set(CATALOGUE) <= set(snapshot)
        for name, (kind, help_text) in CATALOGUE.items():
            assert snapshot[name]["type"] == kind
            assert snapshot[name]["help"] == help_text

    def test_global_registry_is_shared_and_catalogued(self):
        assert get_registry() is get_registry()
        assert set(CATALOGUE) <= set(get_registry().snapshot())

    def test_eight_thread_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total")
        histogram = registry.histogram("t_seconds", buckets=(0.5, 1.0))
        workers, per_worker = 8, 2000

        def run():
            for index in range(per_worker):
                counter.inc()
                histogram.observe((index % 3) * 0.4)  # 0.0, 0.4, 0.8

        threads = [threading.Thread(target=run) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == workers * per_worker
        counts, total, _ = histogram.snapshot()
        assert total == workers * per_worker
        assert sum(counts) == total


class TestPrometheusExposition:
    def test_golden_exposition(self):
        registry = MetricsRegistry()
        registry.counter("t_total", path='a"b\\c\nd').inc()
        histogram = registry.histogram("t_seconds", buckets=(0.5, 1.0))
        for value in (0.25, 0.75, 2.0):
            histogram.observe(value)
        assert registry.to_prometheus() == (
            "# TYPE t_seconds histogram\n"
            't_seconds_bucket{le="0.5"} 1\n'
            't_seconds_bucket{le="1"} 2\n'
            't_seconds_bucket{le="+Inf"} 3\n'
            "t_seconds_sum 3\n"
            "t_seconds_count 3\n"
            "# TYPE t_total counter\n"
            't_total{path="a\\"b\\\\c\\nd"} 1\n'
        )

    def test_catalogued_family_gets_help_and_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_decode_seconds",
                                       buckets=(1e-3, 1e-2))
        histogram.observe(5e-4)
        histogram.observe(5e-3)
        text = registry.to_prometheus()
        assert "# HELP repro_decode_seconds " in text
        assert "# TYPE repro_decode_seconds histogram" in text
        assert 'repro_decode_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_decode_seconds_bucket{le="0.01"} 2' in text
        assert 'repro_decode_seconds_bucket{le="+Inf"} 2' in text

    def test_labels_render_sorted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("t_total", zeta="1", alpha="2").inc()
        assert 't_total{alpha="2",zeta="1"} 1' in registry.to_prometheus()


class TestTracing:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("a") is tracer.span("b")
        with tracer.span("a"):
            pass
        assert tracer.roots() == []

    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("outer", depth=0):
                with tracer.span("inner", depth=1):
                    pass
                with tracer.span("sibling"):
                    pass
        finally:
            tracer.disable()
        (root,) = tracer.roots()
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner", "sibling"]
        assert root.seconds >= root.children[0].seconds
        assert root.find("sibling") is root.children[1]
        assert "outer" in root.render() and "inner" in root.render()

    def test_exception_marks_span_and_keeps_stack_clean(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with pytest.raises(RuntimeError):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        raise RuntimeError("boom")
            # The stack unwound fully: a new root nests nothing stale.
            with tracer.span("after"):
                pass
        finally:
            tracer.disable()
        outer, after = tracer.roots()
        assert outer.error and outer.children[0].error
        assert after.name == "after" and not after.children

    def test_capture_collects_only_new_roots(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("before"):
            pass
        tracer.disable()
        with tracer.capture() as spans:
            with tracer.span("captured"):
                pass
        assert not tracer.enabled
        assert [span.name for span in spans] == ["captured"]

    def test_root_capacity_evicts_oldest(self):
        tracer = Tracer(root_capacity=2)
        tracer.enable()
        try:
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        finally:
            tracer.disable()
        assert [span.name for span in tracer.roots()] == ["b", "c"]


class TestSlowQueryLog:
    def test_threshold_gates_on_per_query_latency(self):
        log = SlowQueryLog(threshold=0.010, capacity=8)
        assert not log.record("is_alias", (1, 2), 0.005)
        assert log.record("is_alias", (1, 2), 0.020)
        # A 100-query batch at 1 ms/query stays under a 10 ms threshold
        # even though the whole call took 100 ms.
        assert not log.record("is_alias", ((1, 2),), 0.100, batched=True,
                              queries=100)
        assert log.record("is_alias", ((1, 2),), 2.0, batched=True, queries=100)
        kinds = [entry.seconds for entry in log.entries()]
        assert kinds == [0.020, 2.0]

    def test_capacity_bounds_retained_entries(self):
        log = SlowQueryLog(threshold=0.0, capacity=4)
        for index in range(10):
            assert log.record("list_aliases", (index,), 0.001)
        entries = log.entries()
        assert len(log) == len(entries) == 4
        assert [entry.operands for entry in entries] == [(6,), (7,), (8,), (9,)]

    def test_none_threshold_disables_capture(self):
        log = SlowQueryLog(threshold=None, capacity=4)
        assert not log.record("is_alias", (1, 2), 100.0)
        assert len(log) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold=-1.0)

    def test_render_and_clear(self):
        log = SlowQueryLog(threshold=0.0, capacity=4)
        assert log.render() == "(no slow queries recorded)"
        log.record("is_alias", (1, 2), 0.5)
        assert "is_alias" in log.render()
        log.clear()
        assert len(log) == 0


class TestServiceSlowQueries:
    @pytest.fixture
    def service(self):
        matrix = make_random_matrix(40, 12, density=0.2, seed=5)
        return AliasService.from_index(index_from_bytes(encode(matrix)),
                                       slow_query_threshold=0.0,
                                       slow_log_capacity=8)

    def test_every_query_kind_is_captured_at_zero_threshold(self, service):
        service.is_alias(0, 1)
        service.list_aliases(2)
        service.is_alias_batch([(0, 1), (1, 2)])
        kinds = [entry.kind for entry in service.slow_queries()]
        assert kinds == ["is_alias", "list_aliases", "is_alias"]
        batch = service.slow_queries()[-1]
        assert batch.batched and batch.queries == 2

    def test_threshold_can_be_raised_and_disabled(self, service):
        service.set_slow_query_threshold(10.0)
        service.is_alias(0, 1)
        assert service.slow_queries() == []
        service.set_slow_query_threshold(None)
        service.is_alias(1, 2)
        assert service.slow_queries() == []
        with pytest.raises(ValueError):
            service.set_slow_query_threshold(-0.5)

    def test_reset_stats_clears_the_log(self, service):
        service.is_alias(0, 1)
        assert service.slow_queries()
        service.reset_stats()
        assert service.slow_queries() == []
