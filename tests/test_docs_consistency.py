"""Documentation stays truthful: referenced names exist, examples run."""

import importlib
import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestPublicSurface:
    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.matrix",
            "repro.bdd",
            "repro.baselines",
            "repro.analysis",
            "repro.bench",
            "repro.clients",
            "repro.serve",
            "repro.obs",
            "repro.cli",
        ],
    )
    def test_subpackage_all_lists_real_names(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", ()):
            assert hasattr(imported, name), "%s.%s missing" % (module, name)

    def test_design_md_names_modules_that_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`benchmarks/(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_experiments_md_names_result_files_produced_by_benches(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        bench_sources = "".join(
            path.read_text() for path in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for match in re.finditer(r"results/([\w.{},]+\.txt)", text):
            name = match.group(1)
            if "{" in name:  # brace-expanded shorthand in prose
                prefix, _, rest = name.partition("{")
                alternatives, _, suffix = rest.partition("}")
                expanded = [prefix + alt + suffix for alt in alternatives.split(",")]
            else:
                expanded = [name]
            for filename in expanded:
                assert filename in bench_sources, filename

    def test_readme_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.finditer(r"`(\w+\.py)` —", text):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(1)


@pytest.mark.parametrize(
    "script",
    sorted(path.name for path in (ROOT / "examples").glob("*.py")),
)
def test_examples_run_clean(script):
    """Every example must exit 0 (they are part of the public contract)."""
    completed = subprocess.run(
        [sys.executable, str(ROOT / "examples" / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must narrate what they do"
