"""Differential oracle for the delta overlay: overlay ≡ full rebuild.

The single invariant under test: for any base matrix and any edit script,
an :class:`OverlayIndex` over the *base* encoding answers all four Table 1
queries identically to a :class:`PestrieIndex` built from a *full
re-encode* of the edited matrix.  Hypothesis explores (matrix, script)
space adversarially; a deterministic seeded sweep adds volume (the two
together exceed 500 generated cases per run); dedicated tests pin the
compaction boundary and the degenerate scripts Hypothesis tends to shrink
away from.
"""

from __future__ import annotations

import copy
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_matrix, matrices
from repro.core.pipeline import encode, index_from_bytes, load_index, persist
from repro.delta import (
    DEFAULT_COMPACTION_RATIO,
    DeltaLog,
    OverlayIndex,
    append_delta,
    compact_file,
    load_overlay,
    overlay_from_bytes,
    split_image,
)
from repro.matrix.points_to import PointsToMatrix

# ----------------------------------------------------------------------
# Script generation and the oracle itself
# ----------------------------------------------------------------------


@st.composite
def edit_scripts(draw, matrix: PointsToMatrix, max_ops: int = 24):
    """A random insert/delete script over ``matrix``'s id space."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from("+-"),
                st.integers(min_value=0, max_value=matrix.n_pointers - 1),
                st.integers(min_value=0, max_value=matrix.n_objects - 1),
            ),
            max_size=max_ops,
        )
    )
    return DeltaLog(ops)


@st.composite
def matrices_with_scripts(draw):
    matrix = draw(matrices())
    log = draw(edit_scripts(matrix))
    return matrix, log


def apply_script(matrix: PointsToMatrix, log: DeltaLog) -> PointsToMatrix:
    """The reference semantics: replay the script on a copy of the matrix."""
    edited = copy.deepcopy(matrix)
    for op, pointer, obj in log:
        if op == "+":
            edited.add(pointer, obj)
        else:
            edited.rows[pointer].discard(obj)
    return edited


def random_script(rng: random.Random, matrix: PointsToMatrix, n_ops: int) -> DeltaLog:
    log = DeltaLog()
    for _ in range(n_ops):
        pointer = rng.randrange(matrix.n_pointers)
        obj = rng.randrange(matrix.n_objects)
        if rng.random() < 0.5:
            log.insert(pointer, obj)
        else:
            log.delete(pointer, obj)
    return log


def assert_table1_equivalent(overlay, oracle, n_pointers: int, n_objects: int) -> None:
    """All four Table 1 queries agree between ``overlay`` and ``oracle``."""
    pairs = [(p, q) for p in range(n_pointers) for q in range(p, n_pointers)]
    for p, q in pairs:
        assert overlay.is_alias(p, q) == oracle.is_alias(p, q), (
            "is_alias(%d, %d)" % (p, q)
        )
    assert overlay.is_alias_batch(pairs) == [oracle.is_alias(p, q) for p, q in pairs]
    for p in range(n_pointers):
        assert set(overlay.list_points_to(p)) == set(oracle.list_points_to(p)), (
            "list_points_to(%d)" % p
        )
        assert set(overlay.list_aliases(p)) == set(oracle.list_aliases(p)), (
            "list_aliases(%d)" % p
        )
    for obj in range(n_objects):
        assert set(overlay.list_pointed_by(obj)) == set(oracle.list_pointed_by(obj)), (
            "list_pointed_by(%d)" % obj
        )


def check_case(matrix: PointsToMatrix, log: DeltaLog, order: str = "hub",
               compact: bool = False, mode: str = "ptlist") -> None:
    base = index_from_bytes(encode(matrix, order=order, compact=compact), mode=mode)
    overlay = OverlayIndex(base, log)
    edited = apply_script(matrix, log)
    oracle = index_from_bytes(encode(edited, order=order))
    assert_table1_equivalent(overlay, oracle, matrix.n_pointers, matrix.n_objects)
    assert overlay.materialize() == edited


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------


class TestOverlayOracle:
    @settings(max_examples=150)
    @given(matrices_with_scripts(), st.sampled_from(["hub", "identity", "random"]))
    def test_overlay_equals_full_rebuild(self, case, order):
        matrix, log = case
        check_case(matrix, log, order=order, compact=len(log) % 2 == 0)

    @settings(max_examples=50)
    @given(matrices_with_scripts())
    def test_segment_mode_overlay(self, case):
        matrix, log = case
        check_case(matrix, log, mode="segment")

    @settings(max_examples=50)
    @given(matrices_with_scripts(), matrices_with_scripts())
    def test_extend_composes_like_concatenation(self, first, second):
        """extend(log2) over (base, log1) ≡ one overlay over log1 + log2."""
        matrix, log1 = first
        _, raw2 = second
        # Rebind the second script into the first matrix's id space.
        log2 = DeltaLog(
            (op, p % matrix.n_pointers, o % matrix.n_objects) for op, p, o in raw2
        )
        base = index_from_bytes(encode(matrix))
        stacked = OverlayIndex(base, log1).extend(log2)
        flat = OverlayIndex(base, DeltaLog(tuple(log1) + tuple(log2)))
        assert stacked.materialize() == flat.materialize()
        assert stacked.net_delta() == flat.net_delta()

    def test_seeded_sweep(self):
        """Volume: 420 deterministic (matrix, script) cases beyond Hypothesis."""
        checked = 0
        for seed in range(140):
            rng = random.Random("delta-oracle-%d" % seed)
            n_pointers = rng.randint(1, 18)
            n_objects = rng.randint(1, 9)
            matrix = make_random_matrix(
                n_pointers, n_objects,
                density=rng.choice((0.0, 0.1, 0.3, 0.6)), seed=seed,
            )
            for n_ops in (1, rng.randint(2, 10), rng.randint(11, 40)):
                log = random_script(rng, matrix, n_ops)
                check_case(matrix, log, compact=bool(seed % 2))
                checked += 1
        assert checked == 420


class TestDegenerateDeltas:
    def test_empty_log_is_transparent(self):
        matrix = make_random_matrix(12, 6, density=0.3, seed=1)
        base = index_from_bytes(encode(matrix))
        overlay = OverlayIndex(base, DeltaLog())
        assert overlay.delta_size() == 0
        assert not overlay.dirty_pointers()
        assert_table1_equivalent(overlay, base, 12, 6)

    def test_noop_edits_leave_no_delta(self):
        """Inserting present facts / deleting absent ones normalises away."""
        matrix = make_random_matrix(10, 5, density=0.4, seed=2)
        log = DeltaLog()
        present = [(p, o) for p in range(10) for o in matrix.rows[p]]
        for pointer, obj in present[:5]:
            log.insert(pointer, obj)
        absent = [(p, o) for p in range(10) for o in range(5) if o not in matrix.rows[p]]
        for pointer, obj in absent[:5]:
            log.delete(pointer, obj)
        overlay = OverlayIndex(index_from_bytes(encode(matrix)), log)
        assert overlay.delta_size() == 0
        assert overlay.materialize() == matrix

    def test_insert_then_delete_cancels(self):
        matrix = make_random_matrix(8, 4, density=0.2, seed=3)
        log = DeltaLog().insert(0, 0).delete(0, 0)
        overlay = OverlayIndex(index_from_bytes(encode(matrix)), log)
        assert overlay.materialize() == apply_script(matrix, log)

    def test_delete_everything(self):
        matrix = make_random_matrix(8, 4, density=0.5, seed=4)
        log = DeltaLog()
        for pointer in range(8):
            for obj in list(matrix.rows[pointer]):
                log.delete(pointer, obj)
        overlay = OverlayIndex(index_from_bytes(encode(matrix)), log)
        oracle = index_from_bytes(encode(apply_script(matrix, log)))
        assert_table1_equivalent(overlay, oracle, 8, 4)
        for p in range(8):
            for q in range(8):
                assert not overlay.is_alias(p, q)

    def test_out_of_range_edit_rejected(self):
        matrix = make_random_matrix(4, 3, density=0.3, seed=5)
        base = index_from_bytes(encode(matrix))
        with pytest.raises(IndexError):
            OverlayIndex(base, DeltaLog().insert(4, 0))
        with pytest.raises(IndexError):
            OverlayIndex(base, DeltaLog().delete(0, 3))


class TestFileRoundTrip:
    """The durable path: append to a real file, load, compare to the oracle."""

    @settings(max_examples=40)
    @given(matrices_with_scripts())
    def test_bytes_round_trip(self, case):
        matrix, log = case
        data = encode(matrix, compact=True)
        inserts, deletes = log.net()
        if not inserts and not deletes:
            base, tail = split_image(data)
            assert tail == b""
            return
        from repro.delta import encode_record

        image = data + encode_record(inserts, deletes, compact=True)
        overlay = overlay_from_bytes(image)
        oracle = index_from_bytes(encode(apply_script(matrix, log)))
        assert_table1_equivalent(overlay, oracle, matrix.n_pointers, matrix.n_objects)

    def test_append_load_query(self, tmp_path):
        matrix = make_random_matrix(20, 8, density=0.2, seed=6)
        path = str(tmp_path / "facts.pestrie")
        persist(matrix, path)
        rng = random.Random(6)
        edited = matrix
        for round_number in range(3):  # three appends stack three records
            log = random_script(rng, edited, 6)
            result = append_delta(path, log)
            assert result.record_count == round_number + 1
            assert result.bytes_appended > 0
            edited = apply_script(edited, log)
        overlay = load_overlay(path)
        oracle = index_from_bytes(encode(edited))
        assert_table1_equivalent(overlay, oracle, 20, 8)
        # decode_bytes must refuse the delta-bearing image rather than
        # silently serving pre-update answers.
        from repro.core.decoder import CorruptFileError, decode_bytes

        with open(path, "rb") as stream:
            image = stream.read()
        with pytest.raises(CorruptFileError):
            decode_bytes(image)
        # Compacting folds the chain into a fresh base, leaving only the
        # epoch watermark record behind (so as_of on folded versions fails
        # loudly instead of answering wrongly).
        compact_file(path)
        compacted = load_overlay(path)
        assert compacted.materialize() == edited
        assert compacted.delta_size() == 0
        from repro.delta import VersionUnavailableError, load_versions

        versioned = load_versions(path)
        assert versioned.floor == versioned.head == 3
        with pytest.raises(VersionUnavailableError):
            versioned.as_of(2)

    def test_net_empty_log_appends_nothing(self, tmp_path):
        matrix = make_random_matrix(6, 3, density=0.3, seed=7)
        path = str(tmp_path / "facts.pestrie")
        size = persist(matrix, path)
        result = append_delta(path, DeltaLog())
        assert result.bytes_appended == 0
        assert result.file_size == size
        # insert-then-delete is NOT net-empty: the last op wins, so it nets
        # to one delete record (which normalises away only at overlay time).
        result = append_delta(path, DeltaLog().insert(0, 0).delete(0, 0))
        assert result.record_count == 1
        overlay = load_overlay(path)
        assert overlay.materialize() == matrix


class TestCompactionBoundary:
    def test_needs_compaction_threshold_is_strict(self):
        """Exactly at the ratio: no compaction; one fact beyond: compaction."""
        matrix = PointsToMatrix.from_pairs(10, 2, [(p, 0) for p in range(10)])
        base = index_from_bytes(encode(matrix))  # 10 facts
        at_ratio = OverlayIndex(base, DeltaLog.inserting([(0, 1), (1, 1)]))
        assert at_ratio.delta_ratio() == pytest.approx(0.2)
        assert not at_ratio.needs_compaction(0.2)
        beyond = at_ratio.extend(DeltaLog.inserting([(2, 1)]))
        assert beyond.needs_compaction(0.2)
        assert at_ratio.needs_compaction(0.1)
        assert not at_ratio.needs_compaction(DEFAULT_COMPACTION_RATIO)

    def test_auto_compact_triggers_and_preserves_answers(self, tmp_path):
        matrix = make_random_matrix(15, 6, density=0.3, seed=8)
        path = str(tmp_path / "facts.pestrie")
        persist(matrix, path)
        edited = matrix
        rng = random.Random(8)
        compacted_rounds = []
        for round_number in range(6):
            log = random_script(rng, edited, 4)
            if log.is_no_op():
                continue
            result = append_delta(path, log, auto_compact_ratio=0.15)
            edited = apply_script(edited, log)
            if result.compacted:
                compacted_rounds.append(round_number)
                assert result.record_count == 0
            overlay = load_overlay(path)
            assert overlay.materialize() == edited
        assert compacted_rounds, "threshold 0.15 never tripped in 6 rounds"

    def test_queries_identical_across_the_boundary(self, tmp_path):
        """The same logical state answers identically pre- and post-compaction."""
        matrix = make_random_matrix(14, 7, density=0.25, seed=9)
        path = str(tmp_path / "facts.pestrie")
        persist(matrix, path)
        log = random_script(random.Random(9), matrix, 12)
        append_delta(path, log)
        before = load_overlay(path)
        compact_file(path)
        after = load_overlay(path)
        assert after.delta_size() == 0
        assert_table1_equivalent(before, after, 14, 7)
        assert before.materialize() == after.materialize()


class TestFlatBaseOracle:
    """The same differential oracle over a zero-copy ``PESTRIE4`` base.

    Pins the ``_pes_range`` boundary shapes both engines share: a
    single-PES file (one origin break, the block spans every timestamp),
    an empty trailing PES (the construction-order last object has no other
    members), and pointers landing exactly on the last origin break (the
    ``n_groups - 1`` upper-bound arm).  Scripts deliberately edit facts in
    the last PES so the overlay exercises the boundary too.
    """

    def _check_flat(self, matrix: PointsToMatrix, log: DeltaLog) -> None:
        base = index_from_bytes(encode(matrix, version=4), lazy=True)
        try:
            assert base.mode == "flat"
            overlay = OverlayIndex(base, log)
            edited = apply_script(matrix, log)
            oracle = index_from_bytes(encode(edited))
            assert_table1_equivalent(
                overlay, oracle, matrix.n_pointers, matrix.n_objects)
            assert overlay.materialize() == edited
        finally:
            base.close()

    def test_single_pes_base(self):
        matrix = PointsToMatrix(5, 2)
        for p in range(5):
            matrix.add(p, 0)
            matrix.add(p, 1)
        self._check_flat(matrix, DeltaLog().delete(4, 1).insert(0, 0))

    def test_empty_trailing_pes(self):
        matrix = PointsToMatrix(6, 3)
        for p in range(5):
            matrix.add(p, 0)
        matrix.add(5, 2)
        self._check_flat(matrix, DeltaLog().insert(0, 2).delete(5, 2))

    def test_edits_on_last_origin_break(self):
        matrix = PointsToMatrix(7, 4)
        for p in range(4):
            matrix.add(p, p % 2)
        matrix.add(4, 3)
        matrix.add(5, 3)
        matrix.add(6, 2)
        self._check_flat(matrix, DeltaLog().insert(6, 3).delete(4, 3))

    def test_seeded_sweep_over_flat_bases(self):
        checked = 0
        for seed in range(30):
            rng = random.Random("flat-oracle-%d" % seed)
            matrix = make_random_matrix(
                rng.randint(1, 14), rng.randint(1, 7),
                density=rng.choice((0.0, 0.2, 0.5)), seed=seed)
            log = random_script(rng, matrix, rng.randint(1, 12))
            self._check_flat(matrix, log)
            checked += 1
        assert checked == 30
