"""Heavier cross-cutting properties on calibrated synthetic matrices.

These run the full pipeline (hub order → build → label → rectangles →
encode → decode → query) on medium-sized matrices with realistic structure
and compare sampled queries against the oracle and the other backends.
"""

import pytest

from repro.baselines.bitmap_persist import BitmapPersistence
from repro.baselines.demand import DemandDriven
from repro.bench.synthetic import SyntheticSpec, synthesize, synthesize_simple
from repro.core.pipeline import encode, index_from_bytes

import io


SPECS = [
    SyntheticSpec(n_pointers=400, n_objects=120, seed=1),
    SyntheticSpec(n_pointers=400, n_objects=120, seed=2, mean_points_to=20.0),
    SyntheticSpec(n_pointers=250, n_objects=40, seed=3, pointer_class_ratio=0.05),
    SyntheticSpec(n_pointers=300, n_objects=200, seed=4, object_zipf=1.4),
]


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: "seed%d" % s.seed)
def test_pipeline_on_calibrated_matrices(spec):
    matrix = synthesize(spec)
    index = index_from_bytes(encode(matrix))

    buffer = io.BytesIO()
    BitmapPersistence.encode(matrix, buffer)
    buffer.seek(0)
    bitp = BitmapPersistence.decode(buffer)
    demand = DemandDriven(matrix)

    stride = max(1, matrix.n_pointers // 60)
    sample = range(0, matrix.n_pointers, stride)
    for p in sample:
        expected_pts = matrix.list_points_to(p)
        assert sorted(index.list_points_to(p)) == expected_pts
        assert bitp.list_points_to(p) == expected_pts
        expected_aliases = matrix.list_aliases(p)
        assert sorted(index.list_aliases(p)) == expected_aliases
        assert bitp.list_aliases(p) == expected_aliases
        assert demand.list_aliases(p) == expected_aliases
    for p in sample:
        for q in sample:
            expected = matrix.is_alias(p, q)
            assert index.is_alias(p, q) == expected
            assert bitp.is_alias(p, q) == expected
    for obj in range(0, matrix.n_objects, max(1, matrix.n_objects // 40)):
        assert sorted(index.list_pointed_by(obj)) == matrix.list_pointed_by(obj)


@pytest.mark.parametrize("order", ["hub", "simple", "identity", "random"])
def test_orders_agree_on_synthetic(order):
    matrix = synthesize(SyntheticSpec(n_pointers=200, n_objects=60, seed=9))
    index = index_from_bytes(encode(matrix, order=order, seed=5))
    assert index.materialize() == matrix


def test_uniform_control_round_trips():
    matrix = synthesize_simple(300, 80, seed=7)
    index = index_from_bytes(encode(matrix))
    assert index.materialize() == matrix


def test_compact_and_raw_equal_on_synthetic():
    matrix = synthesize(SyntheticSpec(n_pointers=350, n_objects=90, seed=11))
    raw = index_from_bytes(encode(matrix, compact=False))
    compact = index_from_bytes(encode(matrix, compact=True))
    assert raw.materialize() == compact.materialize() == matrix


def test_index_guards():
    matrix = synthesize(SyntheticSpec(n_pointers=50, n_objects=10, seed=13))
    index = index_from_bytes(encode(matrix))
    with pytest.raises(IndexError):
        index.is_alias(-1, 0)
    with pytest.raises(IndexError):
        index.is_alias(0, 50)
    with pytest.raises(IndexError):
        index.list_points_to(50)
    with pytest.raises(IndexError):
        index.list_aliases(-2)
    with pytest.raises(IndexError):
        index.list_pointed_by(10)
    with pytest.raises(IndexError):
        index.pes_of(99)
