"""The pipeline facade: persist/encode/load round trips."""

import os

from repro.core.pipeline import encode, index_from_bytes, load_index, persist

from conftest import make_random_matrix


class TestPersistExplicitOrder:
    def test_persist_honours_explicit_order(self, tmp_path, paper_matrix):
        """Regression: ``persist`` used to drop ``explicit_order``, writing a
        hub-order file that disagreed with the in-memory ``encode``."""
        order = [4, 2, 0, 1, 3]  # a deliberately non-hub object order
        path = str(tmp_path / "explicit.pes")
        persist(paper_matrix, path, explicit_order=order)
        with open(path, "rb") as stream:
            on_disk = stream.read()
        assert on_disk == encode(paper_matrix, explicit_order=order)

        loaded = load_index(path)
        in_memory = index_from_bytes(encode(paper_matrix, explicit_order=order))
        assert loaded.materialize() == in_memory.materialize() == paper_matrix
        for pointer in range(paper_matrix.n_pointers):
            assert loaded.pes_of(pointer) == in_memory.pes_of(pointer)

    def test_explicit_order_differs_from_hub(self, tmp_path):
        matrix = make_random_matrix(30, 12, density=0.2, seed=9)
        explicit = list(reversed(range(12)))
        explicit_path = str(tmp_path / "a.pes")
        hub_path = str(tmp_path / "b.pes")
        persist(matrix, explicit_path, explicit_order=explicit)
        persist(matrix, hub_path)
        # Both decode to the same relation regardless of object order.
        assert load_index(explicit_path).materialize() == matrix
        assert load_index(hub_path).materialize() == matrix
        # And the explicit order genuinely reached the encoder.
        with open(explicit_path, "rb") as f1, open(hub_path, "rb") as f2:
            assert f1.read() != f2.read()

    def test_persist_returns_file_size(self, tmp_path, paper_matrix):
        path = str(tmp_path / "size.pes")
        size = persist(paper_matrix, path, explicit_order=[0, 1, 2, 3, 4])
        assert size == os.path.getsize(path)
