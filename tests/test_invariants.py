"""Property tests for the paper's two structural theorems.

* **Theorem 1** — ξ-reachability in the Pestrie reproduces the source
  points-to matrix exactly: ``pointed_by`` over the trie equals the
  matrix's column, for every object, under every object-order heuristic.
* **Theorem 2** — any two generated rectangles either nest or are
  disjoint.  Operatively: over the unpruned candidate set every pair is
  disjoint-or-enclosing, and with pruning on, every discarded candidate
  is fully enclosed by a rectangle that was stored — so dropping it loses
  no alias pair.

Both are exercised across all ``ORDER_CHOICES`` because the theorems must
hold for *any* construction order, not just the hub default.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_matrix, matrices
from repro.core import ORDER_CHOICES
from repro.core.pipeline import build_labeled_pestrie
from repro.core.reachability import verify_theorem_1
from repro.core.rectangles import generate_rectangles
from repro.core.segment_tree import Rect


def _encloses(outer: Rect, inner: Rect) -> bool:
    return (outer.x1 <= inner.x1 and inner.x2 <= outer.x2
            and outer.y1 <= inner.y1 and inner.y2 <= outer.y2)


def _disjoint(a: Rect, b: Rect) -> bool:
    return a.x2 < b.x1 or b.x2 < a.x1 or a.y2 < b.y1 or b.y2 < a.y1


class TestTheorem1:
    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(ORDER_CHOICES))
    def test_xi_reachability_reproduces_matrix(self, matrix, order):
        pestrie = build_labeled_pestrie(matrix, order=order, seed=0)
        assert verify_theorem_1(pestrie, matrix)

    def test_across_random_seeds(self):
        """The random order must satisfy Theorem 1 for any permutation."""
        matrix = make_random_matrix(20, 8, density=0.25, seed=0)
        for seed in range(10):
            pestrie = build_labeled_pestrie(matrix, order="random", seed=seed)
            assert verify_theorem_1(pestrie, matrix)


class TestTheorem2:
    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(ORDER_CHOICES))
    def test_candidates_nest_or_are_disjoint(self, matrix, order):
        pestrie = build_labeled_pestrie(matrix, order=order, seed=1)
        candidates = [entry.rect for entry in generate_rectangles(pestrie, prune=False).rects]
        for i, a in enumerate(candidates):
            for b in candidates[i + 1:]:
                assert (_disjoint(a, b) or _encloses(a, b) or _encloses(b, a)), (
                    "rectangles %r and %r partially overlap" % (a.as_tuple(), b.as_tuple())
                )

    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(ORDER_CHOICES))
    def test_pruned_candidates_are_enclosed(self, matrix, order):
        """A corner hit implies full enclosure — pruning never loses a pair."""
        pestrie = build_labeled_pestrie(matrix, order=order, seed=2)
        result = generate_rectangles(pestrie, prune=True)
        stored = [entry.rect for entry in result.rects]
        for candidate in result.pruned:
            assert any(_encloses(rect, candidate) for rect in stored), (
                "pruned %r is not enclosed by any stored rectangle"
                % (candidate.as_tuple(),)
            )

    @settings(max_examples=40)
    @given(matrices(), st.sampled_from(ORDER_CHOICES))
    def test_pruning_is_lossless(self, matrix, order):
        """Pruned and unpruned sets cover exactly the same timestamp pairs."""
        pestrie = build_labeled_pestrie(matrix, order=order, seed=3)
        full = generate_rectangles(pestrie, prune=False)
        pruned = generate_rectangles(pestrie, prune=True)

        def covered_points(rects):
            points = set()
            for rect in rects:
                for x in range(rect.x1, rect.x2 + 1):
                    for y in range(rect.y1, rect.y2 + 1):
                        points.add((x, y))
            return points

        assert covered_points(r.rect for r in pruned.rects) == \
            covered_points(r.rect for r in full.rects)

    def test_case1_never_pruned(self):
        """Case-1 rectangles survive pruning (ListPointsTo completeness)."""
        matrix = make_random_matrix(16, 7, density=0.3, seed=4)
        for order in ORDER_CHOICES:
            pestrie = build_labeled_pestrie(matrix, order=order, seed=5)
            full = generate_rectangles(pestrie, prune=False)
            pruned = generate_rectangles(pestrie, prune=True)
            assert len(pruned.case1()) == len(full.case1())
