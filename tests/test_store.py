"""The unified storage layer: containers, lazy materialisation, lifetime.

Covers the ``repro.store`` contract across all three format versions:

* opening is cheap — header introspection parses no sections;
* lazily materialised answers are identical to the eager decode;
* closing a container invalidates outstanding lazy indexes *cleanly*:
  structures materialised before the close keep answering (they are plain
  Python lists), unmaterialised ones raise ``ContainerClosedError``, and a
  close while a caller still holds a zero-copy view fails with
  ``BufferError`` instead of leaving a dangling view over released memory.
"""

import pytest

from repro.core.decoder import CorruptFileError, decode_bytes
from repro.core.pipeline import encode, index_from_bytes, load_index
from repro.delta import DeltaLog, append_delta, load_overlay
from repro.serve import ShardedIndex
from repro.store import (
    SECTION_NAMES,
    Container,
    ContainerClosedError,
    MappedBlob,
    open_blob,
    open_container,
    open_index,
)

from conftest import make_random_matrix

VERSIONS = (1, 2, 3)
#: Container-level behaviour is uniform across every version, including the
#: flat PESTRIE4 layout; index-lifetime tests that rely on materialised
#: structures outliving the mapping stay on VERSIONS (the zero-copy flat
#: engine deliberately has nothing left after a close — see test_flat.py).
ALL_VERSIONS = (1, 2, 3, 4)


def _encode_for(matrix, version, order="hub"):
    return encode(matrix, order=order, compact=version == 2, version=version)


def _write(tmp_path, name, data):
    path = str(tmp_path / name)
    with open(path, "wb") as stream:
        stream.write(data)
    return path


@pytest.fixture
def matrix():
    return make_random_matrix(18, 7, 0.3, seed=99)


class TestContainerOpen:
    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_header_without_materialization(self, matrix, version):
        data = _encode_for(matrix, version)
        with Container.from_bytes(data) as container:
            assert container.version == version
            assert container.n_pointers == matrix.n_pointers
            assert container.n_objects == matrix.n_objects
            assert container.n_groups > 0
            assert len(container.shape_counts) == 8
            assert container.size == len(data)
            assert not container.has_tail
            # Opening parsed the skeleton only: no section materialised yet.
            assert container.sections_materialized == 0

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_payload_matches_eager_decode(self, matrix, version):
        data = _encode_for(matrix, version)
        eager = decode_bytes(data)
        with Container.from_bytes(data) as container:
            lazy = container.payload()
        assert lazy == eager
        # Every section was forced.
        assert len(SECTION_NAMES) == 10

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_mmap_open_matches_in_memory(self, matrix, version, tmp_path):
        data = _encode_for(matrix, version)
        path = _write(tmp_path, "image.pst", data)
        with open_container(path) as container:
            assert bytes(container.buffer) == data
            assert container.payload() == decode_bytes(data)

    def test_direct_construction_is_rejected(self):
        with pytest.raises(TypeError, match="Container.open"):
            Container()

    def test_rejects_empty_and_garbage(self, tmp_path):
        with pytest.raises(CorruptFileError):
            Container.from_bytes(b"")
        with pytest.raises(CorruptFileError):
            Container.from_bytes(b"NOTAPES!" + bytes(64))
        path = _write(tmp_path, "empty.pst", b"")
        with pytest.raises(CorruptFileError):
            Container.open(path)

    def test_no_tail_mode_rejects_delta_tail(self, matrix, tmp_path):
        path = _write(tmp_path, "tailed.pst", _encode_for(matrix, 3))
        log = DeltaLog()
        log.insert(0, 0)
        append_delta(path, log)
        with pytest.raises(CorruptFileError, match="DELTA"):
            Container.open(path, allow_tail=False)
        with pytest.raises(CorruptFileError, match="DELTA"):
            open_index(path)
        with open_container(path) as container:
            assert container.has_tail
            assert len(container.tail_records()) == 1


class TestLazySections:
    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_sections_materialize_on_demand(self, matrix, version):
        data = _encode_for(matrix, version)
        with Container.from_bytes(data) as container:
            container.timestamps()
            # Timestamps touch exactly the two timestamp sections (v2's
            # sequential boundary discovery cannot skip ahead, but sections
            # 0 and 1 come first on disk in every version).
            assert container.sections_materialized == 2
            container.rects()
            assert container.sections_materialized == 10

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_section_values_are_cached(self, matrix, version):
        data = _encode_for(matrix, version)
        with Container.from_bytes(data) as container:
            first = container.section_values(0)
            assert container.section_values(0) is first
            with pytest.raises(IndexError):
                container.section_values(10)

    def test_section_view_is_zero_copy_for_fixed_layouts(self, matrix):
        for version in (1, 3, 4):
            data = _encode_for(matrix, version)
            with Container.from_bytes(data) as container:
                view = container.section_view(0)
                assert len(view) == 4 * matrix.n_pointers
                view.release()

    def test_section_view_rejected_for_varint_layout(self, matrix):
        data = _encode_for(matrix, 2)
        with Container.from_bytes(data) as container:
            with pytest.raises(ValueError, match="PESTRIE2"):
                container.section_view(0)


class TestContainerLifetime:
    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_close_invalidates_unmaterialized_reads(self, matrix, version, tmp_path):
        path = _write(tmp_path, "image.pst", _encode_for(matrix, version))
        container = open_container(path)
        container.close()
        assert container.closed
        container.close()  # idempotent
        for access in (lambda: container.section_values(0),
                       container.timestamps, container.rects,
                       container.payload, container.tail_records,
                       lambda: container.buffer):
            with pytest.raises(ContainerClosedError):
                access()

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_close_refuses_while_view_is_exported(self, matrix, version, tmp_path):
        path = _write(tmp_path, "image.pst", _encode_for(matrix, version))
        container = open_container(path)
        view = container.buffer
        with pytest.raises(BufferError):
            container.close()
        # The refused close left the container fully usable.
        assert not container.closed
        assert container.section_values(0) == container.section_values(0)
        view.release()
        container.close()
        assert container.closed

    @pytest.mark.parametrize("version", VERSIONS)
    def test_lazy_index_materialized_before_close_keeps_answering(
            self, matrix, version, tmp_path):
        data = _encode_for(matrix, version)
        path = _write(tmp_path, "image.pst", data)
        eager = index_from_bytes(data)
        lazy = load_index(path, lazy=True)
        warm = [(p, q, lazy.is_alias(p, q))
                for p in range(matrix.n_pointers)
                for q in range(matrix.n_pointers)]
        assert lazy.materialize() == matrix
        lazy.close()
        # Everything needed was materialised before the close: the index
        # keeps answering, and the answers still match the eager build.
        for p, q, answer in warm:
            assert lazy.is_alias(p, q) == answer == eager.is_alias(p, q)
        assert lazy.materialize() == matrix

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_lazy_index_unmaterialized_after_close_fails_cleanly(
            self, matrix, version, tmp_path):
        path = _write(tmp_path, "image.pst", _encode_for(matrix, version))
        lazy = load_index(path, lazy=True)
        lazy.close()
        with pytest.raises(ContainerClosedError):
            lazy.is_alias(0, 1)

    def test_lazy_index_close_is_idempotent_and_eager_close_is_noop(self, matrix):
        data = _encode_for(matrix, 3)
        eager = index_from_bytes(data)
        eager.close()  # no container behind it — must be a clean no-op
        assert eager.materialize() == matrix
        lazy = index_from_bytes(data, lazy=True)
        lazy.close()
        lazy.close()


class TestLazyQueryParity:
    @pytest.mark.parametrize("version", ALL_VERSIONS)
    @pytest.mark.parametrize("mode", ("ptlist", "segment"))
    def test_all_queries_match_eager(self, matrix, version, mode, tmp_path):
        data = _encode_for(matrix, version)
        path = _write(tmp_path, "image.pst", data)
        eager = index_from_bytes(data, mode=mode)
        lazy = load_index(path, mode=mode, lazy=True)
        try:
            for p in range(matrix.n_pointers):
                assert lazy.list_points_to(p) == eager.list_points_to(p)
                assert lazy.list_aliases(p) == eager.list_aliases(p)
                for q in range(matrix.n_pointers):
                    assert lazy.is_alias(p, q) == eager.is_alias(p, q)
            for obj in range(matrix.n_objects):
                assert lazy.list_pointed_by(obj) == eager.list_pointed_by(obj)
        finally:
            lazy.close()

    def test_index_from_bytes_lazy(self, matrix):
        data = _encode_for(matrix, 3)
        lazy = index_from_bytes(data, lazy=True)
        assert lazy.materialize() == index_from_bytes(data).materialize()
        lazy.close()


class TestShardedLifetime:
    def _shard_paths(self, tmp_path, matrix):
        paths = []
        cut = matrix.n_pointers // 2
        for start, stop in ((0, cut), (cut, matrix.n_pointers)):
            sub = make_random_matrix(stop - start, matrix.n_objects, 0.0, seed=0)
            for p in range(start, stop):
                for obj in matrix.rows[p]:
                    sub.add(p - start, obj)
            paths.append(_write(tmp_path, "shard-%d.pst" % start,
                                encode(sub, version=3)))
        return paths

    def test_lazy_shards_match_eager(self, matrix, tmp_path):
        paths = self._shard_paths(tmp_path, matrix)
        eager = ShardedIndex.from_files(paths)
        lazy = ShardedIndex.from_files(paths, lazy=True)
        try:
            for p in range(matrix.n_pointers):
                for q in range(matrix.n_pointers):
                    assert lazy.is_alias(p, q) == eager.is_alias(p, q)
        finally:
            lazy.close()

    def test_close_invalidates_unqueried_shards(self, matrix, tmp_path):
        paths = self._shard_paths(tmp_path, matrix)
        sharded = ShardedIndex.from_files(paths, lazy=True)
        sharded.close()
        with pytest.raises(ContainerClosedError):
            sharded.is_alias(0, 1)
        sharded.close()  # idempotent

    def test_close_on_eager_shards_is_noop(self, matrix, tmp_path):
        paths = self._shard_paths(tmp_path, matrix)
        sharded = ShardedIndex.from_files(paths)
        sharded.close()
        assert isinstance(sharded.is_alias(0, 1), bool)


class TestLazyOverlayLifetime:
    def test_lazy_overlay_matches_eager_and_closes(self, matrix, tmp_path):
        path = _write(tmp_path, "tailed.pst", encode(matrix, version=3))
        log = DeltaLog()
        log.insert(0, matrix.n_objects - 1)
        log.delete(1, 0)
        append_delta(path, log)
        eager = load_overlay(path)
        lazy = load_overlay(path, lazy=True)
        assert lazy.materialize() == eager.materialize()
        lazy.close()
        eager.close()  # eager overlay has no live mapping — clean no-op
        assert eager.materialize() == eager.materialize()


class TestMappedBlob:
    def test_round_trip_and_lifetime(self, tmp_path):
        payload = bytes(range(256)) * 3
        path = _write(tmp_path, "blob.bin", payload)
        blob = open_blob(path)
        view = blob.buffer
        assert bytes(view) == payload
        with pytest.raises(BufferError):
            blob.close()
        view.release()
        blob.close()
        blob.close()  # idempotent
        with pytest.raises(ContainerClosedError):
            blob.buffer

    def test_empty_blob(self, tmp_path):
        path = _write(tmp_path, "empty.bin", b"")
        with MappedBlob(path) as blob:
            assert bytes(blob.buffer) == b""
            assert blob.size == 0


class TestFlatIndexLifetime:
    """Satellite of the daemon work: close() racing live memoryview casts.

    A ``BufferError`` from the container (someone still holds an exported
    view) must not leave the pair half-closed: queries fail cleanly, the
    container stays fully intact, and a retried ``close()`` succeeds once
    the last view is released.
    """

    def _flat_index(self, tmp_path):
        from repro.core.flat import FlatIndex, index_for_container

        matrix = make_random_matrix(20, 8, density=0.25, seed=13)
        path = _write(tmp_path, "flat.pes", encode(matrix, version=4))
        container = open_container(path, allow_tail=False)
        index = index_for_container(container)
        if not isinstance(index, FlatIndex):  # pragma: no cover - big-endian
            pytest.skip("host does not take the zero-copy path")
        return matrix, container, index

    def test_close_with_exported_view_is_retryable(self, tmp_path):
        matrix, container, index = self._flat_index(tmp_path)
        assert index.is_alias(0, 1) == matrix.is_alias(0, 1)  # materialise casts
        held = container.buffer
        with pytest.raises(BufferError):
            index.close()
        # The index is closed for queries from here on...
        with pytest.raises(ContainerClosedError):
            index.is_alias(0, 1)
        with pytest.raises(ContainerClosedError):
            index.list_points_to(0)
        # ...but the container is NOT half-closed: still open, still readable.
        assert not container.closed
        assert bytes(held[:8])  # the held view still reads mapped bytes
        with pytest.raises(BufferError):
            index.close()  # retry before release still refuses, cleanly
        held.release()
        index.close()  # now the unmap goes through
        assert container.closed
        index.close()  # idempotent after success

    def test_clean_close_releases_own_casts(self, tmp_path):
        matrix, container, index = self._flat_index(tmp_path)
        for p in range(20):
            assert sorted(index.list_points_to(p)) == matrix.list_points_to(p)
        index.close()  # no foreign views: our casts must not block the unmap
        assert container.closed
        with pytest.raises(ContainerClosedError):
            index.list_aliases(0)
