"""Sparse bitmap: unit tests plus a property check against ``set[int]``."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.bitmap import BITS_PER_BLOCK, SparseBitmap

ELEMENTS = st.sets(st.integers(min_value=0, max_value=5 * BITS_PER_BLOCK), max_size=60)


class TestPointOperations:
    def test_empty(self):
        bitmap = SparseBitmap()
        assert len(bitmap) == 0
        assert not bitmap
        assert 0 not in bitmap
        assert list(bitmap) == []

    def test_add_and_contains(self):
        bitmap = SparseBitmap()
        bitmap.add(5)
        assert 5 in bitmap
        assert 4 not in bitmap
        assert len(bitmap) == 1

    def test_add_is_idempotent(self):
        bitmap = SparseBitmap()
        bitmap.add(7)
        bitmap.add(7)
        assert len(bitmap) == 1

    def test_add_across_blocks(self):
        bitmap = SparseBitmap([0, BITS_PER_BLOCK, 3 * BITS_PER_BLOCK + 1])
        assert list(bitmap) == [0, BITS_PER_BLOCK, 3 * BITS_PER_BLOCK + 1]
        assert bitmap.block_count() == 3

    def test_add_descending_order(self):
        bitmap = SparseBitmap()
        for value in (1000, 500, 250, 10, 0):
            bitmap.add(value)
        assert list(bitmap) == [0, 10, 250, 500, 1000]

    def test_negative_rejected(self):
        bitmap = SparseBitmap()
        with pytest.raises(ValueError):
            bitmap.add(-1)

    def test_negative_contains_false(self):
        assert -3 not in SparseBitmap([1])

    def test_discard(self):
        bitmap = SparseBitmap([3, 4])
        bitmap.discard(3)
        assert list(bitmap) == [4]
        bitmap.discard(3)  # absent: no-op
        assert list(bitmap) == [4]

    def test_discard_frees_empty_block(self):
        bitmap = SparseBitmap([1])
        bitmap.discard(1)
        assert bitmap.block_count() == 0
        assert not bitmap

    def test_discard_negative_is_noop(self):
        bitmap = SparseBitmap([1])
        bitmap.discard(-5)
        assert list(bitmap) == [1]

    def test_cursor_sequential_probes(self):
        bitmap = SparseBitmap(range(0, 2000, 7))
        # Ascending probe sequence exercises the cursor fast path.
        for value in range(0, 2000):
            assert (value in bitmap) == (value % 7 == 0)

    def test_iteration_sorted(self):
        values = [900, 3, 77, 450, 129]
        assert list(SparseBitmap(values)) == sorted(values)


class TestSetOperations:
    def test_union_update_reports_change(self):
        a = SparseBitmap([1, 2])
        b = SparseBitmap([2, 3])
        assert a.union_update(b) is True
        assert list(a) == [1, 2, 3]
        assert a.union_update(b) is False

    def test_union_with_empty(self):
        a = SparseBitmap([1])
        assert a.union_update(SparseBitmap()) is False
        empty = SparseBitmap()
        assert empty.union_update(a) is True
        assert list(empty) == [1]

    def test_intersection_update(self):
        a = SparseBitmap([1, 2, 300])
        b = SparseBitmap([2, 300, 400])
        assert a.intersection_update(b) is True
        assert list(a) == [2, 300]

    def test_intersection_disjoint_blocks(self):
        a = SparseBitmap([0])
        b = SparseBitmap([BITS_PER_BLOCK * 2])
        a.intersection_update(b)
        assert not a
        assert a.block_count() == 0

    def test_difference_update(self):
        a = SparseBitmap([1, 2, 3])
        b = SparseBitmap([2])
        assert a.difference_update(b) is True
        assert list(a) == [1, 3]

    def test_operators_do_not_mutate(self):
        a = SparseBitmap([1, 2])
        b = SparseBitmap([2, 3])
        assert list(a | b) == [1, 2, 3]
        assert list(a & b) == [2]
        assert list(a - b) == [1]
        assert list(a) == [1, 2]
        assert list(b) == [2, 3]

    def test_intersects(self):
        assert SparseBitmap([1, 5]).intersects(SparseBitmap([5]))
        assert not SparseBitmap([1]).intersects(SparseBitmap([2]))
        assert not SparseBitmap().intersects(SparseBitmap([2]))

    def test_intersects_same_block_different_bits(self):
        assert not SparseBitmap([0]).intersects(SparseBitmap([1]))

    def test_issubset(self):
        assert SparseBitmap([1]).issubset(SparseBitmap([1, 2]))
        assert SparseBitmap().issubset(SparseBitmap())
        assert not SparseBitmap([3]).issubset(SparseBitmap([1, 2]))

    def test_equality_and_hash(self):
        a = SparseBitmap([1, 200])
        b = SparseBitmap([200, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != SparseBitmap([1])

    def test_copy_is_independent(self):
        a = SparseBitmap([1])
        b = a.copy()
        b.add(2)
        assert list(a) == [1]
        assert list(b) == [1, 2]


class TestSerialisation:
    def test_block_pairs_round_trip(self):
        original = SparseBitmap([0, 5, BITS_PER_BLOCK + 1, 9 * BITS_PER_BLOCK])
        rebuilt = SparseBitmap.from_block_pairs(original.to_block_pairs())
        assert rebuilt == original

    def test_from_block_pairs_rejects_disorder(self):
        with pytest.raises(ValueError):
            SparseBitmap.from_block_pairs([(3, 1), (1, 1)])

    def test_from_block_pairs_skips_zero_payload(self):
        bitmap = SparseBitmap.from_block_pairs([(0, 0), (2, 0b10)])
        assert list(bitmap) == [2 * BITS_PER_BLOCK + 1]

    def test_repr_small_and_large(self):
        assert "1" in repr(SparseBitmap([1]))
        big = SparseBitmap(range(20))
        assert "elements" in repr(big)


class TestAgainstPythonSet:
    """The bitmap must behave exactly like set[int]."""

    @settings(max_examples=150)
    @given(ELEMENTS, ELEMENTS)
    def test_union(self, a, b):
        bitmap = SparseBitmap(a)
        bitmap.union_update(SparseBitmap(b))
        assert set(bitmap) == a | b

    @settings(max_examples=150)
    @given(ELEMENTS, ELEMENTS)
    def test_intersection(self, a, b):
        bitmap = SparseBitmap(a)
        bitmap.intersection_update(SparseBitmap(b))
        assert set(bitmap) == a & b

    @settings(max_examples=150)
    @given(ELEMENTS, ELEMENTS)
    def test_difference(self, a, b):
        bitmap = SparseBitmap(a)
        bitmap.difference_update(SparseBitmap(b))
        assert set(bitmap) == a - b

    @settings(max_examples=150)
    @given(ELEMENTS, ELEMENTS)
    def test_intersects_matches_disjointness(self, a, b):
        assert SparseBitmap(a).intersects(SparseBitmap(b)) == bool(a & b)

    @settings(max_examples=150)
    @given(ELEMENTS, ELEMENTS)
    def test_issubset(self, a, b):
        assert SparseBitmap(a).issubset(SparseBitmap(b)) == (a <= b)

    @settings(max_examples=100)
    @given(ELEMENTS)
    def test_membership_and_length(self, a):
        bitmap = SparseBitmap(a)
        assert len(bitmap) == len(a)
        for value in a:
            assert value in bitmap
        assert set(bitmap) == a

    @settings(max_examples=100)
    @given(ELEMENTS, ELEMENTS)
    def test_change_flags_match_set_semantics(self, a, b):
        bitmap = SparseBitmap(a)
        assert bitmap.union_update(SparseBitmap(b)) == bool(b - a)
        bitmap = SparseBitmap(a)
        assert bitmap.intersection_update(SparseBitmap(b)) == bool(a - b)
        bitmap = SparseBitmap(a)
        assert bitmap.difference_update(SparseBitmap(b)) == bool(a & b)
