"""ξ-reachability and Theorem 1 (Section 3.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_pestrie
from repro.core.reachability import (
    pointed_by,
    points_to,
    verify_theorem_1,
    xi_reachable_groups,
    xi_subtree,
)

from conftest import matrices


class TestPaperExample:
    def test_example_2_p4_does_not_point_to_o5(self, paper_matrix):
        """The ξ-condition must reject the path o5 --1--> p3 --0--> p4."""
        pestrie = build_pestrie(paper_matrix, order="identity")
        assert 3 not in pointed_by(pestrie, 4)  # p4 must not point to o5
        assert 2 in pointed_by(pestrie, 4)  # but p3 does
        assert pointed_by(pestrie, 4) == [0, 2, 6]  # p1, p3, p7

    def test_xi_subtree_respects_labels(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        o5_origin = pestrie.group_of_object[4]
        p3_group = pestrie.group_of_pointer[2]
        (edge,) = [
            e for e in pestrie.cross_edges
            if e.source == o5_origin and e.target == p3_group
        ]
        # ξ = 1 excludes the label-0 child holding p4.
        assert list(xi_subtree(pestrie, edge)) == [p3_group]

    def test_points_to_oracle(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        for pointer in range(7):
            assert points_to(pestrie, pointer) == paper_matrix.list_points_to(pointer)

    def test_own_pes_reachable_without_cross_edges(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        groups = xi_reachable_groups(pestrie, 0)
        # All four PES-o1 groups are reachable from the o1 origin.
        pes_members = {g.id for g in pestrie.groups if g.pes == 0}
        assert pes_members <= groups


class TestTheorem1:
    """p points to o  ⟺  p is ξ-reachable from o, for any object order."""

    @settings(max_examples=80, deadline=None)
    @given(matrices(), st.sampled_from(["hub", "identity", "simple", "random"]))
    def test_theorem_1(self, matrix, order):
        pestrie = build_pestrie(matrix, order=order, seed=13)
        assert verify_theorem_1(pestrie, matrix)

    @settings(max_examples=30, deadline=None)
    @given(matrices(max_pointers=10, max_objects=6), st.integers(0, 999))
    def test_theorem_1_random_orders(self, matrix, seed):
        pestrie = build_pestrie(matrix, order="random", seed=seed)
        assert verify_theorem_1(pestrie, matrix)

    def test_dense_matrix(self):
        from repro.matrix.points_to import PointsToMatrix

        matrix = PointsToMatrix.from_pairs(
            4, 3, [(p, o) for p in range(4) for o in range(3)]
        )
        pestrie = build_pestrie(matrix)
        assert verify_theorem_1(pestrie, matrix)

    def test_diagonal_matrix(self):
        from repro.matrix.points_to import PointsToMatrix

        matrix = PointsToMatrix.from_pairs(5, 5, [(i, i) for i in range(5)])
        pestrie = build_pestrie(matrix)
        assert verify_theorem_1(pestrie, matrix)
        assert len(pestrie.cross_edges) == 0  # no sharing at all
