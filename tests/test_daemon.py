"""The daemon tier: wire protocol, asyncio server, client, worker mode.

Correctness here means three things at once: every answer that crosses
the socket matches the in-process oracle, hostile or half-dead peers
never take the daemon (or other clients) down, and a hot ``apply_delta``
under concurrent load produces zero wrong answers.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.clients import DaemonClient, DaemonError
from repro.core.pipeline import encode, index_from_bytes, persist
from repro.daemon import AliasDaemon, ThreadedDaemon, protocol
from repro.daemon.protocol import (
    MAX_FRAME_BYTES,
    OP_IS_ALIAS,
    OP_LIST_ALIASES,
    OP_LIST_POINTS_TO,
    ST_BAD_REQUEST,
    ST_OK,
    ProtocolError,
)
from repro.delta import DeltaLog
from repro.obs import get_registry
from repro.serve import AliasService

from conftest import make_random_matrix
from test_serve import _apply_script

import random


# ----------------------------------------------------------------------
# Protocol unit tests (no sockets involved)
# ----------------------------------------------------------------------


class TestProtocol:
    def test_query_round_trips(self):
        pairs = [(0, 1), (7, 7), (2 ** 31, 5)]
        body = protocol.encode_is_alias(pairs)
        assert protocol.request_op(body) == OP_IS_ALIAS
        assert protocol.decode_is_alias(body) == pairs

        operands = [3, 1, 4, 1, 5]
        body = protocol.encode_list(OP_LIST_POINTS_TO, operands)
        assert protocol.decode_list(body) == operands

        ops = [("+", 1, 2), ("-", 3, 4)]
        body = protocol.encode_apply_delta(ops)
        assert protocol.decode_apply_delta(body) == ops

    def test_response_round_trips(self):
        body = protocol.encode_bools([True, False, True])
        status, payload = protocol.split_response(body)
        assert status == ST_OK
        assert protocol.decode_bools(payload, 3) == [True, False, True]

        rows = [[1, 2, 3], [], [9]]
        status, payload = protocol.split_response(protocol.encode_id_lists(rows))
        assert protocol.decode_id_lists(payload, 3) == rows

    def test_framing_rejects_bad_lengths(self):
        with pytest.raises(ProtocolError):
            protocol.frame(b"")
        with pytest.raises(ProtocolError):
            protocol.body_length(b"\x00\x00")  # truncated prefix
        with pytest.raises(ProtocolError):
            protocol.body_length(struct.pack("<I", 0))
        with pytest.raises(ProtocolError):
            protocol.body_length(struct.pack("<I", MAX_FRAME_BYTES + 1))
        assert protocol.body_length(struct.pack("<I", 8)) == 8

    def test_request_decoders_bounds_check(self):
        with pytest.raises(ProtocolError):
            protocol.request_op(b"")
        with pytest.raises(ProtocolError):
            protocol.request_op(b"\xff")
        # Declared count disagrees with the byte length.
        lying = bytes((OP_IS_ALIAS,)) + struct.pack("<I", 10) + b"\x00" * 8
        with pytest.raises(ProtocolError):
            protocol.decode_is_alias(lying)
        truncated = bytes((OP_LIST_ALIASES,)) + b"\x01"
        with pytest.raises(ProtocolError):
            protocol.decode_list(truncated)
        bad_kind = (bytes((protocol.OP_APPLY_DELTA,)) + struct.pack("<I", 1)
                    + struct.pack("<BII", 9, 0, 0))
        with pytest.raises(ProtocolError):
            protocol.decode_apply_delta(bad_kind)

    def test_response_decoders_bounds_check(self):
        with pytest.raises(ProtocolError):
            protocol.split_response(b"")
        with pytest.raises(ProtocolError):
            protocol.decode_bools(b"\x01", expected=2)
        # A row declaring ids past the payload end.
        payload = struct.pack("<I", 5) + struct.pack("<I", 0)
        with pytest.raises(ProtocolError):
            protocol.decode_id_lists(payload, 1)
        # Trailing bytes after the last row.
        payload = struct.pack("<I", 0) + b"\x00"
        with pytest.raises(ProtocolError):
            protocol.decode_id_lists(payload, 1)


# ----------------------------------------------------------------------
# Server fixtures
# ----------------------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    """A daemon over a persisted v4 matrix: ``(matrix, socket_path, daemon)``."""
    matrix = make_random_matrix(40, 12, density=0.18, seed=7)
    path = str(tmp_path / "m.pes")
    persist(matrix, path, version=4)
    service = AliasService.from_files([path], lazy=True)
    sock = str(tmp_path / "d.sock")
    daemon = AliasDaemon(service, socket_path=sock, http_port=0,
                         close_service=True)
    runner = ThreadedDaemon(daemon).start()
    try:
        yield matrix, sock, daemon
    finally:
        runner.stop()


def _raw_connection(sock_path):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(5)
    sock.connect(sock_path)
    return sock


def _read_frame(sock):
    prefix = b""
    while len(prefix) < 4:
        chunk = sock.recv(4 - len(prefix))
        if not chunk:
            return None
        prefix += chunk
    length = protocol.body_length(prefix)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            raise ConnectionError("truncated frame")
        body += chunk
    return body


class TestDaemonQueries:
    def test_all_four_queries_match_oracle(self, served):
        matrix, sock, _daemon = served
        with DaemonClient(sock) as client:
            assert client.ping()
            pairs = [(p, q) for p in range(0, 40, 3) for q in range(0, 40, 5)]
            assert client.is_alias_batch(pairs) == [
                matrix.is_alias(p, q) for p, q in pairs
            ]
            rows = client.points_to_batch(list(range(40)))
            assert [sorted(row) for row in rows] == [
                matrix.list_points_to(p) for p in range(40)
            ]
            rows = client.list_aliases_many(list(range(0, 40, 7)))
            assert [sorted(row) for row in rows] == [
                matrix.list_aliases(p) for p in range(0, 40, 7)
            ]
            rows = client.pointed_by_batch(list(range(12)))
            assert [sorted(row) for row in rows] == [
                matrix.list_pointed_by(obj) for obj in range(12)
            ]
            assert client.is_alias(1, 2) == matrix.is_alias(1, 2)
            assert sorted(client.list_aliases(3)) == matrix.list_aliases(3)
            assert sorted(client.list_pointed_by(0)) == matrix.list_pointed_by(0)

    def test_empty_batches_short_circuit_client_side(self, served):
        _matrix, sock, _daemon = served
        with DaemonClient(sock) as client:
            assert client.is_alias_batch([]) == []
            assert client.points_to_batch([]) == []

    def test_stats_round_trip(self, served):
        matrix, sock, _daemon = served
        with DaemonClient(sock) as client:
            client.is_alias_batch([(0, 1), (2, 3)])
            stats = client.stats()
        assert stats["n_pointers"] == matrix.n_pointers
        assert stats["n_objects"] == matrix.n_objects
        assert stats["total_queries"] >= 2

    def test_out_of_range_operand_is_bad_request_and_survivable(self, served):
        matrix, sock, _daemon = served
        with DaemonClient(sock) as client:
            with pytest.raises(DaemonError) as info:
                client.is_alias_batch([(0, 10_000)])
            assert info.value.status == ST_BAD_REQUEST
            # The connection is still usable after a rejected request.
            assert client.is_alias(0, 1) == matrix.is_alias(0, 1)

    def test_apply_delta_round_trip(self, served):
        matrix, sock, _daemon = served
        log = DeltaLog()
        log.insert(1, 2)
        log.delete(0, 0)
        with DaemonClient(sock) as client:
            before = client.points_to_batch([1])[0]
            client.apply_delta(log)
            oracle = _apply_script(matrix, log)
            assert sorted(client.list_points_to(1)) == oracle.list_points_to(1)
            assert sorted(client.list_points_to(0)) == oracle.list_points_to(0)
            assert 2 in client.list_points_to(1)
        assert before == sorted(before)  # sanity: rows arrive sorted from v4


class TestProtocolRobustness:
    """Hostile peers: the daemon survives, other clients never notice."""

    def test_unknown_opcode_gets_error_frame_connection_survives(self, served):
        _matrix, sock, _daemon = served
        raw = _raw_connection(sock)
        try:
            raw.sendall(protocol.frame(b"\xfe\x01\x02"))
            status, payload = protocol.split_response(_read_frame(raw))
            assert status == ST_BAD_REQUEST
            assert b"opcode" in payload
            # Framing was intact, so the same connection keeps working.
            raw.sendall(protocol.frame(protocol.encode_ping()))
            status, _ = protocol.split_response(_read_frame(raw))
            assert status == ST_OK
        finally:
            raw.close()

    def test_oversized_length_prefix_errors_then_closes(self, served):
        _matrix, sock, _daemon = served
        raw = _raw_connection(sock)
        try:
            raw.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
            status, payload = protocol.split_response(_read_frame(raw))
            assert status == ST_BAD_REQUEST
            assert b"limit" in payload
            # The stream cannot be resynchronised: the daemon hangs up.
            assert _read_frame(raw) is None
        finally:
            raw.close()

    def test_zero_length_prefix_errors_then_closes(self, served):
        _matrix, sock, _daemon = served
        raw = _raw_connection(sock)
        try:
            raw.sendall(struct.pack("<I", 0))
            status, _ = protocol.split_response(_read_frame(raw))
            assert status == ST_BAD_REQUEST
            assert _read_frame(raw) is None
        finally:
            raw.close()

    def test_lying_item_count_is_bad_request_not_crash(self, served):
        matrix, sock, _daemon = served
        raw = _raw_connection(sock)
        try:
            lying = bytes((OP_IS_ALIAS,)) + struct.pack("<I", 100) + b"\x00" * 16
            raw.sendall(protocol.frame(lying))
            status, _ = protocol.split_response(_read_frame(raw))
            assert status == ST_BAD_REQUEST
            raw.sendall(protocol.frame(protocol.encode_is_alias([(0, 1)])))
            status, payload = protocol.split_response(_read_frame(raw))
            assert status == ST_OK
            assert protocol.decode_bools(payload, 1) == [matrix.is_alias(0, 1)]
        finally:
            raw.close()

    def test_truncated_frame_then_disconnect_leaves_daemon_alive(self, served):
        matrix, sock, _daemon = served
        raw = _raw_connection(sock)
        raw.sendall(struct.pack("<I", 100) + b"partial")
        raw.close()  # mid-frame hangup
        with DaemonClient(sock) as client:
            assert client.is_alias(0, 1) == matrix.is_alias(0, 1)

    def test_disconnect_midresponse_does_not_poison_others(self, served):
        matrix, sock, _daemon = served
        pairs = [(p, q) for p in range(40) for q in range(40)]
        request = protocol.frame(protocol.encode_is_alias(pairs))
        for _ in range(5):
            raw = _raw_connection(sock)
            raw.sendall(request)
            raw.close()  # gone before (or while) the response is written
        with DaemonClient(sock) as client:
            assert client.is_alias_batch(pairs[:50]) == [
                matrix.is_alias(p, q) for p, q in pairs[:50]
            ]

    def test_garbage_flood_is_survivable(self, served):
        matrix, sock, _daemon = served
        for payload in (b"\x00" * 64, os.urandom(64), b"GET / HTTP/1.1\r\n\r\n"):
            raw = _raw_connection(sock)
            raw.sendall(payload)
            raw.close()
        with DaemonClient(sock) as client:
            assert client.ping()
            assert client.is_alias(2, 3) == matrix.is_alias(2, 3)


class _GatedBackend:
    """A Table 1 backend whose batch entry points can be held at a gate.

    Lets tests park one request inside the executor deterministically
    (``entered`` fires, ``gate`` blocks) to observe coalescing and
    admission control from outside.
    """

    def __init__(self, inner):
        self._inner = inner
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.batch_calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def is_alias_batch(self, pairs):
        self.batch_calls += 1
        self.entered.set()
        assert self.gate.wait(10), "test gate never released"
        return self._inner.is_alias_batch(pairs)


@pytest.fixture
def gated(tmp_path):
    matrix = make_random_matrix(20, 8, density=0.25, seed=11)
    backend = _GatedBackend(index_from_bytes(encode(matrix)))
    service = AliasService(backend, cache_size=0)
    sock = str(tmp_path / "g.sock")
    daemon = AliasDaemon(service, socket_path=sock, max_pending=1)
    runner = ThreadedDaemon(daemon).start()
    try:
        yield matrix, backend, sock
    finally:
        backend.gate.set()
        runner.stop()


class TestCoalescingAndBackpressure:
    def test_identical_inflight_queries_coalesce(self, gated):
        matrix, backend, sock = gated
        pairs = [(0, 1), (2, 3), (4, 5)]
        expected = [matrix.is_alias(p, q) for p, q in pairs]
        coalesced = get_registry().counter("repro_daemon_coalesced_total")
        before = coalesced.value
        results = {}

        def query(slot):
            with DaemonClient(sock) as client:
                results[slot] = client.is_alias_batch(pairs)

        first = threading.Thread(target=query, args=(0,))
        first.start()
        assert backend.entered.wait(10)
        # The identical frame below must JOIN the parked computation — it
        # cannot run it (the gate is closed and max_pending=1 is taken).
        second = threading.Thread(target=query, args=(1,))
        second.start()
        deadline = time.time() + 10
        while coalesced.value == before and time.time() < deadline:
            time.sleep(0.01)
        assert coalesced.value == before + 1
        backend.gate.set()
        first.join(10)
        second.join(10)
        assert results == {0: expected, 1: expected}
        assert backend.batch_calls == 1

    def test_admission_control_rejects_distinct_queries_fast(self, gated):
        matrix, backend, sock = gated
        holder_result = []

        def holder():
            with DaemonClient(sock) as client:
                holder_result.append(client.is_alias_batch([(0, 1)]))

        thread = threading.Thread(target=holder)
        thread.start()
        assert backend.entered.wait(10)
        with DaemonClient(sock) as client:
            # A DIFFERENT query cannot join and cannot queue: rejected now,
            # not after the parked request finishes.
            start = time.perf_counter()
            with pytest.raises(DaemonError) as info:
                client.is_alias_batch([(2, 3)])
            assert info.value.overloaded
            assert time.perf_counter() - start < 5.0
            backend.gate.set()
            thread.join(10)
            assert holder_result == [[matrix.is_alias(0, 1)]]
            # Capacity freed: the same query now goes through.
            assert client.is_alias_batch([(2, 3)]) == [matrix.is_alias(2, 3)]


class TestHotReload:
    """apply_delta under concurrent load: zero dropped, zero wrong answers."""

    READERS = 3
    UPDATES = 8

    def test_deltas_under_concurrent_batch_readers(self, served):
        matrix, sock, _daemon = served
        touched = list(range(6))
        untouched = list(range(6, 40))
        rng = random.Random(23)
        logs, states = [], [matrix]
        for _ in range(self.UPDATES):
            log = DeltaLog()
            for _ in range(4):
                pointer, obj = rng.choice(touched), rng.randrange(12)
                if rng.random() < 0.5:
                    log.insert(pointer, obj)
                else:
                    log.delete(pointer, obj)
            logs.append(log)
            states.append(_apply_script(states[-1], log))

        base_points = {u: matrix.list_points_to(u) for u in untouched}
        ok_points = {t: {tuple(state.list_points_to(t)) for state in states}
                     for t in touched}
        ok_pairs = {(t, q): {state.is_alias(t, q) for state in states}
                    for t in touched for q in range(40)}

        failures = []
        stop = threading.Event()

        def reader(slot):
            reader_rng = random.Random(300 + slot)
            try:
                with DaemonClient(sock) as client:
                    while not stop.is_set():
                        sample_u = reader_rng.sample(untouched, 5)
                        for u, row in zip(sample_u,
                                          client.points_to_batch(sample_u)):
                            if sorted(row) != base_points[u]:
                                failures.append(("untouched points_to", u, row))
                        pairs = [(reader_rng.choice(touched),
                                  reader_rng.randrange(40)) for _ in range(6)]
                        for (t, q), answer in zip(
                                pairs, client.is_alias_batch(pairs)):
                            if answer not in ok_pairs[(t, q)]:
                                failures.append(("touched is_alias", t, q))
                        t = reader_rng.choice(touched)
                        row = client.points_to_batch([t])[0]
                        if tuple(sorted(row)) not in ok_points[t]:
                            failures.append(("touched points_to", t, row))
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("reader exception", slot, repr(error)))

        def updater():
            try:
                with DaemonClient(sock) as client:
                    for index, log in enumerate(logs):
                        time.sleep(0.02)
                        client.apply_delta(log)
                        # Read-your-writes through the daemon: after the
                        # ack, answers must reflect at least this delta
                        # (and, with no later ones yet, exactly it).
                        state = states[index + 1]
                        for t in touched:
                            row = client.points_to_batch([t])[0]
                            if sorted(row) != state.list_points_to(t):
                                failures.append(
                                    ("post-ack points_to", index, t, row))
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("updater exception", repr(error)))
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(self.READERS)]
        threads.append(threading.Thread(target=updater))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)

        assert not failures, failures[:10]
        final = states[-1]
        with DaemonClient(sock) as client:
            rows = client.points_to_batch(list(range(40)))
            assert [sorted(row) for row in rows] == [
                final.list_points_to(p) for p in range(40)
            ]
            pairs = [(p, q) for p in range(40) for q in range(0, 40, 3)]
            assert client.is_alias_batch(pairs) == [
                final.is_alias(p, q) for p, q in pairs
            ]


class TestHttpPlane:
    def test_metrics_healthz_stats_and_errors(self, served):
        _matrix, sock, daemon = served
        with DaemonClient(sock) as client:
            client.is_alias_batch([(0, 1)])
        host, port = daemon.http_address
        base = "http://%s:%d" % (host, port)

        with urllib.request.urlopen(base + "/metrics") as response:
            assert response.status == 200
            assert "version=0.0.4" in response.headers["Content-Type"]
            body = response.read()
        assert b"# TYPE repro_daemon_requests_total counter" in body
        assert b"repro_daemon_connections_total" in body
        assert b"# TYPE repro_daemon_request_seconds histogram" in body

        with urllib.request.urlopen(base + "/healthz") as response:
            assert response.read() == b"ok\n"

        with urllib.request.urlopen(base + "/stats") as response:
            stats = json.loads(response.read())
        assert stats["n_pointers"] == 40

        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(base + "/nope")
        assert info.value.code == 404

        request = urllib.request.Request(base + "/metrics", data=b"x")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 405


class TestLifecycle:
    def test_stop_closes_idle_connections_and_socket(self, tmp_path):
        matrix = make_random_matrix(10, 5, density=0.3, seed=2)
        service = AliasService.from_index(index_from_bytes(encode(matrix)))
        sock = str(tmp_path / "l.sock")
        runner = ThreadedDaemon(AliasDaemon(service, socket_path=sock)).start()
        client = DaemonClient(sock)
        assert client.ping()
        runner.stop()
        assert not os.path.exists(sock)
        with pytest.raises((ConnectionError, ProtocolError, OSError)):
            client.ping()
            client.ping()  # first call may only observe the FIN on read
        client.close()

    def test_double_start_is_rejected(self, tmp_path):
        matrix = make_random_matrix(6, 4, density=0.3, seed=4)
        service = AliasService.from_index(index_from_bytes(encode(matrix)))
        daemon = AliasDaemon(service, socket_path=str(tmp_path / "x.sock"))
        runner = ThreadedDaemon(daemon).start()
        try:
            with pytest.raises(RuntimeError):
                ThreadedDaemon(daemon).start()
        finally:
            runner.stop()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AliasDaemon(object())  # neither socket_path nor listen_socket
        with pytest.raises(ValueError):
            AliasDaemon(object(), socket_path="/tmp/x", listen_socket=object())
        with pytest.raises(ValueError):
            AliasDaemon(object(), socket_path="/tmp/x", max_pending=0)


class TestWorkerMode:
    """Pre-fork serving through the CLI, in a real subprocess."""

    def test_workers_share_socket_and_refuse_deltas(self, tmp_path):
        matrix = make_random_matrix(30, 10, density=0.2, seed=3)
        path = str(tmp_path / "m.pes")
        persist(matrix, path, version=4)
        sock = str(tmp_path / "w.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(os.path.dirname(__file__), "..", "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "daemon", path,
             "--socket", sock, "--workers", "2"],
            env=env, stderr=subprocess.PIPE, text=True)
        try:
            deadline = time.time() + 30
            while not os.path.exists(sock):
                assert proc.poll() is None, proc.stderr.read()
                assert time.time() < deadline, "socket never appeared"
                time.sleep(0.05)
            time.sleep(0.2)  # let both workers reach accept()
            pairs = [(p, q) for p in range(30) for q in range(0, 30, 3)]
            expected = [matrix.is_alias(p, q) for p, q in pairs]
            for _ in range(3):  # several connections spread across workers
                with DaemonClient(sock) as client:
                    assert client.is_alias_batch(pairs) == expected
            with DaemonClient(sock) as client:
                with pytest.raises(DaemonError) as info:
                    client.apply_delta([("+", 0, 1)])
                assert info.value.unsupported
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            assert not os.path.exists(sock)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


# ----------------------------------------------------------------------
# Versioned frames: VERSIONS and QUERY_AT over the wire
# ----------------------------------------------------------------------


class TestVersionedProtocol:
    def test_query_at_round_trips(self):
        inner = protocol.encode_is_alias([(1, 2), (3, 4)])
        body = protocol.encode_query_at(7, inner)
        assert protocol.request_op(body) == protocol.OP_QUERY_AT
        version, decoded = protocol.decode_query_at(body)
        assert version == 7
        assert decoded == inner

    def test_query_at_rejects_bad_shapes(self):
        inner = protocol.encode_list(OP_LIST_POINTS_TO, [1])
        with pytest.raises(ProtocolError):
            protocol.encode_query_at(-1, inner)
        with pytest.raises(ProtocolError):
            protocol.encode_query_at(2 ** 32, inner)
        with pytest.raises(ProtocolError):  # only plain queries may nest
            protocol.encode_query_at(1, protocol.encode_ping())
        nested = protocol.encode_query_at(1, inner)
        with pytest.raises(ProtocolError):  # no QUERY_AT inside QUERY_AT
            protocol.encode_query_at(2, nested)
        with pytest.raises(ProtocolError):  # truncated: no inner body
            protocol.decode_query_at(bytes((protocol.OP_QUERY_AT,)) + b"\x00" * 4)
        bad = bytes((protocol.OP_QUERY_AT,)) + struct.pack("<I", 1) + \
            protocol.encode_ping()
        with pytest.raises(ProtocolError):
            protocol.decode_query_at(bad)

    def test_version_range_round_trips(self):
        payload = protocol.encode_version_range(2, 9)
        status, body = protocol.split_response(payload)
        assert status == ST_OK
        assert protocol.decode_version_range(body) == (2, 9)
        with pytest.raises(ProtocolError):
            protocol.decode_version_range(body + b"\x00")


@pytest.fixture
def versioned_served(tmp_path):
    """A daemon over a file with a 2-record stamped chain.

    Yields ``(states, socket_path, daemon)`` where ``states[k]`` is the
    ground-truth matrix at file epoch ``k``.
    """
    from repro.delta import append_delta

    matrix = make_random_matrix(30, 10, density=0.2, seed=13)
    path = str(tmp_path / "chain.pes")
    persist(matrix, path)
    rng = random.Random(13)
    states = [matrix]
    while len(states) < 3:
        log = DeltaLog()
        for _ in range(6):
            pointer, obj = rng.randrange(30), rng.randrange(10)
            if rng.random() < 0.5:
                log.insert(pointer, obj)
            else:
                log.delete(pointer, obj)
        inserts, deletes = log.net()
        if not inserts and not deletes:
            continue
        append_delta(path, log)
        states.append(_apply_script(states[-1], log))
    service = AliasService.from_files([path])
    sock = str(tmp_path / "v.sock")
    daemon = AliasDaemon(service, socket_path=sock, http_port=0,
                         close_service=True)
    runner = ThreadedDaemon(daemon).start()
    try:
        yield states, sock, daemon
    finally:
        runner.stop()


class TestVersionedFrames:
    def test_versions_and_as_of_match_every_epoch(self, versioned_served):
        states, sock, _daemon = versioned_served
        with DaemonClient(sock) as client:
            assert client.versions() == (0, 2)
            pairs = [(p, q) for p in range(0, 30, 4) for q in range(0, 30, 5)]
            pointers = list(range(30))
            for epoch, state in enumerate(states):
                assert client.is_alias_batch(pairs, as_of=epoch) == [
                    state.is_alias(p, q) for p, q in pairs
                ]
                rows = client.points_to_batch(pointers, as_of=epoch)
                assert [sorted(row) for row in rows] == [
                    state.list_points_to(p) for p in pointers
                ]
                rows = client.pointed_by_batch(list(range(10)), as_of=epoch)
                assert [sorted(row) for row in rows] == [
                    state.list_pointed_by(obj) for obj in range(10)
                ]
                assert sorted(client.list_aliases(3, as_of=epoch)) == \
                    state.list_aliases(3)

    def test_out_of_range_version_is_bad_request_and_survivable(
            self, versioned_served):
        states, sock, _daemon = versioned_served
        with DaemonClient(sock) as client:
            with pytest.raises(DaemonError) as info:
                client.is_alias(0, 1, as_of=99)
            assert info.value.status == ST_BAD_REQUEST
            # The connection keeps serving after the rejected version.
            assert client.is_alias(0, 1) == states[-1].is_alias(0, 1)

    def test_apply_delta_extends_the_version_range(self, versioned_served):
        states, sock, _daemon = versioned_served
        log = DeltaLog().insert(2, 3).delete(0, 1)
        edited = _apply_script(states[-1], log)
        with DaemonClient(sock) as client:
            client.apply_delta(log)
            assert client.versions() == (0, 3)
            assert sorted(client.list_points_to(2, as_of=3)) == \
                edited.list_points_to(2)
            # The pre-delta epoch still answers the pre-delta state.
            assert sorted(client.list_points_to(2, as_of=2)) == \
                states[-1].list_points_to(2)
            stats = client.stats()
            assert stats["version"] == 3
            assert stats["version_floor"] == 0

    def test_pinned_epoch_readers_vs_delta_stream(self, versioned_served):
        """QUERY_AT readers pinned at old epochs stay exact during deltas."""
        states, sock, _daemon = versioned_served
        rng = random.Random(99)
        logs, live = [], states[-1]
        for _ in range(3):
            log = DeltaLog()
            for _ in range(4):
                pointer, obj = rng.randrange(30), rng.randrange(10)
                if rng.random() < 0.5:
                    log.insert(pointer, obj)
                else:
                    log.delete(pointer, obj)
            logs.append(log)
            live = _apply_script(live, log)

        failures = []
        stop = threading.Event()

        def reader(slot):
            reader_rng = random.Random(400 + slot)
            try:
                with DaemonClient(sock) as client:
                    while not stop.is_set():
                        epoch = reader_rng.randrange(len(states))
                        state = states[epoch]
                        pairs = [(reader_rng.randrange(30),
                                  reader_rng.randrange(30)) for _ in range(4)]
                        answers = client.is_alias_batch(pairs, as_of=epoch)
                        if answers != [state.is_alias(p, q) for p, q in pairs]:
                            failures.append(("is_alias_batch", epoch, pairs))
                        p = reader_rng.randrange(30)
                        if sorted(client.list_points_to(p, as_of=epoch)) != \
                                state.list_points_to(p):
                            failures.append(("points_to", epoch, p))
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("reader exception", slot, repr(error)))

        def updater():
            try:
                with DaemonClient(sock) as client:
                    for log in logs:
                        time.sleep(0.02)
                        client.apply_delta(log)
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("updater exception", repr(error)))
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(3)]
        threads.append(threading.Thread(target=updater))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures, failures[:10]
        with DaemonClient(sock) as client:
            floor, head = client.versions()
            assert (floor, head) == (0, 2 + len(logs))
            rows = client.points_to_batch(list(range(30)), as_of=head)
            assert [sorted(row) for row in rows] == [
                live.list_points_to(p) for p in range(30)
            ]


# ----------------------------------------------------------------------
# PR 9: TRACED/METRICS frames, request tracing, cost, introspection
# ----------------------------------------------------------------------


class TestTracedProtocol:
    def test_traced_round_trips(self):
        inner = protocol.encode_is_alias([(1, 2)])
        body = protocol.encode_traced("abc123", inner, want_cost=True)
        assert protocol.request_op(body) == protocol.OP_TRACED
        request_id, want_cost, decoded = protocol.decode_traced(body)
        assert (request_id, want_cost, decoded) == ("abc123", True, inner)
        body = protocol.encode_traced("x", inner)
        assert protocol.decode_traced(body)[1] is False

    def test_traced_rejects_bad_shapes(self):
        inner = protocol.encode_ping()
        with pytest.raises(ProtocolError):  # empty id
            protocol.encode_traced("", inner)
        with pytest.raises(ProtocolError):  # oversized id
            protocol.encode_traced("x" * 65, inner)
        with pytest.raises(ProtocolError):  # non-ascii id
            protocol.encode_traced("é", inner)
        with pytest.raises(ProtocolError):  # empty inner
            protocol.encode_traced("rid", b"")
        nested = protocol.encode_traced("rid", inner)
        with pytest.raises(ProtocolError):  # no TRACED inside TRACED
            protocol.encode_traced("rid2", nested)
        with pytest.raises(ProtocolError):  # truncated
            protocol.decode_traced(bytes((protocol.OP_TRACED,)) + b"\x00")
        # Unknown flag bits are a loud error, not silently ignored: they
        # are the extension point for future frame semantics.
        mutated = bytearray(nested)
        mutated[1] |= 0x80
        with pytest.raises(ProtocolError):
            protocol.decode_traced(bytes(mutated))

    def test_attach_and_split_cost(self):
        ok = protocol.encode_response(ST_OK, b"payload")
        cost = b'{"queries": 1}'
        extended = protocol.attach_cost(ok, cost)
        status, cost_json, payload = protocol.split_cost_response(extended)
        assert (status, cost_json, payload) == (ST_OK, cost, b"payload")
        # Non-OK responses pass through untouched (PR 7 compatibility:
        # old clients decode errors without knowing about costs).
        error = protocol.encode_response(ST_BAD_REQUEST, b"nope")
        assert protocol.attach_cost(error, cost) == error
        status, cost_json, payload = protocol.split_cost_response(error)
        assert (status, cost_json, payload) == (ST_BAD_REQUEST, b"", b"nope")

    def test_split_cost_response_bounds_check(self):
        with pytest.raises(ProtocolError):
            protocol.split_cost_response(b"")
        lying = bytes((ST_OK,)) + struct.pack("<I", 100) + b"short"
        with pytest.raises(ProtocolError):
            protocol.split_cost_response(lying)

    def test_metrics_frame(self):
        body = protocol.encode_metrics()
        assert protocol.request_op(body) == protocol.OP_METRICS


class TestRequestTracing:
    def test_traced_client_is_wire_compatible(self, served):
        matrix, sock, _daemon = served
        with DaemonClient(sock, trace_requests=True) as client:
            assert client.is_alias(0, 1) == matrix.is_alias(0, 1)
            first = client.last_request_id
            assert first and len(first) == 16
            client.ping()
            assert client.last_request_id != first  # fresh id per request

    def test_want_cost_returns_breakdown(self, served):
        _matrix, sock, _daemon = served
        with DaemonClient(sock, want_cost=True) as client:
            client.is_alias(0, 2)
            cost = client.last_cost
            assert cost["cache_misses"] == 1
            assert cost["queries"] == 1
            assert "epoch" in cost
            assert cost["seconds"] >= 0
            client.is_alias(0, 2)  # identical query: served from cache
            assert client.last_cost["cache_hits"] == 1
            assert client.last_cost["bytes_parsed"] == 0

    def test_error_responses_reach_traced_clients_unchanged(self, served):
        _matrix, sock, _daemon = served
        with DaemonClient(sock, want_cost=True) as client:
            with pytest.raises(DaemonError) as info:
                client.is_alias_batch([(0, 10_000)])
            assert info.value.status == ST_BAD_REQUEST
            assert client.last_cost is None

    def test_bad_traced_flags_are_bad_request(self, served):
        _matrix, sock, _daemon = served
        body = bytearray(protocol.encode_traced("rid", protocol.encode_ping()))
        body[1] |= 0x40
        raw = _raw_connection(sock)
        try:
            raw.sendall(protocol.frame(bytes(body)))
            status, _ = protocol.split_response(_read_frame(raw))
            assert status == ST_BAD_REQUEST
        finally:
            raw.close()

    def test_one_request_yields_connected_span_tree(self, served):
        from repro.obs import trace

        matrix, sock, _daemon = served
        with trace.capture() as spans:
            with DaemonClient(sock, trace_requests=True) as client:
                assert client.is_alias(1, 3) == matrix.is_alias(1, 3)
                rid = client.last_request_id
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, span)
        # Client side: one root span stamped with the minted id.
        assert by_name["client.request"].attrs["request_id"] == rid
        # Daemon side: the same id connects the socket-read root to the
        # service and index work that ran on the executor thread.
        daemon_span = by_name["daemon.request"]
        assert daemon_span.attrs["request_id"] == rid
        assert daemon_span.attrs["op"] == "is_alias"
        serve_span = daemon_span.find("serve.is_alias")
        assert serve_span is not None
        assert serve_span.find("index.answer") is not None

    def test_coalesced_joiner_gets_marker_cost(self, gated):
        matrix, backend, sock = gated
        pairs = [(0, 1)]
        expected = [matrix.is_alias(0, 1)]
        coalesced = get_registry().counter("repro_daemon_coalesced_total")
        before = coalesced.value
        results = {}

        def holder():
            with DaemonClient(sock) as client:  # plain PR 7 frames
                results["holder"] = client.is_alias_batch(pairs)

        def joiner():
            with DaemonClient(sock, want_cost=True) as client:
                results["joiner"] = client.is_alias_batch(pairs)
                results["cost"] = client.last_cost

        first = threading.Thread(target=holder)
        first.start()
        assert backend.entered.wait(10)
        # The traced frame's INNER body matches the parked untraced twin,
        # so it joins the computation instead of running (or rejecting).
        second = threading.Thread(target=joiner)
        second.start()
        deadline = time.time() + 10
        while coalesced.value == before and time.time() < deadline:
            time.sleep(0.01)
        backend.gate.set()
        first.join(10)
        second.join(10)
        assert results["holder"] == expected
        assert results["joiner"] == expected
        assert results["cost"] == {"coalesced": True}


class TestIntrospection:
    def test_metrics_op_exposes_every_daemon_family(self, served):
        from repro.obs import CATALOGUE

        _matrix, sock, _daemon = served
        with DaemonClient(sock) as client:
            client.is_alias_batch([(0, 1)])
            text = client.metrics()
        families = sorted(name for name in CATALOGUE
                          if name.startswith("repro_daemon_"))
        assert len(families) >= 9
        for name in families:
            assert "# TYPE %s " % name in text, name
        assert 'repro_daemon_worker_info{slot="0"} 1' in text

    def test_worker_slot_labels_the_info_gauge(self, tmp_path):
        matrix = make_random_matrix(8, 4, density=0.3, seed=5)
        service = AliasService.from_index(index_from_bytes(encode(matrix)))
        sock = str(tmp_path / "slot.sock")
        daemon = AliasDaemon(service, socket_path=sock, worker_slot=3)
        runner = ThreadedDaemon(daemon).start()
        try:
            with DaemonClient(sock) as client:
                text = client.metrics()
            assert 'repro_daemon_worker_info{slot="3"} 1' in text
        finally:
            runner.stop()

    def test_debug_events_is_a_structured_golden(self, served):
        from repro.obs import get_flight_recorder

        _matrix, sock, daemon = served
        get_flight_recorder().clear()
        with DaemonClient(sock) as client:
            client.is_alias_batch([(2, 4)])
        host, port = daemon.http_address
        base = "http://%s:%d" % (host, port)
        with urllib.request.urlopen(base + "/debug/events") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "application/json")
            events = json.loads(response.read())
        assert isinstance(events, list) and events
        for event in events:
            # The golden structural contract: every event carries the
            # three reserved keys, seq strictly increasing.
            assert {"seq", "wall", "kind"} <= set(event)
        assert [e["seq"] for e in events] == \
            sorted(e["seq"] for e in events)
        request_events = [e for e in events if e["kind"] == "request"]
        assert request_events
        entry = request_events[-1]
        assert entry["op"] == "is_alias"
        assert entry["status"] == "ok"
        assert entry["seconds"] >= 0
        with urllib.request.urlopen(base + "/debug/events?limit=1") as response:
            assert len(json.loads(response.read())) == 1

    def test_debug_requests_shows_inflight_work(self, tmp_path):
        matrix = make_random_matrix(12, 6, density=0.3, seed=8)
        backend = _GatedBackend(index_from_bytes(encode(matrix)))
        service = AliasService(backend, cache_size=0)
        sock = str(tmp_path / "dbg.sock")
        daemon = AliasDaemon(service, socket_path=sock, http_port=0)
        runner = ThreadedDaemon(daemon).start()
        try:
            host, port = daemon.http_address
            base = "http://%s:%d" % (host, port)
            with urllib.request.urlopen(base + "/debug/requests") as response:
                assert json.loads(response.read()) == []
            result = []

            def query():
                with DaemonClient(sock, trace_requests=True) as client:
                    result.append(client.is_alias_batch([(0, 1)]))

            thread = threading.Thread(target=query)
            thread.start()
            assert backend.entered.wait(10)
            with urllib.request.urlopen(base + "/debug/requests") as response:
                inflight = json.loads(response.read())
            assert len(inflight) == 1
            assert inflight[0]["op"] == "is_alias"
            assert inflight[0]["age_ms"] >= 0
            assert len(inflight[0]["request_id"]) == 16
            backend.gate.set()
            thread.join(10)
            assert result == [[matrix.is_alias(0, 1)]]
            with urllib.request.urlopen(base + "/debug/requests") as response:
                assert json.loads(response.read()) == []
        finally:
            backend.gate.set()
            runner.stop()

    def test_debug_profile_returns_a_report(self, served):
        _matrix, sock, daemon = served
        host, port = daemon.http_address
        base = "http://%s:%d" % (host, port)
        with urllib.request.urlopen(base + "/debug/profile?seconds=0.1") \
                as response:
            body = response.read().decode()
        assert body.startswith("profile:")
        assert "samples" in body
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(base + "/debug/profile?seconds=0")
        assert info.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(base + "/debug/profile?seconds=junk")
        assert info.value.code == 400


class TestObservabilityCli:
    """`repro-pestrie metrics --socket/--url` and `top` against a daemon."""

    def test_metrics_scrapes_over_the_socket(self, served, capsys):
        from repro.cli import main as cli_main

        _matrix, sock, _daemon = served
        with DaemonClient(sock) as client:
            client.is_alias_batch([(0, 1)])
        assert cli_main(["metrics", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_daemon_requests_total counter" in out
        assert "repro_daemon_worker_info" in out

    def test_metrics_scrapes_over_http(self, served, capsys):
        from repro.cli import main as cli_main

        _matrix, _sock, daemon = served
        host, port = daemon.http_address
        assert cli_main(["metrics", "--url",
                         "http://%s:%d" % (host, port)]) == 0
        assert "repro_daemon_connections_total" in capsys.readouterr().out

    def test_top_renders_one_refresh(self, served, capsys):
        from repro.cli import main as cli_main

        _matrix, sock, daemon = served
        with DaemonClient(sock) as client:
            client.is_alias_batch([(0, 1), (2, 3)])
        host, port = daemon.http_address
        url = "http://%s:%d" % (host, port)
        assert cli_main(["top", "--socket", sock, "--url", url,
                         "--iterations", "2", "--interval", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "qps" in out and "cache" in out and "version" in out
        assert "socket:%s" % sock in out
        assert url in out
        assert "unreachable" not in out

    def test_top_without_targets_is_usage_error(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["top", "--iterations", "1"]) == 2
        assert "needs --socket" in capsys.readouterr().err
