"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.matrix.points_to import PointsToMatrix

# ----------------------------------------------------------------------
# Hypothesis profiles.  "ci" derandomises so a CI run is reproducible and
# a failure message names a replayable seed; "dev" keeps random exploration
# but drops the per-example deadline (oracle tests rebuild full encodings,
# whose first-call cost is all warm-up noise).  Select with
# HYPOTHESIS_PROFILE=ci; the default is dev.
# ----------------------------------------------------------------------

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

# ----------------------------------------------------------------------
# The paper's worked example (Table 3): pointers p1..p7 -> ids 0..6,
# objects o1..o5 -> ids 0..4.
# ----------------------------------------------------------------------

PAPER_ROWS = {
    0: [0, 4],  # p1 -> o1, o5
    1: [0],  # p2 -> o1
    2: [0, 1, 2, 4],  # p3
    3: [0, 1, 2, 3],  # p4
    4: [3],  # p5
    5: [1],  # p6
    6: [2, 4],  # p7
}


@pytest.fixture
def paper_matrix() -> PointsToMatrix:
    return PointsToMatrix.from_rows([PAPER_ROWS[i] for i in range(7)], 5)


def make_random_matrix(n_pointers: int, n_objects: int, density: float,
                       seed: int) -> PointsToMatrix:
    rng = random.Random(seed)
    matrix = PointsToMatrix(n_pointers, n_objects)
    for pointer in range(n_pointers):
        for obj in range(n_objects):
            if rng.random() < density:
                matrix.add(pointer, obj)
    return matrix


# Hypothesis strategy: a small points-to matrix as (n_pointers, n_objects,
# facts).  Kept small so exhaustive oracles stay fast.

@st.composite
def matrices(draw, max_pointers: int = 14, max_objects: int = 8):
    n_pointers = draw(st.integers(min_value=1, max_value=max_pointers))
    n_objects = draw(st.integers(min_value=1, max_value=max_objects))
    facts = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_pointers - 1),
                st.integers(min_value=0, max_value=n_objects - 1),
            ),
            max_size=n_pointers * n_objects,
        )
    )
    return PointsToMatrix.from_pairs(n_pointers, n_objects, facts)
