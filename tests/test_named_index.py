"""NamedIndex: source-level and stem-level queries."""

import pytest

from repro.analysis import context_sensitive, flow_sensitive
from repro.analysis.parser import parse_program
from repro.analysis.transform import (
    context_sensitive_to_matrix,
    flow_sensitive_to_matrix,
)
from repro.core.named import NamedIndex, stem_of
from repro.core.pipeline import encode, index_from_bytes

SOURCE = """
func make() {
  m = alloc M
  return m
}

func main() {
  p = call make()
  q = call make()
  r = p
  r = q
  return
}
"""


@pytest.fixture(scope="module")
def fs_named_index():
    program = parse_program(SOURCE)
    named = flow_sensitive_to_matrix(flow_sensitive.analyze(program))
    index = index_from_bytes(encode(named.matrix))
    return NamedIndex.over(named, index)


@pytest.fixture(scope="module")
def cs_named_index():
    program = parse_program(SOURCE)
    named = context_sensitive_to_matrix(context_sensitive.analyze(program, k=1))
    index = index_from_bytes(encode(named.matrix))
    return NamedIndex.over(named, index)


class TestStemOf:
    def test_flow_labels(self):
        assert stem_of("main::r@L2") == "main::r"
        assert stem_of("use::x@entry(use)") == "use::x"

    def test_context_brackets(self):
        assert stem_of("make[3]::m") == "make::m"
        assert stem_of("make[3,7]::m") == "make::m"

    def test_path_predicates(self):
        assert stem_of("p|l1") == "p"
        assert stem_of("main::p|l2") == "main::p"

    def test_plain_names(self):
        assert stem_of("g0") == "g0"
        assert stem_of("main::p") == "main::p"


class TestExactQueries:
    def test_flow_sensitive_versions(self, fs_named_index):
        versions = fs_named_index.versions_of("main::r")
        assert len(versions) == 2  # r defined twice

    def test_list_points_to_by_name(self, fs_named_index):
        first, second = fs_named_index.versions_of("main::r")
        assert fs_named_index.list_points_to(first) == ["make::M"]

    def test_context_query(self, cs_named_index):
        """ListPointsTo(c, p): ask about one context's clone directly."""
        names = cs_named_index.versions_of("make::m")
        assert len(names) == 2
        answers = {tuple(cs_named_index.list_points_to(name)) for name in names}
        assert len(answers) == 2  # the two contexts see different clones

    def test_is_alias_by_name(self, cs_named_index):
        assert not cs_named_index.is_alias("main::p", "main::q")
        assert cs_named_index.is_alias("main::p", "main::r")

    def test_list_pointed_by(self, cs_named_index):
        pointers = cs_named_index.list_pointed_by("make[0]::M")
        assert any(stem_of(name) == "main::p" or stem_of(name) == "main::q"
                   for name in pointers)

    def test_unknown_name_raises(self, fs_named_index):
        with pytest.raises(KeyError):
            fs_named_index.list_points_to("main::nonexistent")


class TestStemQueries:
    def test_stem_points_to_unions_versions(self, cs_named_index):
        # r = p then r = q: the stem projection sees both clone objects.
        objects = cs_named_index.stem_points_to("main::r")
        assert len(objects) == 2

    def test_stem_may_alias(self, cs_named_index):
        assert cs_named_index.stem_may_alias("main::r", "main::p")
        assert cs_named_index.stem_may_alias("main::r", "main::q")
        assert not cs_named_index.stem_may_alias("main::p", "main::q")

    def test_unknown_stem_is_empty(self, cs_named_index):
        assert cs_named_index.versions_of("nope::x") == []
        assert cs_named_index.stem_points_to("nope::x") == []
        assert not cs_named_index.stem_may_alias("nope::x", "main::p")
