"""The seeded fuzz harness (``repro.core.fuzz``) as a fast smoke test.

``make fuzz`` runs the full bounded sweep; this keeps a smaller sweep in
the default test run so a decode regression is caught before it ships.
"""

from repro.core.fuzz import FuzzReport, corrupt, random_matrix, run_fuzz

import random


class TestHarness:
    def test_smoke_sweep_honours_contract(self):
        report = run_fuzz(iterations=120, seed=1234)
        assert report.ok, "\n".join(str(failure) for failure in report.failures)
        # Every clean input round-tripped byte-exactly.
        assert report.clean_round_trips == report.cases == 120
        assert report.corruptions > 300
        assert report.rejected > 0

    def test_deterministic_given_seed(self):
        first = run_fuzz(iterations=15, seed=7)
        second = run_fuzz(iterations=15, seed=7)
        assert (first.cases, first.corruptions, first.rejected, first.survived) == (
            second.cases, second.corruptions, second.rejected, second.survived)

    def test_corrupt_produces_known_mutations(self):
        rng = random.Random(3)
        data = bytes(range(64))
        seen = set()
        for _ in range(200):
            kind, mutated = corrupt(rng, data)
            seen.add(kind)
            assert isinstance(mutated, bytes)
        assert seen == {"bit_flip", "byte_set", "truncate", "extend", "splice_count"}

    def test_random_matrix_shapes(self):
        rng = random.Random(11)
        for _ in range(20):
            matrix = random_matrix(rng)
            assert 1 <= matrix.n_pointers <= 24
            assert 1 <= matrix.n_objects <= 10

    def test_report_summary_mentions_failures(self):
        report = FuzzReport(cases=1)
        assert "0 failures" in report.summary()


def test_cli_entry_point_exit_status():
    from repro.core.fuzz import main

    assert main(["--iterations", "10", "--quiet"]) == 0
