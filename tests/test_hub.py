"""Hub degrees and object orders (Sections 2.2, 5.1, 5.2)."""

import math

import pytest
from hypothesis import given, settings

from repro.core import hub
from repro.matrix.points_to import PointsToMatrix

from conftest import matrices


class TestHubDegree:
    def test_definition_1_by_hand(self):
        # Pointers: 0 -> {0}, 1 -> {0, 1}.  |PM[0]| = 1, |PM[1]| = 2.
        matrix = PointsToMatrix.from_rows([[0], [0, 1]], 2)
        degrees = hub.hub_degrees(matrix)
        # H_o0 = sqrt(1² + 2²) = sqrt(5); H_o1 = sqrt(2²) = 2.
        assert degrees[0] == pytest.approx(math.sqrt(5))
        assert degrees[1] == pytest.approx(2.0)

    def test_unpointed_object_has_zero_degree(self):
        matrix = PointsToMatrix.from_rows([[0]], 2)
        assert hub.hub_degrees(matrix)[1] == 0.0

    def test_paper_matrix_order(self, paper_matrix):
        # H = sqrt over pointed-by pointers of |PM[p]|²:
        # o1=√37, o2=√33, o3=√36, o4=√17, o5=√24.  (The paper narrates the
        # example in id order o1..o5 for exposition; Definition 1 actually
        # ranks o3 above o2.)
        degrees = hub.hub_degrees(paper_matrix)
        assert degrees == pytest.approx(
            [math.sqrt(37), math.sqrt(33), math.sqrt(36), math.sqrt(17), math.sqrt(24)]
        )
        assert hub.hub_order(paper_matrix) == [0, 2, 1, 4, 3]
        assert degrees[0] == max(degrees)

    def test_distinguishes_same_pointed_by_count(self):
        # Both objects pointed by exactly one pointer, but pointer 1 has a
        # bigger points-to set: Definition 1 ranks o1 above o0 where the
        # naive |PMT[o]| metric cannot separate them.
        matrix = PointsToMatrix.from_rows([[0], [1, 2, 3]], 4)
        degrees = hub.hub_degrees(matrix)
        simple = hub.simple_degrees(matrix)
        assert simple[0] == simple[1] == 1
        assert degrees[1] > degrees[0]

    def test_simple_degrees(self, paper_matrix):
        assert hub.simple_degrees(paper_matrix) == [4, 3, 3, 2, 3]


class TestOrders:
    def test_random_order_is_permutation_and_seeded(self, paper_matrix):
        first = hub.random_order(paper_matrix, seed=11)
        second = hub.random_order(paper_matrix, seed=11)
        assert first == second
        assert sorted(first) == [0, 1, 2, 3, 4]
        assert hub.random_order(paper_matrix, seed=12) != first or True  # may collide

    def test_identity_order(self, paper_matrix):
        assert hub.identity_order(paper_matrix) == [0, 1, 2, 3, 4]

    def test_simple_degree_order_ties_by_id(self, paper_matrix):
        assert hub.simple_degree_order(paper_matrix) == [0, 1, 2, 4, 3]

    def test_validate_order_accepts_permutation(self):
        assert hub.validate_order((2, 0, 1), 3) == [2, 0, 1]

    def test_validate_order_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            hub.validate_order([0, 0, 1], 3)
        with pytest.raises(ValueError):
            hub.validate_order([0, 1], 3)


class TestPartitionObjective:
    def test_by_hand(self):
        # Two objects; pointers 0,1 -> o0; pointer 2 -> both.
        matrix = PointsToMatrix.from_rows([[0], [0], [0, 1]], 2)
        # Order (o0, o1): groups {0,1,2} and {} -> 9.
        assert hub.partition_objective(matrix, [0, 1]) == 9
        # Order (o1, o0): groups {2} and {0,1} -> 1 + 4 = 5.
        assert hub.partition_objective(matrix, [1, 0]) == 5

    @settings(max_examples=50)
    @given(matrices(max_pointers=10, max_objects=5))
    def test_theorem_3_identity(self, matrix):
        """O_π = mσ² + n²/m for any π (over pointers that point somewhere)."""
        order = list(range(matrix.n_objects))
        objective = hub.partition_objective(matrix, order)

        position = {obj: rank for rank, obj in enumerate(order)}
        sizes = [0] * matrix.n_objects
        tracked = 0
        for row in matrix.rows:
            firsts = [position[o] for o in row]
            if firsts:
                sizes[min(firsts)] += 1
                tracked += 1
        m = matrix.n_objects
        mean = tracked / m
        variance = sum((size - mean) ** 2 for size in sizes) / m
        assert objective == pytest.approx(m * variance + tracked**2 / m)

    @settings(max_examples=30)
    @given(matrices(max_pointers=10, max_objects=5))
    def test_objective_counts_each_pointer_once(self, matrix):
        order = hub.hub_order(matrix)
        objective = hub.partition_objective(matrix, order)
        nonempty = sum(1 for row in matrix.rows if row)
        # Σ I_i = n implies O_π ≤ n² and ≥ n²/m (Cauchy-Schwarz bounds).
        if nonempty:
            assert nonempty**2 / matrix.n_objects <= objective + 1e-9
            assert objective <= nonempty**2
