"""The Figure 1 / Table 2 characteristics measurement."""

import statistics

from repro.bench.metrics import characterize
from repro.matrix.points_to import PointsToMatrix


def _matrix_with_degrees(rows):
    n_objects = max((obj for row in rows for obj in row), default=-1) + 1
    return PointsToMatrix.from_rows(rows, max(n_objects, 1))


class TestMedianHubDegree:
    def test_odd_length(self):
        # Three objects with clearly different hub degrees.
        matrix = _matrix_with_degrees([[0], [0], [0], [1], [2], [2]])
        from repro.core.hub import hub_degrees

        degrees = hub_degrees(matrix)
        assert characterize(matrix).median_hub_degree == statistics.median(degrees)

    def test_even_length_averages_middle_pair(self):
        # Two objects: degrees differ, so the median is their midpoint —
        # the upper-middle element (what sorted[len//2] used to return)
        # would be wrong here.
        matrix = _matrix_with_degrees([[0], [0], [0], [1]])
        from repro.core.hub import hub_degrees

        degrees = sorted(hub_degrees(matrix))
        assert len(degrees) == 2
        expected = (degrees[0] + degrees[1]) / 2
        result = characterize(matrix).median_hub_degree
        assert result == expected
        assert result != degrees[1]

    def test_empty_matrix(self):
        matrix = PointsToMatrix(0, 0)
        assert characterize(matrix).median_hub_degree == 0.0


class TestCharacteristics:
    def test_counts_and_ratios(self, paper_matrix):
        stats = characterize(paper_matrix)
        assert stats.n_pointers == 7
        assert stats.n_objects == 5
        assert stats.facts == paper_matrix.fact_count()
        assert 0.0 < stats.pointer_class_ratio <= 1.0
        assert 0.0 < stats.object_class_ratio <= 1.0
        assert abs(sum(stats.hub_bucket_fractions) - 1.0) < 1e-9
        assert 0.0 <= stats.hub_mass_top_decile <= 1.0
