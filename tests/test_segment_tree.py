"""Segment-tree point enclosure against a brute-force oracle."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segment_tree import Rect, SegmentTree


def _disjoint_rects(rng: random.Random, size: int, count: int):
    """Generate pairwise-disjoint rectangles inside [0, size)²."""
    rects = []
    attempts = 0
    while len(rects) < count and attempts < count * 50:
        attempts += 1
        x1 = rng.randrange(size)
        x2 = rng.randrange(x1, min(size, x1 + 6))
        y1 = rng.randrange(size)
        y2 = rng.randrange(y1, min(size, y1 + 6))
        candidate = Rect(x1=x1, x2=x2, y1=y1, y2=y2)
        overlap = any(
            not (candidate.x2 < r.x1 or r.x2 < candidate.x1
                 or candidate.y2 < r.y1 or r.y2 < candidate.y1)
            for r in rects
        )
        if not overlap:
            rects.append(candidate)
    return rects


class TestRect:
    def test_covers(self):
        rect = Rect(x1=1, x2=3, y1=5, y2=7)
        assert rect.covers(1, 5)
        assert rect.covers(3, 7)
        assert rect.covers(2, 6)
        assert not rect.covers(0, 6)
        assert not rect.covers(2, 8)

    def test_encloses(self):
        outer = Rect(x1=0, x2=10, y1=0, y2=10)
        inner = Rect(x1=2, x2=3, y1=4, y2=5)
        assert outer.encloses(inner)
        assert not inner.encloses(outer)
        assert outer.encloses(outer)

    def test_as_tuple_is_paper_order(self):
        assert Rect(x1=1, x2=2, y1=5, y2=6).as_tuple() == (1, 2, 5, 6)


class TestSegmentTree:
    def test_empty(self):
        tree = SegmentTree(16)
        assert len(tree) == 0
        assert tree.find_covering(3, 3) is None
        assert not tree.covers(0, 0)

    def test_single_rect(self):
        tree = SegmentTree(16)
        rect = Rect(x1=2, x2=5, y1=7, y2=9)
        tree.insert(rect)
        assert len(tree) == 1
        assert tree.find_covering(2, 7) == rect
        assert tree.find_covering(5, 9) == rect
        assert tree.find_covering(6, 8) is None
        assert tree.find_covering(3, 6) is None

    def test_point_rectangle(self):
        tree = SegmentTree(4)
        tree.insert(Rect(x1=1, x2=1, y1=2, y2=2))
        assert tree.covers(1, 2)
        assert not tree.covers(1, 3)
        assert not tree.covers(2, 2)

    def test_degenerate_size(self):
        tree = SegmentTree(0)
        tree.insert(Rect(x1=0, x2=0, y1=0, y2=0))
        assert tree.covers(0, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000))
    def test_against_brute_force(self, seed):
        rng = random.Random(seed)
        size = rng.randrange(4, 40)
        rects = _disjoint_rects(rng, size, rng.randrange(1, 12))
        tree = SegmentTree(size)
        for rect in rects:
            tree.insert(rect)
        for _ in range(100):
            x = rng.randrange(size)
            y = rng.randrange(size)
            expected = next((r for r in rects if r.covers(x, y)), None)
            assert tree.find_covering(x, y) == expected

    def test_many_rects_on_same_column(self):
        """Stacked rectangles crossing the same midline exercise the
        Y1-sorted predecessor search."""
        tree = SegmentTree(8)
        rects = [Rect(x1=0, x2=7, y1=10 * i, y2=10 * i + 4) for i in range(20)]
        for rect in rects:
            tree.insert(rect)
        for i, rect in enumerate(rects):
            assert tree.find_covering(3, 10 * i + 2) == rect
            assert tree.find_covering(3, 10 * i + 7) is None
