"""IR model, symbol table, and the frontend parser."""

import pytest

from repro.analysis.ir import (
    Alloc,
    Call,
    Copy,
    Function,
    If,
    Load,
    Program,
    Return,
    Store,
    SymbolTable,
    While,
)
from repro.analysis.parser import ParseError, format_program, parse_program

SAMPLE = """
global g

func id(x) {
  return x
}

func main() {
  p = alloc A        // allocation
  q = p
  *p = q
  r = *p
  if {
    s = call id(p)
  }
  else {
    s = alloc B
  }
  while {
    t = *s
  }
  g = q
  return r
}
"""


class TestParser:
    def test_parse_shapes(self):
        program = parse_program(SAMPLE)
        assert program.globals == ["g"]
        assert set(program.functions) == {"id", "main"}
        main = program.functions["main"]
        kinds = [type(stmt).__name__ for stmt in main.body]
        assert kinds == ["Alloc", "Copy", "Store", "Load", "If", "While", "Copy", "Return"]

    def test_if_else_bodies(self):
        program = parse_program(SAMPLE)
        branch = program.functions["main"].body[4]
        assert isinstance(branch, If)
        assert isinstance(branch.then_body[0], Call)
        assert isinstance(branch.else_body[0], Alloc)

    def test_if_without_else(self):
        program = parse_program(
            "func main() {\n  p = alloc A\n  if {\n    q = p\n  }\n  return p\n}\n"
        )
        branch = program.functions["main"].body[1]
        assert isinstance(branch, If)
        assert branch.else_body == []

    def test_comments_and_blanks_ignored(self):
        program = parse_program("// leading comment\n\nfunc main() {\n  return\n}\n")
        assert "main" in program.functions

    def test_call_without_target(self):
        program = parse_program(
            "func f(a) {\n  return a\n}\nfunc main() {\n  p = alloc A\n  call f(p)\n  return\n}\n"
        )
        call = program.functions["main"].body[1]
        assert isinstance(call, Call)
        assert call.target is None

    def test_errors_carry_line_numbers(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("func main() {\n  p = = q\n}\n")
        assert excinfo.value.line_number == 2

    def test_unknown_callee_rejected_by_validate(self):
        with pytest.raises(ValueError, match="unknown function"):
            parse_program("func main() {\n  p = call nope()\n  return\n}\n")

    def test_arity_mismatch_rejected(self):
        source = (
            "func f(a, b) {\n  return a\n}\n"
            "func main() {\n  p = alloc A\n  q = call f(p)\n  return\n}\n"
        )
        with pytest.raises(ValueError, match="expected 2"):
            parse_program(source)

    def test_missing_entry_rejected(self):
        with pytest.raises(ValueError, match="entry function"):
            parse_program("func helper() {\n  return\n}\n")

    def test_duplicate_global_rejected(self):
        with pytest.raises(ParseError, match="duplicate global"):
            parse_program("global g\nglobal g\nfunc main() {\n  return\n}\n")

    def test_duplicate_function_rejected(self):
        source = "func main() {\n  return\n}\nfunc main() {\n  return\n}\n"
        with pytest.raises(ValueError, match="duplicate function"):
            parse_program(source)

    def test_unclosed_function(self):
        with pytest.raises(ParseError, match="end of file"):
            parse_program("func main() {\n  p = alloc A\n")

    def test_keyword_as_copy_source_rejected(self):
        with pytest.raises(ParseError):
            parse_program("func main() {\n  p = alloc\n  return\n}\n")

    def test_format_parse_round_trip(self):
        program = parse_program(SAMPLE)
        rebuilt = parse_program(format_program(program))
        assert format_program(rebuilt) == format_program(program)
        assert rebuilt.statement_count() == program.statement_count()


class TestIr:
    def test_statement_count_descends_blocks(self):
        program = parse_program(SAMPLE)
        # 9 simple statements in main (counting into if/while) + 1 in id.
        assert program.statement_count() == 10

    def test_variables_params_first(self):
        function = Function(
            name="f",
            params=("a",),
            body=[Copy(target="x", source="a"), Return(value="x")],
        )
        assert function.variables() == ["a", "x"]

    def test_simple_statements_order(self):
        program = parse_program(SAMPLE)
        kinds = [type(s).__name__ for s in program.functions["main"].simple_statements()]
        assert kinds == [
            "Alloc", "Copy", "Store", "Load",  # straight-line prefix
            "Call", "Alloc",  # then/else bodies
            "Load",  # loop body
            "Copy", "Return",
        ]

    def test_validate_entry_configurable(self):
        program = Program(entry="start")
        program.add_function(Function(name="start", params=(), body=[Return(value=None)]))
        program.validate()


class TestSymbolTable:
    def test_ids_dense_and_stable(self):
        program = parse_program(SAMPLE)
        symbols = SymbolTable(program)
        names = symbols.variable_names()
        assert len(names) == symbols.n_variables
        assert len(set(names)) == len(names)
        assert symbols.variable(None, "g") == symbols.variable("main", "g")

    def test_globals_not_qualified(self):
        program = parse_program(SAMPLE)
        symbols = SymbolTable(program)
        assert "g" in symbols.variable_ids
        assert "main::g" not in symbols.variable_ids

    def test_sites_qualified_by_function(self):
        program = parse_program(SAMPLE)
        symbols = SymbolTable(program)
        assert "main::A" in symbols.site_ids
        assert "main::B" in symbols.site_ids
        assert symbols.n_sites == 2
        assert symbols.site_names()[symbols.site("main", "A")] == "main::A"

    def test_unknown_global_lookup(self):
        program = parse_program(SAMPLE)
        symbols = SymbolTable(program)
        with pytest.raises(KeyError):
            symbols.variable(None, "not_a_global")

    def test_while_and_if_variables_collected(self):
        program = parse_program(SAMPLE)
        symbols = SymbolTable(program)
        assert "main::t" in symbols.variable_ids
        assert "main::s" in symbols.variable_ids
