"""Section 6.1 canonicalisation transforms."""

import pytest

from repro.analysis import flow_sensitive
from repro.analysis.parser import parse_program
from repro.analysis.transform import (
    PathFact,
    flow_sensitive_to_matrix,
    merge_context,
    path_sensitive_to_matrix,
)


class TestFlowSensitiveTransform:
    def test_each_definition_becomes_a_row(self):
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  p = alloc B\n"
            "  return p\n"
            "}\n"
        )
        named = flow_sensitive_to_matrix(flow_sensitive.analyze(program))
        assert "main::p@L0" in named.pointer_index
        assert "main::p@L1" in named.pointer_index
        row0 = named.matrix.rows[named.pointer_id("main::p@L0")]
        row1 = named.matrix.rows[named.pointer_id("main::p@L1")]
        assert list(row0) != list(row1)

    def test_entry_facts_for_parameters(self):
        program = parse_program(
            "func use(x) {\n  return x\n}\n"
            "func main() {\n  p = alloc A\n  q = call use(p)\n  return\n}\n"
        )
        named = flow_sensitive_to_matrix(flow_sensitive.analyze(program))
        assert "use::x@entry(use)" in named.pointer_index

    def test_precision_is_visible_in_the_matrix(self):
        """The killed definition must not alias the live one's objects."""
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  p = alloc B\n"
            "  return p\n"
            "}\n"
        )
        named = flow_sensitive_to_matrix(flow_sensitive.analyze(program))
        matrix = named.matrix
        first = named.pointer_id("main::p@L0")
        second = named.pointer_id("main::p@L1")
        assert not matrix.is_alias(first, second)


class TestMergeContext:
    def test_keeps_innermost_sites(self):
        assert merge_context((3, 7, 9), 1) == (9,)
        assert merge_context((3, 7, 9), 2) == (7, 9)
        assert merge_context((3,), 2) == (3,)
        assert merge_context((), 1) == ()

    def test_depth_zero(self):
        assert merge_context((1, 2), 0) == ()


class TestPathSensitiveTransform:
    def test_splits_disjunction_over_basis(self):
        facts = [
            PathFact(pointer="p", obj="A", predicates=frozenset({"l1", "l2"})),
            PathFact(pointer="q", obj="B", predicates=frozenset({"l1"})),
        ]
        named = path_sensitive_to_matrix(facts, basis=["l1", "l2", "l3"])
        assert set(named.pointer_index) == {"p|l1", "p|l2", "q|l1"}
        assert named.matrix.fact_count() == 3
        # p under either predicate points to A.
        for name in ("p|l1", "p|l2"):
            row = named.matrix.rows[named.pointer_id(name)]
            assert list(row) == [named.object_id("A")]

    def test_condition_sharing_creates_aliases(self):
        facts = [
            PathFact(pointer="p", obj="A", predicates=frozenset({"l1"})),
            PathFact(pointer="q", obj="A", predicates=frozenset({"l2"})),
        ]
        named = path_sensitive_to_matrix(facts, basis=["l1", "l2"])
        matrix = named.matrix
        assert matrix.is_alias(named.pointer_id("p|l1"), named.pointer_id("q|l2"))

    def test_unknown_predicate_rejected(self):
        facts = [PathFact(pointer="p", obj="A", predicates=frozenset({"mystery"}))]
        with pytest.raises(ValueError, match="not in the basis"):
            path_sensitive_to_matrix(facts, basis=["l1"])

    def test_empty_condition_rejected(self):
        facts = [PathFact(pointer="p", obj="A", predicates=frozenset())]
        with pytest.raises(ValueError, match="unsatisfiable"):
            path_sensitive_to_matrix(facts, basis=["l1"])
