"""The PestrieIndex query structure vs the matrix oracle (Section 4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import encode, index_from_bytes
from repro.matrix.points_to import PointsToMatrix

from conftest import make_random_matrix, matrices


def _index(matrix, order="hub", seed=0):
    return index_from_bytes(encode(matrix, order=order, seed=seed))


class TestIsAlias:
    def test_paper_example(self, paper_matrix):
        index = _index(paper_matrix, order="identity")
        for p in range(7):
            for q in range(7):
                assert index.is_alias(p, q) == paper_matrix.is_alias(p, q), (p, q)

    def test_self_alias(self, paper_matrix):
        index = _index(paper_matrix)
        assert index.is_alias(0, 0)

    def test_empty_pointer_never_aliases(self):
        matrix = PointsToMatrix(3, 2)
        matrix.add(0, 0)
        index = _index(matrix)
        assert not index.is_alias(0, 1)
        assert not index.is_alias(1, 1)
        assert not index.is_alias(1, 2)

    def test_symmetry(self, paper_matrix):
        index = _index(paper_matrix)
        for p in range(7):
            for q in range(7):
                assert index.is_alias(p, q) == index.is_alias(q, p)

    @settings(max_examples=80)
    @given(matrices(), st.sampled_from(["hub", "identity", "simple", "random"]))
    def test_matches_oracle(self, matrix, order):
        index = _index(matrix, order=order, seed=21)
        for p in range(matrix.n_pointers):
            for q in range(matrix.n_pointers):
                assert index.is_alias(p, q) == matrix.is_alias(p, q), (p, q)


class TestListQueries:
    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_list_points_to(self, matrix, order):
        index = _index(matrix, order=order, seed=4)
        for p in range(matrix.n_pointers):
            assert sorted(index.list_points_to(p)) == matrix.list_points_to(p)

    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_list_pointed_by(self, matrix, order):
        index = _index(matrix, order=order, seed=4)
        for obj in range(matrix.n_objects):
            assert sorted(index.list_pointed_by(obj)) == matrix.list_pointed_by(obj)

    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_list_aliases(self, matrix, order):
        index = _index(matrix, order=order, seed=4)
        for p in range(matrix.n_pointers):
            answer = index.list_aliases(p)
            assert sorted(answer) == matrix.list_aliases(p)
            assert len(answer) == len(set(answer)), "duplicate aliases emitted"

    def test_list_aliases_no_duplicates_paper(self, paper_matrix):
        index = _index(paper_matrix, order="identity")
        for p in range(7):
            answer = index.list_aliases(p)
            assert len(answer) == len(set(answer))

    def test_queries_on_empty_pointer(self):
        matrix = PointsToMatrix(2, 2)
        matrix.add(1, 1)
        index = _index(matrix)
        assert index.list_points_to(0) == []
        assert index.list_aliases(0) == []

    def test_unpointed_object(self):
        matrix = PointsToMatrix(2, 3)
        matrix.add(0, 0)
        index = _index(matrix)
        assert index.list_pointed_by(2) == []


class TestPesRecovery:
    def test_pes_identifiers_recovered(self, paper_matrix):
        """Section 4 step 1: binary search reassigns construction PES ids."""
        from repro.core.builder import build_pestrie

        pestrie = build_pestrie(paper_matrix, order="identity")
        index = _index(paper_matrix, order="identity")
        for pointer in range(7):
            assert index.pes_of(pointer) == pestrie.pes_of_pointer(pointer)

    @settings(max_examples=40)
    @given(matrices())
    def test_pes_identifiers_any_matrix(self, matrix):
        from repro.core.builder import build_pestrie
        from repro.core.intervals import assign_intervals

        pestrie = build_pestrie(matrix, order="hub")
        assign_intervals(pestrie)
        index = _index(matrix, order="hub")
        for pointer in range(matrix.n_pointers):
            assert index.pes_of(pointer) == pestrie.pes_of_pointer(pointer)


class TestMaterialize:
    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "simple", "random"]))
    def test_round_trip(self, matrix, order):
        index = _index(matrix, order=order, seed=77)
        assert index.materialize() == matrix

    def test_larger_random_matrices(self):
        for seed in range(6):
            matrix = make_random_matrix(80, 25, density=0.12, seed=seed)
            assert _index(matrix).materialize() == matrix

    def test_memory_footprint_positive(self, paper_matrix):
        index = _index(paper_matrix)
        assert index.memory_footprint() > 0
