"""The PestrieIndex query structure vs the matrix oracle (Section 4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decoder import PestriePayload
from repro.core.pipeline import encode, index_from_bytes
from repro.core.query import PestrieIndex
from repro.core.segment_tree import Rect
from repro.matrix.points_to import PointsToMatrix

from conftest import make_random_matrix, matrices


def _index(matrix, order="hub", seed=0):
    return index_from_bytes(encode(matrix, order=order, seed=seed))


class TestIsAlias:
    def test_paper_example(self, paper_matrix):
        index = _index(paper_matrix, order="identity")
        for p in range(7):
            for q in range(7):
                assert index.is_alias(p, q) == paper_matrix.is_alias(p, q), (p, q)

    def test_self_alias(self, paper_matrix):
        index = _index(paper_matrix)
        assert index.is_alias(0, 0)

    def test_empty_pointer_never_aliases(self):
        matrix = PointsToMatrix(3, 2)
        matrix.add(0, 0)
        index = _index(matrix)
        assert not index.is_alias(0, 1)
        assert not index.is_alias(1, 1)
        assert not index.is_alias(1, 2)

    def test_symmetry(self, paper_matrix):
        index = _index(paper_matrix)
        for p in range(7):
            for q in range(7):
                assert index.is_alias(p, q) == index.is_alias(q, p)

    @settings(max_examples=80)
    @given(matrices(), st.sampled_from(["hub", "identity", "simple", "random"]))
    def test_matches_oracle(self, matrix, order):
        index = _index(matrix, order=order, seed=21)
        for p in range(matrix.n_pointers):
            for q in range(matrix.n_pointers):
                assert index.is_alias(p, q) == matrix.is_alias(p, q), (p, q)


class TestListQueries:
    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_list_points_to(self, matrix, order):
        index = _index(matrix, order=order, seed=4)
        for p in range(matrix.n_pointers):
            assert sorted(index.list_points_to(p)) == matrix.list_points_to(p)

    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_list_pointed_by(self, matrix, order):
        index = _index(matrix, order=order, seed=4)
        for obj in range(matrix.n_objects):
            assert sorted(index.list_pointed_by(obj)) == matrix.list_pointed_by(obj)

    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_list_aliases(self, matrix, order):
        index = _index(matrix, order=order, seed=4)
        for p in range(matrix.n_pointers):
            answer = index.list_aliases(p)
            assert sorted(answer) == matrix.list_aliases(p)
            assert len(answer) == len(set(answer)), "duplicate aliases emitted"

    def test_list_aliases_no_duplicates_paper(self, paper_matrix):
        index = _index(paper_matrix, order="identity")
        for p in range(7):
            answer = index.list_aliases(p)
            assert len(answer) == len(set(answer))

    def test_queries_on_empty_pointer(self):
        matrix = PointsToMatrix(2, 2)
        matrix.add(1, 1)
        index = _index(matrix)
        assert index.list_points_to(0) == []
        assert index.list_aliases(0) == []

    def test_unpointed_object(self):
        matrix = PointsToMatrix(2, 3)
        matrix.add(0, 0)
        index = _index(matrix)
        assert index.list_pointed_by(2) == []


class TestPesRecovery:
    def test_pes_identifiers_recovered(self, paper_matrix):
        """Section 4 step 1: binary search reassigns construction PES ids."""
        from repro.core.builder import build_pestrie

        pestrie = build_pestrie(paper_matrix, order="identity")
        index = _index(paper_matrix, order="identity")
        for pointer in range(7):
            assert index.pes_of(pointer) == pestrie.pes_of_pointer(pointer)

    @settings(max_examples=40)
    @given(matrices())
    def test_pes_identifiers_any_matrix(self, matrix):
        from repro.core.builder import build_pestrie
        from repro.core.intervals import assign_intervals

        pestrie = build_pestrie(matrix, order="hub")
        assign_intervals(pestrie)
        index = _index(matrix, order="hub")
        for pointer in range(matrix.n_pointers):
            assert index.pes_of(pointer) == pestrie.pes_of_pointer(pointer)


class TestEventSweepBuild:
    """The ptList build must never expand rectangles column by column."""

    WIDTH = 10_000_000

    def _wide_payload(self):
        """Two PESs and one rectangle spanning millions of columns."""
        half = self.WIDTH // 2
        return PestriePayload(
            n_pointers=4,
            n_objects=2,
            n_groups=self.WIDTH,
            pointer_ts=[0, half - 1, half, None],
            object_ts=[0, half],
            rects=[(Rect(x1=0, x2=half - 1, y1=half, y2=self.WIDTH - 1), True)],
        )

    def test_wide_rectangle_loads_without_blowup(self):
        """O(R log R) construction: a 10M-column rectangle must build a
        handful of shared slabs, not one list per covered column."""
        index = PestrieIndex(self._wide_payload())
        # One rectangle -> forward + mirror spans -> at most 5 slabs; the
        # old per-column expansion would have made 10M entries here.
        assert index._sweep.slab_count() <= 5
        # Footprint stays in the kilobytes, nowhere near per-column scale.
        assert index.memory_footprint() < 100_000

    def test_wide_rectangle_answers(self):
        index = PestrieIndex(self._wide_payload())
        # Pointers 0/1 share PES 0; pointer 2 is PES 1; the rectangle
        # aliases the two PESs and records that PES-0 pointers point to
        # object 1 (Case 1).
        assert index.is_alias(0, 1)
        assert index.is_alias(0, 2)
        assert index.is_alias(1, 2)
        assert not index.is_alias(0, 3)
        assert sorted(index.list_points_to(0)) == [0, 1]
        assert sorted(index.list_points_to(2)) == [1]
        assert sorted(index.list_aliases(2)) == [0, 1]
        assert sorted(index.list_pointed_by(1)) == [0, 1, 2]

    def test_wide_rectangle_batch(self):
        index = PestrieIndex(self._wide_payload())
        pairs = [(0, 1), (0, 2), (0, 3), (3, 3), (2, 1)]
        assert index.is_alias_batch(pairs) == [
            index.is_alias(p, q) for p, q in pairs
        ]

    @settings(max_examples=40)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_batch_matches_single(self, matrix, order):
        index = _index(matrix, order=order, seed=13)
        pairs = [(p, q) for p in range(matrix.n_pointers)
                 for q in range(matrix.n_pointers)]
        assert index.is_alias_batch(pairs) == [
            matrix.is_alias(p, q) for p, q in pairs
        ]


class TestMaterialize:
    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "simple", "random"]))
    def test_round_trip(self, matrix, order):
        index = _index(matrix, order=order, seed=77)
        assert index.materialize() == matrix

    def test_larger_random_matrices(self):
        for seed in range(6):
            matrix = make_random_matrix(80, 25, density=0.12, seed=seed)
            assert _index(matrix).materialize() == matrix

    def test_memory_footprint_positive(self, paper_matrix):
        index = _index(paper_matrix)
        assert index.memory_footprint() > 0
