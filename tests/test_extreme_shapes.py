"""Structured extreme matrix shapes: worst and best cases for the encoder."""

import pytest

from repro.core.builder import build_pestrie
from repro.core.pipeline import encode, index_from_bytes
from repro.matrix.points_to import PointsToMatrix


def _round_trip(matrix, order="hub"):
    index = index_from_bytes(encode(matrix, order=order))
    assert index.materialize() == matrix
    return index


class TestChainMatrix:
    """p_i points to o_0..o_i: maximal nesting, a long extraction chain."""

    @pytest.fixture(scope="class")
    def matrix(self):
        n = 24
        return PointsToMatrix.from_pairs(
            n, n, [(p, o) for p in range(n) for o in range(p + 1)]
        )

    def test_round_trip(self, matrix):
        for order in ("hub", "identity", "random"):
            _round_trip(matrix, order)

    def test_every_pair_aliases(self, matrix):
        index = _round_trip(matrix)
        for p in range(matrix.n_pointers):
            for q in range(matrix.n_pointers):
                assert index.is_alias(p, q)  # all share o_0

    def test_deep_pes_structure(self, matrix):
        pestrie = build_pestrie(matrix, order="identity")
        # With identity order, each row extracts the suffix: a chain of
        # singleton groups inside PES o_0.
        depths = {}
        for group in pestrie.groups:
            depth = 0
            current = group
            while current.parent is not None:
                depth += 1
                current = pestrie.groups[current.parent]
            depths[group.id] = depth
        assert max(depths.values()) >= matrix.n_pointers - 2


class TestStarMatrix:
    """Everything points to one hub object only: a single giant ES."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return PointsToMatrix.from_pairs(40, 5, [(p, 2) for p in range(40)])

    def test_one_group_holds_everything(self, matrix):
        pestrie = build_pestrie(matrix, order="hub")
        sizes = sorted(len(group.pointers) for group in pestrie.groups)
        assert sizes[-1] == 40
        assert len(pestrie.cross_edges) == 0

    def test_no_rectangles_needed(self, matrix):
        from repro.core.intervals import assign_intervals
        from repro.core.rectangles import generate_rectangles

        pestrie = build_pestrie(matrix, order="hub")
        assign_intervals(pestrie)
        assert generate_rectangles(pestrie).rects == []

    def test_all_alias_via_pes(self, matrix):
        index = _round_trip(matrix)
        assert index.is_alias(0, 39)
        assert sorted(index.list_aliases(0)) == list(range(1, 40))


class TestBlockDiagonal:
    """k disjoint cliques: alias islands with no cross-island pairs."""

    @pytest.fixture(scope="class")
    def matrix(self):
        blocks, size = 6, 5
        matrix = PointsToMatrix(blocks * size, blocks)
        for block in range(blocks):
            for offset in range(size):
                matrix.add(block * size + offset, block)
        return matrix

    def test_islands_do_not_alias(self, matrix):
        index = _round_trip(matrix)
        assert index.is_alias(0, 4)
        assert not index.is_alias(0, 5)
        assert sorted(index.list_aliases(7)) == [5, 6, 8, 9]

    def test_no_cross_edges(self, matrix):
        pestrie = build_pestrie(matrix, order="hub")
        assert len(pestrie.cross_edges) == 0


class TestFullMatrix:
    """The dense worst case: every pointer points to every object."""

    def test_round_trip_and_single_es(self):
        matrix = PointsToMatrix.from_pairs(
            15, 8, [(p, o) for p in range(15) for o in range(8)]
        )
        pestrie = build_pestrie(matrix, order="hub")
        # All pointers stay one equivalent set, dragged through every row.
        non_empty = [g for g in pestrie.groups if g.pointers]
        assert len(non_empty) == 1
        _round_trip(matrix)


class TestAntiChain:
    """Permutation matrix: no aliasing at all, everything is singleton."""

    def test_no_pairs(self):
        n = 30
        matrix = PointsToMatrix.from_pairs(n, n, [(i, i) for i in range(n)])
        index = _round_trip(matrix)
        for p in range(0, n, 7):
            assert index.list_aliases(p) == []
        assert list(index.iter_alias_pairs()) == []


class TestBipartiteCrossing:
    """Two pointer families overlapping on a shared middle object."""

    def test_cross_pairs_via_shared_hub(self):
        # family A -> {o0, o1}; family B -> {o1, o2}
        matrix = PointsToMatrix(12, 3)
        for p in range(6):
            matrix.add(p, 0)
            matrix.add(p, 1)
        for p in range(6, 12):
            matrix.add(p, 1)
            matrix.add(p, 2)
        index = _round_trip(matrix)
        assert index.is_alias(0, 11)  # via the shared o1
        assert sorted(index.list_pointed_by(1)) == list(range(12))


class TestSingletons:
    def test_single_pointer_single_object(self):
        matrix = PointsToMatrix.from_pairs(1, 1, [(0, 0)])
        index = _round_trip(matrix)
        assert index.list_points_to(0) == [0]
        assert index.list_aliases(0) == []
        assert index.is_alias(0, 0)

    def test_single_pointer_no_facts(self):
        matrix = PointsToMatrix(1, 1)
        index = _round_trip(matrix)
        assert index.list_points_to(0) == []
        assert not index.is_alias(0, 0)
