"""Interval labelling (Section 3.4.1, Table 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_pestrie
from repro.core.intervals import assign_intervals, contains, cross_edge_interval, group_interval
from repro.core.reachability import tree_descendants, xi_subtree

from conftest import matrices


def _labeled(matrix, order="identity", seed=0):
    pestrie = build_pestrie(matrix, order=order, seed=seed)
    assign_intervals(pestrie)
    return pestrie


class TestPaperTable5:
    def test_exact_timestamps(self, paper_matrix):
        """Reproduce Table 5's I and E rows exactly."""
        pestrie = _labeled(paper_matrix)
        # Node order in Table 5: (o1,p2) p3 p4 p1 (o2,p6) o3 p7 (o4,p5) o5.
        def ts_of_pointer(p):
            return pestrie.pre_order[pestrie.group_of_pointer[p]]

        def ts_of_object(o):
            return pestrie.pre_order[pestrie.group_of_object[o]]

        assert ts_of_object(0) == 0 and ts_of_pointer(1) == 0
        assert ts_of_pointer(2) == 1
        assert ts_of_pointer(3) == 2
        assert ts_of_pointer(0) == 3
        assert ts_of_object(1) == 4 and ts_of_pointer(5) == 4
        assert ts_of_object(2) == 5
        assert ts_of_pointer(6) == 6
        assert ts_of_object(3) == 7 and ts_of_pointer(4) == 7
        assert ts_of_object(4) == 8

        expected_e = {0: 3, 1: 2, 2: 2, 3: 3, 4: 4, 5: 6, 6: 6, 7: 7, 8: 8}
        for group in pestrie.groups:
            i = pestrie.pre_order[group.id]
            assert pestrie.max_pre_order[group.id] == expected_e[i]

    def test_cross_edge_intervals(self, paper_matrix):
        pestrie = _labeled(paper_matrix)
        intervals = sorted(
            cross_edge_interval(pestrie, edge) for edge in pestrie.cross_edges
        )
        # Sub-trees from Table 6: [1,2] (×2 for o2 and o3), [2,2], and the
        # three singletons [1,1], [3,3], [6,6] from o5.
        assert intervals == [(1, 1), (1, 2), (1, 2), (2, 2), (3, 3), (6, 6)]


class TestLabelProperties:
    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_timestamps_are_a_permutation(self, matrix, order):
        pestrie = _labeled(matrix, order=order, seed=5)
        assert sorted(pestrie.pre_order) == list(range(len(pestrie.groups)))
        for group in pestrie.groups:
            assert pestrie.max_pre_order[group.id] >= pestrie.pre_order[group.id]

    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_containment_equals_tree_reachability(self, matrix, order):
        pestrie = _labeled(matrix, order=order, seed=5)
        for group in pestrie.groups:
            descendants = set(tree_descendants(pestrie, group.id))
            outer = group_interval(pestrie, group.id)
            for other in pestrie.groups:
                inner = group_interval(pestrie, other.id)
                assert contains(outer, inner) == (other.id in descendants)

    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_xi_subtree_is_contiguous_range(self, matrix, order):
        """The ξ-reachable nodes of every cross edge form exactly the
        timestamp interval the encoder assigns to it."""
        pestrie = _labeled(matrix, order=order, seed=5)
        for edge in pestrie.cross_edges:
            lo, hi = cross_edge_interval(pestrie, edge)
            expected = {pestrie.pre_order[g] for g in xi_subtree(pestrie, edge)}
            assert expected == set(range(lo, hi + 1))

    @settings(max_examples=40)
    @given(matrices())
    def test_pes_blocks_follow_object_order(self, matrix):
        """PESs occupy consecutive timestamp blocks in object order."""
        pestrie = _labeled(matrix, order="hub")
        previous_end = -1
        for obj in pestrie.object_order:
            origin = pestrie.origin_of_pes(obj)
            lo, hi = group_interval(pestrie, origin.id)
            assert lo == previous_end + 1
            previous_end = hi
        assert previous_end == len(pestrie.groups) - 1

    def test_group_members_share_group_timestamp(self, paper_matrix):
        pestrie = _labeled(paper_matrix)
        for group in pestrie.groups:
            for pointer in group.pointers:
                assert pestrie.group_of_pointer[pointer] == group.id
