"""Rectangle generation and Theorem 2 pruning (Section 3.4.1, Figure 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_pestrie
from repro.core.intervals import assign_intervals
from repro.core.rectangles import generate_rectangles

from conftest import matrices


def _pipeline(matrix, order="identity", seed=0, prune=True):
    pestrie = build_pestrie(matrix, order=order, seed=seed)
    assign_intervals(pestrie)
    return pestrie, generate_rectangles(pestrie, prune=prune)


class TestFigure4:
    def test_exact_rectangles(self, paper_matrix):
        _, rect_set = _pipeline(paper_matrix)
        kept = sorted(entry.rect.as_tuple() for entry in rect_set.rects)
        assert kept == [
            (1, 1, 8, 8),
            (1, 2, 4, 4),
            (1, 2, 5, 6),
            (2, 2, 7, 7),
            (3, 3, 6, 6),
            (3, 3, 8, 8),
            (6, 6, 8, 8),
        ]

    def test_pruned_rectangle(self, paper_matrix):
        """<1,1,6,6> ({p3} × {p7} via o5) is inside <1,2,5,6> and dropped."""
        _, rect_set = _pipeline(paper_matrix)
        assert [r.as_tuple() for r in rect_set.pruned] == [(1, 1, 6, 6)]

    def test_case1_classification(self, paper_matrix):
        _, rect_set = _pipeline(paper_matrix)
        case1 = sorted(entry.rect.as_tuple() for entry in rect_set.case1())
        # Every origin's cross subtrees pair with its PES block: o2, o3,
        # o4, and o5's three.
        assert case1 == [
            (1, 1, 8, 8),
            (1, 2, 4, 4),
            (1, 2, 5, 6),
            (2, 2, 7, 7),
            (3, 3, 8, 8),
            (6, 6, 8, 8),
        ]
        case2 = sorted(entry.rect.as_tuple() for entry in rect_set.case2())
        assert case2 == [(3, 3, 6, 6)]

    def test_case1_object_ids(self, paper_matrix):
        _, rect_set = _pipeline(paper_matrix)
        for entry in rect_set.case1():
            assert entry.object_id >= 0
        by_tuple = {e.rect.as_tuple(): e.object_id for e in rect_set.case1()}
        assert by_tuple[(1, 2, 5, 6)] == 2  # {p3,p4} point to o3
        assert by_tuple[(1, 1, 8, 8)] == 4  # {p3} points to o5

    def test_same_pes_pair_not_encoded(self, paper_matrix):
        """{p3} × {p1} of origin o5 is an internal pair: no rectangle."""
        _, rect_set = _pipeline(paper_matrix)
        tuples = {entry.rect.as_tuple() for entry in rect_set.rects}
        assert (1, 1, 3, 3) not in tuples
        assert not any(r.as_tuple() == (1, 1, 3, 3) for r in rect_set.pruned)


class TestTheorem2:
    @settings(max_examples=60, deadline=None)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_kept_rectangles_pairwise_disjoint(self, matrix, order):
        _, rect_set = _pipeline(matrix, order=order, seed=3)
        rects = [entry.rect for entry in rect_set.rects]
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                a, b = rects[i], rects[j]
                x_overlap = not (a.x2 < b.x1 or b.x2 < a.x1)
                y_overlap = not (a.y2 < b.y1 or b.y2 < a.y1)
                assert not (x_overlap and y_overlap), (a, b)

    @settings(max_examples=60, deadline=None)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_pruned_rectangles_fully_enclosed(self, matrix, order):
        _, rect_set = _pipeline(matrix, order=order, seed=3)
        for pruned in rect_set.pruned:
            assert any(entry.rect.encloses(pruned) for entry in rect_set.rects), pruned

    @settings(max_examples=60, deadline=None)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_case1_never_pruned(self, matrix, order):
        """ListPointsTo completeness rests on this (see rectangles.py)."""
        pestrie, rect_set = _pipeline(matrix, order=order, seed=3)
        # Count expected Case-1 rectangles: one per cross edge.
        assert len(rect_set.case1()) == len(pestrie.cross_edges)

    @settings(max_examples=40, deadline=None)
    @given(matrices())
    def test_pruning_only_removes_redundancy(self, matrix):
        """Pruned and unpruned rectangle sets cover the same point set."""
        _, with_pruning = _pipeline(matrix, prune=True)
        _, without = _pipeline(matrix, prune=False)

        def covered(rect_set):
            points = set()
            for entry in rect_set.rects:
                rect = entry.rect
                for x in range(rect.x1, rect.x2 + 1):
                    for y in range(rect.y1, rect.y2 + 1):
                        points.add((x, y))
            return points

        assert covered(with_pruning) == covered(without)


class TestRectangleSemantics:
    @settings(max_examples=50, deadline=None)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_rectangles_encode_exactly_the_cross_pairs(self, matrix, order):
        """(ts_p, ts_q) is covered ⟺ p, q alias across different PESs."""
        pestrie, rect_set = _pipeline(matrix, order=order, seed=9)
        rects = [entry.rect for entry in rect_set.rects]

        def covered(x, y):
            if x > y:
                x, y = y, x
            return any(r.covers(x, y) for r in rects)

        for p in range(matrix.n_pointers):
            gp = pestrie.group_of_pointer[p]
            if gp is None:
                continue
            for q in range(matrix.n_pointers):
                gq = pestrie.group_of_pointer[q]
                if gq is None or q <= p:
                    continue
                same_pes = pestrie.groups[gp].pes == pestrie.groups[gq].pes
                is_alias = matrix.is_alias(p, q)
                ts_p = pestrie.pre_order[gp]
                ts_q = pestrie.pre_order[gq]
                if same_pes:
                    continue  # internal pairs are not rectangle-encoded
                assert covered(ts_p, ts_q) == is_alias, (p, q)

    def test_requires_interval_labels(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        with pytest.raises(ValueError, match="interval labels"):
            generate_rectangles(pestrie)
