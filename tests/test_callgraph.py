"""Call graph construction, edge numbering, SCCs."""

from repro.analysis.callgraph import CallGraph
from repro.analysis.parser import parse_program

CHAIN = """
func c() {
  return
}

func b() {
  call c()
  return
}

func a() {
  call b()
  call c()
  return
}

func main() {
  call a()
  return
}

func dead() {
  call c()
  return
}
"""

MUTUAL = """
func even(n) {
  call odd(n)
  return n
}

func odd(n) {
  call even(n)
  return n
}

func main() {
  x = alloc A
  call even(x)
  return
}
"""


class TestCallGraph:
    def test_sites_and_ids(self):
        graph = CallGraph(parse_program(CHAIN))
        assert graph.edge_count() == 5
        labels = {site.label for site in graph.sites}
        assert "a@0->b" in labels
        assert "a@1->c" in labels
        # Ids are dense and unique.
        assert sorted(graph.site_ids.values()) == list(range(5))

    def test_callees_and_callers(self):
        graph = CallGraph(parse_program(CHAIN))
        assert graph.callees("a") == ["b", "c"]
        assert sorted(graph.callers("c")) == ["a", "b", "dead"]
        assert graph.callers("main") == []

    def test_reachable(self):
        graph = CallGraph(parse_program(CHAIN))
        assert graph.reachable("main") == {"main", "a", "b", "c"}
        assert "dead" not in graph.reachable("main")

    def test_sccs_reverse_topological(self):
        graph = CallGraph(parse_program(CHAIN))
        components = graph.topological_sccs()
        order = {frozenset(c): i for i, c in enumerate(components)}
        # Callee components come before caller components.
        assert order[frozenset(["c"])] < order[frozenset(["b"])]
        assert order[frozenset(["b"])] < order[frozenset(["a"])]
        assert order[frozenset(["a"])] < order[frozenset(["main"])]

    def test_mutual_recursion_single_scc(self):
        graph = CallGraph(parse_program(MUTUAL))
        components = graph.topological_sccs()
        assert ["even", "odd"] in [sorted(c) for c in components]

    def test_self_recursion(self):
        source = "func main() {\n  call main()\n  return\n}\n"
        graph = CallGraph(parse_program(source))
        assert graph.callees("main") == ["main"]
        assert [sorted(c) for c in graph.topological_sccs()] == [["main"]]

    def test_calls_inside_blocks_counted(self):
        source = (
            "func f() {\n  return\n}\n"
            "func main() {\n  if {\n    call f()\n  }\n  while {\n    call f()\n  }\n  return\n}\n"
        )
        graph = CallGraph(parse_program(source))
        assert len(graph.out_sites("main")) == 2
        assert [site.index for site in graph.out_sites("main")] == [0, 1]
