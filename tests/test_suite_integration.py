"""Integration on real suite subjects: every backend, sampled queries.

The benchmark fixtures exercise this too, but the benches time things; this
is the pure correctness cut, on the two smallest subjects (one per analysis
family) so the whole module stays fast.
"""

import pytest

from repro.baselines.bitmap_persist import BitmapPersistence
from repro.baselines.demand import DemandDriven
from repro.bench.suite import get_subject
from repro.core.pipeline import encode, index_from_bytes

import io


@pytest.fixture(scope="module", params=["luindex", "postgreSQL"])
def loaded(request):
    subject = get_subject(request.param)
    matrix = subject.matrix
    pestrie = index_from_bytes(encode(matrix))
    segment = index_from_bytes(encode(matrix), mode="segment")
    buffer = io.BytesIO()
    BitmapPersistence.encode(matrix, buffer)
    buffer.seek(0)
    bitp = BitmapPersistence.decode(buffer)
    demand = DemandDriven(matrix)
    return subject, matrix, pestrie, segment, bitp, demand


def _sample(n, count=40):
    stride = max(1, n // count)
    return range(0, n, stride)


class TestSuiteBackendsAgree:
    def test_is_alias(self, loaded):
        _, matrix, pestrie, segment, bitp, demand = loaded
        for p in _sample(matrix.n_pointers):
            for q in _sample(matrix.n_pointers):
                expected = matrix.is_alias(p, q)
                assert pestrie.is_alias(p, q) == expected, (p, q)
                assert segment.is_alias(p, q) == expected, (p, q)
                assert bitp.is_alias(p, q) == expected, (p, q)
                assert demand.is_alias(p, q) == expected, (p, q)

    def test_list_queries(self, loaded):
        _, matrix, pestrie, segment, bitp, _ = loaded
        for p in _sample(matrix.n_pointers):
            expected_pts = matrix.list_points_to(p)
            assert sorted(pestrie.list_points_to(p)) == expected_pts
            assert sorted(segment.list_points_to(p)) == expected_pts
            assert bitp.list_points_to(p) == expected_pts
            expected_aliases = matrix.list_aliases(p)
            assert sorted(pestrie.list_aliases(p)) == expected_aliases
            assert sorted(segment.list_aliases(p)) == expected_aliases
            assert bitp.list_aliases(p) == expected_aliases
        for obj in _sample(matrix.n_objects):
            expected = matrix.list_pointed_by(obj)
            assert sorted(pestrie.list_pointed_by(obj)) == expected
            assert bitp.list_pointed_by(obj) == expected

    def test_round_trip(self, loaded):
        _, matrix, pestrie, _, _, _ = loaded
        assert pestrie.materialize() == matrix

    def test_base_pointers_are_queryable(self, loaded):
        subject, matrix, pestrie, _, _, _ = loaded
        for p in subject.base_pointers[:50]:
            pestrie.list_aliases(p)  # must not raise

    def test_compact_format_agrees(self, loaded):
        _, matrix, pestrie, _, _, _ = loaded
        compact = index_from_bytes(encode(matrix, compact=True))
        for p in _sample(matrix.n_pointers, count=20):
            assert compact.list_points_to(p) == pestrie.list_points_to(p)

    def test_bulk_pairs_match_pairwise(self, loaded):
        subject, matrix, pestrie, _, _, _ = loaded
        base = set(subject.base_pointers[:120])
        bulk = {
            pair for pair in pestrie.iter_alias_pairs()
            if pair[0] in base and pair[1] in base
        }
        pairwise = {
            (p, q)
            for p in base
            for q in base
            if p < q and matrix.is_alias(p, q)
        }
        assert bulk == pairwise
