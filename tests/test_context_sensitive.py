"""k-callsite cloning with heap cloning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import andersen, context_sensitive
from repro.analysis.parser import parse_program
from repro.analysis.transform import context_sensitive_to_matrix
from repro.bench.programs import ProgramSpec, generate_program

FACTORY = """
func make() {
  m = alloc M
  return m
}

func main() {
  p = call make()
  q = call make()
  return
}
"""

WRAPPED = """
func make() {
  m = alloc M
  return m
}

func wrap() {
  w = call make()
  return w
}

func main() {
  p = call wrap()
  q = call wrap()
  return
}
"""

RECURSIVE = """
func rec(x) {
  y = call rec(x)
  return x
}

func main() {
  a = alloc A
  r = call rec(a)
  return
}
"""


class TestHeapCloning:
    def test_one_callsite_distinguishes_factory_calls(self):
        result = context_sensitive.analyze(parse_program(FACTORY), k=1)
        symbols = result.symbols

        def pts(name):
            return {
                symbols.site_names()[o]
                for o in result.andersen.var_pts[symbols.variable("main", name)]
            }

        p_objects = pts("p")
        q_objects = pts("q")
        assert len(p_objects) == 1
        assert len(q_objects) == 1
        assert p_objects != q_objects, "heap cloning must split the two calls"

    def test_context_insensitive_merges_them(self):
        result = andersen.analyze(parse_program(FACTORY))
        assert result.pts_of("main", "p") == result.pts_of("main", "q")

    def test_k1_insufficient_through_wrapper(self):
        """With k=1, both wrap() calls share make()'s single context."""
        result = context_sensitive.analyze(parse_program(WRAPPED), k=1)
        symbols = result.symbols
        p = set(result.andersen.var_pts[symbols.variable("main", "p")])
        q = set(result.andersen.var_pts[symbols.variable("main", "q")])
        assert p == q

    def test_k2_distinguishes_through_wrapper(self):
        result = context_sensitive.analyze(parse_program(WRAPPED), k=2)
        symbols = result.symbols
        p = set(result.andersen.var_pts[symbols.variable("main", "p")])
        q = set(result.andersen.var_pts[symbols.variable("main", "q")])
        assert p != q

    def test_k0_equals_context_insensitive(self):
        cs = context_sensitive.analyze(parse_program(FACTORY), k=0)
        assert cs.clone_count() == 2  # no cloning at all

    def test_recursion_k_limited(self):
        """k-limiting keeps the clone set finite under recursion."""
        result = context_sensitive.analyze(parse_program(RECURSIVE), k=2)
        assert result.clone_count() < 10
        # And the answer is still sound: r sees A.
        symbols = result.symbols
        r = set(result.andersen.var_pts[symbols.variable("main", "r")])
        assert len(r) == 1

    def test_negative_k_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            context_sensitive.explode(parse_program(FACTORY), k=-1)

    def test_unreachable_functions_still_analyzed(self):
        source = FACTORY + "\nfunc orphan() {\n  z = alloc Z\n  return z\n}\n"
        result = context_sensitive.analyze(parse_program(source), k=1)
        names = set(result.cloned.functions)
        assert "orphan" in names

    def test_contexts_of(self):
        result = context_sensitive.analyze(parse_program(FACTORY), k=1)
        contexts = result.contexts_of("make")
        assert len(contexts) == 2


class TestSoundness:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([1, 2]))
    def test_merged_result_covers_context_insensitive_precision(self, seed, k):
        """Collapsing all contexts of the CS result must give back a matrix
        within the CI result (CS refines CI) and covering every CI fact
        that involves reachable code (CS is sound)."""
        spec = ProgramSpec(
            name="t", n_functions=5, statements_per_function=8, n_types=3, seed=seed,
            call_fanout=2,
        )
        program = generate_program(spec)
        ci = andersen.analyze(program)
        cs = context_sensitive.analyze(program, k=k)

        ci_names = ci.symbols.variable_names()
        ci_sites = ci.symbols.site_names()
        ci_facts = set()
        for var, pts in enumerate(ci.var_pts):
            for obj in pts:
                ci_facts.add((ci_names[var], ci_sites[obj]))

        def strip(name, info):
            if "::" not in name:
                return name
            clone, _, bare = name.partition("::")
            return "%s::%s" % (info[clone][0], bare)

        cs_names = cs.symbols.variable_names()
        cs_sites = cs.symbols.site_names()
        cs_facts = set()
        for var, pts in enumerate(cs.andersen.var_pts):
            for obj in pts:
                cs_facts.add(
                    (strip(cs_names[var], cs.clone_info), strip(cs_sites[obj], cs.clone_info))
                )
        # Refinement: merging contexts never invents facts.
        assert cs_facts <= ci_facts


class TestTransform:
    def test_merged_matrix_names(self):
        result = context_sensitive.analyze(parse_program(FACTORY), k=1)
        named = context_sensitive_to_matrix(result, merge_depth=1)
        objects = set(named.object_index)
        # Two cloned heap objects named by their merged (1-callsite) context.
        cloned = {name for name in objects if name.startswith("make[")}
        assert len(cloned) == 2

    def test_merge_depth_zero_collapses_everything(self):
        result = context_sensitive.analyze(parse_program(FACTORY), k=1)
        named = context_sensitive_to_matrix(result, merge_depth=0)
        assert set(named.object_index) == {"make::M"}

    def test_globals_stay_context_free(self):
        source = "global g\n" + FACTORY.replace("return\n}", "g = p\n  return\n}", 1)
        result = context_sensitive.analyze(parse_program(source), k=1)
        named = context_sensitive_to_matrix(result)
        assert "g" in named.pointer_index
