"""The two query-structure modes must answer identically."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.core.pipeline import encode, index_from_bytes

from conftest import matrices


class TestSegmentMode:
    def test_unknown_mode_rejected(self, paper_matrix):
        with pytest.raises(ValueError, match="unknown query mode"):
            index_from_bytes(encode(paper_matrix), mode="btree")

    def test_paper_example_agrees(self, paper_matrix):
        data = encode(paper_matrix, order="identity")
        ptlist = index_from_bytes(data, mode="ptlist")
        segment = index_from_bytes(data, mode="segment")
        for p in range(7):
            assert sorted(segment.list_points_to(p)) == sorted(ptlist.list_points_to(p))
            assert sorted(segment.list_aliases(p)) == sorted(ptlist.list_aliases(p))
            for q in range(7):
                assert segment.is_alias(p, q) == ptlist.is_alias(p, q)
        for obj in range(5):
            assert sorted(segment.list_pointed_by(obj)) == sorted(
                ptlist.list_pointed_by(obj)
            )

    @settings(max_examples=60)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_modes_agree_on_any_matrix(self, matrix, order):
        data = encode(matrix, order=order, seed=3)
        ptlist = index_from_bytes(data, mode="ptlist")
        segment = index_from_bytes(data, mode="segment")
        assert segment.materialize() == ptlist.materialize() == matrix
        for p in range(matrix.n_pointers):
            assert sorted(segment.list_aliases(p)) == sorted(ptlist.list_aliases(p))
            for q in range(matrix.n_pointers):
                assert segment.is_alias(p, q) == ptlist.is_alias(p, q)

    def test_memory_trade_on_synthetic(self):
        """Segment mode must not use more memory than the column lists on a
        hub-structured matrix (whose rectangles are wide)."""
        matrix = synthesize(SyntheticSpec(n_pointers=600, n_objects=150, seed=21))
        data = encode(matrix)
        ptlist = index_from_bytes(data, mode="ptlist")
        segment = index_from_bytes(data, mode="segment")
        assert segment.memory_footprint() <= ptlist.memory_footprint()
        # And both answer a sample identically.
        for p in range(0, 600, 37):
            assert sorted(segment.list_aliases(p)) == sorted(ptlist.list_aliases(p))

    def test_segment_mode_guards(self, paper_matrix):
        segment = index_from_bytes(encode(paper_matrix), mode="segment")
        with pytest.raises(IndexError):
            segment.is_alias(0, 99)
