"""Pestrie construction invariants (Section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_pestrie, resolve_order
from repro.matrix.points_to import PointsToMatrix

from conftest import matrices


class TestPaperExample:
    """Table 4's partitioning, step by step (identity object order)."""

    def test_final_groups(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        members = {
            (group.object_id, tuple(sorted(group.pointers)))
            for group in pestrie.groups
        }
        # Final state after step 5 (pointer ids are paper ids minus one).
        assert members == {
            (0, (1,)),  # group-1: o1, p2
            (1, (5,)),  # group-2: o2, p6
            (None, (2,)),  # group-3: p3
            (2, ()),  # group-4: o3
            (3, (4,)),  # group-5: o4, p5
            (None, (3,)),  # p4, extracted in step 4
            (4, ()),  # o5's origin
            (None, (0,)),  # p1, extracted in step 5
            (None, (6,)),  # p7, extracted in step 5
        }

    def test_cross_edge_count_and_xi_values(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        assert len(pestrie.cross_edges) == 6
        # The cross edge o5 -> group(p3) was built after the tree edge
        # group(p3) -> group(p4), so its ξ-value is 1 (Example 2).
        o5_origin = pestrie.group_of_object[4]
        p3_group = pestrie.group_of_pointer[2]
        (edge,) = [
            e for e in pestrie.cross_edges
            if e.source == o5_origin and e.target == p3_group
        ]
        assert edge.xi == 1

    def test_pes_identifiers(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        # p2, p3, p4, p1 belong to PES o1; p6 to PES o2; p5 to PES o4.
        assert pestrie.pes_of_pointer(1) == 0
        assert pestrie.pes_of_pointer(2) == 0
        assert pestrie.pes_of_pointer(3) == 0
        assert pestrie.pes_of_pointer(0) == 0
        assert pestrie.pes_of_pointer(5) == 1
        assert pestrie.pes_of_pointer(4) == 3
        assert pestrie.pes_of_pointer(6) == 2

    def test_internal_pairs(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        # PES o1 holds 4 pointers -> C(4,2) = 6 internal pairs.
        assert pestrie.internal_pair_count() == 6

    def test_stats_keys(self, paper_matrix):
        stats = build_pestrie(paper_matrix, order="identity").stats()
        assert stats == {"groups": 9, "cross_edges": 6, "internal_pairs": 6}


class TestStructuralInvariants:
    @settings(max_examples=80)
    @given(matrices(), st.sampled_from(["hub", "identity", "simple", "random"]))
    def test_invariants(self, matrix, order):
        pestrie = build_pestrie(matrix, order=order, seed=7)

        # Every object owns exactly one origin group containing it alone.
        for obj in range(matrix.n_objects):
            origin = pestrie.origin_of_pes(obj)
            assert origin.object_id == obj
            assert origin.pes == obj

        # Groups partition the tracked pointers.
        seen = {}
        for group in pestrie.groups:
            for pointer in group.pointers:
                assert pointer not in seen
                seen[pointer] = group.id
        for pointer in range(matrix.n_pointers):
            expected = seen.get(pointer)
            assert pestrie.group_of_pointer[pointer] == expected
            if matrix.rows[pointer]:
                assert expected is not None, "non-empty pointer missing from trie"
            else:
                assert expected is None, "empty pointer must stay out of the trie"

        # Pointers in one group have identical points-to sets (ES property).
        for group in pestrie.groups:
            if len(group.pointers) > 1:
                first = matrix.rows[group.pointers[0]]
                for other in group.pointers[1:]:
                    assert matrix.rows[other] == first

        # Tree-edge labels are creation-ordered; children know parents.
        for group in pestrie.groups:
            for label, child_id in enumerate(group.children):
                child = pestrie.groups[child_id]
                assert child.parent == group.id
                assert child.parent_label == label
                assert child.pes == group.pes

        # Cross edges start at origins, end at non-origins, and ξ matches
        # the target's tree-edge count at creation time (≤ current count).
        for edge in pestrie.cross_edges:
            assert pestrie.groups[edge.source].is_origin
            assert not pestrie.groups[edge.target].is_origin
            assert 0 <= edge.xi <= pestrie.groups[edge.target].tree_edge_count()

    @settings(max_examples=40)
    @given(matrices())
    def test_pes_membership_implies_points_to_origin(self, matrix):
        pestrie = build_pestrie(matrix, order="hub")
        for pointer in range(matrix.n_pointers):
            pes = pestrie.pes_of_pointer(pointer)
            if pes is not None:
                assert matrix.has(pointer, pes)

    @settings(max_examples=40)
    @given(matrices())
    def test_complexity_bounds(self, matrix):
        pestrie = build_pestrie(matrix)
        n, m = matrix.n_pointers, matrix.n_objects
        assert len(pestrie.groups) <= n + m
        assert len(pestrie.cross_edges) <= matrix.fact_count()


class TestOrderResolution:
    def test_explicit_order_wins(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="hub", explicit_order=[4, 3, 2, 1, 0])
        assert pestrie.object_order == [4, 3, 2, 1, 0]

    def test_unknown_order_rejected(self, paper_matrix):
        with pytest.raises(ValueError, match="unknown object order"):
            build_pestrie(paper_matrix, order="alphabetical")

    def test_resolve_order_names(self, paper_matrix):
        for name in ("hub", "simple", "random", "identity"):
            order = resolve_order(paper_matrix, name, seed=3)
            assert sorted(order) == [0, 1, 2, 3, 4]

    def test_empty_matrix(self):
        matrix = PointsToMatrix(0, 0)
        pestrie = build_pestrie(matrix)
        assert pestrie.groups == []
        assert pestrie.cross_edges == []

    def test_objects_without_pointers(self):
        matrix = PointsToMatrix(2, 3)
        matrix.add(0, 1)
        pestrie = build_pestrie(matrix)
        assert len(pestrie.groups) == 3  # one origin per object
        assert pestrie.group_of_pointer[1] is None
