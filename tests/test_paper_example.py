"""End-to-end reproduction of the paper's worked example (Tables 3-6,
Figures 2 and 4): one test per published artefact, full pipeline."""

from repro.core.builder import build_pestrie
from repro.core.intervals import assign_intervals
from repro.core.pipeline import encode, index_from_bytes
from repro.core.rectangles import generate_rectangles

P1, P2, P3, P4, P5, P6, P7 = range(7)
O1, O2, O3, O4, O5 = range(5)


def test_table_3_matrix_shape(paper_matrix):
    assert paper_matrix.n_pointers == 7
    assert paper_matrix.n_objects == 5
    assert paper_matrix.fact_count() == 15
    transposed = paper_matrix.transpose()
    assert transposed.list_points_to(O1) == [P1, P2, P3, P4]
    assert transposed.list_points_to(O2) == [P3, P4, P6]
    assert transposed.list_points_to(O3) == [P3, P4, P7]
    assert transposed.list_points_to(O4) == [P4, P5]
    assert transposed.list_points_to(O5) == [P1, P3, P7]


def test_figure_2_structure(paper_matrix):
    pestrie = build_pestrie(paper_matrix, order="identity")
    # Nine ES nodes, five PESs, six cross edges.
    assert len(pestrie.groups) == 9
    assert len({group.pes for group in pestrie.groups}) == 5
    assert len(pestrie.cross_edges) == 6
    # (p3, p4) is an internal pair (Example 1).
    assert pestrie.pes_of_pointer(P3) == pestrie.pes_of_pointer(P4) == O1


def test_table_5_interval_labels(paper_matrix):
    pestrie = build_pestrie(paper_matrix, order="identity")
    assign_intervals(pestrie)
    labels = {}
    for group in pestrie.groups:
        labels[pestrie.pre_order[group.id]] = pestrie.max_pre_order[group.id]
    assert labels == {0: 3, 1: 2, 2: 2, 3: 3, 4: 4, 5: 6, 6: 6, 7: 7, 8: 8}


def test_table_6_and_figure_4_rectangles(paper_matrix):
    pestrie = build_pestrie(paper_matrix, order="identity")
    assign_intervals(pestrie)
    rect_set = generate_rectangles(pestrie)
    assert sorted(e.rect.as_tuple() for e in rect_set.rects) == [
        (1, 1, 8, 8),
        (1, 2, 4, 4),
        (1, 2, 5, 6),
        (2, 2, 7, 7),
        (3, 3, 6, 6),
        (3, 3, 8, 8),
        (6, 6, 8, 8),
    ]
    assert [r.as_tuple() for r in rect_set.pruned] == [(1, 1, 6, 6)]


def test_figure_5_file_size(paper_matrix):
    """'Five of the seven rectangles are points and one of them is a line,
    which requires only thirteen integers to be stored' — 5×2 + 1×3 = 13
    integers for the degenerate shapes (the one full rectangle adds 4)."""
    pestrie = build_pestrie(paper_matrix, order="identity")
    assign_intervals(pestrie)
    rect_set = generate_rectangles(pestrie)
    points = lines = full = 0
    for entry in rect_set.rects:
        rect = entry.rect
        if rect.x1 == rect.x2 and rect.y1 == rect.y2:
            points += 1
        elif rect.x1 == rect.x2 or rect.y1 == rect.y2:
            lines += 1
        else:
            full += 1
    assert (points, lines, full) == (5, 1, 1)
    assert 2 * points + 3 * lines == 13


def test_full_query_round_trip(paper_matrix):
    index = index_from_bytes(encode(paper_matrix, order="identity"))

    # Example 2: p4 does not point to o5 despite the graph path.
    assert O5 not in index.list_points_to(P4)
    assert sorted(index.list_points_to(P4)) == [O1, O2, O3, O4]

    # Case-1 pair (p4, p7) via o3; Case-2 pair (p1, p7) via o5.
    assert index.is_alias(P4, P7)
    assert index.is_alias(P1, P7)
    # Internal pair (p3, p4).
    assert index.is_alias(P3, P4)
    # Non-aliases.
    assert not index.is_alias(P5, P6)
    assert not index.is_alias(P2, P5)

    assert sorted(index.list_pointed_by(O5)) == [P1, P3, P7]
    assert sorted(index.list_aliases(P2)) == [P1, P3, P4]
    assert index.materialize() == paper_matrix
