"""The Appendix A standard trie and the Lemma 3 correspondence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_pestrie
from repro.core.trie import StandardTrie, lemma_3_holds
from repro.matrix.points_to import PointsToMatrix

from conftest import matrices


class TestStandardTrie:
    def test_paper_example_trace(self, paper_matrix):
        """Figure 8 walks the first four rows; the node counts must line up
        with the Pestrie cross-edge counts per Lemma 3 (|T| - j)."""
        trie = StandardTrie(paper_matrix).process_all()
        # Full build: 6 cross edges in the Pestrie, 5 rows -> 11 nodes.
        assert trie.size_trace[-1] == 11
        assert trie.node_count() == 11

    def test_trace_is_monotone(self, paper_matrix):
        trie = StandardTrie(paper_matrix).process_all()
        assert trie.size_trace == sorted(trie.size_trace)
        # Each row inserts at least one node (the object's own tail edge).
        previous = 0
        for value in trie.size_trace:
            assert value > previous
            previous = value

    def test_empty_matrix(self):
        trie = StandardTrie(PointsToMatrix(0, 0)).process_all()
        assert trie.node_count() == 0
        assert trie.size_trace == []

    def test_object_only_rows(self):
        """Objects nobody points to still add their own tail node."""
        matrix = PointsToMatrix(2, 3)
        trie = StandardTrie(matrix).process_all()
        assert trie.node_count() == 3

    def test_shared_prefixes_share_nodes(self):
        # Two pointers with identical rows walk the same path.
        matrix = PointsToMatrix.from_rows([[0, 1], [0, 1]], 2)
        trie = StandardTrie(matrix).process_all()
        # Nodes: shared path of length 2 for both pointers + o1 tail + o2
        # tail chain.
        distinct = PointsToMatrix.from_rows([[0], [1]], 2)
        assert trie.node_count() <= StandardTrie(distinct).process_all().node_count() + 2


class TestLemma3:
    def test_paper_example_all_orders(self, paper_matrix):
        assert lemma_3_holds(paper_matrix)
        assert lemma_3_holds(paper_matrix, [4, 3, 2, 1, 0])
        assert lemma_3_holds(paper_matrix, [2, 0, 4, 1, 3])

    @settings(max_examples=30, deadline=None)
    @given(matrices(max_pointers=8, max_objects=5), st.integers(0, 100))
    def test_lemma_3_random(self, matrix, seed):
        import random

        order = list(range(matrix.n_objects))
        random.Random(seed).shuffle(order)
        assert lemma_3_holds(matrix, order)

    def test_final_counts_directly(self, paper_matrix):
        """Cross edges == trie nodes − m, without the prefix machinery."""
        pestrie = build_pestrie(paper_matrix, order="identity")
        trie = StandardTrie(paper_matrix).process_all()
        assert len(pestrie.cross_edges) == trie.node_count() - paper_matrix.n_objects
