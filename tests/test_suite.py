"""The evaluation suite (Table 2 stand-ins)."""

import pytest

from repro.bench.suite import (
    BDD_SUBJECTS,
    SUBJECT_NAMES,
    SUITE,
    _stem_of,
    build_subject,
    get_subject,
    suite_table,
)


class TestSuiteDefinition:
    def test_twelve_subjects_in_paper_order(self):
        assert len(SUITE) == 12
        assert SUBJECT_NAMES[:4] == ("samba", "gs", "php", "postgreSQL")
        assert SUBJECT_NAMES[4:8] == ("antlr", "luindex", "bloat", "chart")
        assert SUBJECT_NAMES[8:] == ("batik", "sunflow", "tomcat", "fop")

    def test_language_groups(self):
        for spec in SUITE[:4]:
            assert spec.language == "C"
            assert spec.analysis == "flow-sensitive"
        for spec in SUITE[4:]:
            assert spec.language == "Java"

    def test_bdd_subjects_are_the_paddle_group(self):
        assert BDD_SUBJECTS == ("antlr", "luindex", "bloat", "chart")

    def test_unknown_subject(self):
        with pytest.raises(KeyError):
            get_subject("doom")


class TestStemOf:
    def test_flow_sensitive_names(self):
        assert _stem_of("main::p@L7") == "main::p"
        assert _stem_of("use::x@entry(use)") == "use::x"

    def test_context_names(self):
        assert _stem_of("f3[12]::v2") == "f3::v2"
        assert _stem_of("f3[12,9]::v2") == "f3::v2"
        assert _stem_of("f3::v2") == "f3::v2"

    def test_global_names(self):
        assert _stem_of("g4") == "g4"


class TestBuiltSubjects:
    """Build the two smallest subjects (one per analysis family)."""

    def test_flow_sensitive_subject(self):
        subject = build_subject(SUITE[3])  # postgreSQL, smallest C subject
        assert subject.loc > 1000
        assert subject.matrix.n_pointers > 1000
        assert subject.base_pointers, "load/store base pointers must exist"
        assert all(
            0 <= p < subject.matrix.n_pointers for p in subject.base_pointers
        )
        assert subject.base_pointers == sorted(set(subject.base_pointers))

    def test_context_sensitive_subject(self):
        subject = build_subject(SUITE[5])  # luindex, smallest Java subject
        assert subject.matrix.n_pointers > 300
        # Heap cloning produced context-qualified object names.
        assert any("[" in name for name in subject.named.object_index)

    def test_get_subject_cached(self):
        first = get_subject("luindex")
        second = get_subject("luindex")
        assert first is second

    def test_suite_table_shape(self):
        rows = suite_table()
        assert len(rows) == 12
        assert rows[0]["Program"] == "samba"
        for row in rows:
            assert row["#Pointers"] > 0
            assert row["#Objects"] > 0
