"""End-to-end integration: program → analysis → persistence → queries.

Every backend (Pestrie, BitP, BDD, bzip+demand) must answer identically on
the same analysed program, through real files on disk.
"""

import pytest

from repro.analysis import andersen, flow_sensitive
from repro.analysis.parser import parse_program
from repro.analysis.transform import flow_sensitive_to_matrix
from repro.baselines.bitmap_persist import BitmapPersistence
from repro.baselines.bzip_persist import BzipPersistence
from repro.baselines.demand import DemandDriven
from repro.bdd.encode import encode_matrix
from repro.bdd.persist import BddPersistence
from repro.bench.programs import ProgramSpec, generate_program
from repro.core.pipeline import load_index, persist

SOURCE = """
global cache

func box(v) {
  b = alloc Box
  *b = v
  return b
}

func main() {
  x = alloc X
  y = alloc Y
  bx = call box(x)
  by = call box(y)
  cache = bx
  z = *bx
  w = *cache
  return
}
"""


@pytest.fixture(scope="module")
def analysed():
    program = parse_program(SOURCE)
    result = andersen.analyze(program)
    return program, result, result.to_matrix()


@pytest.fixture(scope="module")
def generated_matrix():
    spec = ProgramSpec(name="int", n_functions=12, statements_per_function=14,
                       n_types=5, seed=77)
    program = generate_program(spec)
    named = flow_sensitive_to_matrix(flow_sensitive.analyze(program))
    return named.matrix


class TestBackendsAgree:
    def test_all_backends_on_handwritten_program(self, analysed, tmp_path):
        _, result, matrix = analysed

        pes_path = str(tmp_path / "a.pes")
        persist(matrix, pes_path)
        pestrie = load_index(pes_path)

        bitp_path = str(tmp_path / "a.bitp")
        BitmapPersistence.encode_to_file(matrix, bitp_path)
        bitp = BitmapPersistence.decode_from_file(bitp_path)

        bdd_path = str(tmp_path / "a.bdd")
        BddPersistence.encode_to_file(encode_matrix(matrix), bdd_path)
        bdd = BddPersistence.decode_from_file(bdd_path)

        bz_path = str(tmp_path / "a.bz")
        BzipPersistence.encode_to_file(matrix, bz_path)
        demand = DemandDriven(BzipPersistence.decode_from_file(bz_path))

        for p in range(matrix.n_pointers):
            expected_pts = matrix.list_points_to(p)
            assert sorted(pestrie.list_points_to(p)) == expected_pts
            assert bitp.list_points_to(p) == expected_pts
            assert bdd.list_points_to(p) == expected_pts
            assert demand.list_points_to(p) == expected_pts

            expected_aliases = matrix.list_aliases(p)
            assert sorted(pestrie.list_aliases(p)) == expected_aliases
            assert bitp.list_aliases(p) == expected_aliases
            assert bdd.list_aliases(p) == expected_aliases
            assert demand.list_aliases(p) == expected_aliases

        for obj in range(matrix.n_objects):
            expected = matrix.list_pointed_by(obj)
            assert sorted(pestrie.list_pointed_by(obj)) == expected
            assert bitp.list_pointed_by(obj) == expected
            assert bdd.list_pointed_by(obj) == expected

    def test_semantic_spot_checks(self, analysed):
        _, result, matrix = analysed
        symbols = result.symbols
        bx = symbols.variable("main", "bx")
        by = symbols.variable("main", "by")
        cache = symbols.variable(None, "cache")
        z = symbols.variable("main", "z")
        x = symbols.variable("main", "x")
        # Context-insensitive box(): bx and by both get Box; cache aliases bx.
        assert matrix.is_alias(bx, by)
        assert matrix.is_alias(bx, cache)
        # z = *bx sees both X and Y (merged cells), hence aliases x.
        assert matrix.is_alias(z, x)

    def test_pestrie_on_flow_sensitive_output(self, generated_matrix, tmp_path):
        matrix = generated_matrix
        path = str(tmp_path / "fs.pes")
        size = persist(matrix, path)
        assert size > 0
        index = load_index(path)
        assert index.materialize() == matrix

    def test_compact_and_raw_agree(self, generated_matrix, tmp_path):
        matrix = generated_matrix
        raw_path = str(tmp_path / "m.pes")
        compact_path = str(tmp_path / "m.pesz")
        raw_size = persist(matrix, raw_path, compact=False)
        compact_size = persist(matrix, compact_path, compact=True)
        assert compact_size < raw_size
        raw_index = load_index(raw_path)
        compact_index = load_index(compact_path)
        for p in range(0, matrix.n_pointers, 37):
            assert raw_index.list_points_to(p) == compact_index.list_points_to(p)
            assert raw_index.list_aliases(p) == compact_index.list_aliases(p)
