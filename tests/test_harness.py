"""Measurement harness utilities."""

import pytest

from repro.bench.harness import (
    Table,
    geometric_mean,
    human_bytes,
    sample_pairs,
    timed,
    traced_memory,
)


class TestTimed:
    def test_returns_result_and_positive_time(self):
        measurement = timed(lambda: 42)
        assert measurement.result == 42
        assert measurement.seconds >= 0


class TestTracedMemory:
    def test_records_peak(self):
        with traced_memory() as stats:
            _ = [0] * 100_000
        assert stats["peak_bytes"] > 100_000


class TestTable:
    def test_render_contains_rows_and_title(self):
        table = Table(title="Demo", columns=("Program", "Time (s)"))
        table.add(**{"Program": "antlr", "Time (s)": 1.5})
        table.add(**{"Program": "fop", "Time (s)": 0.001})
        text = table.render()
        assert "== Demo ==" in text
        assert "antlr" in text
        assert "1.500" in text

    def test_missing_cells_blank(self):
        table = Table(title="T", columns=("A", "B"))
        table.add(A="x")
        assert "x" in table.render()

    def test_note_appended(self):
        table = Table(title="T", columns=("A",), note="scaled 100x")
        assert "scaled 100x" in table.render()

    def test_small_floats_scientific(self):
        table = Table(title="T", columns=("A",))
        table.add(A=0.000002)
        assert "e-06" in table.render()


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([2, 0, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0


class TestHumanBytes:
    def test_units(self):
        assert human_bytes(512) == "512.0B"
        assert human_bytes(2048) == "2.0KB"
        assert human_bytes(3 * 1024 * 1024) == "3.0MB"


class TestSamplePairs:
    def test_all_pairs_when_small(self):
        pairs = sample_pairs([1, 2, 3], limit=100)
        assert pairs == [(1, 2), (1, 3), (2, 3)]

    def test_capped_when_large(self):
        items = list(range(100))
        pairs = sample_pairs(items, limit=50)
        assert len(pairs) <= 50
        assert len(set(pairs)) == len(pairs)
        for p, q in pairs:
            assert p in items and q in items and p < q

    def test_deterministic(self):
        items = list(range(60))
        assert sample_pairs(items, 40) == sample_pairs(items, 40)
