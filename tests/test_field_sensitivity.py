"""Field statements and the field-sensitive solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import andersen, field_andersen, flow_sensitive, steensgaard
from repro.analysis.field_andersen import collapse_fields
from repro.analysis.parser import format_program, parse_program

SEPARATION = """
func main() {
  box = alloc Box
  a = alloc A
  b = alloc B
  box.left = a
  box.right = b
  l = box.left
  r = box.right
  return
}
"""

LINKED_LIST = """
func main() {
  n1 = alloc Node1
  n2 = alloc Node2
  v = alloc Value
  n1.next = n2
  n2.next = n1
  n1.data = v
  cursor = n1
  while {
    cursor = cursor.next
  }
  d = cursor.data
  return
}
"""


class TestParserAndFormat:
    def test_field_statements_parse(self):
        program = parse_program(SEPARATION)
        kinds = [type(s).__name__ for s in program.functions["main"].simple_statements()]
        assert kinds == ["Alloc", "Alloc", "Alloc", "FieldStore", "FieldStore",
                         "FieldLoad", "FieldLoad", "Return"]

    def test_round_trip(self):
        program = parse_program(LINKED_LIST)
        assert format_program(parse_program(format_program(program))) == format_program(program)


class TestFieldSeparation:
    def test_fields_kept_apart(self):
        result = field_andersen.analyze(parse_program(SEPARATION))
        assert result.pts_of("main", "l") == {result.symbols.site("main", "A")}
        assert result.pts_of("main", "r") == {result.symbols.site("main", "B")}
        assert result.cell_of("main", "Box", "left") == {result.symbols.site("main", "A")}
        assert result.cell_of("main", "Box", "right") == {result.symbols.site("main", "B")}

    def test_insensitive_solver_conflates(self):
        """The base solver collapses fields: l and r both see A and B."""
        result = andersen.analyze(parse_program(SEPARATION))
        expected = {result.symbols.site("main", "A"), result.symbols.site("main", "B")}
        assert result.pts_of("main", "l") == expected
        assert result.pts_of("main", "r") == expected

    def test_deref_field_distinct_from_named_fields(self):
        source = (
            "func main() {\n"
            "  box = alloc Box\n"
            "  a = alloc A\n"
            "  b = alloc B\n"
            "  *box = a\n"
            "  box.f = b\n"
            "  star = *box\n"
            "  named = box.f\n"
            "  return\n"
            "}\n"
        )
        result = field_andersen.analyze(parse_program(source))
        assert result.pts_of("main", "star") == {result.symbols.site("main", "A")}
        assert result.pts_of("main", "named") == {result.symbols.site("main", "B")}

    def test_unwritten_cell_is_empty(self):
        result = field_andersen.analyze(parse_program(SEPARATION))
        assert result.cell_of("main", "Box", "ghost") == set()


class TestRecursiveStructures:
    def test_linked_list_cycle(self):
        result = field_andersen.analyze(parse_program(LINKED_LIST))
        symbols = result.symbols
        cursor = result.pts_of("main", "cursor")
        assert cursor == {symbols.site("main", "Node1"), symbols.site("main", "Node2")}
        # Only Node1 carries data, but the cursor may sit on either node;
        # d still resolves to exactly the Value (Node2.data is unwritten).
        assert result.pts_of("main", "d") == {symbols.site("main", "Value")}


class TestPrecisionOrdering:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_within_collapsed_insensitive(self, seed):
        """field-sensitive(P) ⊆ insensitive(collapse_fields(P)) pointwise."""
        from repro.bench.programs import ProgramSpec, generate_program

        program = generate_program(
            ProgramSpec(name="t", n_functions=6, statements_per_function=12,
                        n_types=3, seed=seed)
        )
        # The generator emits Load/Store; rewrite a deterministic subset
        # into field accesses to exercise the comparison.
        program = _fieldify(program, seed)
        sensitive = field_andersen.analyze(program)
        collapsed = andersen.analyze(collapse_fields(program))
        for variable in range(sensitive.symbols.n_variables):
            assert set(sensitive.var_pts[variable]) <= set(collapsed.var_pts[variable])

    def test_handwritten_equal_when_one_field(self):
        """With a single field everywhere, sensitivity adds nothing."""
        source = (
            "func main() {\n"
            "  p = alloc P\n"
            "  v = alloc V\n"
            "  p.f = v\n"
            "  r = p.f\n"
            "  return\n"
            "}\n"
        )
        program = parse_program(source)
        sensitive = field_andersen.analyze(program)
        collapsed = andersen.analyze(collapse_fields(program))
        assert sensitive.to_matrix() == collapsed.to_matrix()


def _fieldify(program, seed):
    """Rewrite every k-th Load/Store into a field access (deterministic)."""
    from repro.analysis.ir import FieldLoad, FieldStore, Function, If, Load, Program, Store, While

    fields = ("f", "g", "h")
    counter = [0]

    def rewrite(body):
        result = []
        for stmt in body:
            if isinstance(stmt, If):
                result.append(If(then_body=rewrite(stmt.then_body),
                                 else_body=rewrite(stmt.else_body)))
            elif isinstance(stmt, While):
                result.append(While(body=rewrite(stmt.body)))
            elif isinstance(stmt, Load) and counter[0] % 2 == 0:
                counter[0] += 1
                result.append(FieldLoad(target=stmt.target, source=stmt.source,
                                        field=fields[counter[0] % 3]))
            elif isinstance(stmt, Store) and counter[0] % 2 == 1:
                counter[0] += 1
                result.append(FieldStore(target=stmt.target,
                                         field=fields[counter[0] % 3],
                                         source=stmt.source))
            else:
                if isinstance(stmt, (Load, Store)):
                    counter[0] += 1
                result.append(stmt)
        return result

    rebuilt = Program(entry=program.entry)
    rebuilt.globals = list(program.globals)
    for function in program.functions.values():
        rebuilt.functions[function.name] = Function(
            name=function.name, params=function.params, body=rewrite(function.body)
        )
    return rebuilt


class TestBaseAnalysesStaySound:
    def test_insensitive_analyses_cover_field_ops(self):
        program = parse_program(SEPARATION)
        a_matrix = andersen.analyze(program).to_matrix()
        s_matrix = steensgaard.analyze(program).to_matrix()
        f_matrix = field_andersen.analyze(program).to_matrix()
        for variable in range(a_matrix.n_pointers):
            assert set(f_matrix.rows[variable]) <= set(a_matrix.rows[variable])
            assert set(a_matrix.rows[variable]) <= set(s_matrix.rows[variable])

    def test_flow_sensitive_accepts_field_ops(self):
        result = flow_sensitive.analyze(parse_program(LINKED_LIST))
        assert result.fact_count() > 0


class TestPipelineIntegration:
    def test_field_sensitive_matrix_persists(self, tmp_path):
        from repro.core.pipeline import load_index, persist

        matrix = field_andersen.analyze(parse_program(LINKED_LIST)).to_matrix()
        path = str(tmp_path / "fields.pes")
        persist(matrix, path)
        assert load_index(path).materialize() == matrix
