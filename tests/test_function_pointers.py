"""Function pointers and indirect calls across the whole substrate."""

import pytest

from repro.analysis import andersen, context_sensitive, flow_sensitive, steensgaard
from repro.analysis.parser import format_program, parse_program
from repro.analysis.transform import flow_sensitive_to_matrix

DISPATCH = """
func handler_a() {
  a = alloc A
  return a
}

func handler_b() {
  b = alloc B
  return b
}

func main() {
  fp = &handler_a
  if {
    fp = &handler_b
  }
  r = icall fp()
  return
}
"""

CALLBACK = """
func apply(f, x) {
  y = icall f(x)
  return y
}

func wrap(v) {
  w = alloc Wrapper
  *w = v
  return w
}

func main() {
  fp = &wrap
  payload = alloc Payload
  out = call apply(fp, payload)
  inner = *out
  return
}
"""


class TestParser:
    def test_funcref_and_icall_parse(self):
        program = parse_program(DISPATCH)
        main = program.functions["main"]
        kinds = [type(stmt).__name__ for stmt in main.simple_statements()]
        assert kinds == ["FuncRef", "FuncRef", "IndirectCall", "Return"]

    def test_format_round_trip(self):
        program = parse_program(CALLBACK)
        rebuilt = parse_program(format_program(program))
        assert format_program(rebuilt) == format_program(program)

    def test_unknown_funcref_rejected(self):
        with pytest.raises(ValueError, match="unknown function"):
            parse_program("func main() {\n  p = &ghost\n  return\n}\n")

    def test_function_object_sites_interned(self):
        from repro.analysis.ir import SymbolTable

        symbols = SymbolTable(parse_program(DISPATCH))
        assert "fn:handler_a" in symbols.site_ids
        assert "fn:handler_b" in symbols.site_ids
        assert symbols.function_object_sites() == {
            symbols.function_object("handler_a"): "handler_a",
            symbols.function_object("handler_b"): "handler_b",
        }


class TestAndersen:
    def test_dispatch_resolves_both_targets(self):
        program = parse_program(DISPATCH)
        result = andersen.analyze(program)
        symbols = result.symbols
        r = result.pts_of("main", "r")
        assert r == {symbols.site("handler_a", "A"), symbols.site("handler_b", "B")}

    def test_callback_argument_flow(self):
        program = parse_program(CALLBACK)
        result = andersen.analyze(program)
        symbols = result.symbols
        # payload flows through the indirect call into wrap's cell.
        assert result.pts_of("main", "inner") == {symbols.site("main", "Payload")}
        assert result.pts_of("main", "out") == {symbols.site("wrap", "Wrapper")}

    def test_induced_call_graph(self):
        program = parse_program(DISPATCH)
        result = andersen.analyze(program)
        targets = result.indirect_call_targets()
        assert targets == {("main", 0): {"handler_a", "handler_b"}}

    def test_unresolvable_icall_is_empty(self):
        source = "func main() {\n  r = icall fp()\n  q = r\n  return\n}\n"
        result = andersen.analyze(parse_program(source))
        assert result.pts_of("main", "r") == set()
        assert result.indirect_call_targets() == {("main", 0): set()}

    def test_optimize_matches_plain(self):
        for source in (DISPATCH, CALLBACK):
            program = parse_program(source)
            plain = andersen.analyze(program, optimize=False)
            fast = andersen.analyze(program, optimize=True)
            assert plain.to_matrix() == fast.to_matrix()

    def test_function_pointer_through_heap(self):
        source = (
            "func f() {\n  x = alloc X\n  return x\n}\n"
            "func main() {\n"
            "  cell = alloc Cell\n"
            "  fp = &f\n"
            "  *cell = fp\n"
            "  got = *cell\n"
            "  r = icall got()\n"
            "  return\n"
            "}\n"
        )
        result = andersen.analyze(parse_program(source))
        assert result.pts_of("main", "r") == {result.symbols.site("f", "X")}


class TestSteensgaard:
    def test_dispatch_sound(self):
        program = parse_program(DISPATCH)
        s_matrix = steensgaard.analyze(program).to_matrix()
        a_result = andersen.analyze(program)
        a_matrix = a_result.to_matrix()
        for var in range(a_result.symbols.n_variables):
            assert set(a_matrix.rows[var]) <= set(s_matrix.rows[var])

    def test_callback_sound(self):
        program = parse_program(CALLBACK)
        s_matrix = steensgaard.analyze(program).to_matrix()
        a_result = andersen.analyze(program)
        a_matrix = a_result.to_matrix()
        for var in range(a_result.symbols.n_variables):
            assert set(a_matrix.rows[var]) <= set(s_matrix.rows[var]), (
                a_result.symbols.variable_names()[var]
            )

    def test_icall_before_funcref_order_independent(self):
        """The placeholder signature unifies with the real one later."""
        source = (
            "func use(fp2, v) {\n  r = icall fp2(v)\n  return r\n}\n"
            "func id(x) {\n  return x\n}\n"
            "func main() {\n"
            "  p = alloc P\n"
            "  g = &id\n"
            "  out = call use(g, p)\n"
            "  return\n"
            "}\n"
        )
        program = parse_program(source)
        s_matrix = steensgaard.analyze(program).to_matrix()
        a_result = andersen.analyze(program)
        assert a_result.pts_of("main", "out") == {a_result.symbols.site("main", "P")}
        out = a_result.symbols.variable("main", "out")
        assert set(a_result.to_matrix().rows[out]) <= set(s_matrix.rows[out])


class TestFlowSensitiveAndContexts:
    def test_flow_sensitive_handles_dispatch(self):
        program = parse_program(DISPATCH)
        result = flow_sensitive.analyze(program)
        named = flow_sensitive_to_matrix(result)
        # fp's two definitions carry the two function objects.
        fp_rows = [name for name in named.pointer_index if name.startswith("main::fp@")]
        assert len(fp_rows) == 2
        objects = set()
        for name in fp_rows:
            objects.update(named.matrix.rows[named.pointer_index[name]])
        assert len(objects) == 2

    def test_no_strong_updates_in_address_taken_functions(self):
        """wrap() is address-taken: its Wrapper cell must be weak-updated
        (it can execute many times through the pointer)."""
        program = parse_program(CALLBACK)
        result = flow_sensitive.analyze(program)
        facts = {}
        names = result.symbols.variable_names()
        for fact in result.facts:
            facts.setdefault(names[fact.variable], set()).update(fact.objects)
        inner = facts.get("main::inner", set())
        assert result.symbols.site_ids["main::Payload"] in inner

    def test_context_sensitive_with_funcrefs(self):
        program = parse_program(CALLBACK)
        result = context_sensitive.analyze(program, k=1)
        result.cloned.validate()
        # The base (context-free) clone of wrap exists for the funcref.
        assert "wrap" in result.cloned.functions
        symbols = result.symbols
        out = symbols.variable("main", "out")
        names = {symbols.site_names()[o] for o in result.andersen.var_pts[out]}
        assert any("Wrapper" in name for name in names)
