"""Points-to matrix: construction, derived matrices, oracle queries."""

import pytest
from hypothesis import given, settings

from repro.matrix.points_to import PointsToMatrix, dedup_rows

from conftest import matrices


class TestConstruction:
    def test_from_pairs(self):
        matrix = PointsToMatrix.from_pairs(3, 2, [(0, 0), (2, 1), (0, 0)])
        assert matrix.fact_count() == 2
        assert matrix.has(0, 0)
        assert matrix.has(2, 1)
        assert not matrix.has(1, 0)

    def test_from_rows(self):
        matrix = PointsToMatrix.from_rows([[0, 1], [], [1]], 2)
        assert matrix.list_points_to(0) == [0, 1]
        assert matrix.list_points_to(1) == []

    def test_bounds_checked(self):
        matrix = PointsToMatrix(2, 2)
        with pytest.raises(IndexError):
            matrix.add(2, 0)
        with pytest.raises(IndexError):
            matrix.add(0, 2)
        with pytest.raises(IndexError):
            matrix.add(-1, 0)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            PointsToMatrix(-1, 3)

    def test_name_tables_validated(self):
        with pytest.raises(ValueError):
            PointsToMatrix(2, 1, pointer_names=["only-one"])
        with pytest.raises(ValueError):
            PointsToMatrix(1, 2, object_names=["only-one"])

    def test_density(self):
        matrix = PointsToMatrix.from_pairs(2, 2, [(0, 0)])
        assert matrix.density() == 0.25
        assert PointsToMatrix(0, 0).density() == 0.0

    def test_pairs_iteration(self):
        matrix = PointsToMatrix.from_pairs(2, 2, [(1, 0), (0, 1)])
        assert sorted(matrix.pairs()) == [(0, 1), (1, 0)]

    def test_equality(self):
        a = PointsToMatrix.from_pairs(2, 2, [(0, 1)])
        b = PointsToMatrix.from_pairs(2, 2, [(0, 1)])
        c = PointsToMatrix.from_pairs(2, 2, [(1, 1)])
        assert a == b
        assert a != c
        assert a != "not a matrix"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PointsToMatrix(1, 1))

    def test_repr(self):
        assert "2 pointers" in repr(PointsToMatrix(2, 3))


class TestDerivedMatrices:
    def test_transpose(self, paper_matrix):
        transposed = paper_matrix.transpose()
        assert transposed.n_pointers == paper_matrix.n_objects
        assert transposed.n_objects == paper_matrix.n_pointers
        # Table 3's PMT row for o1: pointers p1..p4 (ids 0..3).
        assert transposed.list_points_to(0) == [0, 1, 2, 3]
        assert transposed.list_points_to(4) == [0, 2, 6]

    def test_transpose_involution(self, paper_matrix):
        assert paper_matrix.transpose().transpose() == paper_matrix

    def test_alias_matrix_is_pm_times_pmt(self, paper_matrix):
        alias = paper_matrix.alias_matrix()
        for p in range(7):
            for q in range(7):
                expected = paper_matrix.is_alias(p, q)
                assert alias.has(p, q) == expected, (p, q)

    def test_alias_matrix_shares_class_rows(self):
        matrix = PointsToMatrix.from_rows([[0], [0], [1]], 2)
        alias = matrix.alias_matrix()
        assert alias.rows[0] is alias.rows[1]
        assert alias.rows[0] is not alias.rows[2]

    @settings(max_examples=60)
    @given(matrices())
    def test_alias_matrix_symmetric(self, matrix):
        alias = matrix.alias_matrix()
        for p, q in alias.pairs():
            assert alias.has(q, p)

    @settings(max_examples=60)
    @given(matrices())
    def test_alias_diagonal_iff_nonempty(self, matrix):
        alias = matrix.alias_matrix()
        for p in range(matrix.n_pointers):
            assert alias.has(p, p) == bool(matrix.rows[p])


class TestOracleQueries:
    def test_is_alias(self, paper_matrix):
        assert paper_matrix.is_alias(0, 1)  # p1, p2 share o1
        assert paper_matrix.is_alias(0, 6)  # p1, p7 share o5
        assert not paper_matrix.is_alias(4, 5)  # p5 -> o4, p6 -> o2

    def test_list_aliases_excludes_self(self, paper_matrix):
        assert 2 not in paper_matrix.list_aliases(2)

    def test_list_pointed_by(self, paper_matrix):
        assert paper_matrix.list_pointed_by(4) == [0, 2, 6]
        assert paper_matrix.list_pointed_by(3) == [3, 4]

    def test_empty_pointer(self):
        matrix = PointsToMatrix(2, 2)
        assert matrix.list_points_to(0) == []
        assert matrix.list_aliases(0) == []
        assert not matrix.is_alias(0, 1)


class TestDedupRows:
    def test_groups_identical_rows(self):
        matrix = PointsToMatrix.from_rows([[0], [1], [0], []], 2)
        groups = dedup_rows(matrix)
        members = sorted(sorted(ids) for ids in groups.values())
        assert members == [[0, 2], [1], [3]]
