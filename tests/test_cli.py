"""The repro-pestrie command-line interface."""

import os

import pytest

from repro.cli import load_matrix_file, main, save_matrix_file
from repro.matrix.points_to import PointsToMatrix

IR_SOURCE = """
func make() {
  m = alloc M
  return m
}

func main() {
  p = call make()
  q = call make()
  *p = q
  r = *p
  return
}
"""


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "app.ir"
    path.write_text(IR_SOURCE)
    return str(path)


@pytest.fixture
def pm_file(tmp_path, paper_matrix):
    path = tmp_path / "paper.pm"
    save_matrix_file(paper_matrix, str(path))
    return str(path)


class TestMatrixFileFormat:
    def test_round_trip(self, tmp_path, paper_matrix):
        path = str(tmp_path / "m.pm")
        save_matrix_file(paper_matrix, path)
        assert load_matrix_file(path) == paper_matrix

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "m.pm"
        path.write_text("2 2\n# comment\n\n0 1\n")
        matrix = load_matrix_file(str(path))
        assert matrix.has(0, 1)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "m.pm"
        path.write_text("2\n")
        with pytest.raises(ValueError, match="first line"):
            load_matrix_file(str(path))

    def test_bad_fact_line(self, tmp_path):
        path = tmp_path / "m.pm"
        path.write_text("2 2\n0 1 2\n")
        with pytest.raises(ValueError, match="expected"):
            load_matrix_file(str(path))


class TestEncodeAndInfo:
    def test_encode_from_ir(self, ir_file, tmp_path, capsys):
        out = str(tmp_path / "app.pes")
        assert main(["encode", ir_file, out]) == 0
        assert os.path.exists(out)
        assert "bytes" in capsys.readouterr().out

    def test_encode_from_pm(self, pm_file, tmp_path, capsys):
        out = str(tmp_path / "paper.pes")
        assert main(["encode", pm_file, out]) == 0
        captured = capsys.readouterr().out
        assert "7 pointers, 5 objects, 15 facts" in captured

    def test_encode_compact_smaller(self, pm_file, tmp_path):
        raw = str(tmp_path / "raw.pes")
        compact = str(tmp_path / "compact.pes")
        main(["encode", pm_file, raw])
        main(["encode", pm_file, compact, "--compact"])
        assert os.path.getsize(compact) < os.path.getsize(raw)

    def test_encode_analysis_choices(self, ir_file, tmp_path):
        for analysis in ("steensgaard", "flow-sensitive", "1-callsite", "2-callsite"):
            out = str(tmp_path / (analysis + ".pes"))
            assert main(["encode", ir_file, out, "--analysis", analysis]) == 0

    def test_info(self, pm_file, tmp_path, capsys):
        out = str(tmp_path / "paper.pes")
        main(["encode", pm_file, out, "--order", "identity"])
        capsys.readouterr()
        assert main(["info", out]) == 0
        captured = capsys.readouterr().out
        assert "pointers:     7 (7 tracked)" in captured
        assert "groups (ES):  9" in captured
        assert "rectangles:   7" in captured
        assert "points:     5" in captured

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.pes")]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    @pytest.fixture
    def pes_file(self, pm_file, tmp_path):
        out = str(tmp_path / "paper.pes")
        main(["encode", pm_file, out])
        return out

    def test_is_alias(self, pes_file, capsys):
        assert main(["query", pes_file, "is_alias", "0", "6"]) == 0
        assert capsys.readouterr().out.strip() == "true"
        assert main(["query", pes_file, "is_alias", "4", "5"]) == 0
        assert capsys.readouterr().out.strip() == "false"

    def test_list_points_to(self, pes_file, capsys):
        assert main(["query", pes_file, "list_points_to", "3"]) == 0
        assert capsys.readouterr().out.strip() == "0 1 2 3"

    def test_list_pointed_by(self, pes_file, capsys):
        assert main(["query", pes_file, "list_pointed_by", "4"]) == 0
        assert capsys.readouterr().out.strip() == "0 2 6"

    def test_list_aliases(self, pes_file, capsys):
        assert main(["query", pes_file, "list_aliases", "1"]) == 0
        assert capsys.readouterr().out.strip() == "0 2 3"

    def test_wrong_operand_count(self, pes_file, capsys):
        assert main(["query", pes_file, "is_alias", "1"]) == 2
        assert main(["query", pes_file, "list_points_to", "1", "2"]) == 2


class TestServeStats:
    @pytest.fixture
    def pes_file(self, pm_file, tmp_path):
        out = str(tmp_path / "paper.pes")
        main(["encode", pm_file, out])
        return out

    def test_single_file(self, pes_file, capsys):
        assert main(["serve-stats", pes_file, "--queries", "500"]) == 0
        captured = capsys.readouterr().out
        assert "1 shard(s), 7 pointers, 5 objects" in captured
        assert "replayed 500 queries" in captured
        assert "hit rate" in captured
        assert "is_alias" in captured

    def test_sharded_and_unbatched(self, pes_file, capsys):
        assert main(["serve-stats", pes_file, pes_file,
                     "--queries", "200", "--batch-size", "1",
                     "--cache-size", "0"]) == 0
        captured = capsys.readouterr().out
        assert "2 shard(s), 14 pointers, 5 objects" in captured
        assert "0.0% hit rate" in captured

    def test_segment_mode(self, pes_file, capsys):
        assert main(["serve-stats", pes_file, "--queries", "100",
                     "--mode", "segment"]) == 0
        assert "replayed 100 queries" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["serve-stats", str(tmp_path / "nope.pes")]) == 1
        assert "error" in capsys.readouterr().err


class TestFormatVersionFlag:
    def test_default_writes_pestrie3(self, pm_file, tmp_path):
        out = tmp_path / "v3.pes"
        assert main(["encode", pm_file, str(out)]) == 0
        assert out.read_bytes()[:8] == b"PESTRIE3"

    def test_legacy_versions_selectable(self, pm_file, tmp_path):
        for version, magic in ((1, b"PESTRIE1"), (2, b"PESTRIE2")):
            out = tmp_path / ("v%d.pes" % version)
            assert main(["encode", pm_file, str(out),
                         "--format-version", str(version)]) == 0
            assert out.read_bytes()[:8] == magic

    def test_version1_refuses_compact(self, pm_file, tmp_path, capsys):
        out = str(tmp_path / "bad.pes")
        assert main(["encode", pm_file, out, "--format-version", "1", "--compact"]) == 1
        assert "compact" in capsys.readouterr().err

    def test_info_reports_format(self, pm_file, tmp_path, capsys):
        out = str(tmp_path / "v3.pes")
        main(["encode", pm_file, out])
        capsys.readouterr()
        assert main(["info", out]) == 0
        assert "PESTRIE3" in capsys.readouterr().out


class TestVerify:
    def test_intact_file(self, pm_file, tmp_path, capsys):
        out = str(tmp_path / "ok.pes")
        main(["encode", pm_file, out])
        capsys.readouterr()
        assert main(["verify", out]) == 0
        assert "OK" in capsys.readouterr().out

    def test_intact_legacy_file(self, pm_file, tmp_path, capsys):
        out = str(tmp_path / "ok1.pes")
        main(["encode", pm_file, out, "--format-version", "1"])
        capsys.readouterr()
        assert main(["verify", out]) == 0
        assert "PESTRIE1" in capsys.readouterr().out

    def test_corrupt_file(self, pm_file, tmp_path, capsys):
        out = tmp_path / "bad.pes"
        main(["encode", pm_file, str(out)])
        blob = bytearray(out.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        out.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["verify", str(out)]) == 1
        assert "CORRUPT" in capsys.readouterr().err

    def test_truncated_file(self, pm_file, tmp_path, capsys):
        out = tmp_path / "cut.pes"
        main(["encode", pm_file, str(out)])
        out.write_bytes(out.read_bytes()[:20])
        capsys.readouterr()
        assert main(["verify", str(out)]) == 1
        assert "CORRUPT" in capsys.readouterr().err


class TestAnalyzeAndBench:
    def test_analyze_archive(self, ir_file, tmp_path, capsys):
        out = str(tmp_path / "archive")
        assert main(["analyze", ir_file, out]) == 0
        assert sorted(os.listdir(out)) == [
            "call_edges.json",
            "points_to.pes",
            "program.ir",
            "variables.json",
        ]

    def test_bench_table(self, ir_file, capsys):
        assert main(["bench", ir_file]) == 0
        captured = capsys.readouterr().out
        assert "pestrie" in captured
        assert "bitmap (PM+AM)" in captured
        assert "bdd (PM only)" in captured

    def test_bench_bdd_limit(self, ir_file, capsys):
        assert main(["bench", ir_file, "--bdd-limit", "0"]) == 0
        assert "bdd" not in capsys.readouterr().out


class TestQueryModes:
    @pytest.fixture
    def pes_file(self, pm_file, tmp_path):
        out = str(tmp_path / "paper.pes")
        main(["encode", pm_file, out])
        return out

    def test_segment_mode_agrees(self, pes_file, capsys):
        assert main(["query", pes_file, "list_aliases", "1"]) == 0
        ptlist_out = capsys.readouterr().out
        assert main(["query", pes_file, "list_aliases", "1", "--mode", "segment"]) == 0
        assert capsys.readouterr().out == ptlist_out


class TestQueryExplain:
    @pytest.fixture
    def pes_file(self, pm_file, tmp_path):
        out = str(tmp_path / "explain.pes")
        main(["encode", pm_file, out])
        return out

    # The breakdown's shape is a golden contract: fixed labels, fixed
    # order, one value column.  Only the values vary run to run.
    GOLDEN_LABELS = ["bytes_parsed", "sections_materialized", "cache",
                     "replay_depth", "shard_fanout", "queries", "seconds"]

    def test_explain_prints_golden_breakdown(self, pes_file, capsys):
        assert main(["query", pes_file, "is_alias", "0", "1",
                     "--explain"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] in ("true", "false")
        assert lines[1] == "--- cost ---"
        assert [line.split()[0] for line in lines[2:]] == self.GOLDEN_LABELS
        parsed = int(lines[2].split()[1])
        assert parsed > 0  # the lazy open charges the parse to this query
        assert lines[7].split()[1] == "1"  # queries

    def test_explain_with_as_of_reports_the_epoch(self, pes_file, capsys):
        assert main(["delta-append", pes_file, "--insert", "0:1"]) == 0
        capsys.readouterr()
        assert main(["query", pes_file, "list_points_to", "0",
                     "--as-of", "1", "--explain"]) == 0
        lines = capsys.readouterr().out.splitlines()
        cost_lines = lines[lines.index("--- cost ---") + 1:]
        assert cost_lines[0].split() == ["epoch", "1"]

    def test_without_explain_output_is_unchanged(self, pes_file, capsys):
        assert main(["query", pes_file, "is_alias", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "--- cost ---" not in out
        assert out.strip() in ("true", "false")
