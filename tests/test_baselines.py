"""BitP, bzip, and demand-driven baselines."""

import io

import pytest
from hypothesis import given, settings

from repro.baselines.bitmap_persist import BitmapIndex, BitmapPersistence
from repro.baselines.bzip_persist import BzipPersistence
from repro.baselines.demand import DemandDriven
from repro.matrix.points_to import PointsToMatrix

from conftest import make_random_matrix, matrices


def _bitp_round_trip(matrix) -> BitmapIndex:
    buffer = io.BytesIO()
    BitmapPersistence.encode(matrix, buffer)
    buffer.seek(0)
    return BitmapPersistence.decode(buffer)


class TestBitmapPersistence:
    def test_queries_match_oracle(self, paper_matrix):
        index = _bitp_round_trip(paper_matrix)
        for p in range(7):
            assert index.list_points_to(p) == paper_matrix.list_points_to(p)
            assert index.list_aliases(p) == paper_matrix.list_aliases(p)
            for q in range(7):
                assert index.is_alias(p, q) == paper_matrix.is_alias(p, q)
        for obj in range(5):
            assert index.list_pointed_by(obj) == paper_matrix.list_pointed_by(obj)

    @settings(max_examples=40)
    @given(matrices())
    def test_round_trip_any_matrix(self, matrix):
        index = _bitp_round_trip(matrix)
        for p in range(matrix.n_pointers):
            assert index.list_points_to(p) == matrix.list_points_to(p)
            assert index.list_aliases(p) == matrix.list_aliases(p)

    def test_equivalent_rows_shared_after_decode(self):
        matrix = PointsToMatrix.from_rows([[0], [0], [1]], 2)
        index = _bitp_round_trip(matrix)
        assert index.pm.rows[0] is index.pm.rows[1]

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="bad magic"):
            BitmapPersistence.decode(io.BytesIO(b"WRONG!!!" + b"\x00" * 32))

    def test_file_round_trip(self, paper_matrix, tmp_path):
        path = str(tmp_path / "m.bitp")
        size = BitmapPersistence.encode_to_file(paper_matrix, path)
        assert size > 0
        index = BitmapPersistence.decode_from_file(path)
        assert index.list_points_to(2) == paper_matrix.list_points_to(2)

    def test_memory_footprint_positive(self, paper_matrix):
        assert _bitp_round_trip(paper_matrix).memory_footprint() > 0

    def test_merging_shrinks_file(self):
        """Equivalence merging: many identical rows ≈ one stored row."""
        duplicated = PointsToMatrix.from_rows([[0, 1, 2]] * 50, 3)
        distinct = PointsToMatrix.from_rows(
            [[i % 3, 3 + (i % 7)] for i in range(50)], 10
        )
        buffer_dup, buffer_dis = io.BytesIO(), io.BytesIO()
        BitmapPersistence.encode(duplicated, buffer_dup)
        BitmapPersistence.encode(distinct, buffer_dis)
        assert len(buffer_dup.getvalue()) < len(buffer_dis.getvalue())


class TestBitmapIntegrity:
    def test_checksum_catches_bit_flip(self, paper_matrix, tmp_path):
        path = tmp_path / "m.bitp"
        BitmapPersistence.encode_to_file(paper_matrix, str(path))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="checksum"):
            BitmapPersistence.decode_from_file(str(path))

    def test_v1_files_still_decode(self, paper_matrix):
        """Pre-checksum BitP files (old magic, no trailer) remain readable."""
        from repro.baselines.bitmap_persist import MAGIC, MAGIC_V1

        buffer = io.BytesIO()
        BitmapPersistence.encode(paper_matrix, buffer)
        data = buffer.getvalue()
        assert data[:8] == MAGIC
        legacy = MAGIC_V1 + data[8:-4]  # old magic, trailer stripped
        index = BitmapPersistence.decode(io.BytesIO(legacy))
        assert index.list_points_to(2) == paper_matrix.list_points_to(2)

    def test_trailing_garbage_rejected(self, paper_matrix):
        from repro.baselines.bitmap_persist import MAGIC_V1

        buffer = io.BytesIO()
        BitmapPersistence.encode(paper_matrix, buffer)
        legacy = MAGIC_V1 + buffer.getvalue()[8:-4] + b"\x00\x01\x02"
        with pytest.raises(ValueError, match="trailing"):
            BitmapPersistence.decode(io.BytesIO(legacy))

    def test_no_temp_files_left_behind(self, paper_matrix, tmp_path):
        BitmapPersistence.encode_to_file(paper_matrix, str(tmp_path / "m.bitp"))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["m.bitp"]


class TestBzipPersistence:
    def test_round_trip(self, paper_matrix, tmp_path):
        path = str(tmp_path / "m.bz")
        BzipPersistence.encode_to_file(paper_matrix, path)
        assert BzipPersistence.decode_from_file(path) == paper_matrix

    @settings(max_examples=25)
    @given(matrices())
    def test_round_trip_any_matrix(self, matrix):
        import os
        import tempfile

        handle, path = tempfile.mkstemp(suffix=".bz")
        os.close(handle)
        try:
            BzipPersistence.encode_to_file(matrix, path)
            assert BzipPersistence.decode_from_file(path) == matrix
        finally:
            os.unlink(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.bz"
        path.write_bytes(b"JUNKJUNK")
        with pytest.raises(ValueError, match="not a bzip"):
            BzipPersistence.decode_from_file(str(path))

    def test_compression_level_changes_size(self, tmp_path):
        matrix = make_random_matrix(200, 40, density=0.2, seed=1)
        fast = BzipPersistence.encode_to_file(matrix, str(tmp_path / "f.bz"), level=1)
        best = BzipPersistence.encode_to_file(matrix, str(tmp_path / "b.bz"), level=9)
        assert fast > 0 and best > 0

    def test_checksum_catches_bit_flip(self, paper_matrix, tmp_path):
        path = tmp_path / "m.bz"
        BzipPersistence.encode_to_file(paper_matrix, str(path))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x04
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError):
            BzipPersistence.decode_from_file(str(path))

    def test_v1_files_still_decode(self, paper_matrix, tmp_path):
        """Pre-checksum bzip-PM files (old magic, no trailer) remain readable."""
        from repro.baselines.bzip_persist import MAGIC, MAGIC_V1

        path = tmp_path / "m.bz"
        BzipPersistence.encode_to_file(paper_matrix, str(path))
        data = path.read_bytes()
        assert data[:8] == MAGIC
        legacy = tmp_path / "legacy.bz"
        legacy.write_bytes(MAGIC_V1 + data[8:-4])
        assert BzipPersistence.decode_from_file(str(legacy)) == paper_matrix


class TestDemandDriven:
    def test_is_alias(self, paper_matrix):
        demand = DemandDriven(paper_matrix)
        for p in range(7):
            for q in range(7):
                assert demand.is_alias(p, q) == paper_matrix.is_alias(p, q)

    def test_list_aliases_matches_oracle(self, paper_matrix):
        demand = DemandDriven(paper_matrix)
        for p in range(7):
            assert demand.list_aliases(p) == paper_matrix.list_aliases(p)

    def test_cache_hits_on_equivalent_pointers(self):
        matrix = PointsToMatrix.from_rows([[0], [0], [1]], 2)
        demand = DemandDriven(matrix)
        demand.list_aliases(0)
        assert demand.cache_misses == 1
        demand.list_aliases(1)  # equivalent to pointer 0
        assert demand.cache_hits == 1
        demand.list_aliases(2)
        assert demand.cache_misses == 2

    def test_cached_answer_excludes_self(self):
        matrix = PointsToMatrix.from_rows([[0], [0]], 1)
        demand = DemandDriven(matrix)
        assert demand.list_aliases(0) == [1]
        assert demand.list_aliases(1) == [0]  # cache hit, self removed

    def test_universe_restricts_candidates(self, paper_matrix):
        demand = DemandDriven(paper_matrix, universe=[0, 1])
        assert demand.list_aliases(0) == [1]

    def test_list_pointed_by(self, paper_matrix):
        demand = DemandDriven(paper_matrix)
        for obj in range(5):
            assert demand.list_pointed_by(obj) == paper_matrix.list_pointed_by(obj)


class TestTruncationHandling:
    def test_bitp_truncated(self, paper_matrix):
        buffer = io.BytesIO()
        BitmapPersistence.encode(paper_matrix, buffer)
        data = buffer.getvalue()
        for cut in range(8, len(data), 23):
            with pytest.raises(ValueError):
                BitmapPersistence.decode(io.BytesIO(data[:cut]))

    def test_bdd_truncated(self, paper_matrix):
        from repro.bdd import BddPersistence, encode_matrix

        buffer = io.BytesIO()
        BddPersistence.encode(encode_matrix(paper_matrix), buffer)
        data = buffer.getvalue()
        for cut in range(8, len(data) - 1, 37):
            with pytest.raises(ValueError):
                BddPersistence.decode(io.BytesIO(data[:cut]))

    def test_bdd_forward_reference_rejected(self, paper_matrix):
        from repro.bdd import BddPersistence, encode_matrix

        buffer = io.BytesIO()
        BddPersistence.encode(encode_matrix(paper_matrix), buffer)
        data = bytearray(buffer.getvalue())
        # Point the first node's low child at a not-yet-decoded id.
        offset = 8 + 24 + 4  # magic + header + var field
        data[offset : offset + 8] = (10**6).to_bytes(8, "little")
        with pytest.raises(ValueError, match="later node|out of range"):
            BddPersistence.decode(io.BytesIO(bytes(data)))
