"""Steensgaard's unification-based analysis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import andersen, steensgaard
from repro.analysis.parser import parse_program
from repro.bench.programs import ProgramSpec, generate_program


class TestHandwritten:
    def test_copy_unifies_pointees(self):
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  q = alloc B\n"
            "  p = q\n"
            "  return\n"
            "}\n"
        )
        matrix = steensgaard.analyze(program).to_matrix()
        symbols = steensgaard.analyze(program).symbols
        p = symbols.variable("main", "p")
        q = symbols.variable("main", "q")
        # Unification merges A and B into one class: both pointers see both.
        assert set(matrix.rows[p]) == set(matrix.rows[q])
        assert len(set(matrix.rows[p])) == 2

    def test_andersen_keeps_them_apart(self):
        """The same program under Andersen: q never sees A (directional)."""
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  q = alloc B\n"
            "  p = q\n"
            "  return\n"
            "}\n"
        )
        result = andersen.analyze(program)
        assert result.pts_of("main", "q") == {result.symbols.site("main", "B")}

    def test_store_and_load(self):
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  q = alloc B\n"
            "  *p = q\n"
            "  r = *p\n"
            "  return\n"
            "}\n"
        )
        matrix = steensgaard.analyze(program).to_matrix()
        symbols = steensgaard.analyze(program).symbols
        r = symbols.variable("main", "r")
        assert symbols.site("main", "B") in set(matrix.rows[r])

    def test_load_from_unallocated(self):
        program = parse_program(
            "func main() {\n  r = *p\n  q = r\n  return\n}\n"
        )
        matrix = steensgaard.analyze(program).to_matrix()
        assert matrix.fact_count() == 0

    def test_calls_unify_arguments(self):
        program = parse_program(
            "func id(x) {\n  return x\n}\n"
            "func main() {\n"
            "  a = alloc A\n"
            "  b = alloc B\n"
            "  p = call id(a)\n"
            "  q = call id(b)\n"
            "  return\n"
            "}\n"
        )
        result = steensgaard.analyze(program)
        matrix = result.to_matrix()
        p = result.symbols.variable("main", "p")
        assert len(set(matrix.rows[p])) == 2


class TestSoundnessOrdering:
    """Steensgaard over-approximates Andersen on every variable."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_superset_of_andersen(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=6, statements_per_function=12, n_types=3, seed=seed
        )
        program = generate_program(spec)
        a_result = andersen.analyze(program)
        s_result = steensgaard.analyze(program, a_result.symbols)
        a_matrix = a_result.to_matrix()
        s_matrix = s_result.to_matrix()
        for var in range(a_result.symbols.n_variables):
            a_set = set(a_matrix.rows[var])
            s_set = set(s_matrix.rows[var])
            assert a_set <= s_set, a_result.symbols.variable_names()[var]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_unified_variables_share_rows(self, seed):
        """Variables in one union-find class read the same pointee class,
        so their matrix rows are identical — the equivalence property at
        its most extreme (Section 2.1's coarse end)."""
        spec = ProgramSpec(
            name="t", n_functions=5, statements_per_function=10, n_types=3, seed=seed
        )
        program = generate_program(spec)
        result = steensgaard.analyze(program)
        matrix = result.to_matrix()
        by_class = {}
        for var in range(result.symbols.n_variables):
            by_class.setdefault(result.var_class[var], []).append(var)
        for members in by_class.values():
            first = set(matrix.rows[members[0]])
            for member in members[1:]:
                assert set(matrix.rows[member]) == first
