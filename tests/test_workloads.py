"""Query-trace generation and replay."""

import pytest

from repro.baselines.demand import DemandDriven
from repro.bench.workloads import (
    IS_ALIAS,
    KINDS,
    TraceSpec,
    generate_trace,
    replay,
)
from repro.core.pipeline import encode, index_from_bytes


@pytest.fixture
def universe(paper_matrix):
    return list(range(7)), list(range(5))


class TestGeneration:
    def test_deterministic(self, universe):
        pointers, objects = universe
        spec = TraceSpec(length=200, seed=9)
        first = generate_trace(spec, pointers, objects)
        second = generate_trace(spec, pointers, objects)
        assert first.operations == second.operations

    def test_length_and_mix(self, universe):
        pointers, objects = universe
        trace = generate_trace(TraceSpec(length=2000, seed=1), pointers, objects)
        assert len(trace) == 2000
        counts = trace.kind_counts()
        assert set(counts) == set(KINDS)
        # The default mix is IsAlias-dominated.
        assert counts[IS_ALIAS] > 1000

    def test_pure_mix(self, universe):
        pointers, objects = universe
        trace = generate_trace(
            TraceSpec(length=50, mix=(1.0, 0.0, 0.0, 0.0), seed=2), pointers, objects
        )
        assert trace.kind_counts()[IS_ALIAS] == 50

    def test_operands_in_universe(self, universe):
        pointers, objects = universe
        trace = generate_trace(TraceSpec(length=500, seed=3), [2, 4], [1])
        for kind, operands in trace.operations:
            if kind == "list_pointed_by":
                assert operands == (1,)
            else:
                assert all(op in (2, 4) for op in operands)

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            generate_trace(TraceSpec(length=5), [], [0])

    def test_bad_mix_rejected(self, universe):
        pointers, objects = universe
        with pytest.raises(ValueError, match="mix"):
            generate_trace(TraceSpec(length=5, mix=(0, 0, 0, 0)), pointers, objects)

    def test_locality_biases_sampling(self, universe):
        pointers, objects = universe
        hot = generate_trace(
            TraceSpec(length=3000, locality=3.0, seed=4), list(range(100)), [0]
        )
        uniform = generate_trace(
            TraceSpec(length=3000, locality=0.0, seed=4), list(range(100)), [0]
        )

        def top_share(trace):
            from collections import Counter

            counts = Counter()
            for _, operands in trace.operations:
                for op in operands:
                    counts[op] += 1
            total = sum(counts.values())
            return sum(c for _, c in counts.most_common(10)) / total

        assert top_share(hot) > top_share(uniform)


class TestReplay:
    def test_backends_agree_on_checksum(self, paper_matrix, universe):
        pointers, objects = universe
        trace = generate_trace(TraceSpec(length=400, seed=6), pointers, objects)
        pestrie = index_from_bytes(encode(paper_matrix))
        demand = DemandDriven(paper_matrix)  # full universe: comparable
        assert replay(trace, pestrie) == replay(trace, demand)

    def test_checksum_sensitive_to_answers(self, paper_matrix, universe):
        pointers, objects = universe
        trace = generate_trace(TraceSpec(length=400, seed=8), pointers, objects)
        pestrie = index_from_bytes(encode(paper_matrix))
        from repro.matrix.points_to import PointsToMatrix

        empty = index_from_bytes(encode(PointsToMatrix(7, 5)))
        assert replay(trace, pestrie) != replay(trace, empty)
