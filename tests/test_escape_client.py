"""Escape-analysis client over persisted pointer information."""

import pytest

from repro.analysis import andersen
from repro.analysis.parser import parse_program
from repro.clients.escape import (
    classify_sites,
    escape_summary,
    owner_of_pointer,
    owner_of_site,
)
from repro.core.pipeline import encode, index_from_bytes

SOURCE = """
global shared

func local_only() {
  scratch = alloc Scratch
  tmp = scratch
  return
}

func escapes_via_return() {
  box = alloc Box
  return box
}

func escapes_via_global() {
  node = alloc Node
  shared = node
  return
}

func main() {
  got = call escapes_via_return()
  call local_only()
  call escapes_via_global()
  mine = alloc Mine
  return
}
"""


@pytest.fixture(scope="module")
def setup():
    program = parse_program(SOURCE)
    result = andersen.analyze(program)
    matrix = result.to_matrix()
    index = index_from_bytes(encode(matrix))
    return result.symbols, index, matrix


class TestOwners:
    def test_owner_of_site(self):
        assert owner_of_site("local_only::Scratch") == "local_only"
        assert owner_of_site("fn:handler") == ""

    def test_owner_of_pointer(self):
        assert owner_of_pointer("main::got") == "main"
        assert owner_of_pointer("shared") == ""


class TestClassification:
    def test_verdicts(self, setup):
        symbols, index, _ = setup
        reports = {
            report.site_name: report
            for report in classify_sites(
                index, symbols.site_names(), symbols.variable_names()
            )
        }
        assert not reports["local_only::Scratch"].escapes
        assert not reports["main::Mine"].escapes
        assert reports["escapes_via_return::Box"].escapes
        assert reports["escapes_via_global::Node"].escapes

    def test_witnesses_are_outside_pointers(self, setup):
        symbols, index, _ = setup
        reports = {
            report.site_name: report
            for report in classify_sites(
                index, symbols.site_names(), symbols.variable_names()
            )
        }
        assert "main::got" in reports["escapes_via_return::Box"].witnesses
        assert "shared" in reports["escapes_via_global::Node"].witnesses
        assert reports["local_only::Scratch"].witnesses == ()

    def test_site_subset(self, setup):
        symbols, index, _ = setup
        target = symbols.site("main", "Mine")
        reports = classify_sites(
            index, symbols.site_names(), symbols.variable_names(), sites=[target]
        )
        assert len(reports) == 1
        assert reports[0].site == target

    def test_summary(self, setup):
        symbols, index, _ = setup
        reports = classify_sites(index, symbols.site_names(), symbols.variable_names())
        summary = escape_summary(reports)
        assert summary["sites"] == 4
        assert summary["escaping"] == 2
        assert summary["local"] == 2

    def test_works_against_raw_matrix_backend(self, setup):
        """Any Table 1 backend serves the client — here the oracle matrix."""
        symbols, index, matrix = setup
        via_index = classify_sites(index, symbols.site_names(), symbols.variable_names())
        via_matrix = classify_sites(matrix, symbols.site_names(), symbols.variable_names())
        assert [r.escapes for r in via_index] == [r.escapes for r in via_matrix]
