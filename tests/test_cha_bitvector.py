"""ChaBV baseline: lossless class-vector round trips and format hardening."""

import io
import random

import pytest

from repro.baselines.cha_bitvector import (
    MAGIC,
    ChaBitVectorPersistence,
)
from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.matrix.points_to import PointsToMatrix


def random_matrix(seed, n_pointers=12, n_objects=8):
    rng = random.Random(seed)
    matrix = PointsToMatrix(n_pointers, n_objects)
    for _ in range(rng.randint(0, n_pointers * n_objects)):
        matrix.add(rng.randrange(n_pointers), rng.randrange(n_objects))
    return matrix


def encode_decode(matrix, class_of=None):
    body = io.BytesIO()
    ChaBitVectorPersistence.encode(matrix, body, class_of=class_of)
    return ChaBitVectorPersistence.decode_buffer(body.getvalue())


def assert_lossless(matrix, index):
    transpose = matrix.transpose()
    for p in range(matrix.n_pointers):
        assert index.list_points_to(p) == sorted(matrix.rows[p])
    for obj in range(matrix.n_objects):
        assert sorted(index.list_pointed_by(obj)) == sorted(transpose.rows[obj])
    for p in range(matrix.n_pointers):
        row = set(matrix.rows[p])
        expected = sorted(
            q for q in range(matrix.n_pointers)
            if q != p and row & set(matrix.rows[q])
        )
        assert index.list_aliases(p) == expected
        for q in range(matrix.n_pointers):
            assert index.is_alias(p, q) == bool(row & set(matrix.rows[q]))


def test_round_trip_random_matrices():
    for seed in range(25):
        matrix = random_matrix(seed)
        assert_lossless(matrix, encode_decode(matrix))


def test_round_trip_synthetic():
    matrix = synthesize(SyntheticSpec(n_pointers=400, n_objects=80, seed=5))
    index = encode_decode(matrix)
    transpose = matrix.transpose()
    for p in range(matrix.n_pointers):
        assert index.list_points_to(p) == sorted(matrix.rows[p])
    for obj in range(matrix.n_objects):
        assert sorted(index.list_pointed_by(obj)) == sorted(transpose.rows[obj])


def test_coarse_hierarchy_is_refined_to_lossless():
    # A declared hierarchy that lumps objects with different pointed-by
    # columns must be split by the column refinement, not trusted.
    matrix = random_matrix(3, n_pointers=10, n_objects=6)
    coarse = [0] * matrix.n_objects  # everything "one class"
    assert_lossless(matrix, encode_decode(matrix, class_of=coarse))


def test_hierarchy_classes_shape_the_partition():
    # Two objects with identical columns but different declared classes
    # must not share a bit.
    matrix = PointsToMatrix(2, 2)
    matrix.add(0, 0)
    matrix.add(0, 1)
    matrix.add(1, 0)
    matrix.add(1, 1)
    merged = encode_decode(matrix)
    split = encode_decode(matrix, class_of=[0, 1])
    assert len(merged._class_members) == 1
    assert len(split._class_members) == 2
    assert_lossless(matrix, merged)
    assert_lossless(matrix, split)


def test_class_of_length_checked():
    matrix = random_matrix(1)
    with pytest.raises(ValueError, match="class_of must cover"):
        encode_decode(matrix, class_of=[0])


def test_checksum_and_magic_guard():
    matrix = random_matrix(7)
    body = io.BytesIO()
    ChaBitVectorPersistence.encode(matrix, body)
    data = bytearray(body.getvalue())
    with pytest.raises(ValueError, match="checksum mismatch"):
        flipped = bytearray(data)
        flipped[len(MAGIC) + 2] ^= 0xFF
        ChaBitVectorPersistence.decode_buffer(bytes(flipped))
    with pytest.raises(ValueError, match="bad magic"):
        ChaBitVectorPersistence.decode_buffer(b"NOTCHBV0" + bytes(data[8:]))
    with pytest.raises(ValueError, match="truncated"):
        ChaBitVectorPersistence.decode_buffer(bytes(data[:8]))


def test_file_round_trip(tmp_path):
    matrix = random_matrix(9)
    path = str(tmp_path / "m.chbv")
    size = ChaBitVectorPersistence.encode_to_file(matrix, path)
    assert size > 0
    index = ChaBitVectorPersistence.decode_from_file(path)
    assert_lossless(matrix, index)
    assert index.memory_footprint() > 0


def test_empty_matrix():
    matrix = PointsToMatrix(3, 2)
    index = encode_decode(matrix)
    for p in range(3):
        assert index.list_points_to(p) == []
        assert index.list_aliases(p) == []
    # Empty columns collapse into one class shared by both objects.
    assert index.list_pointed_by(0) == []
    assert index.list_pointed_by(1) == []
