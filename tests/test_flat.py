"""The zero-copy PESTRIE4 query engine: selection, parity, hostile input.

Three contracts around :class:`repro.core.flat.FlatIndex`:

* **Selection** — ``PESTRIE4`` + ``ptlist`` mode gets the flat engine through
  every public entry point; legacy versions and ``segment`` mode fall back
  to the materialising :class:`~repro.core.query.PestrieIndex`.
* **Parity** — every Table 1 answer from the mapped bytes equals the eager
  decode and the matrix oracle, including the ``_pes_range`` boundary cases
  the flat layout shares with the classic index (single-PES file, an
  unpointed trailing PES, a pointer sitting exactly on the last origin
  break).
* **Hostile input** — corrupt bytes can never become a wrong answer: a flip
  anywhere in a flat section dies on the CRC at open, and a *forged* image
  (mutation + recomputed CRC) that breaks a search invariant dies with
  ``CorruptFileError`` at the first query.
"""

import struct
import threading

import pytest

from repro.core.decoder import (
    FLAT_SECTION_NAMES,
    CorruptFileError,
    decode_bytes,
    detect_format,
)
from repro.core.encoder import MAGIC_V4
from repro.core.flat import FlatIndex, flat_supported, index_for_container
from repro.core.ioutil import crc32
from repro.core.pipeline import encode, index_from_bytes, load_index
from repro.core.query import PestrieIndex
from repro.delta import DeltaLog, append_delta, load_overlay
from repro.delta.persist import compact_file
from repro.matrix.points_to import PointsToMatrix
from repro.serve import ShardedIndex
from repro.store import Container, ContainerClosedError, open_index

from conftest import make_random_matrix

_V3_HEADER_END = 8 + 1 + 11 * 4 + 10 * 4
_SECTION = {name: i for i, name in enumerate(FLAT_SECTION_NAMES)}


def _write(tmp_path, name, data):
    path = str(tmp_path / name)
    with open(path, "wb") as stream:
        stream.write(data)
    return path


@pytest.fixture
def matrix():
    return make_random_matrix(18, 7, 0.3, seed=99)


@pytest.fixture
def v4_bytes(matrix):
    return encode(matrix, order="hub", version=4)


def _layout(data):
    """Flat section offsets/sizes plus the header facts forgeries need."""
    with Container.from_bytes(bytes(data)) as container:
        return {
            "offsets": list(container._flat_offsets),
            "sizes": list(container._flat_sizes),
            "n_pointers": container.n_pointers,
            "n_objects": container.n_objects,
            "n_groups": container.n_groups,
            "counts": tuple(container.flat_counts),
            "flat_start": container.flat_range[0],
        }


def _reforged(data, mutate):
    """Apply ``mutate`` to a copy and recompute the CRC trailer."""
    blob = bytearray(data)
    mutate(blob)
    struct.pack_into("<I", blob, len(blob) - 4, crc32(bytes(blob[:-4])))
    return bytes(blob)


def _set_word(blob, layout, section, word, value):
    offset = layout["offsets"][_SECTION[section]] + 4 * word
    struct.pack_into("<I", blob, offset, value)


def _get_word(data, layout, section, word):
    offset = layout["offsets"][_SECTION[section]] + 4 * word
    return struct.unpack_from("<I", data, offset)[0]


def _assert_matches_oracle(flat, eager, matrix):
    """Every Table 1 query: flat == eager == brute-force matrix."""
    n = matrix.n_pointers
    pairs = [(p, q) for p in range(n) for q in range(n)]
    assert flat.is_alias_batch(pairs) == [matrix.is_alias(p, q) for p, q in pairs]
    for p in range(n):
        for q in range(n):
            assert flat.is_alias(p, q) == matrix.is_alias(p, q), (p, q)
        assert sorted(flat.list_points_to(p)) == matrix.list_points_to(p)
        assert sorted(flat.list_aliases(p)) == matrix.list_aliases(p)
        assert flat.pes_of(p) == eager.pes_of(p)
        assert flat.column_of(p) == eager.column_of(p)
        for obj in range(matrix.n_objects):
            assert flat.points_to_contains(p, obj) == (obj in matrix.rows[p])
    for obj in range(matrix.n_objects):
        assert sorted(flat.list_pointed_by(obj)) == matrix.list_pointed_by(obj)
    assert set(flat.iter_alias_pairs()) == set(eager.iter_alias_pairs())
    assert flat.materialize() == matrix


class TestSelection:
    def test_v4_ptlist_gets_flat_engine(self, v4_bytes):
        container = Container.from_bytes(v4_bytes, allow_tail=False)
        assert container.has_flat
        assert flat_supported(container)
        index = index_for_container(container)
        assert isinstance(index, FlatIndex)
        assert index.mode == "flat"
        index.close()

    def test_segment_mode_falls_back(self, v4_bytes):
        container = Container.from_bytes(v4_bytes, allow_tail=False)
        index = index_for_container(container, mode="segment")
        assert isinstance(index, PestrieIndex)
        index.close()

    def test_v3_falls_back(self, matrix):
        data = encode(matrix, order="hub", version=3)
        container = Container.from_bytes(data, allow_tail=False)
        assert not container.has_flat
        assert not flat_supported(container)
        index = index_for_container(container)
        assert isinstance(index, PestrieIndex)
        index.close()

    def test_open_index_and_load_index_select_flat(self, v4_bytes, tmp_path):
        path = _write(tmp_path, "image.pst", v4_bytes)
        for index in (open_index(path), load_index(path, lazy=True),
                      index_from_bytes(v4_bytes, lazy=True)):
            assert isinstance(index, FlatIndex)
            index.close()
        # Eager loads still materialise a classic index.
        assert isinstance(load_index(path), PestrieIndex)

    def test_flat_index_rejects_non_v4_container(self, matrix):
        data = encode(matrix, order="hub", version=3)
        with Container.from_bytes(data) as container:
            with pytest.raises(ValueError, match="PESTRIE4"):
                FlatIndex(container)

    def test_flat_accessors_rejected_on_v3(self, matrix, v4_bytes):
        data = encode(matrix, order="hub", version=3)
        with Container.from_bytes(data) as container:
            with pytest.raises(ValueError, match="PESTRIE4"):
                container.flat_view(0)
            with pytest.raises(ValueError, match="PESTRIE4"):
                container.flat_range
        with Container.from_bytes(v4_bytes) as container:
            with pytest.raises(IndexError):
                container.flat_view(len(FLAT_SECTION_NAMES))

    def test_v4_encoding_is_deterministic(self, matrix):
        first = encode(matrix, order="hub", version=4)
        second = encode(matrix, order="hub", version=4)
        assert first == second
        assert first[:8] == MAGIC_V4
        assert detect_format(first) == (4, False)


class TestParity:
    def test_random_matrix_all_queries(self, matrix, v4_bytes):
        eager = index_from_bytes(encode(matrix, order="hub", version=3))
        flat = index_from_bytes(v4_bytes, lazy=True)
        try:
            assert isinstance(flat, FlatIndex)
            _assert_matches_oracle(flat, eager, matrix)
        finally:
            flat.close()

    def test_paper_matrix(self, paper_matrix):
        eager = index_from_bytes(encode(paper_matrix, order="identity", version=3))
        flat = index_from_bytes(
            encode(paper_matrix, order="identity", version=4), lazy=True)
        try:
            _assert_matches_oracle(flat, eager, paper_matrix)
        finally:
            flat.close()

    def test_empty_and_untracked_pointers(self):
        matrix = PointsToMatrix(4, 3)
        matrix.add(1, 1)
        flat = index_from_bytes(encode(matrix, version=4), lazy=True)
        try:
            assert flat.pes_of(0) is None
            assert flat.column_of(0) is None
            assert not flat.is_alias(0, 1)
            assert flat.list_points_to(0) == []
            assert flat.list_aliases(0) == []
            assert flat.list_pointed_by(0) == []
        finally:
            flat.close()

    def test_memory_footprint_is_mapped_bytes_only(self, matrix, v4_bytes):
        flat = index_from_bytes(v4_bytes, lazy=True)
        try:
            footprint = flat.memory_footprint()
            assert 0 < footprint < len(v4_bytes)
        finally:
            flat.close()


class TestPesRangeBoundaries:
    """Satellite audit of ``_pes_range``: the block of the *last* PES.

    Both engines derive a PES block's upper bound from the next origin
    timestamp; the last PES has none and must extend to ``n_groups - 1``.
    These matrices pin the three boundary shapes against the brute-force
    oracle for the eager index AND the flat engine.
    """

    def _check(self, matrix):
        eager = index_from_bytes(encode(matrix, order="hub", version=3))
        flat = index_from_bytes(encode(matrix, order="hub", version=4), lazy=True)
        try:
            _assert_matches_oracle(flat, eager, matrix)
        finally:
            flat.close()

    def test_single_pes_file(self):
        # Every pointer shares one row set -> exactly one PES; its block is
        # the entire timestamp range and every pair aliases.
        matrix = PointsToMatrix(5, 2)
        for p in range(5):
            matrix.add(p, 0)
            matrix.add(p, 1)
        self._check(matrix)

    def test_empty_trailing_pes(self):
        # The construction-order last object is pointed to by nobody else:
        # its PES block is the trailing range with a single member.
        matrix = PointsToMatrix(6, 3)
        for p in range(5):
            matrix.add(p, 0)
        matrix.add(5, 2)
        self._check(matrix)

    def test_pointer_on_last_origin_break(self):
        # A pointer whose timestamp lands exactly on the last origin break
        # must resolve into the last PES, not past it.
        matrix = PointsToMatrix(7, 4)
        for p in range(4):
            matrix.add(p, p % 2)
        matrix.add(4, 3)
        matrix.add(5, 3)
        matrix.add(6, 2)
        self._check(matrix)
        flat = index_from_bytes(encode(matrix, order="hub", version=4), lazy=True)
        try:
            # At least one tracked pointer sits on the *last* origin break
            # (the last PES is never empty), exercising the n_groups-1 arm.
            last_origin = max(flat._origin_ts)
            assert any(flat.column_of(p) == last_origin for p in range(7))
        finally:
            flat.close()


class TestCorruptionAtOpen:
    @pytest.mark.parametrize("section", FLAT_SECTION_NAMES)
    def test_bit_flip_in_each_flat_section_dies_on_crc(self, v4_bytes, section):
        layout = _layout(v4_bytes)
        index = _SECTION[section]
        size = layout["sizes"][index]
        assert size > 0, "fixture matrix must populate every flat section"
        blob = bytearray(v4_bytes)
        blob[layout["offsets"][index] + size // 2] ^= 0xFF
        with pytest.raises(CorruptFileError, match="checksum"):
            Container.from_bytes(bytes(blob))

    def test_nonzero_flags_byte_rejected(self, v4_bytes):
        forged = _reforged(v4_bytes, lambda blob: blob.__setitem__(8, 0x01))
        with pytest.raises(CorruptFileError, match="flags"):
            Container.from_bytes(forged)

    def test_truncation_inside_flat_region(self, v4_bytes):
        layout = _layout(v4_bytes)
        with pytest.raises(CorruptFileError):
            Container.from_bytes(v4_bytes[: layout["flat_start"] + 3])

    def test_spliced_entry_count_rejected(self, v4_bytes):
        def grow_entries(blob):
            count = struct.unpack_from("<I", blob, _V3_HEADER_END + 8)[0]
            struct.pack_into("<I", blob, _V3_HEADER_END + 8, count + 7)

        with pytest.raises(CorruptFileError):
            Container.from_bytes(_reforged(v4_bytes, grow_entries))

    def test_tracked_count_above_pointer_count_rejected(self, v4_bytes):
        layout = _layout(v4_bytes)

        def grow_tracked(blob):
            struct.pack_into("<I", blob, _V3_HEADER_END,
                             layout["n_pointers"] + 1)

        with pytest.raises(CorruptFileError, match="tracked"):
            Container.from_bytes(_reforged(v4_bytes, grow_tracked))


class TestForgedStructuralViolations:
    """Valid CRC, hostile tables: the first query must refuse, never lie."""

    def _forge_word(self, data, section, word, value):
        layout = _layout(data)
        return _reforged(
            data, lambda blob: _set_word(blob, layout, section, word, value))

    @pytest.mark.parametrize("section,word,value,match", [
        ("origin_obj", 0, 7, "origin_obj"),
        ("obj_rank", 0, 7, "obj_rank"),
        ("pes_rank", 0, 7, "pes_rank"),
        ("sorted_ptr_ts", 0, 0xFFFF0000, "unsorted"),
        ("sorted_ptr_id", 0, 18, "pointer id"),
        ("slab_offsets", 0, 1, "does not span"),
        ("slab_offsets", 1, 0x0FFFFFFF, "not monotone"),
        ("c1_offsets", 0, 1, "does not span"),
    ])
    def test_forged_table_fails_at_first_query(self, v4_bytes, section, word,
                                               value, match):
        forged = self._forge_word(v4_bytes, section, word, value)
        flat = index_from_bytes(forged, lazy=True)
        try:
            with pytest.raises(CorruptFileError, match=match):
                flat.is_alias(0, 1)
        finally:
            flat.close()

    def test_forged_origin_ts_not_increasing(self, v4_bytes):
        layout = _layout(v4_bytes)
        first = _get_word(v4_bytes, layout, "origin_ts", 0)
        forged = self._forge_word(v4_bytes, "origin_ts", 1, first)
        flat = index_from_bytes(forged, lazy=True)
        try:
            with pytest.raises(CorruptFileError, match="strictly increasing"):
                flat.pes_of(0)
        finally:
            flat.close()

    def test_forged_origin_ts_outside_group_range(self, v4_bytes):
        layout = _layout(v4_bytes)
        forged = self._forge_word(
            v4_bytes, "origin_ts", layout["n_objects"] - 1, layout["n_groups"])
        flat = index_from_bytes(forged, lazy=True)
        try:
            with pytest.raises(CorruptFileError, match="group range"):
                flat.pes_of(0)
        finally:
            flat.close()

    def test_forged_slab_breaks_not_increasing(self, v4_bytes):
        layout = _layout(v4_bytes)
        first = _get_word(v4_bytes, layout, "slab_breaks", 0)
        forged = self._forge_word(v4_bytes, "slab_breaks", 1, first)
        flat = index_from_bytes(forged, lazy=True)
        try:
            with pytest.raises(CorruptFileError, match="slab breaks"):
                flat.is_alias(0, 1)
        finally:
            flat.close()


class TestLifetime:
    def test_queries_after_close_raise(self, v4_bytes):
        flat = index_from_bytes(v4_bytes, lazy=True)
        flat.close()
        flat.close()  # idempotent
        for access in (lambda: flat.is_alias(0, 1),
                       lambda: flat.list_points_to(0),
                       lambda: flat.list_pointed_by(0),
                       lambda: flat.pes_of(0),
                       flat.materialize):
            with pytest.raises(ContainerClosedError):
                access()

    def test_concurrent_queries_during_close_never_misanswer(self, matrix,
                                                             v4_bytes):
        # Hammer queries from two threads while the main thread closes; every
        # completed answer must be correct, every failure must be the clean
        # closed-index error.
        expected = {(p, q): matrix.is_alias(p, q)
                    for p in range(matrix.n_pointers)
                    for q in range(matrix.n_pointers)}
        flat = index_from_bytes(v4_bytes, lazy=True)
        failures = []

        def worker():
            try:
                for (p, q), want in expected.items():
                    if flat.is_alias(p, q) != want:
                        failures.append((p, q))
            except (ContainerClosedError, ValueError):
                pass  # closed mid-stream: clean refusal, not a wrong answer

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        flat.close()
        for thread in threads:
            thread.join(10)
        assert not failures


class TestCloseRaceRegression:
    def test_close_waits_for_in_flight_materialization(self, matrix, tmp_path):
        """PestrieIndex.close vs lazy ``__getattr__``: the close must block.

        The query thread stalls inside the sweep build (container.rects is
        patched to wait); a close racing in used to release the container
        underneath the build, so the query died with ContainerClosedError
        instead of answering.  With close() honouring ``_lock`` it waits for
        the build, and the answer matches the eager index.
        """
        data = encode(matrix, order="hub", version=3)
        path = _write(tmp_path, "image.pst", data)
        expected = index_from_bytes(data).is_alias(0, 1)

        index = load_index(path, lazy=True)
        container = index._container
        build_started = threading.Event()
        release_build = threading.Event()
        original_rects = container.rects

        def stalled_rects():
            build_started.set()
            release_build.wait(10)
            return original_rects()

        container.rects = stalled_rects
        outcome = {}

        def query():
            try:
                outcome["answer"] = index.is_alias(0, 1)
            except Exception as error:  # noqa: BLE001 - recorded for the assert
                outcome["error"] = error

        query_thread = threading.Thread(target=query)
        query_thread.start()
        assert build_started.wait(10)
        closer = threading.Thread(target=index.close)
        closer.start()
        # The close must now be parked on the index lock; let the build run.
        release_build.set()
        query_thread.join(10)
        closer.join(10)
        assert outcome.get("error") is None, outcome["error"]
        assert outcome["answer"] == expected


class TestFromBytesCopySemantics:
    def test_bytes_input_is_wrapped_zero_copy(self, v4_bytes):
        container = Container.from_bytes(v4_bytes, allow_tail=False)
        view = container.buffer
        assert view.obj is v4_bytes
        view.release()
        container.close()

    def test_readonly_memoryview_input_is_not_copied(self, v4_bytes):
        source = memoryview(v4_bytes)
        container = Container.from_bytes(source, allow_tail=False)
        view = container.buffer
        assert view.obj is v4_bytes
        view.release()
        container.close()
        source.release()

    def test_writable_input_is_snapshotted(self, v4_bytes):
        source = bytearray(v4_bytes)
        container = Container.from_bytes(source, allow_tail=False)
        view = container.buffer
        assert view.obj is not source
        view.release()
        # Corrupting the caller's buffer after open must not reach the
        # container: the snapshot still decodes to the original payload.
        source[len(source) // 2] ^= 0xFF
        assert container.payload() == decode_bytes(v4_bytes)
        container.close()

    def test_writable_memoryview_input_is_snapshotted(self, v4_bytes):
        source = bytearray(v4_bytes)
        with Container.from_bytes(memoryview(source), allow_tail=False) as c:
            source[9] ^= 0xFF
            assert c.payload() == decode_bytes(v4_bytes)


class TestDeltaOverFlatBase:
    def test_overlay_composes_over_flat_base(self, matrix, v4_bytes, tmp_path):
        path = _write(tmp_path, "tailed.pst", v4_bytes)
        log = DeltaLog()
        log.insert(0, matrix.n_objects - 1)
        log.delete(1, next(iter(matrix.rows[1]), 0))
        append_delta(path, log)
        overlay = load_overlay(path, lazy=True)
        try:
            assert isinstance(overlay.base, FlatIndex)
            edited = overlay.materialize()
            eager = load_overlay(path).materialize()
            assert edited == eager
        finally:
            overlay.base.close()

    def test_compact_file_preserves_v4(self, matrix, v4_bytes, tmp_path):
        path = _write(tmp_path, "tailed.pst", v4_bytes)
        log = DeltaLog()
        log.insert(2, 0)
        append_delta(path, log)
        compact_file(path)
        with open(path, "rb") as stream:
            assert stream.read(8) == MAGIC_V4
        index = open_index(path)
        assert isinstance(index, FlatIndex)
        assert index.points_to_contains(2, 0)
        index.close()

    def test_auto_compaction_preserves_v4(self, v4_bytes, tmp_path):
        path = _write(tmp_path, "auto.pst", v4_bytes)
        log = DeltaLog()
        log.insert(0, 0)
        result = append_delta(path, log, auto_compact_ratio=1e-9)
        assert result.compacted
        with open(path, "rb") as stream:
            assert stream.read(8) == MAGIC_V4


class TestShardedFlat:
    def test_lazy_v4_shards_match_eager(self, matrix, tmp_path):
        paths = []
        cut = matrix.n_pointers // 2
        for start, stop in ((0, cut), (cut, matrix.n_pointers)):
            sub = PointsToMatrix(stop - start, matrix.n_objects)
            for p in range(start, stop):
                for obj in matrix.rows[p]:
                    sub.add(p - start, obj)
            paths.append(_write(tmp_path, "shard-%d.pst" % start,
                                encode(sub, version=4)))
        eager = ShardedIndex.from_files(paths)
        lazy = ShardedIndex.from_files(paths, lazy=True)
        try:
            for p in range(matrix.n_pointers):
                for q in range(matrix.n_pointers):
                    assert lazy.is_alias(p, q) == eager.is_alias(p, q)
        finally:
            lazy.close()
        with pytest.raises(ContainerClosedError):
            lazy.is_alias(0, 1)
