"""Race-detector and change-impact clients over every backend."""

import pytest

from repro.baselines.demand import DemandDriven
from repro.clients.impact import direct_impact, transitive_impact
from repro.clients.race import (
    aliasing_pairs_bulk,
    aliasing_pairs_by_is_alias,
    aliasing_pairs_by_list_aliases,
    conflict_report,
)
from repro.core.pipeline import encode, index_from_bytes

from conftest import make_random_matrix


@pytest.fixture
def backends(paper_matrix):
    pestrie = index_from_bytes(encode(paper_matrix, order="identity"))
    demand = DemandDriven(paper_matrix)
    return {"pestrie": pestrie, "demand": demand, "oracle": paper_matrix}


class TestRaceClient:
    def test_methods_agree_on_paper_example(self, backends, paper_matrix):
        base = list(range(7))
        expected = {
            (p, q)
            for p in base
            for q in base
            if p < q and paper_matrix.is_alias(p, q)
        }
        for name, backend in backends.items():
            assert aliasing_pairs_by_is_alias(backend, base) == expected, name
        # ListAliases route (not available on the raw-matrix oracle API in
        # restricted form, but both real backends must agree).
        assert aliasing_pairs_by_list_aliases(backends["pestrie"], base) == expected
        assert aliasing_pairs_by_list_aliases(backends["demand"], base) == expected

    def test_restricted_base_pointer_set(self, backends, paper_matrix):
        base = [0, 4, 6]  # p1, p5, p7
        expected = {(0, 6)}  # only p1/p7 alias (via o5)
        assert aliasing_pairs_by_is_alias(backends["pestrie"], base) == expected
        assert aliasing_pairs_by_list_aliases(backends["pestrie"], base) == expected

    def test_methods_agree_on_random_matrices(self):
        for seed in range(4):
            matrix = make_random_matrix(40, 12, density=0.15, seed=seed)
            index = index_from_bytes(encode(matrix))
            base = list(range(0, 40, 3))
            via_is_alias = aliasing_pairs_by_is_alias(index, base)
            via_list = aliasing_pairs_by_list_aliases(index, base)
            via_bulk = aliasing_pairs_bulk(index, base)
            assert via_is_alias == via_list == via_bulk

    def test_bulk_method_on_paper_example(self, backends, paper_matrix):
        base = list(range(7))
        expected = aliasing_pairs_by_is_alias(backends["pestrie"], base)
        assert aliasing_pairs_bulk(backends["pestrie"], base) == expected
        assert aliasing_pairs_bulk(backends["pestrie"], [0, 4, 6]) == {(0, 6)}

    def test_conflict_report(self):
        names = ["alpha", "beta", "gamma"]
        report = conflict_report({(2, 0), (0, 1)}, names)
        assert report == [
            "may-race: alpha  <->  beta",
            "may-race: alpha  <->  gamma",
        ]

    def test_empty_base_set(self, backends):
        assert aliasing_pairs_by_is_alias(backends["pestrie"], []) == set()
        assert aliasing_pairs_by_list_aliases(backends["pestrie"], []) == set()


class TestImpactClient:
    def test_direct_impact(self, backends, paper_matrix):
        index = backends["pestrie"]
        # Changing o5 impacts p1, p3, p7.
        assert direct_impact(index, [4]) == {0, 2, 6}

    def test_transitive_impact_widens(self, backends):
        index = backends["pestrie"]
        direct = direct_impact(index, [3])  # o4: p4, p5
        widened = transitive_impact(index, [3], rounds=1)
        assert direct <= widened
        # p4 aliases p1/p2/p3/p7, which join the impact set.
        assert {0, 1, 2, 6} <= widened

    def test_zero_rounds_equals_direct(self, backends):
        index = backends["pestrie"]
        assert transitive_impact(index, [4], rounds=0) == direct_impact(index, [4])

    def test_converges_early(self, backends):
        index = backends["pestrie"]
        assert transitive_impact(index, [0], rounds=50) == transitive_impact(
            index, [0], rounds=3
        )

    def test_empty_change_set(self, backends):
        assert transitive_impact(backends["pestrie"], []) == set()
