"""Cross-version differential oracle: ``as_of(k)`` ≡ from-scratch rebuild.

The MVCC invariant under test: for any base matrix and any sequence of
edit scripts appended as epoch-stamped delta records, replaying the chain
prefix ``as_of(k)`` answers all four Table 1 queries identically to a
:class:`PestrieIndex` built from a *full re-encode* of the matrix after
the first ``k`` scripts — for every epoch ``k`` at once, from one file
open.  Compaction folds history and must make folded epochs fail loudly
(:class:`VersionUnavailableError`), never answer from the wrong version.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_matrix, matrices
from repro.core.pipeline import encode, index_from_bytes, persist
from repro.delta import (
    DeltaLog,
    VersionUnavailableError,
    append_delta,
    compact_file,
    encode_record,
    load_versions,
    versions_from_bytes,
)
from repro.matrix.points_to import PointsToMatrix
from test_delta_oracle import apply_script, assert_table1_equivalent, random_script

# ----------------------------------------------------------------------
# Chain construction: a persisted base plus K appended records, with the
# reference state at every epoch kept alongside.
# ----------------------------------------------------------------------


def build_chain(path: str, matrix: PointsToMatrix, scripts) -> List[PointsToMatrix]:
    """Persist ``matrix`` then append one record per script.

    Returns ``states`` where ``states[k]`` is the ground-truth matrix at
    epoch ``k`` (``states[0]`` is the base).  Scripts that net to nothing
    still consume an epoch only if they produce a record, so callers pass
    effective scripts.
    """
    states = [matrix]
    for script in scripts:
        result = append_delta(path, script)
        assert result.epoch == len(states), "epochs must be 1..k in order"
        states.append(apply_script(states[-1], script))
    return states


def effective_scripts(rng: random.Random, matrix: PointsToMatrix,
                      count: int) -> Tuple[List[DeltaLog], List[PointsToMatrix]]:
    """``count`` scripts that each net to at least one record."""
    scripts: List[DeltaLog] = []
    state = matrix
    while len(scripts) < count:
        script = random_script(rng, matrix, rng.randint(1, 8))
        inserts, deletes = script.net()
        if not inserts and not deletes:
            continue
        scripts.append(script)
        state = apply_script(state, script)
    return scripts, [state]


def assert_chain_matches_rebuilds(versioned, states) -> None:
    """Every epoch of ``versioned`` answers like its from-scratch rebuild."""
    assert versioned.floor == 0
    assert versioned.head == len(states) - 1
    assert versioned.versions() == list(range(len(states)))
    for epoch, state in enumerate(states):
        pinned = versioned.as_of(epoch)
        oracle = index_from_bytes(encode(state))
        assert_table1_equivalent(pinned, oracle, state.n_pointers,
                                 state.n_objects)
        assert pinned.materialize() == state


# ----------------------------------------------------------------------
# The oracle over file-backed chains
# ----------------------------------------------------------------------


class TestVersionOracle:
    def test_seeded_sweep(self, tmp_path):
        """Deterministic volume: 20 chains × every epoch × four queries."""
        checked = 0
        for seed in range(20):
            rng = random.Random("version-oracle-%d" % seed)
            matrix = make_random_matrix(
                rng.randint(2, 16), rng.randint(1, 8),
                density=rng.choice((0.1, 0.3, 0.5)), seed=seed)
            path = str(tmp_path / ("chain-%d.pestrie" % seed))
            persist(matrix, path, compact=bool(seed % 2))
            scripts, _ = effective_scripts(rng, matrix, rng.randint(1, 5))
            states = build_chain(path, matrix, scripts)
            versioned = load_versions(path)
            try:
                assert_chain_matches_rebuilds(versioned, states)
                checked += len(states)
            finally:
                versioned.close()
        assert checked >= 40

    @settings(max_examples=40)
    @given(matrices(), st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_hypothesis_chains(self, matrix, seed):
        """Adversarial shapes: in-memory chains checked at every epoch."""
        rng = random.Random(seed)
        image = encode(matrix)
        states = [matrix]
        for _ in range(rng.randint(1, 4)):
            script = random_script(rng, matrix, rng.randint(0, 10))
            inserts, deletes = script.net()
            if not inserts and not deletes:
                continue
            image += encode_record(inserts, deletes, epoch=len(states))
            states.append(apply_script(states[-1], script))
        versioned = versions_from_bytes(image)
        assert_chain_matches_rebuilds(versioned, states)

    @pytest.mark.parametrize("version,lazy", [(3, False), (4, False), (4, True)])
    def test_base_variants(self, tmp_path, version, lazy):
        """The oracle holds over compact v3 and zero-copy/flat v4 bases."""
        matrix = make_random_matrix(14, 6, density=0.3, seed=31)
        path = str(tmp_path / "base.pestrie")
        persist(matrix, path, version=version, compact=version == 3)
        rng = random.Random(31)
        scripts, _ = effective_scripts(rng, matrix, 3)
        states = build_chain(path, matrix, scripts)
        versioned = load_versions(path, lazy=lazy)
        try:
            assert_chain_matches_rebuilds(versioned, states)
        finally:
            versioned.close()

    def test_segment_mode(self, tmp_path):
        matrix = make_random_matrix(12, 5, density=0.3, seed=32)
        path = str(tmp_path / "seg.pestrie")
        persist(matrix, path)
        scripts, _ = effective_scripts(random.Random(32), matrix, 2)
        states = build_chain(path, matrix, scripts)
        versioned = load_versions(path, mode="segment")
        try:
            assert_chain_matches_rebuilds(versioned, states)
        finally:
            versioned.close()

    def test_out_of_range_versions_raise(self, tmp_path):
        matrix = make_random_matrix(8, 4, density=0.3, seed=33)
        path = str(tmp_path / "range.pestrie")
        persist(matrix, path)
        append_delta(path, DeltaLog().insert(0, 0) if 0 not in matrix.rows[0]
                     else DeltaLog().delete(0, 0))
        versioned = load_versions(path)
        try:
            with pytest.raises(VersionUnavailableError):
                versioned.as_of(2)
            with pytest.raises(VersionUnavailableError):
                versioned.as_of(-1)
            with pytest.raises(TypeError):
                versioned.as_of("1")
        finally:
            versioned.close()


class TestLegacyAndMixedChains:
    """``PESDELT1`` records get implicit epochs and mix with stamped ones."""

    def _states_and_scripts(self, matrix, seed, count):
        rng = random.Random(seed)
        scripts = []
        states = [matrix]
        while len(scripts) < count:
            script = random_script(rng, matrix, rng.randint(1, 6))
            inserts, deletes = script.net()
            if not inserts and not deletes:
                continue
            scripts.append((inserts, deletes))
            states.append(apply_script(states[-1], script))
        return scripts, states

    def test_legacy_chain_gets_implicit_epochs(self):
        matrix = make_random_matrix(10, 5, density=0.3, seed=41)
        scripts, states = self._states_and_scripts(matrix, 41, 3)
        image = encode(matrix)
        for inserts, deletes in scripts:  # epoch=None → legacy PESDELT1
            image += encode_record(inserts, deletes)
        versioned = versions_from_bytes(image)
        assert_chain_matches_rebuilds(versioned, states)

    def test_mixed_chain(self):
        """Legacy records interleaved with stamped ones keep 1..k epochs."""
        matrix = make_random_matrix(10, 5, density=0.3, seed=42)
        scripts, states = self._states_and_scripts(matrix, 42, 4)
        image = encode(matrix)
        for index, (inserts, deletes) in enumerate(scripts):
            epoch = index + 1 if index % 2 else None  # alternate variants
            image += encode_record(inserts, deletes, epoch=epoch)
        versioned = versions_from_bytes(image)
        assert_chain_matches_rebuilds(versioned, states)

    def test_epoch_gaps_snap_to_the_older_record(self):
        """Stamped epochs may skip values; gaps resolve to the older state."""
        matrix = make_random_matrix(10, 5, density=0.3, seed=43)
        scripts, states = self._states_and_scripts(matrix, 43, 2)
        image = encode(matrix)
        image += encode_record(*scripts[0], epoch=2)
        image += encode_record(*scripts[1], epoch=7)
        versioned = versions_from_bytes(image)
        assert versioned.versions() == [0, 2, 7]
        assert versioned.as_of(2).materialize() == states[1]
        assert versioned.as_of(7).materialize() == states[2]
        # State only changes at record epochs: 1 sees the base, 5 sees
        # the epoch-2 record, and past-the-head versions fail loudly.
        assert versioned.as_of(1).materialize() == states[0]
        assert versioned.as_of(5).materialize() == states[1]
        with pytest.raises(VersionUnavailableError):
            versioned.as_of(8)


class TestCompactionWatermark:
    def test_folded_epochs_fail_loudly(self, tmp_path):
        matrix = make_random_matrix(12, 6, density=0.3, seed=51)
        path = str(tmp_path / "wm.pestrie")
        persist(matrix, path)
        scripts, _ = effective_scripts(random.Random(51), matrix, 3)
        states = build_chain(path, matrix, scripts)
        compact_file(path)
        versioned = load_versions(path)
        try:
            assert versioned.floor == versioned.head == 3
            assert versioned.versions() == [3]
            assert versioned.as_of(3).materialize() == states[3]
            for folded in (0, 1, 2):
                with pytest.raises(VersionUnavailableError):
                    versioned.as_of(folded)
        finally:
            versioned.close()

    def test_appends_continue_past_the_watermark(self, tmp_path):
        """Post-compaction appends resume the epoch sequence, not restart it."""
        matrix = make_random_matrix(12, 6, density=0.3, seed=52)
        path = str(tmp_path / "wm2.pestrie")
        persist(matrix, path)
        rng = random.Random(52)
        scripts, _ = effective_scripts(rng, matrix, 2)
        states = build_chain(path, matrix, scripts)
        compact_file(path)
        more, _ = effective_scripts(rng, matrix, 2)
        for script in more:
            result = append_delta(path, script)
            states.append(apply_script(states[-1], script))
            assert result.epoch == len(states) - 1
        versioned = load_versions(path)
        try:
            assert versioned.floor == 2
            assert versioned.versions() == [2, 3, 4]
            for epoch in (2, 3, 4):
                oracle = index_from_bytes(encode(states[epoch]))
                assert_table1_equivalent(versioned.as_of(epoch), oracle,
                                         12, 6)
        finally:
            versioned.close()


# ----------------------------------------------------------------------
# dirty_between / diff: the record-derived change sets are exact
# ----------------------------------------------------------------------


class TestVersionDiff:
    def test_diff_matches_materialized_states(self, tmp_path):
        matrix = make_random_matrix(14, 7, density=0.3, seed=61)
        path = str(tmp_path / "diff.pestrie")
        persist(matrix, path)
        scripts, _ = effective_scripts(random.Random(61), matrix, 4)
        states = build_chain(path, matrix, scripts)
        versioned = load_versions(path)
        try:
            for v1 in range(len(states)):
                for v2 in range(v1, len(states)):
                    added, removed = versioned.diff(v1, v2)
                    old_facts = {(p, o) for p in range(14)
                                 for o in states[v1].rows[p]}
                    new_facts = {(p, o) for p in range(14)
                                 for o in states[v2].rows[p]}
                    assert set(added) == new_facts - old_facts
                    assert set(removed) == old_facts - new_facts
        finally:
            versioned.close()

    def test_dirty_between_covers_every_changed_pointer(self, tmp_path):
        matrix = make_random_matrix(14, 7, density=0.3, seed=62)
        path = str(tmp_path / "dirty.pestrie")
        persist(matrix, path)
        scripts, _ = effective_scripts(random.Random(62), matrix, 3)
        states = build_chain(path, matrix, scripts)
        versioned = load_versions(path)
        try:
            pointers, objects = versioned.dirty_between(0, versioned.head)
            changed = {p for p in range(14)
                       if set(states[0].rows[p]) != set(states[-1].rows[p])}
            assert changed <= pointers
            changed_objects = {o for p in range(14)
                               for o in set(states[0].rows[p])
                               ^ set(states[-1].rows[p])}
            assert changed_objects <= objects
        finally:
            versioned.close()
