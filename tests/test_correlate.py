"""Cross-run variable correlation (Section 6.2)."""

from repro.analysis import andersen
from repro.analysis.correlate import (
    check_correlation,
    load_archive,
    registry_path,
    save_archive,
)
from repro.analysis.parser import parse_program

SOURCE = """
global shared

func make() {
  m = alloc M
  return m
}

func main() {
  p = call make()
  q = call make()
  shared = p
  r = shared
  *p = q
  s = *r
  return
}
"""


def _analyze_and_save(directory):
    program = parse_program(SOURCE)
    result = andersen.analyze(program)
    matrix = result.to_matrix()
    pointer_index = dict(result.symbols.variable_ids)
    object_index = dict(result.symbols.site_ids)
    save_archive(str(directory), program, matrix, pointer_index, object_index)
    return program, result


class TestArchive:
    def test_save_creates_all_four_artefacts(self, tmp_path):
        _analyze_and_save(tmp_path)
        names = {child.name for child in tmp_path.iterdir()}
        assert names == {"program.ir", "variables.json", "call_edges.json", "points_to.pes"}
        assert registry_path(str(tmp_path)) is not None

    def test_registry_path_on_non_archive(self, tmp_path):
        assert registry_path(str(tmp_path / "nowhere")) is None

    def test_load_answers_source_level_queries(self, tmp_path):
        program, result = _analyze_and_save(tmp_path)
        archive = load_archive(str(tmp_path))
        # The reloaded index answers without re-running the analysis.
        assert archive.list_points_to("main::p") == ["make::M"]
        assert archive.is_alias("main::p", "shared")
        assert archive.is_alias("main::p", "main::r")
        assert "main::p" in archive.list_pointed_by("make::M")
        assert "main::r" in archive.list_aliases("main::p")

    def test_ir_round_trips(self, tmp_path):
        program, _ = _analyze_and_save(tmp_path)
        archive = load_archive(str(tmp_path))
        assert archive.program.statement_count() == program.statement_count()
        assert set(archive.program.functions) == set(program.functions)

    def test_call_edges_persisted(self, tmp_path):
        _analyze_and_save(tmp_path)
        archive = load_archive(str(tmp_path))
        assert "main@0->make" in archive.call_edge_ids
        assert "main@1->make" in archive.call_edge_ids

    def test_correlation_across_two_runs(self, tmp_path):
        """Re-analysing the same source reproduces the same integer ids —
        the invariant that makes the persisted file reusable."""
        first_dir = tmp_path / "run1"
        second_dir = tmp_path / "run2"
        _analyze_and_save(first_dir)
        _analyze_and_save(second_dir)
        first = load_archive(str(first_dir))
        second = load_archive(str(second_dir))
        assert check_correlation(first, second)
        assert first.pointer_index == second.pointer_index

    def test_correlation_detects_mismatch(self, tmp_path):
        first_dir = tmp_path / "run1"
        _analyze_and_save(first_dir)
        first = load_archive(str(first_dir))
        second = load_archive(str(first_dir))
        second.pointer_index = dict(first.pointer_index)
        key = next(iter(second.pointer_index))
        second.pointer_index[key] = 10_000
        assert not check_correlation(first, second)

    def test_matrix_queries_match_live_analysis(self, tmp_path):
        program, result = _analyze_and_save(tmp_path)
        archive = load_archive(str(tmp_path))
        matrix = result.to_matrix()
        for name, pointer in archive.pointer_index.items():
            assert sorted(archive.index.list_points_to(pointer)) == matrix.list_points_to(pointer)
