"""Persistent file format: byte layout, round trips, error handling."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_pestrie
from repro.core.decoder import decode_bytes, load_payload
from repro.core.encoder import (
    ABSENT,
    MAGIC_COMPACT,
    MAGIC_RAW,
    PestrieEncoder,
    object_timestamps,
    pointer_timestamps,
    save_pestrie,
)
from repro.core.intervals import assign_intervals
from repro.core.rectangles import generate_rectangles
from repro.matrix.points_to import PointsToMatrix

from conftest import matrices


def _encode(matrix, order="identity", compact=False):
    pestrie = build_pestrie(matrix, order=order)
    assign_intervals(pestrie)
    rect_set = generate_rectangles(pestrie)
    return pestrie, rect_set, PestrieEncoder(pestrie, rect_set.rects, compact=compact).to_bytes()


class TestTimestampTables:
    def test_paper_example_tables(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        assign_intervals(pestrie)
        # Table 5, read back per pointer (p1..p7) and object (o1..o5).
        assert pointer_timestamps(pestrie) == [3, 0, 1, 2, 7, 4, 6]
        assert object_timestamps(pestrie) == [0, 4, 5, 7, 8]

    def test_absent_pointer_sentinel(self):
        matrix = PointsToMatrix(2, 1)
        matrix.add(0, 0)
        pestrie = build_pestrie(matrix)
        assign_intervals(pestrie)
        stamps = pointer_timestamps(pestrie)
        assert stamps[1] == ABSENT


class TestByteLayout:
    def test_magic(self, paper_matrix):
        _, _, raw = _encode(paper_matrix)
        assert raw.startswith(MAGIC_RAW)
        _, _, compact = _encode(paper_matrix, compact=True)
        assert compact.startswith(MAGIC_COMPACT)

    def test_header_counts(self, paper_matrix):
        _, rect_set, raw = _encode(paper_matrix)
        header = struct.unpack_from("<11I", raw, 8)
        n_pointers, n_objects, n_groups = header[:3]
        assert (n_pointers, n_objects, n_groups) == (7, 5, 9)
        shape_counts = header[3:]
        # Figure 4: 5 of 7 rectangles are points, 1 is a line, 1 is a rect.
        assert sum(shape_counts) == 7
        # point counts: case1 + case2
        assert shape_counts[0] + shape_counts[1] == 5

    def test_deterministic_output(self, paper_matrix):
        _, _, first = _encode(paper_matrix)
        _, _, second = _encode(paper_matrix)
        assert first == second

    def test_compact_smaller_than_raw(self):
        matrix = PointsToMatrix.from_pairs(
            60, 20, [(p, (p * 7 + o) % 20) for p in range(60) for o in range(4)]
        )
        _, _, raw = _encode(matrix)
        _, _, compact = _encode(matrix, compact=True)
        assert len(compact) < len(raw)

    def test_raw_size_formula(self, paper_matrix):
        """magic + 11 header ints + (7+5) timestamps + shape payloads."""
        _, rect_set, raw = _encode(paper_matrix)
        points = sum(1 for e in rect_set.rects
                     if e.rect.x1 == e.rect.x2 and e.rect.y1 == e.rect.y2)
        lines = sum(1 for e in rect_set.rects
                    if (e.rect.x1 == e.rect.x2) != (e.rect.y1 == e.rect.y2))
        full = len(rect_set.rects) - points - lines
        expected = 8 + 4 * (11 + 12 + 2 * points + 3 * lines + 4 * full)
        assert len(raw) == expected


class TestDecoding:
    def test_round_trip_payload(self, paper_matrix):
        pestrie, rect_set, raw = _encode(paper_matrix)
        payload = decode_bytes(raw)
        assert payload.n_pointers == 7
        assert payload.n_objects == 5
        assert payload.n_groups == 9
        assert payload.pointer_ts == [3, 0, 1, 2, 7, 4, 6]
        assert payload.object_ts == [0, 4, 5, 7, 8]
        decoded = sorted(rect.as_tuple() for rect, _ in payload.rects)
        original = sorted(entry.rect.as_tuple() for entry in rect_set.rects)
        assert decoded == original

    def test_case_flags_survive(self, paper_matrix):
        _, rect_set, raw = _encode(paper_matrix)
        payload = decode_bytes(raw)
        decoded_case1 = sorted(r.as_tuple() for r, case1 in payload.rects if case1)
        original_case1 = sorted(e.rect.as_tuple() for e in rect_set.case1())
        assert decoded_case1 == original_case1

    @settings(max_examples=50)
    @given(matrices(), st.booleans())
    def test_round_trip_any_matrix(self, matrix, compact):
        _, rect_set, data = _encode(matrix, order="hub", compact=compact)
        payload = decode_bytes(data)
        assert payload.n_pointers == matrix.n_pointers
        decoded = sorted(rect.as_tuple() for rect, _ in payload.rects)
        assert decoded == sorted(e.rect.as_tuple() for e in rect_set.rects)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            decode_bytes(b"NOTAPES1" + b"\x00" * 64)

    def test_file_round_trip(self, paper_matrix, tmp_path):
        pestrie, rect_set, _ = _encode(paper_matrix)
        path = str(tmp_path / "example.pes")
        size = save_pestrie(pestrie, rect_set.rects, path)
        assert size == (tmp_path / "example.pes").stat().st_size
        payload = load_payload(path)
        assert payload.n_groups == 9

    def test_varint_multibyte_values(self):
        """Timestamps above 127 exercise multi-byte varints: distinct rows
        keep every pointer in its own group."""
        matrix = PointsToMatrix.from_pairs(200, 200, [(p, p) for p in range(200)])
        _, _, data = _encode(matrix, compact=True)
        payload = decode_bytes(data)
        assert payload.n_pointers == 200
        assert max(ts for ts in payload.pointer_ts if ts is not None) >= 128
        # And the raw format agrees on the decoded content.
        _, _, raw = _encode(matrix, compact=False)
        assert decode_bytes(raw).pointer_ts == payload.pointer_ts
