"""Persistent file format: byte layout, round trips, error handling."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import zlib

from repro.core.builder import build_pestrie
from repro.core.decoder import CorruptFileError, decode_bytes, detect_format, load_payload
from repro.core.encoder import (
    ABSENT,
    FLAG_COMPACT,
    MAGIC_COMPACT,
    MAGIC_RAW,
    MAGIC_V3,
    PestrieEncoder,
    _write_varint,
    object_timestamps,
    pointer_timestamps,
    save_pestrie,
)
from repro.core.intervals import assign_intervals
from repro.core.rectangles import generate_rectangles
from repro.matrix.points_to import PointsToMatrix

from conftest import matrices


def _encode(matrix, order="identity", compact=False, version=3):
    pestrie = build_pestrie(matrix, order=order)
    assign_intervals(pestrie)
    rect_set = generate_rectangles(pestrie)
    encoder = PestrieEncoder(pestrie, rect_set.rects, compact=compact, version=version)
    return pestrie, rect_set, encoder.to_bytes()


class TestTimestampTables:
    def test_paper_example_tables(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        assign_intervals(pestrie)
        # Table 5, read back per pointer (p1..p7) and object (o1..o5).
        assert pointer_timestamps(pestrie) == [3, 0, 1, 2, 7, 4, 6]
        assert object_timestamps(pestrie) == [0, 4, 5, 7, 8]

    def test_absent_pointer_sentinel(self):
        matrix = PointsToMatrix(2, 1)
        matrix.add(0, 0)
        pestrie = build_pestrie(matrix)
        assign_intervals(pestrie)
        stamps = pointer_timestamps(pestrie)
        assert stamps[1] == ABSENT


class TestByteLayout:
    def test_magic(self, paper_matrix):
        _, _, raw = _encode(paper_matrix, version=1)
        assert raw.startswith(MAGIC_RAW)
        _, _, compact = _encode(paper_matrix, compact=True, version=2)
        assert compact.startswith(MAGIC_COMPACT)
        _, _, v3 = _encode(paper_matrix, version=3)
        assert v3.startswith(MAGIC_V3)

    def test_header_counts(self, paper_matrix):
        _, rect_set, raw = _encode(paper_matrix, version=1)
        header = struct.unpack_from("<11I", raw, 8)
        n_pointers, n_objects, n_groups = header[:3]
        assert (n_pointers, n_objects, n_groups) == (7, 5, 9)
        shape_counts = header[3:]
        # Figure 4: 5 of 7 rectangles are points, 1 is a line, 1 is a rect.
        assert sum(shape_counts) == 7
        # point counts: case1 + case2
        assert shape_counts[0] + shape_counts[1] == 5

    def test_deterministic_output(self, paper_matrix):
        for version in (1, 3):
            _, _, first = _encode(paper_matrix, version=version)
            _, _, second = _encode(paper_matrix, version=version)
            assert first == second

    def test_compact_smaller_than_raw(self):
        matrix = PointsToMatrix.from_pairs(
            60, 20, [(p, (p * 7 + o) % 20) for p in range(60) for o in range(4)]
        )
        for version in (None, 3):
            kwargs = {} if version is None else {"version": version}
            _, _, raw = _encode(matrix, **kwargs)
            _, _, compact = _encode(matrix, compact=True, **kwargs)
            assert len(compact) < len(raw)

    def test_raw_size_formula(self, paper_matrix):
        """magic + 11 header ints + (7+5) timestamps + shape payloads."""
        _, rect_set, raw = _encode(paper_matrix, version=1)
        points = sum(1 for e in rect_set.rects
                     if e.rect.x1 == e.rect.x2 and e.rect.y1 == e.rect.y2)
        lines = sum(1 for e in rect_set.rects
                    if (e.rect.x1 == e.rect.x2) != (e.rect.y1 == e.rect.y2))
        full = len(rect_set.rects) - points - lines
        expected = 8 + 4 * (11 + 12 + 2 * points + 3 * lines + 4 * full)
        assert len(raw) == expected


class TestV3Layout:
    def test_structure(self, paper_matrix):
        """magic, flags, header, 10 section lengths, payload, CRC trailer."""
        _, _, data = _encode(paper_matrix, version=3)
        assert data[:8] == MAGIC_V3
        assert data[8] == 0  # raw coding, no flags
        header = struct.unpack_from("<11I", data, 9)
        assert header[:3] == (7, 5, 9)
        lengths = struct.unpack_from("<10I", data, 9 + 11 * 4)
        payload_start = 8 + 1 + 11 * 4 + 10 * 4
        assert payload_start + sum(lengths) + 4 == len(data)
        # Raw sections are exactly 4 bytes per stored integer.
        assert lengths[0] == 4 * header[0]
        assert lengths[1] == 4 * header[1]

    def test_compact_flag(self, paper_matrix):
        _, _, data = _encode(paper_matrix, compact=True, version=3)
        assert data[8] == FLAG_COMPACT
        assert detect_format(data) == (3, True)

    def test_crc_trailer(self, paper_matrix):
        _, _, data = _encode(paper_matrix, version=3)
        stored = struct.unpack_from("<I", data, len(data) - 4)[0]
        assert stored == (zlib.crc32(data[:-4]) & 0xFFFFFFFF)

    def test_same_payload_as_legacy(self, paper_matrix):
        """All three versions decode to the identical payload."""
        _, _, v1 = _encode(paper_matrix, version=1)
        _, _, v2 = _encode(paper_matrix, compact=True, version=2)
        _, _, v3 = _encode(paper_matrix, version=3)
        _, _, v3c = _encode(paper_matrix, compact=True, version=3)
        reference = decode_bytes(v1)
        assert decode_bytes(v2) == reference
        assert decode_bytes(v3) == reference
        assert decode_bytes(v3c) == reference

    def test_bad_version_arguments(self, paper_matrix):
        pestrie = build_pestrie(paper_matrix, order="identity")
        assign_intervals(pestrie)
        rects = generate_rectangles(pestrie).rects
        with pytest.raises(ValueError, match="version"):
            PestrieEncoder(pestrie, rects, version=5)
        with pytest.raises(ValueError, match="compact"):
            PestrieEncoder(pestrie, rects, compact=True, version=1)
        with pytest.raises(ValueError, match="zero-copy"):
            PestrieEncoder(pestrie, rects, compact=True, version=4)


class TestVarintGuards:
    def test_negative_value_raises_instead_of_hanging(self):
        out = bytearray()
        with pytest.raises(ValueError, match="non-negative"):
            _write_varint(out, -1)

    def test_value_above_u32_rejected(self):
        out = bytearray()
        with pytest.raises(ValueError, match="uint32"):
            _write_varint(out, 0x1_0000_0000)

    def test_u32_boundary_round_trips(self):
        out = bytearray()
        _write_varint(out, 0xFFFFFFFF)
        assert bytes(out) == b"\xff\xff\xff\xff\x0f"


class TestDecoding:
    def test_round_trip_payload(self, paper_matrix):
        pestrie, rect_set, raw = _encode(paper_matrix)
        payload = decode_bytes(raw)
        assert payload.n_pointers == 7
        assert payload.n_objects == 5
        assert payload.n_groups == 9
        assert payload.pointer_ts == [3, 0, 1, 2, 7, 4, 6]
        assert payload.object_ts == [0, 4, 5, 7, 8]
        decoded = sorted(rect.as_tuple() for rect, _ in payload.rects)
        original = sorted(entry.rect.as_tuple() for entry in rect_set.rects)
        assert decoded == original

    def test_case_flags_survive(self, paper_matrix):
        _, rect_set, raw = _encode(paper_matrix)
        payload = decode_bytes(raw)
        decoded_case1 = sorted(r.as_tuple() for r, case1 in payload.rects if case1)
        original_case1 = sorted(e.rect.as_tuple() for e in rect_set.case1())
        assert decoded_case1 == original_case1

    @settings(max_examples=50)
    @given(matrices(), st.booleans())
    def test_round_trip_any_matrix(self, matrix, compact):
        _, rect_set, data = _encode(matrix, order="hub", compact=compact)
        payload = decode_bytes(data)
        assert payload.n_pointers == matrix.n_pointers
        decoded = sorted(rect.as_tuple() for rect, _ in payload.rects)
        assert decoded == sorted(e.rect.as_tuple() for e in rect_set.rects)

    def test_bad_magic_rejected(self):
        # CorruptFileError so callers can catch one exception type for any
        # hostile input; still a ValueError for older call sites.
        with pytest.raises(CorruptFileError, match="bad magic"):
            decode_bytes(b"NOTAPES1" + b"\x00" * 64)

    def test_short_input_is_truncation_not_bad_magic(self):
        for blob in (b"", b"PES", b"PESTRIE"):
            with pytest.raises(CorruptFileError, match="truncated"):
                decode_bytes(blob)

    def test_file_round_trip(self, paper_matrix, tmp_path):
        pestrie, rect_set, _ = _encode(paper_matrix)
        path = str(tmp_path / "example.pes")
        size = save_pestrie(pestrie, rect_set.rects, path)
        assert size == (tmp_path / "example.pes").stat().st_size
        payload = load_payload(path)
        assert payload.n_groups == 9

    def test_save_is_atomic_and_leaves_no_staging_files(self, paper_matrix, tmp_path):
        pestrie, rect_set, _ = _encode(paper_matrix)
        target = tmp_path / "example.pes"
        # Replace an existing (corrupt) file in place: readers must only
        # ever observe the old content or the complete new file.
        target.write_bytes(b"garbage from a torn write")
        save_pestrie(pestrie, rect_set.rects, str(target))
        assert decode_bytes(target.read_bytes()).n_groups == 9
        assert sorted(p.name for p in tmp_path.iterdir()) == ["example.pes"]

    def test_save_legacy_versions(self, paper_matrix, tmp_path):
        pestrie, rect_set, _ = _encode(paper_matrix)
        for version, magic in ((1, MAGIC_RAW), (2, MAGIC_COMPACT), (3, MAGIC_V3)):
            path = tmp_path / ("v%d.pes" % version)
            save_pestrie(pestrie, rect_set.rects, str(path), version=version)
            assert path.read_bytes()[:8] == magic
            assert load_payload(str(path)).n_groups == 9

    def test_varint_multibyte_values(self):
        """Timestamps above 127 exercise multi-byte varints: distinct rows
        keep every pointer in its own group."""
        matrix = PointsToMatrix.from_pairs(200, 200, [(p, p) for p in range(200)])
        _, _, data = _encode(matrix, compact=True)
        payload = decode_bytes(data)
        assert payload.n_pointers == 200
        assert max(ts for ts in payload.pointer_ts if ts is not None) >= 128
        # And the raw format agrees on the decoded content.
        _, _, raw = _encode(matrix, compact=False)
        assert decode_bytes(raw).pointer_ts == payload.pointer_ts
