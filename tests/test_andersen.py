"""Andersen's analysis: handwritten cases plus a naive-solver oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import andersen
from repro.analysis.ir import (
    Alloc,
    Call,
    Copy,
    FieldLoad,
    FieldStore,
    FuncRef,
    Function,
    IndirectCall,
    Load,
    Program,
    Return,
    Store,
    SymbolTable,
)
from repro.analysis.parser import parse_program
from repro.bench.programs import ProgramSpec, generate_program


def _naive_solve(program, symbols):
    """Fixed-point iteration straight off the constraint definitions."""
    var_pts = [set() for _ in range(symbols.n_variables)]
    obj_pts = [set() for _ in range(symbols.n_sites)]
    returns = {}
    for function in program.functions.values():
        for stmt in function.simple_statements():
            if isinstance(stmt, Return) and stmt.value is not None:
                returns.setdefault(function.name, []).append(
                    symbols.variable(function.name, stmt.value)
                )
    changed = True
    while changed:
        changed = False

        def merge(target_set, source_set):
            nonlocal changed
            before = len(target_set)
            target_set.update(source_set)
            if len(target_set) != before:
                changed = True

        for function in program.functions.values():
            fname = function.name
            for stmt in function.simple_statements():
                if isinstance(stmt, Alloc):
                    merge(
                        var_pts[symbols.variable(fname, stmt.target)],
                        {symbols.site(fname, stmt.site)},
                    )
                elif isinstance(stmt, Copy):
                    merge(
                        var_pts[symbols.variable(fname, stmt.target)],
                        var_pts[symbols.variable(fname, stmt.source)],
                    )
                elif isinstance(stmt, (Load, FieldLoad)):
                    target = symbols.variable(fname, stmt.target)
                    for obj in list(var_pts[symbols.variable(fname, stmt.source)]):
                        merge(var_pts[target], obj_pts[obj])
                elif isinstance(stmt, (Store, FieldStore)):
                    source = symbols.variable(fname, stmt.source)
                    for obj in list(var_pts[symbols.variable(fname, stmt.target)]):
                        merge(obj_pts[obj], var_pts[source])
                elif isinstance(stmt, Call):
                    callee = program.functions[stmt.callee]
                    for param, arg in zip(callee.params, stmt.args):
                        merge(
                            var_pts[symbols.variable(stmt.callee, param)],
                            var_pts[symbols.variable(fname, arg)],
                        )
                    if stmt.target is not None:
                        target = symbols.variable(fname, stmt.target)
                        for returned in returns.get(stmt.callee, ()):
                            merge(var_pts[target], var_pts[returned])
                elif isinstance(stmt, FuncRef):
                    merge(
                        var_pts[symbols.variable(fname, stmt.target)],
                        {symbols.function_object(stmt.func)},
                    )
                elif isinstance(stmt, IndirectCall):
                    fn_sites = symbols.function_object_sites()
                    pointer = symbols.variable(fname, stmt.pointer)
                    for site in list(var_pts[pointer]):
                        callee_name = fn_sites.get(site)
                        if callee_name is None:
                            continue
                        callee = program.functions[callee_name]
                        for param, arg in zip(callee.params, stmt.args):
                            merge(
                                var_pts[symbols.variable(callee_name, param)],
                                var_pts[symbols.variable(fname, arg)],
                            )
                        if stmt.target is not None:
                            target = symbols.variable(fname, stmt.target)
                            for returned in returns.get(callee_name, ()):
                                merge(var_pts[target], var_pts[returned])
    return var_pts, obj_pts


class TestHandwritten:
    def test_alloc_and_copy(self):
        program = parse_program(
            "func main() {\n  p = alloc A\n  q = p\n  return\n}\n"
        )
        result = andersen.analyze(program)
        assert result.pts_of("main", "p") == result.pts_of("main", "q")
        assert len(result.pts_of("main", "p")) == 1

    def test_store_load_flow(self):
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  q = alloc B\n"
            "  *p = q\n"
            "  r = *p\n"
            "  return\n"
            "}\n"
        )
        result = andersen.analyze(program)
        assert result.pts_of("main", "r") == result.pts_of("main", "q")

    def test_no_flow_between_unrelated_cells(self):
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  x = alloc B\n"
            "  q = alloc C\n"
            "  *p = q\n"
            "  r = *x\n"
            "  return\n"
            "}\n"
        )
        result = andersen.analyze(program)
        assert result.pts_of("main", "r") == set()

    def test_call_parameter_and_return(self):
        program = parse_program(
            "func id(x) {\n  return x\n}\n"
            "func main() {\n  p = alloc A\n  q = call id(p)\n  return\n}\n"
        )
        result = andersen.analyze(program)
        assert result.pts_of("main", "q") == result.pts_of("main", "p")

    def test_context_insensitive_merging(self):
        """Both call sites of id() receive the union of both arguments."""
        program = parse_program(
            "func id(x) {\n  return x\n}\n"
            "func main() {\n"
            "  a = alloc A\n"
            "  b = alloc B\n"
            "  p = call id(a)\n"
            "  q = call id(b)\n"
            "  return\n"
            "}\n"
        )
        result = andersen.analyze(program)
        assert len(result.pts_of("main", "p")) == 2
        assert result.pts_of("main", "p") == result.pts_of("main", "q")

    def test_globals_shared(self):
        program = parse_program(
            "global g\n"
            "func writer() {\n  w = alloc W\n  g = w\n  return\n}\n"
            "func main() {\n  call writer()\n  r = g\n  return\n}\n"
        )
        result = andersen.analyze(program)
        assert result.pts_of("main", "r") == {result.symbols.site("writer", "W")}

    def test_cyclic_copy_chain(self):
        program = parse_program(
            "func main() {\n"
            "  a = alloc A\n"
            "  b = a\n"
            "  c = b\n"
            "  a = c\n"
            "  return\n"
            "}\n"
        )
        result = andersen.analyze(program)
        assert result.pts_of("main", "a") == result.pts_of("main", "c")

    def test_to_matrix_names(self):
        program = parse_program("func main() {\n  p = alloc A\n  return\n}\n")
        matrix = andersen.analyze(program).to_matrix()
        assert matrix.pointer_names is not None
        assert "main::p" in matrix.pointer_names
        assert matrix.object_names == ["main::A"]


class TestAgainstNaiveSolver:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_naive_fixpoint(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=6, statements_per_function=10, n_types=3, seed=seed
        )
        program = generate_program(spec)
        symbols = SymbolTable(program)
        result = andersen.analyze(program, symbols)
        naive_vars, naive_objs = _naive_solve(program, symbols)
        for var in range(symbols.n_variables):
            assert set(result.var_pts[var]) == naive_vars[var], symbols.variable_names()[var]
        for obj in range(symbols.n_sites):
            assert set(result.obj_pts[obj]) == naive_objs[obj]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_naive_with_indirect_calls(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=6, statements_per_function=10, n_types=3,
            seed=seed, indirect_call_prob=0.5,
        )
        program = generate_program(spec)
        symbols = SymbolTable(program)
        result = andersen.analyze(program, symbols)
        naive_vars, naive_objs = _naive_solve(program, symbols)
        for var in range(symbols.n_variables):
            assert set(result.var_pts[var]) == naive_vars[var], symbols.variable_names()[var]
        for obj in range(symbols.n_sites):
            assert set(result.obj_pts[obj]) == naive_objs[obj]

    def test_matches_naive_on_sample(self):
        source = (
            "global g\n"
            "func make() {\n  m = alloc M\n  return m\n}\n"
            "func main() {\n"
            "  p = call make()\n"
            "  q = call make()\n"
            "  *p = q\n"
            "  g = p\n"
            "  r = *g\n"
            "  return\n"
            "}\n"
        )
        program = parse_program(source)
        symbols = SymbolTable(program)
        result = andersen.analyze(program, symbols)
        naive_vars, _ = _naive_solve(program, symbols)
        for var in range(symbols.n_variables):
            assert set(result.var_pts[var]) == naive_vars[var]


class TestSeeding:
    def test_arbitrary_seeds_produce_superset(self):
        """Seeds outside the natural fixpoint still solve soundly: the
        result is the fixpoint of constraints + seeds, a superset."""
        from repro.analysis.parser import parse_program

        program = parse_program(
            "func main() {\n  p = alloc A\n  q = p\n  return\n}\n"
        )
        from repro.analysis.ir import SymbolTable

        symbols = SymbolTable(program)
        plain = andersen.analyze(program, symbols)
        bogus_site = symbols.site("main", "A")
        r = symbols.variable("main", "q")
        seeded = andersen.analyze(
            program, SymbolTable(program),
            seed_var_facts=[(r, bogus_site)],
        )
        for var in range(symbols.n_variables):
            assert set(plain.var_pts[var]) <= set(seeded.var_pts[var])

    def test_fixpoint_seeds_are_idempotent(self):
        """Seeding with the final solution changes nothing."""
        from repro.analysis.parser import parse_program
        from repro.analysis.ir import SymbolTable

        program = parse_program(
            "func make() {\n  m = alloc M\n  return m\n}\n"
            "func main() {\n  p = call make()\n  *p = p\n  r = *p\n  return\n}\n"
        )
        plain = andersen.analyze(program)
        seeds = [
            (var, site)
            for var, pts in enumerate(plain.var_pts)
            for site in pts
        ]
        obj_seeds = [
            (cell, site)
            for cell, pts in enumerate(plain.obj_pts)
            for site in pts
        ]
        seeded = andersen.analyze(program, SymbolTable(program),
                                  seed_var_facts=seeds, seed_obj_facts=obj_seeds)
        assert seeded.to_matrix() == plain.to_matrix()
