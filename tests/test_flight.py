"""The PR 9 observability layer: flight recorder, query costs, profiler,
cross-thread span propagation, and the slow-query log's cost ride-along."""

import io
import json
import signal
import threading
import time

import pytest

from repro.obs import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    QueryCost,
    SlowQueryLog,
    Tracer,
    add_parsed_bytes,
    add_section,
    current_cost,
    get_flight_recorder,
    install_signal_dump,
    measure,
    note_cache_hit,
    note_cache_miss,
    note_epoch,
    note_replay_depth,
    note_shard_fanout,
    sample_profile,
)


# ----------------------------------------------------------------------
# QueryCost contexts
# ----------------------------------------------------------------------


class TestQueryCost:
    def test_hooks_are_no_ops_without_a_context(self):
        # Must not raise, must not create a context.
        add_parsed_bytes(100)
        add_section()
        note_cache_hit()
        note_cache_miss()
        note_replay_depth(3)
        note_shard_fanout(2)
        note_epoch(7)
        assert current_cost() is None

    def test_measure_collects_hook_feed(self):
        with measure() as cost:
            assert current_cost() is cost
            add_parsed_bytes(64)
            add_parsed_bytes(36)
            add_section()
            note_cache_hit()
            note_cache_miss()
            note_replay_depth(2)
            note_shard_fanout(3)
            note_epoch(5)
        assert current_cost() is None
        assert cost.bytes_parsed == 100
        assert cost.sections_materialized == 1
        assert cost.cache_hits == 1
        assert cost.cache_misses == 1
        assert cost.replay_depth == 2
        assert cost.shard_fanout == 3
        assert cost.epoch == 5
        assert cost.seconds > 0.0

    def test_nested_contexts_merge_into_parent(self):
        with measure() as outer:
            add_parsed_bytes(10)
            with measure() as inner:
                add_parsed_bytes(5)
                note_replay_depth(4)
                note_epoch(2)
            # The inner context observed only its own block...
            assert inner.bytes_parsed == 5
        # ...and folded it into the parent on exit: counters add, depth
        # maxes, the parent adopts the child's epoch when it has none.
        assert outer.bytes_parsed == 15
        assert outer.replay_depth == 4
        assert outer.epoch == 2

    def test_merge_does_not_overwrite_parent_epoch(self):
        parent = QueryCost()
        parent.epoch = 9
        child = QueryCost()
        child.epoch = 1
        parent.merge(child)
        assert parent.epoch == 9

    def test_as_dict_omits_unset_epoch_and_coalesced(self):
        cost = QueryCost()
        data = cost.as_dict()
        assert "epoch" not in data
        assert "coalesced" not in data
        cost.epoch = 3
        cost.coalesced = True
        data = cost.as_dict()
        assert data["epoch"] == 3
        assert data["coalesced"] is True
        json.dumps(data)  # JSON-ready by contract

    def test_render_is_deterministic_and_epoch_leads(self):
        cost = QueryCost()
        cost.epoch = 1
        lines = cost.render().splitlines()
        assert lines[0].startswith("epoch")
        assert any(line.startswith("bytes_parsed") for line in lines)

    def test_exception_still_pops_the_stack(self):
        with pytest.raises(RuntimeError):
            with measure():
                raise RuntimeError("boom")
        assert current_cost() is None

    def test_contexts_are_thread_local(self):
        seen = []

        def worker():
            seen.append(current_cost())

        with measure():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_record_and_read_back(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("query", op="is_alias", seconds=0.001)
        recorder.record("delta", epoch=2)
        events = recorder.events()
        assert [event["kind"] for event in events] == ["query", "delta"]
        assert events[0]["seq"] < events[1]["seq"]
        assert events[0]["op"] == "is_alias"
        assert events[1]["epoch"] == 2
        assert all("wall" in event for event in events)

    def test_ring_is_bounded_and_keeps_the_newest(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("tick", index=index)
        events = recorder.events()
        assert len(events) == 4
        assert [event["index"] for event in events] == [6, 7, 8, 9]
        assert len(recorder) == 4

    def test_kind_filter_and_limit(self):
        recorder = FlightRecorder(capacity=16)
        for index in range(6):
            recorder.record("a" if index % 2 else "b", index=index)
        assert all(e["kind"] == "a" for e in recorder.events(kind="a"))
        assert len(recorder.events(limit=2)) == 2

    def test_dump_json_parses(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("query", op="is_alias")
        parsed = json.loads(recorder.dump_json())
        assert parsed[0]["kind"] == "query"

    def test_dump_to_stream_is_framed(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("query")
        stream = io.StringIO()
        recorder.dump_to(stream, reason="unit test")
        text = stream.getvalue()
        assert "flight recorder dump" in text
        assert "unit test" in text
        assert "query" in text

    def test_disable_drops_events(self):
        recorder = FlightRecorder(capacity=4)
        recorder.set_enabled(False)
        recorder.record("query")
        assert recorder.events() == []
        recorder.set_enabled(True)
        recorder.record("query")
        assert len(recorder.events()) == 1

    def test_clear(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("query")
        recorder.clear()
        assert recorder.events() == []

    def test_global_recorder_is_always_on(self):
        recorder = get_flight_recorder()
        assert recorder is get_flight_recorder()
        assert recorder.enabled
        assert recorder.capacity == DEFAULT_FLIGHT_CAPACITY

    def test_events_count_into_the_registry(self):
        from repro.obs import get_registry

        recorder = FlightRecorder(capacity=4)
        counter = get_registry().counter("repro_flight_events_total",
                                         kind="unit_test_kind")
        before = counter.value
        recorder.record("unit_test_kind")
        assert counter.value == before + 1

    def test_install_signal_dump_only_on_main_thread(self):
        results = []

        def worker():
            results.append(install_signal_dump(signal.SIGUSR2))

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert results == [False]

    def test_sigusr2_dumps_without_dying(self, capfd):
        import os

        previous = signal.getsignal(signal.SIGUSR2)
        try:
            assert install_signal_dump(signal.SIGUSR2)
            get_flight_recorder().record("signal_probe")
            os.kill(os.getpid(), signal.SIGUSR2)
            time.sleep(0.05)
        finally:
            signal.signal(signal.SIGUSR2, previous)
        captured = capfd.readouterr()
        assert "flight recorder dump" in captured.err
        assert "signal_probe" in captured.err


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------


class TestSamplingProfiler:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            sample_profile(0)
        with pytest.raises(ValueError):
            sample_profile(-1)

    def test_profiles_a_busy_thread(self):
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                sum(range(100))

        thread = threading.Thread(target=spin)
        thread.start()
        try:
            report = sample_profile(0.2, interval=0.005)
        finally:
            stop.set()
            thread.join()
        assert report.startswith("profile:")
        assert "samples" in report
        assert "spin" in report

    def test_window_is_clamped(self):
        from repro.obs import MAX_PROFILE_SECONDS

        assert MAX_PROFILE_SECONDS == 30.0
        # A tiny window returns quickly even when asking for the clamp.
        report = sample_profile(0.05)
        assert "0.05s window" in report


# ----------------------------------------------------------------------
# Cross-thread span propagation (the satellite fix, standalone)
# ----------------------------------------------------------------------


class TestSpanPropagation:
    def test_executor_spans_attach_to_the_submitting_request(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("request") as root:
                parent = tracer.current()
                assert parent is root

                def job():
                    with tracer.propagate(parent):
                        with tracer.span("work"):
                            pass

                thread = threading.Thread(target=job)
                thread.start()
                thread.join()
        finally:
            tracer.disable()
        roots = tracer.roots()
        assert len(roots) == 1
        assert [child.name for child in roots[0].children] == ["work"]

    def test_without_propagation_the_span_orphans(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("request"):
                def job():
                    with tracer.span("work"):
                        pass

                thread = threading.Thread(target=job)
                thread.start()
                thread.join()
        finally:
            tracer.disable()
        assert [span.name for span in tracer.roots()] == ["work", "request"]

    def test_propagate_is_noop_when_disabled_or_parentless(self):
        tracer = Tracer()
        with tracer.propagate(None):
            pass
        tracer.enable()
        try:
            with tracer.propagate(None):
                assert tracer.current() is None
        finally:
            tracer.disable()

    def test_current_is_none_when_disabled(self):
        tracer = Tracer()
        assert tracer.current() is None


# ----------------------------------------------------------------------
# Slow-query entries carry epoch and cost
# ----------------------------------------------------------------------


class TestSlowQueryCost:
    def test_entry_records_epoch_and_cost(self):
        log = SlowQueryLog(threshold=0.0, capacity=4)
        cost = QueryCost()
        cost.bytes_parsed = 128
        cost.cache_misses = 1
        log.record("is_alias", (1, 2), 0.5, cache_hit=False, epoch=7,
                   cost=cost)
        entry = log.entries()[-1]
        assert entry.epoch == 7
        assert entry.cost is cost
        text = entry.render()
        assert "@epoch 7" in text
        assert "128B parsed" in text

    def test_epoch_and_cost_are_optional(self):
        log = SlowQueryLog(threshold=0.0, capacity=4)
        log.record("is_alias", (1, 2), 0.5, cache_hit=True)
        entry = log.entries()[-1]
        assert entry.epoch is None
        assert entry.cost is None
        assert "@epoch" not in entry.render()

    def test_slow_entries_reach_the_flight_recorder(self):
        recorder = get_flight_recorder()
        recorder.clear()
        log = SlowQueryLog(threshold=0.0, capacity=4)
        log.record("list_aliases", (3,), 0.25, cache_hit=False, epoch=2)
        events = recorder.events(kind="slow_query")
        assert events
        assert events[-1]["query_kind"] == "list_aliases"
        assert events[-1]["epoch"] == 2
