"""Flow-sensitive analysis: strong updates, joins, Andersen bound."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import andersen, flow_sensitive
from repro.analysis.parser import parse_program
from repro.bench.programs import ProgramSpec, generate_program


def _facts_by_name(result):
    names = result.symbols.variable_names()
    sites = result.symbols.site_names()
    table = {}
    for fact in result.facts:
        key = (names[fact.variable], fact.label)
        table[key] = {sites[obj] for obj in fact.objects}
    return table


class TestStrongUpdates:
    def test_variable_redefinition_kills(self):
        """p is redefined: the second definition does not contain A."""
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  p = alloc B\n"
            "  return p\n"
            "}\n"
        )
        result = flow_sensitive.analyze(program)
        facts = _facts_by_name(result)
        assert facts[("main::p", 0)] == {"main::A"}
        assert facts[("main::p", 1)] == {"main::B"}
        # Andersen, by contrast, sees both.
        a = andersen.analyze(program)
        assert a.pts_of("main", "p") == {
            a.symbols.site("main", "A"),
            a.symbols.site("main", "B"),
        }

    def test_strong_update_through_store(self):
        """*p = b kills the earlier cell contents for a unique cell."""
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  a = alloc X\n"
            "  b = alloc Y\n"
            "  *p = a\n"
            "  *p = b\n"
            "  r = *p\n"
            "  return r\n"
            "}\n"
        )
        result = flow_sensitive.analyze(program)
        facts = _facts_by_name(result)
        assert facts[("main::r", 5)] == {"main::Y"}

    def test_no_strong_update_in_loop(self):
        """A cell allocated inside a loop is not unique: weak update."""
        program = parse_program(
            "func main() {\n"
            "  a = alloc X\n"
            "  b = alloc Y\n"
            "  p = alloc A\n"
            "  while {\n"
            "    p = alloc B\n"
            "    *p = a\n"
            "    *p = b\n"
            "  }\n"
            "  r = *p\n"
            "  return r\n"
            "}\n"
        )
        result = flow_sensitive.analyze(program)
        facts = _facts_by_name(result)
        # B cells are summarised: both stores accumulate.
        assert facts[("main::r", 6)] >= {"main::Y"}

    def test_no_strong_update_when_base_not_singleton(self):
        program = parse_program(
            "func main() {\n"
            "  a = alloc X\n"
            "  b = alloc Y\n"
            "  p = alloc A\n"
            "  if {\n"
            "    p = alloc B\n"
            "  }\n"
            "  *p = a\n"
            "  *p = b\n"
            "  r = *p\n"
            "  return r\n"
            "}\n"
        )
        result = flow_sensitive.analyze(program)
        facts = _facts_by_name(result)
        # p may point to A or B: the second store cannot kill.
        assert facts[("main::r", 6)] == {"main::X", "main::Y"}

    def test_branch_join_unions(self):
        program = parse_program(
            "func main() {\n"
            "  if {\n"
            "    p = alloc A\n"
            "  }\n"
            "  else {\n"
            "    p = alloc B\n"
            "  }\n"
            "  q = p\n"
            "  return q\n"
            "}\n"
        )
        result = flow_sensitive.analyze(program)
        facts = _facts_by_name(result)
        assert facts[("main::q", 2)] == {"main::A", "main::B"}

    def test_loop_zero_iterations_joined(self):
        program = parse_program(
            "func main() {\n"
            "  p = alloc A\n"
            "  while {\n"
            "    p = alloc B\n"
            "  }\n"
            "  q = p\n"
            "  return q\n"
            "}\n"
        )
        result = flow_sensitive.analyze(program)
        facts = _facts_by_name(result)
        assert facts[("main::q", 2)] == {"main::A", "main::B"}

    def test_call_havocs_globals(self):
        program = parse_program(
            "global g\n"
            "func toucher() {\n  t = alloc T\n  g = t\n  return\n}\n"
            "func main() {\n"
            "  a = alloc A\n"
            "  g = a\n"
            "  call toucher()\n"
            "  r = g\n"
            "  return r\n"
            "}\n"
        )
        result = flow_sensitive.analyze(program)
        facts = _facts_by_name(result)
        # After the call, g may hold T as well.
        assert facts[("main::r", 3)] == {"main::A", "toucher::T"}


class TestAndersenBound:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_every_fact_within_andersen(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=6, statements_per_function=12, n_types=4, seed=seed
        )
        program = generate_program(spec)
        result = flow_sensitive.analyze(program)
        for fact in result.facts:
            ceiling = set(result.andersen.var_pts[fact.variable])
            assert fact.objects <= ceiling
        for _, variable, objects in result.entry_facts:
            assert objects <= set(result.andersen.var_pts[variable])

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_final_definitions_cover_andersen_reads(self, seed):
        """Soundness smoke check: the union of a variable's definition
        facts plus its entry fact covers everything Andersen says it may
        hold at some point it is actually read or defined."""
        spec = ProgramSpec(
            name="t", n_functions=5, statements_per_function=10, n_types=3, seed=seed
        )
        program = generate_program(spec)
        result = flow_sensitive.analyze(program)
        defined = {}
        for fact in result.facts:
            defined.setdefault(fact.variable, set()).update(fact.objects)
        # A variable that is never defined nor a param/global carries no
        # facts; defined variables must stay within the Andersen ceiling.
        for variable, objects in defined.items():
            assert objects <= set(result.andersen.var_pts[variable])
