"""Library pre-analysis and seeded client analysis (the paper's future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import andersen
from repro.analysis.library import (
    analyze_client,
    analyze_library,
    load_library,
    merge_programs,
    save_library,
)
from repro.analysis.parser import parse_program

LIBRARY = """
global lib_registry

func lib_list_new() {
  l = alloc ListHeader
  cells = alloc ListCells
  *l = cells
  return l
}

func lib_list_add(lst, value) {
  cells = *lst
  *cells = value
  return
}

func lib_list_get(lst) {
  cells = *lst
  value = *cells
  return value
}

func lib_register(component) {
  *lib_registry = component
  return
}
"""

CLIENT = """
func main() {
  l = call lib_list_new()
  item = alloc Item
  call lib_list_add(l, item)
  got = call lib_list_get(l)
  reg = alloc Registry
  lib_registry = reg
  call lib_register(got)
  return
}
"""


@pytest.fixture(scope="module")
def library_program():
    # The library alone has no 'main'; give the parser a benign entry so
    # validation passes, then drop it.
    program = parse_program(LIBRARY + "\nfunc main() {\n  return\n}\n")
    del program.functions["main"]
    program.entry = "lib_list_new"
    return program


@pytest.fixture(scope="module")
def client_program():
    return parse_program(CLIENT, validate=False)


class TestAnalyzeLibrary:
    def test_library_facts_found(self, library_program):
        summary = analyze_library(library_program)
        assert "lib_list_new::l" in summary.var_facts
        assert summary.var_facts["lib_list_new::l"] == frozenset(
            {"lib_list_new::ListHeader"}
        )
        # The header cell holds the cells object.
        assert summary.obj_facts["lib_list_new::ListHeader"] == frozenset(
            {"lib_list_new::ListCells"}
        )

    def test_fact_count(self, library_program):
        summary = analyze_library(library_program)
        assert summary.fact_count() > 0


class TestMergePrograms:
    def test_merge_shares_globals(self, library_program, client_program):
        merged = merge_programs(client_program, library_program)
        assert merged.globals.count("lib_registry") == 1
        assert set(merged.functions) == set(library_program.functions) | {"main"}
        assert merged.entry == "main"

    def test_redefinition_rejected(self, library_program):
        clash = parse_program(
            "func lib_list_new() {\n  return\n}\nfunc main() {\n  return\n}\n"
        )
        with pytest.raises(ValueError, match="redefines"):
            merge_programs(clash, library_program)


class TestSeededClientAnalysis:
    def test_equals_from_scratch(self, library_program, client_program):
        summary = analyze_library(library_program)
        seeded = analyze_client(client_program, summary)
        scratch = andersen.analyze(seeded.merged)
        assert seeded.result.to_matrix() == scratch.to_matrix()
        assert seeded.seeded_facts > 0

    def test_client_facts_resolved(self, library_program, client_program):
        summary = analyze_library(library_program)
        seeded = analyze_client(client_program, summary)
        symbols = seeded.result.symbols
        got = seeded.result.pts_of("main", "got")
        assert symbols.site("main", "Item") in got

    def test_seeding_reduces_iterations(self, library_program, client_program):
        summary = analyze_library(library_program)
        seeded = analyze_client(client_program, summary)
        scratch = andersen.analyze(seeded.merged)
        assert seeded.result.iterations <= scratch.iterations

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_seeded_equals_scratch_on_generated_split(self, seed):
        """Split a generated program into 'library' (the helpers plus the
        back half of functions) and 'client' (the rest): seeding must not
        change the merged solution."""
        from repro.bench.programs import ProgramSpec, generate_program

        program = generate_program(
            ProgramSpec(name="t", n_functions=8, statements_per_function=10,
                        n_types=3, seed=seed)
        )
        # The generator emits helpers first, then body functions from the
        # deepest up to main; calls only go "forward" (to already-emitted
        # functions), so any dict-order *prefix* is call-closed: use it as
        # the library and the rest (which includes main) as the client.
        names = list(program.functions)
        split = len(names) // 2
        library_names = set(names[:split])
        from repro.analysis.ir import Program

        library = Program(entry=names[0])
        client = Program(entry="main")
        for name, function in program.functions.items():
            if name in library_names:
                library.functions[name] = function
            else:
                client.functions[name] = function
        library.globals = list(program.globals)
        client.globals = list(program.globals)
        # Clients may call into the library: only merge-validate.
        summary = analyze_library(library)
        seeded = analyze_client(client, summary)
        scratch = andersen.analyze(seeded.merged)
        assert seeded.result.to_matrix() == scratch.to_matrix()


class TestPersistence:
    def test_save_load_round_trip(self, library_program, tmp_path):
        summary = analyze_library(library_program)
        directory = str(tmp_path / "stdlib")
        save_library(summary, directory)
        reloaded = load_library(directory)
        assert reloaded.var_facts == summary.var_facts
        assert reloaded.obj_facts == summary.obj_facts
        assert set(reloaded.program.functions) == set(library_program.functions)

    def test_reloaded_summary_seeds_identically(self, library_program,
                                                client_program, tmp_path):
        summary = analyze_library(library_program)
        directory = str(tmp_path / "stdlib")
        save_library(summary, directory)
        reloaded = load_library(directory)
        first = analyze_client(client_program, summary)
        second = analyze_client(client_program, reloaded)
        assert first.result.to_matrix() == second.result.to_matrix()
        assert first.seeded_facts == second.seeded_facts
