"""Staged pipeline: contracts, executors, and parallel/serial parity.

The load-bearing property is byte-identity: the staged pipeline must
reproduce the legacy ``build → rectangles → PestrieEncoder`` bytes for
every version/coding/order, and a multi-process run must reproduce the
serial bytes exactly — chunked fan-out with deterministic merges, never
"close enough".
"""

import random

import pytest

from repro.bench.synthetic import SyntheticSpec, synthesize
from repro.core import pipeline
from repro.core.builder import ORDER_CHOICES, build_pestrie
from repro.core.encoder import PestrieEncoder
from repro.core.intervals import assign_intervals
from repro.core.rectangles import generate_rectangles
from repro.core.stages import (
    ENCODE_STAGES,
    BuildReport,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    run_pipeline,
)
from repro.matrix.points_to import PointsToMatrix

VERSIONS = ((1, False), (2, False), (3, False), (3, True), (4, False))


def legacy_encode(matrix, *, order="hub", seed=None, compact=False, version=3):
    pestrie = build_pestrie(matrix, order=order, seed=seed)
    assign_intervals(pestrie)
    rects = generate_rectangles(pestrie)
    return PestrieEncoder(pestrie, rects.rects, compact=compact,
                          version=version).to_bytes()


def random_matrix(seed, n_pointers=14, n_objects=9):
    rng = random.Random(seed)
    matrix = PointsToMatrix(n_pointers, n_objects)
    for _ in range(rng.randint(0, n_pointers * n_objects)):
        matrix.add(rng.randrange(n_pointers), rng.randrange(n_objects))
    return matrix


@pytest.fixture(scope="module")
def synthetic():
    return synthesize(SyntheticSpec(n_pointers=3000, n_objects=600, seed=17))


@pytest.fixture(scope="module")
def pool2():
    executor = ProcessExecutor(2)
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def pool4():
    executor = ProcessExecutor(4)
    yield executor
    executor.close()


# ----------------------------------------------------------------------
# Staged output == legacy output
# ----------------------------------------------------------------------


@pytest.mark.parametrize("order", ORDER_CHOICES)
@pytest.mark.parametrize("version,compact", VERSIONS)
def test_staged_matches_legacy(synthetic, order, version, compact):
    expected = legacy_encode(synthetic, order=order, seed=5, compact=compact,
                             version=version)
    assert run_pipeline(synthetic, order=order, seed=5, compact=compact,
                        version=version) == expected


def test_staged_matches_legacy_random_matrices():
    for seed in range(20):
        matrix = random_matrix(seed)
        for order in ORDER_CHOICES:
            expected = legacy_encode(matrix, order=order, seed=seed, version=3,
                                     compact=bool(seed % 2))
            assert run_pipeline(matrix, order=order, seed=seed, version=3,
                                compact=bool(seed % 2)) == expected, (seed, order)


def test_staged_explicit_order(synthetic):
    perm = list(range(synthetic.n_objects))
    random.Random(3).shuffle(perm)
    pestrie = build_pestrie(synthetic, explicit_order=perm)
    assign_intervals(pestrie)
    rects = generate_rectangles(pestrie)
    expected = PestrieEncoder(pestrie, rects.rects).to_bytes()
    assert run_pipeline(synthetic, explicit_order=perm) == expected


def test_pipeline_facade_routes_through_stages(synthetic):
    assert pipeline.encode(synthetic) == run_pipeline(synthetic)
    assert pipeline.encode(synthetic, jobs=1) == run_pipeline(synthetic)


def test_empty_object_universe_matches_legacy_error():
    matrix = PointsToMatrix(4, 0)
    with pytest.raises(ValueError, match="interval labels missing"):
        run_pipeline(matrix)


# ----------------------------------------------------------------------
# Parallel parity: --jobs N is byte-identical to serial
# ----------------------------------------------------------------------


@pytest.mark.parametrize("order", ORDER_CHOICES)
@pytest.mark.parametrize("version,compact", ((3, False), (3, True), (4, False)))
def test_parallel_byte_identical(synthetic, pool2, order, version, compact):
    serial = run_pipeline(synthetic, order=order, seed=2, compact=compact,
                          version=version)
    parallel = run_pipeline(synthetic, order=order, seed=2, compact=compact,
                            version=version, executor=pool2)
    assert parallel == serial


def test_parallel_byte_identical_four_jobs(synthetic, pool4):
    for version, compact in VERSIONS:
        serial = run_pipeline(synthetic, compact=compact, version=version)
        assert run_pipeline(synthetic, compact=compact, version=version,
                            executor=pool4) == serial


def test_parallel_byte_identical_small_matrices(pool2):
    # Degenerate shapes: empty, single row, chunk-count > item-count.
    cases = [PointsToMatrix(1, 1)]
    cases[0].add(0, 0)
    cases.append(random_matrix(42, n_pointers=3, n_objects=2))
    cases.append(random_matrix(43, n_pointers=50, n_objects=4))
    for matrix in cases:
        for version, compact in VERSIONS:
            serial = run_pipeline(matrix, compact=compact, version=version)
            assert run_pipeline(matrix, compact=compact, version=version,
                                executor=pool2) == serial


def test_jobs_kwarg_spins_up_own_pool(synthetic):
    serial = run_pipeline(synthetic, version=4)
    assert run_pipeline(synthetic, version=4, jobs=2) == serial


# ----------------------------------------------------------------------
# Executors and stage framework
# ----------------------------------------------------------------------


def test_make_executor_selection():
    assert isinstance(make_executor(None), SerialExecutor)
    assert isinstance(make_executor(0), SerialExecutor)
    assert isinstance(make_executor(1), SerialExecutor)
    executor = make_executor(2)
    assert isinstance(executor, ProcessExecutor)
    assert executor.jobs == 2
    executor.close()
    with pytest.raises(ValueError):
        ProcessExecutor(1)


def test_serial_executor_preserves_order():
    executor = SerialExecutor()
    assert executor.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]


def test_process_executor_preserves_order(pool2):
    payloads = list(range(20))
    assert pool2.map(_square, payloads) == [value * value for value in payloads]


def _square(value):
    return value * value


def test_stage_contracts_are_declared():
    names = [stage.name for stage in ENCODE_STAGES]
    assert names == ["normalize", "order", "trie", "intervals", "rectangles",
                     "dedup", "sections", "assemble"]
    produced = {"matrix"}
    for stage in ENCODE_STAGES:
        for key in stage.inputs:
            assert key in produced, (stage.name, key)
        produced.update(stage.outputs)
    assert "payload" in produced
    # The parallel stages the issue names, and only those plus sections.
    assert [stage.name for stage in ENCODE_STAGES if stage.parallel] == [
        "order", "rectangles", "sections"]


def test_build_report_collects_stages(synthetic):
    report = BuildReport()
    run_pipeline(synthetic, report=report)
    assert [entry.name for entry in report.stages] == [
        stage.name for stage in ENCODE_STAGES]
    assert report.jobs == 1
    assert report.total_seconds() > 0
    assert all(entry.peak_rss_kb > 0 for entry in report.stages)
    assert report.seconds("rectangles") >= 0


def test_stage_telemetry_emitted(synthetic):
    from repro.obs import get_registry

    registry = get_registry()
    before = registry.snapshot().get("repro_stage_seconds", {}).get("series", [])
    before_count = sum(entry["count"] for entry in before)
    run_pipeline(synthetic)
    after = registry.snapshot()["repro_stage_seconds"]["series"]
    after_count = sum(entry["count"] for entry in after)
    assert after_count == before_count + len(ENCODE_STAGES)
    stages_seen = {entry["labels"]["stage"] for entry in after}
    assert {stage.name for stage in ENCODE_STAGES} <= stages_seen


def test_decoded_queries_match_legacy_index(synthetic):
    data = run_pipeline(synthetic, version=3)
    index = pipeline.index_from_bytes(data)
    assert index.materialize() == synthetic
