"""Equivalence partitions (Section 2.1)."""

from hypothesis import given, settings

from repro.matrix.equivalence import object_equivalence, partition_rows, pointer_equivalence
from repro.matrix.points_to import PointsToMatrix

from conftest import matrices


class TestPartitionRows:
    def test_identical_rows_share_class(self):
        matrix = PointsToMatrix.from_rows([[0, 1], [1], [0, 1]], 2)
        partition = partition_rows(matrix)
        assert partition.n_classes == 2
        assert partition.class_of[0] == partition.class_of[2]
        assert partition.class_of[0] != partition.class_of[1]

    def test_class_ids_in_first_appearance_order(self):
        matrix = PointsToMatrix.from_rows([[1], [0], [1]], 2)
        partition = partition_rows(matrix)
        assert partition.class_of == [0, 1, 0]

    def test_members_and_representatives(self):
        matrix = PointsToMatrix.from_rows([[0], [], [0], []], 1)
        partition = partition_rows(matrix)
        assert partition.members == [[0, 2], [1, 3]]
        assert partition.representative == [0, 1]

    def test_empty_rows_form_one_class(self):
        matrix = PointsToMatrix(3, 2)
        partition = partition_rows(matrix)
        assert partition.n_classes == 1

    def test_ratio(self):
        matrix = PointsToMatrix.from_rows([[0], [0], [1], [1]], 2)
        assert partition_rows(matrix).ratio() == 0.5
        assert partition_rows(PointsToMatrix(0, 0)).ratio() == 0.0


class TestPointerAndObjectEquivalence:
    def test_paper_matrix(self, paper_matrix):
        # All seven pointer rows in Table 3 are distinct.
        assert pointer_equivalence(paper_matrix).n_classes == 7
        # All five object columns are distinct too.
        assert object_equivalence(paper_matrix).n_classes == 5

    def test_object_equivalence_detects_duplicates(self):
        # Objects 0 and 1 are pointed by exactly {0}.
        matrix = PointsToMatrix.from_rows([[0, 1], [2]], 3)
        partition = object_equivalence(matrix)
        assert partition.class_of[0] == partition.class_of[1]
        assert partition.class_of[0] != partition.class_of[2]

    @settings(max_examples=60)
    @given(matrices())
    def test_partition_is_sound_and_complete(self, matrix):
        partition = pointer_equivalence(matrix)
        for group in partition.members:
            first = matrix.rows[group[0]]
            for member in group[1:]:
                assert matrix.rows[member] == first
        # Different classes have different rows.
        reps = partition.representative
        rows = [matrix.rows[rep] for rep in reps]
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                assert rows[i] != rows[j]

    @settings(max_examples=60)
    @given(matrices())
    def test_class_of_covers_every_row(self, matrix):
        partition = pointer_equivalence(matrix)
        assert len(partition.class_of) == matrix.n_pointers
        seen = sorted({c for c in partition.class_of})
        assert seen == list(range(partition.n_classes))
