"""Offline copy-cycle collapsing (Andersen presolve)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import andersen
from repro.analysis.parser import parse_program
from repro.analysis.presolve import collapse_statistics, copy_graph_sccs
from repro.bench.programs import ProgramSpec, generate_program


class TestCopyGraphSccs:
    def test_no_cycles(self):
        rep = copy_graph_sccs(4, [(0, 1), (1, 2)])
        assert rep == [0, 1, 2, 3]

    def test_two_cycle(self):
        rep = copy_graph_sccs(3, [(0, 1), (1, 0)])
        assert rep[0] == rep[1] == 0
        assert rep[2] == 2

    def test_long_cycle_with_tail(self):
        # 0 -> 1 -> 2 -> 0 plus 2 -> 3
        rep = copy_graph_sccs(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        assert rep[0] == rep[1] == rep[2] == 0
        assert rep[3] == 3

    def test_two_separate_cycles(self):
        rep = copy_graph_sccs(5, [(0, 1), (1, 0), (2, 3), (3, 2)])
        assert rep[0] == rep[1]
        assert rep[2] == rep[3]
        assert rep[0] != rep[2]

    def test_self_loop_ignored(self):
        rep = copy_graph_sccs(2, [(0, 0)])
        assert rep == [0, 1]

    def test_statistics(self):
        rep = copy_graph_sccs(4, [(0, 1), (1, 0)])
        stats = collapse_statistics(rep)
        assert stats == {"variables": 4, "representatives": 3, "collapsed": 1}


class TestOptimizedAnalyze:
    CYCLE_SOURCE = (
        "func main() {\n"
        "  a = alloc A\n"
        "  b = a\n"
        "  c = b\n"
        "  a = c\n"
        "  d = alloc D\n"
        "  b = d\n"
        "  return\n"
        "}\n"
    )

    def test_collapsed_cycle_shares_rows(self):
        program = parse_program(self.CYCLE_SOURCE)
        result = andersen.analyze(program, optimize=True)
        symbols = result.symbols
        a = symbols.variable("main", "a")
        b = symbols.variable("main", "b")
        c = symbols.variable("main", "c")
        # a, b, c form a copy cycle: same (shared) solution object.
        assert result.var_pts[a] is result.var_pts[b] is result.var_pts[c]
        assert result.pts_of("main", "a") == {
            symbols.site("main", "A"),
            symbols.site("main", "D"),
        }

    def test_same_answer_with_and_without(self):
        program = parse_program(self.CYCLE_SOURCE)
        plain = andersen.analyze(program, optimize=False)
        fast = andersen.analyze(program, optimize=True)
        assert plain.to_matrix() == fast.to_matrix()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equivalence_on_generated_programs(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=6, statements_per_function=12, n_types=3, seed=seed
        )
        program = generate_program(spec)
        plain = andersen.analyze(program, optimize=False)
        fast = andersen.analyze(program, optimize=True)
        assert plain.to_matrix() == fast.to_matrix()
        for obj in range(plain.symbols.n_sites):
            assert set(plain.obj_pts[obj]) == set(fast.obj_pts[obj])

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_never_more_iterations(self, seed):
        spec = ProgramSpec(
            name="t", n_functions=8, statements_per_function=14, n_types=3, seed=seed
        )
        program = generate_program(spec)
        plain = andersen.analyze(program, optimize=False)
        fast = andersen.analyze(program, optimize=True)
        # Collapsing removes worklist nodes; allow a little scheduling slack
        # so the property is about the trend, not the exact worklist order.
        assert fast.iterations <= plain.iterations * 1.2 + 10
