"""The serve layer: AliasService, sharding, caching, stats, concurrency."""

import copy
import random
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import encode, index_from_bytes
from repro.delta import DeltaLog, OverlayIndex
from repro.matrix.points_to import PointsToMatrix
from repro.serve import AliasService, LRUCache, ShardedIndex
from repro.serve.stats import QUERY_KINDS, ServiceStats, quantile

from conftest import make_random_matrix, matrices


def _apply_script(matrix, log):
    edited = copy.deepcopy(matrix)
    for op, pointer, obj in log:
        if op == "+":
            edited.add(pointer, obj)
        else:
            edited.rows[pointer].discard(obj)
    return edited


def _shard_matrices(matrix, cuts):
    """Split a matrix into row-slice shards at the given cut points."""
    shards = []
    bounds = [0] + list(cuts) + [matrix.n_pointers]
    for lo, hi in zip(bounds, bounds[1:]):
        sub = PointsToMatrix(hi - lo, matrix.n_objects)
        for p in range(lo, hi):
            for obj in matrix.rows[p]:
                sub.add(p - lo, obj)
        shards.append(sub)
    return shards


class TestModeParity:
    """All query structures answer all four Table 1 queries identically."""

    @settings(max_examples=50)
    @given(matrices(), st.sampled_from(["hub", "identity", "random"]))
    def test_all_queries_agree_pointwise(self, matrix, order):
        data = encode(matrix, order=order, seed=5)
        ptlist = index_from_bytes(data, mode="ptlist")  # event-sweep build
        segment = index_from_bytes(data, mode="segment")
        for p in range(matrix.n_pointers):
            expected_points = matrix.list_points_to(p)
            expected_aliases = matrix.list_aliases(p)
            for backend in (ptlist, segment):
                assert sorted(backend.list_points_to(p)) == expected_points
                assert sorted(backend.list_aliases(p)) == expected_aliases
            for q in range(matrix.n_pointers):
                expected = matrix.is_alias(p, q)
                assert ptlist.is_alias(p, q) == expected
                assert segment.is_alias(p, q) == expected
        for obj in range(matrix.n_objects):
            expected = matrix.list_pointed_by(obj)
            assert sorted(ptlist.list_pointed_by(obj)) == expected
            assert sorted(segment.list_pointed_by(obj)) == expected


class TestLRUCache:
    def test_put_get_and_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recent
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_invalidate_where_removes_matches_and_bumps_epoch(self):
        cache = LRUCache(8)
        before = cache.epoch
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate_where(lambda key: key == "a") == 1
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.epoch == before + 1

    def test_stale_epoch_put_is_dropped(self):
        """The compute/invalidate race: a pre-swap answer must not land."""
        cache = LRUCache(8)
        epoch = cache.epoch  # reader snapshots the epoch…
        cache.invalidate_where(lambda key: True)  # …writer swaps meanwhile
        cache.put("a", "stale", epoch=epoch)
        assert cache.get("a") is None
        cache.put("a", "fresh", epoch=cache.epoch)
        assert cache.get("a") == "fresh"


class TestQuantile:
    def test_empty(self):
        assert quantile([], 0.5) == 0.0

    def test_basic(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert quantile(samples, 0.0) == 1.0
        assert quantile(samples, 0.95) == 4.0

    def test_median_of_two_is_lower_sample(self):
        # The old int(q * n) truncation picked the *larger* of two samples
        # as the median; nearest-rank (ceil(q*n) - 1) picks the smaller.
        assert quantile([1.0, 2.0], 0.5) == 1.0

    def test_nearest_rank_small_windows(self):
        assert quantile([3.0], 0.5) == 3.0
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0


class TestServiceStatsKinds:
    def test_render_lists_extra_kinds_after_fixed_four(self):
        stats = ServiceStats()
        stats.record("column_probe", 0.001)
        lines = stats.snapshot().render().splitlines()
        listed = [line.split()[0] for line in lines[1:1 + len(QUERY_KINDS) + 1]]
        assert listed == list(QUERY_KINDS) + ["column_probe"]

    def test_unknown_kind_registration_is_thread_safe(self):
        stats = ServiceStats()
        workers, per_worker = 8, 250

        def run():
            for _ in range(per_worker):
                stats.record("novel_kind", 1e-6)

        threads = [threading.Thread(target=run) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.snapshot().counts["novel_kind"] == workers * per_worker


class TestAliasService:
    @pytest.fixture
    def matrix(self):
        return make_random_matrix(50, 15, density=0.15, seed=3)

    @pytest.fixture
    def service(self, matrix):
        return AliasService.from_index(index_from_bytes(encode(matrix)))

    def test_single_queries_match_oracle(self, matrix, service):
        for p in range(matrix.n_pointers):
            assert sorted(service.list_aliases(p)) == matrix.list_aliases(p)
            assert sorted(service.list_points_to(p)) == matrix.list_points_to(p)
            for q in range(matrix.n_pointers):
                assert service.is_alias(p, q) == matrix.is_alias(p, q)
        for obj in range(matrix.n_objects):
            assert sorted(service.list_pointed_by(obj)) == matrix.list_pointed_by(obj)

    def test_batch_matches_single(self, matrix, service):
        pairs = [(p, q) for p in range(matrix.n_pointers)
                 for q in range(0, matrix.n_pointers, 3)]
        assert service.is_alias_batch(pairs) == [
            matrix.is_alias(p, q) for p, q in pairs
        ]
        pointers = list(range(matrix.n_pointers)) * 2
        many = service.list_aliases_many(pointers)
        assert [sorted(row) for row in many] == [
            matrix.list_aliases(p) for p in pointers
        ]
        points = service.points_to_batch(pointers)
        assert [sorted(row) for row in points] == [
            matrix.list_points_to(p) for p in pointers
        ]
        objects = list(range(matrix.n_objects))
        pointed = service.pointed_by_batch(objects)
        assert [sorted(row) for row in pointed] == [
            matrix.list_pointed_by(obj) for obj in objects
        ]

    def test_cache_hits_on_repeats(self, service):
        assert service.is_alias(0, 1) == service.is_alias(1, 0)
        snapshot = service.stats()
        assert snapshot.cache_hits == 1  # symmetric pair normalised to one key
        assert snapshot.cache_misses == 1
        assert 0.0 < snapshot.cache_hit_rate < 1.0

    def test_cache_disabled(self, matrix):
        service = AliasService.from_index(index_from_bytes(encode(matrix)),
                                          cache_size=0)
        service.is_alias(0, 1)
        service.is_alias(0, 1)
        snapshot = service.stats()
        assert snapshot.cache_hits == 0
        assert snapshot.cache_misses == 2
        assert service.cache_size() == 0

    def test_stats_counters_and_reset(self, service):
        service.is_alias(0, 1)
        service.list_aliases(2)
        service.is_alias_batch([(0, 1), (2, 3)])
        snapshot = service.stats()
        assert snapshot.counts["is_alias"] == 3
        assert snapshot.batched["is_alias"] == 2
        assert snapshot.counts["list_aliases"] == 1
        assert snapshot.total_queries == 4
        assert set(snapshot.latency_p50) == set(QUERY_KINDS)
        assert snapshot.latency_p95["is_alias"] >= 0.0
        rendered = snapshot.render()
        assert "is_alias" in rendered and "hit rate" in rendered
        service.reset_stats()
        assert service.stats().total_queries == 0

    def test_clear_cache(self, service):
        service.is_alias(0, 1)
        assert service.cache_size() == 1
        service.clear_cache()
        assert service.cache_size() == 0


class TestShardedIndex:
    @pytest.fixture
    def matrix(self):
        return make_random_matrix(60, 18, density=0.12, seed=11)

    @pytest.fixture
    def sharded(self, matrix):
        slices = _shard_matrices(matrix, cuts=(20, 45))
        return ShardedIndex([index_from_bytes(encode(sub)) for sub in slices])

    def test_needs_a_shard(self):
        with pytest.raises(ValueError):
            ShardedIndex([])

    def test_routing(self, sharded):
        assert sharded.shard_count == 3
        assert sharded.n_pointers == 60
        assert sharded.shard_of(0) == (0, 0)
        assert sharded.shard_of(20) == (1, 0)
        assert sharded.shard_of(59) == (2, 14)
        with pytest.raises(IndexError):
            sharded.shard_of(60)
        with pytest.raises(IndexError):
            sharded.list_pointed_by(sharded.n_objects)

    def test_queries_match_oracle(self, matrix, sharded):
        for p in range(matrix.n_pointers):
            assert sorted(sharded.list_points_to(p)) == matrix.list_points_to(p)
            assert sorted(sharded.list_aliases(p)) == matrix.list_aliases(p), p
            for q in range(0, matrix.n_pointers, 2):
                assert sharded.is_alias(p, q) == matrix.is_alias(p, q), (p, q)
        for obj in range(matrix.n_objects):
            assert sorted(sharded.list_pointed_by(obj)) == matrix.list_pointed_by(obj)

    def test_batch_matches_oracle(self, matrix, sharded):
        pairs = [(p, q) for p in range(0, 60, 3) for q in range(0, 60, 4)]
        assert sharded.is_alias_batch(pairs) == [
            matrix.is_alias(p, q) for p, q in pairs
        ]

    def test_sharded_service_from_files(self, matrix, tmp_path):
        from repro.core.pipeline import persist

        paths = []
        for number, sub in enumerate(_shard_matrices(matrix, cuts=(30,))):
            path = str(tmp_path / ("shard%d.pes" % number))
            persist(sub, path)
            paths.append(path)
        service = AliasService.from_files(paths)
        assert isinstance(service.backend, ShardedIndex)
        assert service.n_pointers == matrix.n_pointers
        for p in range(0, matrix.n_pointers, 5):
            assert sorted(service.list_aliases(p)) == matrix.list_aliases(p)


class TestConcurrency:
    """The service must be safe to hammer from many threads."""

    THREADS = 6
    ROUNDS = 3

    def test_threads_agree_with_sequential_oracle(self):
        matrix = make_random_matrix(40, 12, density=0.18, seed=7)
        slices = _shard_matrices(matrix, cuts=(18,))
        service = AliasService.from_indexes(
            [index_from_bytes(encode(sub)) for sub in slices], cache_size=64
        )
        pair_oracle = {
            (p, q): matrix.is_alias(p, q)
            for p in range(matrix.n_pointers)
            for q in range(matrix.n_pointers)
        }
        alias_oracle = {p: matrix.list_aliases(p) for p in range(matrix.n_pointers)}
        points_oracle = {p: matrix.list_points_to(p) for p in range(matrix.n_pointers)}

        failures = []
        barrier = threading.Barrier(self.THREADS)

        def worker(slot):
            try:
                barrier.wait()
                for _ in range(self.ROUNDS):
                    for p in range(matrix.n_pointers):
                        q = (p * 7 + slot) % matrix.n_pointers
                        if service.is_alias(p, q) != pair_oracle[(p, q)]:
                            failures.append(("is_alias", p, q))
                        if sorted(service.list_aliases(p)) != alias_oracle[p]:
                            failures.append(("list_aliases", p))
                    pairs = [(p, (p + slot) % matrix.n_pointers)
                             for p in range(matrix.n_pointers)]
                    for (p, q), answer in zip(pairs, service.is_alias_batch(pairs)):
                        if answer != pair_oracle[(p, q)]:
                            failures.append(("is_alias_batch", p, q))
                    pointers = list(range(matrix.n_pointers))
                    for p, row in zip(pointers, service.points_to_batch(pointers)):
                        if sorted(row) != points_oracle[p]:
                            failures.append(("points_to_batch", p))
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("exception", slot, repr(error)))

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures, failures[:10]
        # Every issued query was counted, none lost to races.
        per_thread = self.ROUNDS * matrix.n_pointers * 4
        assert service.stats().total_queries == self.THREADS * per_thread


class TestApplyDelta:
    """Live updates through the service: hot swap + targeted invalidation."""

    @pytest.fixture
    def matrix(self):
        return make_random_matrix(30, 10, density=0.2, seed=13)

    def test_all_queries_track_the_delta(self, matrix):
        service = AliasService.from_index(index_from_bytes(encode(matrix)))
        for p in range(matrix.n_pointers):  # warm the cache with stale answers
            service.list_aliases(p)
            service.list_points_to(p)
        log = DeltaLog().insert(0, 9).insert(29, 9).delete(1, 1)
        service.apply_delta(log)
        edited = _apply_script(matrix, log)
        assert isinstance(service.backend, OverlayIndex)
        for p in range(matrix.n_pointers):
            assert sorted(service.list_points_to(p)) == edited.list_points_to(p)
            assert sorted(service.list_aliases(p)) == edited.list_aliases(p)
            for q in range(matrix.n_pointers):
                assert service.is_alias(p, q) == edited.is_alias(p, q)
        for obj in range(matrix.n_objects):
            assert sorted(service.list_pointed_by(obj)) == edited.list_pointed_by(obj)

    def test_batch_apis_see_post_delta_answers(self, matrix):
        service = AliasService.from_index(index_from_bytes(encode(matrix)))
        pairs = [(p, q) for p in range(30) for q in range(0, 30, 3)]
        pointers = list(range(30))
        service.is_alias_batch(pairs)  # warm
        service.points_to_batch(pointers)
        service.list_aliases_many(pointers)
        log = DeltaLog().insert(2, 0).delete(5, 2).insert(5, 9)
        service.apply_delta(log)
        edited = _apply_script(matrix, log)
        assert service.is_alias_batch(pairs) == [edited.is_alias(p, q) for p, q in pairs]
        assert [sorted(row) for row in service.points_to_batch(pointers)] == [
            edited.list_points_to(p) for p in pointers
        ]
        assert [sorted(row) for row in service.list_aliases_many(pointers)] == [
            edited.list_aliases(p) for p in pointers
        ]
        assert [sorted(row) for row in service.pointed_by_batch(list(range(10)))] == [
            edited.list_pointed_by(obj) for obj in range(10)
        ]

    def test_only_stale_entries_are_invalidated(self):
        # p0 -> {o0}, p1 -> {o1}, p2 -> {o2}, p3 -> {}; inserting (p3, o0)
        # dirties p3 and object o0, and alias-affects p0 (the only pointer
        # of o0) — p1/p2 answers are untouched and must stay cached.
        matrix = PointsToMatrix.from_pairs(4, 3, [(0, 0), (1, 1), (2, 2)])
        service = AliasService.from_index(index_from_bytes(encode(matrix)))
        service.is_alias(1, 2)
        service.is_alias(0, 3)
        service.list_aliases(0)
        service.list_aliases(1)
        service.list_points_to(3)
        service.list_points_to(2)
        service.list_pointed_by(0)
        service.list_pointed_by(1)
        invalidated = service.apply_delta(DeltaLog().insert(3, 0))
        assert invalidated == 4
        kept = set(service._cache._data)
        assert kept == {
            ("is_alias", (1, 2)),
            ("list_aliases", 1),
            ("list_points_to", 2),
            ("list_pointed_by", 1),
        }
        # The refreshed answers reflect the edit.
        assert service.is_alias(0, 3) is True
        assert sorted(service.list_aliases(0)) == [3]
        assert sorted(service.list_points_to(3)) == [0]
        assert sorted(service.list_pointed_by(0)) == [0, 3]

    def test_noop_delta_changes_nothing(self, matrix):
        service = AliasService.from_index(index_from_bytes(encode(matrix)))
        backend = service.backend
        service.is_alias(0, 1)
        assert service.apply_delta(DeltaLog()) == 0
        assert service.backend is backend
        assert service.cache_size() == 1

    def test_deltas_stack(self, matrix):
        service = AliasService.from_index(index_from_bytes(encode(matrix)))
        edited = matrix
        rng = random.Random(13)
        for _ in range(4):
            log = DeltaLog()
            for _ in range(3):
                pointer, obj = rng.randrange(30), rng.randrange(10)
                if rng.random() < 0.5:
                    log.insert(pointer, obj)
                else:
                    log.delete(pointer, obj)
            service.apply_delta(log)
            edited = _apply_script(edited, log)
        for p in range(30):
            assert sorted(service.list_points_to(p)) == edited.list_points_to(p)
            assert sorted(service.list_aliases(p)) == edited.list_aliases(p)

    def test_sharded_backend_applies_shard_local_overlays(self):
        matrix = make_random_matrix(40, 12, density=0.15, seed=19)
        slices = _shard_matrices(matrix, cuts=(15, 28))
        service = AliasService.from_indexes(
            [index_from_bytes(encode(sub)) for sub in slices]
        )
        log = DeltaLog().insert(2, 11).insert(20, 0).delete(35, 3).insert(35, 5)
        service.apply_delta(log)
        edited = _apply_script(matrix, log)
        backend = service.backend
        assert isinstance(backend, ShardedIndex)
        # Only the shards owning pointers 2, 20, 35 became overlays.
        kinds = [type(shard).__name__ for shard in backend.shards]
        assert kinds == ["OverlayIndex", "OverlayIndex", "OverlayIndex"]
        for p in range(40):
            assert sorted(service.list_points_to(p)) == edited.list_points_to(p)
            assert sorted(service.list_aliases(p)) == edited.list_aliases(p)
        pairs = [(p, q) for p in range(0, 40, 2) for q in range(0, 40, 3)]
        assert service.is_alias_batch(pairs) == [edited.is_alias(p, q) for p, q in pairs]

    def test_sharded_untouched_shards_are_shared(self):
        matrix = make_random_matrix(40, 12, density=0.15, seed=19)
        slices = _shard_matrices(matrix, cuts=(15, 28))
        sharded = ShardedIndex([index_from_bytes(encode(sub)) for sub in slices])
        updated = sharded.with_delta(DeltaLog().insert(2, 0))
        assert isinstance(updated.shards[0], OverlayIndex)
        assert updated.shards[1] is sharded.shards[1]
        assert updated.shards[2] is sharded.shards[2]


class TestSwapShard:
    def test_swap_preserves_answers(self):
        matrix = make_random_matrix(30, 8, density=0.2, seed=23)
        slices = _shard_matrices(matrix, cuts=(12,))
        sharded = ShardedIndex([index_from_bytes(encode(sub)) for sub in slices])
        # A re-encode of the same slice (e.g. post-compaction) swaps in.
        sharded.swap_shard(1, index_from_bytes(encode(slices[1], compact=True)))
        for p in range(30):
            assert sorted(sharded.list_points_to(p)) == matrix.list_points_to(p)
            assert sorted(sharded.list_aliases(p)) == matrix.list_aliases(p)

    def test_swap_validates_position_and_dimensions(self):
        matrix = make_random_matrix(20, 6, density=0.2, seed=29)
        slices = _shard_matrices(matrix, cuts=(10,))
        sharded = ShardedIndex([index_from_bytes(encode(sub)) for sub in slices])
        with pytest.raises(IndexError):
            sharded.swap_shard(2, sharded.shards[0])
        wrong = index_from_bytes(encode(make_random_matrix(7, 6, 0.2, 1)))
        with pytest.raises(ValueError):
            sharded.swap_shard(0, wrong)


class TestConcurrentUpdates:
    """Readers keep getting consistent answers while an updater applies deltas.

    Untouched pointers must answer exactly the base oracle at all times;
    touched pointers must answer according to *some* prefix of the applied
    delta sequence (a reader may race the swap, but never sees a torn or
    invented state); after the updater finishes, the service must agree
    with the final oracle everywhere.
    """

    READERS = 4
    UPDATES = 4

    def test_reader_updater_linearizability(self):
        matrix = make_random_matrix(30, 10, density=0.2, seed=17)
        service = AliasService.from_index(index_from_bytes(encode(matrix)),
                                          cache_size=128)
        touched = list(range(6))
        untouched = list(range(6, 30))
        rng = random.Random(17)
        logs = []
        states = [matrix]
        for _ in range(self.UPDATES):
            log = DeltaLog()
            for _ in range(5):
                pointer, obj = rng.choice(touched), rng.randrange(10)
                if rng.random() < 0.5:
                    log.insert(pointer, obj)
                else:
                    log.delete(pointer, obj)
            logs.append(log)
            states.append(_apply_script(states[-1], log))

        # Untouched rows never change, so these answers are state-invariant.
        base_points = {u: matrix.list_points_to(u) for u in untouched}
        base_pairs = {(u, v): matrix.is_alias(u, v)
                      for u in untouched for v in untouched}
        # Touched queries may legally answer per any prefix state.
        ok_points = {t: {tuple(state.list_points_to(t)) for state in states}
                     for t in touched}
        ok_pairs = {(t, q): {state.is_alias(t, q) for state in states}
                    for t in touched for q in range(30)}

        failures = []
        stop = threading.Event()

        def reader(slot):
            reader_rng = random.Random(100 + slot)
            try:
                while not stop.is_set():
                    u = reader_rng.choice(untouched)
                    v = reader_rng.choice(untouched)
                    if sorted(service.list_points_to(u)) != base_points[u]:
                        failures.append(("untouched points_to", u))
                    if service.is_alias(u, v) != base_pairs[(u, v)]:
                        failures.append(("untouched is_alias", u, v))
                    t = reader_rng.choice(touched)
                    q = reader_rng.randrange(30)
                    if tuple(sorted(service.list_points_to(t))) not in ok_points[t]:
                        failures.append(("touched points_to", t))
                    if service.is_alias(t, q) not in ok_pairs[(t, q)]:
                        failures.append(("touched is_alias", t, q))
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("reader exception", slot, repr(error)))

        def updater():
            try:
                for log in logs:
                    time.sleep(0.01)
                    service.apply_delta(log)
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("updater exception", repr(error)))
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(self.READERS)]
        threads.append(threading.Thread(target=updater))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures, failures[:10]
        final = states[-1]
        for p in range(30):
            assert sorted(service.list_points_to(p)) == final.list_points_to(p)
            assert sorted(service.list_aliases(p)) == final.list_aliases(p)
            for q in range(30):
                assert service.is_alias(p, q) == final.is_alias(p, q)
        for obj in range(10):
            assert sorted(service.list_pointed_by(obj)) == final.list_pointed_by(obj)


class TestFromFilesResourceSafety:
    """A failed multi-file open must release every mapping it created."""

    def _persist_shards(self, tmp_path, seed=41):
        from repro.core.pipeline import persist

        matrix = make_random_matrix(24, 8, density=0.2, seed=seed)
        paths = []
        for slot, sub in enumerate(_shard_matrices(matrix, cuts=(8, 16))):
            path = str(tmp_path / ("shard-%d.pes" % slot))
            persist(sub, path, version=4)
            paths.append(path)
        return matrix, paths

    def _open_gauge(self):
        from repro.obs import get_registry

        return get_registry().gauge("repro_store_open_containers")

    def test_corrupt_middle_shard_leaks_nothing(self, tmp_path):
        from repro.core.decoder import CorruptFileError

        _matrix, paths = self._persist_shards(tmp_path)
        # Stomp the magic of the MIDDLE shard: shard 0 opens fine and must
        # be closed again when shard 1 blows up.
        with open(paths[1], "r+b") as handle:
            handle.write(b"GARBAGE!")
        gauge = self._open_gauge()
        before = gauge.value
        with pytest.raises(CorruptFileError):
            ShardedIndex.from_files(paths, lazy=True)
        assert gauge.value == before
        with pytest.raises(CorruptFileError):
            AliasService.from_files(paths, lazy=True)
        assert gauge.value == before

    def test_service_constructor_failure_leaks_nothing(self, tmp_path):
        matrix, paths = self._persist_shards(tmp_path)
        gauge = self._open_gauge()
        before = gauge.value
        # LRUCache rejects negative capacities, so the backends are already
        # open when AliasService.__init__ raises — both the single-file and
        # the sharded path must unwind them.
        with pytest.raises(ValueError):
            AliasService.from_files(paths[:1], lazy=True, cache_size=-1)
        assert gauge.value == before
        with pytest.raises(ValueError):
            AliasService.from_files(paths, lazy=True, cache_size=-1)
        assert gauge.value == before
        # And the happy path still opens, answers, and closes all shards.
        service = AliasService.from_files(paths, lazy=True)
        assert gauge.value == before + len(paths)
        assert service.is_alias(0, 1) == matrix.is_alias(0, 1)
        service.close()
        assert gauge.value == before


class TestBatchReadersDuringUpdates:
    """The batch entry points under a concurrent ``apply_delta`` stream.

    Same legality rule as ``TestConcurrentUpdates`` — every answer in a
    batch must come from some prefix state, untouched rows are invariant —
    but exercised through ``is_alias_batch``/``points_to_batch``, whose
    epoch-before-backend snapshot is the invariant under audit.
    """

    READERS = 3
    UPDATES = 6

    def test_batch_readers_vs_apply_delta(self):
        matrix = make_random_matrix(30, 10, density=0.2, seed=19)
        service = AliasService.from_index(index_from_bytes(encode(matrix)),
                                          cache_size=128)
        touched = list(range(6))
        untouched = list(range(6, 30))
        rng = random.Random(19)
        logs, states = [], [matrix]
        for _ in range(self.UPDATES):
            log = DeltaLog()
            for _ in range(5):
                pointer, obj = rng.choice(touched), rng.randrange(10)
                if rng.random() < 0.5:
                    log.insert(pointer, obj)
                else:
                    log.delete(pointer, obj)
            logs.append(log)
            states.append(_apply_script(states[-1], log))

        base_points = {u: matrix.list_points_to(u) for u in untouched}
        base_pairs = {(u, v): matrix.is_alias(u, v)
                      for u in untouched for v in untouched}
        ok_points = {t: {tuple(state.list_points_to(t)) for state in states}
                     for t in touched}
        ok_pairs = {(t, q): {state.is_alias(t, q) for state in states}
                    for t in touched for q in range(30)}

        failures = []
        stop = threading.Event()

        def reader(slot):
            reader_rng = random.Random(200 + slot)
            try:
                while not stop.is_set():
                    sample_u = reader_rng.sample(untouched, 6)
                    mixed = ([(u, reader_rng.choice(untouched))
                              for u in sample_u[:3]]
                             + [(reader_rng.choice(touched),
                                 reader_rng.randrange(30)) for _ in range(3)])
                    answers = service.is_alias_batch(mixed)
                    for (p, q), answer in zip(mixed, answers):
                        legal = (base_pairs[(p, q)] == answer
                                 if p in base_points
                                 else answer in ok_pairs[(p, q)])
                        if not legal:
                            failures.append(("is_alias_batch", p, q, answer))
                    targets = sample_u[:3] + [reader_rng.choice(touched)]
                    rows = service.points_to_batch(targets)
                    for p, row in zip(targets, rows):
                        if p in base_points:
                            if sorted(row) != base_points[p]:
                                failures.append(("untouched batch row", p))
                        elif tuple(sorted(row)) not in ok_points[p]:
                            failures.append(("touched batch row", p, row))
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("reader exception", slot, repr(error)))

        def updater():
            try:
                for log in logs:
                    time.sleep(0.01)
                    service.apply_delta(log)
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("updater exception", repr(error)))
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(self.READERS)]
        threads.append(threading.Thread(target=updater))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures, failures[:10]
        final = states[-1]
        pairs = [(p, q) for p in range(30) for q in range(30)]
        assert service.is_alias_batch(pairs) == [
            final.is_alias(p, q) for p, q in pairs
        ]
        rows = service.points_to_batch(list(range(30)))
        assert [sorted(row) for row in rows] == [
            final.list_points_to(p) for p in range(30)
        ]


class TestPinnedSnapshotsDuringUpdates:
    """MVCC stress: pinned ``as_of`` handles stay exact while the head races.

    Unlike the prefix-legality rule above, a *pinned* snapshot has a
    stronger contract: every answer must match its epoch's state exactly —
    no drift, no torn reads — no matter how many deltas land, and even
    after the epoch itself is pruned from the service's history.
    """

    READERS = 4

    def _chain(self, seed, n_pointers=24, n_objects=8, updates=6):
        matrix = make_random_matrix(n_pointers, n_objects, density=0.25,
                                    seed=seed)
        rng = random.Random(seed)
        logs, states = [], [matrix]
        while len(logs) < updates:
            log = DeltaLog()
            for _ in range(5):
                pointer, obj = rng.randrange(n_pointers), rng.randrange(n_objects)
                if rng.random() < 0.5:
                    log.insert(pointer, obj)
                else:
                    log.delete(pointer, obj)
            inserts, deletes = log.net()
            if not inserts and not deletes:
                continue
            logs.append(log)
            states.append(_apply_script(states[-1], log))
        return matrix, logs, states

    def _race(self, pins, states, writer, n_pointers, n_objects):
        failures = []
        stop = threading.Event()

        def reader(slot):
            reader_rng = random.Random(300 + slot)
            versions = sorted(pins)
            try:
                while not stop.is_set():
                    version = reader_rng.choice(versions)
                    snap, state = pins[version], states[version]
                    p = reader_rng.randrange(n_pointers)
                    q = reader_rng.randrange(n_pointers)
                    if sorted(snap.list_points_to(p)) != state.list_points_to(p):
                        failures.append(("points_to", version, p))
                    if snap.is_alias(p, q) != state.is_alias(p, q):
                        failures.append(("is_alias", version, p, q))
                    obj = reader_rng.randrange(n_objects)
                    if sorted(snap.list_pointed_by(obj)) != state.list_pointed_by(obj):
                        failures.append(("pointed_by", version, obj))
                    pairs = [(reader_rng.randrange(n_pointers),
                              reader_rng.randrange(n_pointers))
                             for _ in range(4)]
                    if snap.is_alias_batch(pairs) != [state.is_alias(p, q)
                                                     for p, q in pairs]:
                        failures.append(("is_alias_batch", version))
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("reader exception", slot, repr(error)))

        def updater():
            try:
                writer()
            except Exception as error:  # pragma: no cover - debugging aid
                failures.append(("updater exception", repr(error)))
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(self.READERS)]
        threads.append(threading.Thread(target=updater))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return failures

    def test_pinned_readers_vs_updater_and_prune(self):
        from repro.delta import VersionUnavailableError

        matrix, logs, states = self._chain(seed=23)
        service = AliasService.from_index(index_from_bytes(encode(matrix)),
                                          cache_size=64)
        for log in logs[:3]:  # history to pin before the race starts
            service.apply_delta(log)
        assert service.versions() == [0, 1, 2, 3]
        pins = {version: service.as_of(version) for version in range(4)}

        def writer():
            for log in logs[3:]:
                time.sleep(0.01)
                service.apply_delta(log)
            service.prune_versions(3)

        failures = self._race(pins, states, writer, 24, 8)
        assert not failures, failures[:10]

        assert service.version == len(logs)
        assert service.version_floor == 3
        final = states[-1]
        for p in range(24):
            assert sorted(service.list_points_to(p)) == final.list_points_to(p)
        for version in (0, 1, 2):
            with pytest.raises(VersionUnavailableError):
                service.as_of(version)
        # Handles pinned before the prune keep answering their exact epoch.
        for version, snap in pins.items():
            for p in range(24):
                assert sorted(snap.list_points_to(p)) == \
                    states[version].list_points_to(p)

    def test_pinned_file_epochs_survive_on_disk_compaction(self, tmp_path):
        from repro.core.pipeline import persist
        from repro.delta import append_delta, compact_file, load_versions

        matrix, logs, states = self._chain(seed=29, updates=3)
        path = str(tmp_path / "service.pestrie")
        persist(matrix, path)
        for log in logs:
            append_delta(path, log)
        service = AliasService.from_files([path], cache_size=64)
        try:
            assert service.versions() == [0, 1, 2, 3]
            pins = {version: service.as_of(version) for version in range(4)}

            def writer():
                time.sleep(0.01)
                # Rewrites the file on disk; the service's mapping (and
                # every pinned handle) must keep serving the old image.
                compact_file(path)

            failures = self._race(pins, states, writer, 24, 8)
            assert not failures, failures[:10]
            for version, snap in pins.items():
                for p in range(24):
                    assert sorted(snap.list_points_to(p)) == \
                        states[version].list_points_to(p)
        finally:
            service.close()
        # A fresh open sees the folded history behind the watermark.
        versioned = load_versions(path)
        try:
            assert versioned.floor == versioned.head == 3
        finally:
            versioned.close()
