"""Benchmark substrate: program generator, synthetic matrices, metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.metrics import characterize
from repro.bench.programs import ProgramSpec, generate_program
from repro.bench.synthetic import SyntheticSpec, synthesize, synthesize_simple
from repro.matrix.points_to import PointsToMatrix


class TestProgramGenerator:
    def test_deterministic(self):
        spec = ProgramSpec(name="t", n_functions=8, statements_per_function=12, seed=5)
        from repro.analysis.parser import format_program

        first = format_program(generate_program(spec))
        second = format_program(generate_program(spec))
        assert first == second

    def test_different_seeds_differ(self):
        from repro.analysis.parser import format_program

        a = format_program(generate_program(ProgramSpec(name="t", seed=1)))
        b = format_program(generate_program(ProgramSpec(name="t", seed=2)))
        assert a != b

    def test_validates(self):
        program = generate_program(ProgramSpec(name="t", n_functions=10, seed=3))
        program.validate()  # must not raise

    def test_statement_budget_respected(self):
        spec = ProgramSpec(name="t", n_functions=12, statements_per_function=30, seed=9,
                           n_types=4)
        program = generate_program(spec)
        # Each body function: prologue (≤ types used) + budget + return.
        for function in program.functions.values():
            count = sum(1 for _ in function.simple_statements())
            assert count <= 30 + 5 + 1 + 2  # budget + prologue + return + slack

    def test_entry_is_main(self):
        program = generate_program(ProgramSpec(name="t", seed=0))
        assert program.entry == "main"
        assert "main" in program.functions

    def test_helpers_exist_per_type(self):
        spec = ProgramSpec(name="t", n_types=5, seed=0)
        program = generate_program(spec)
        for type_id in range(5):
            assert "make_t%d" % type_id in program.functions

    def test_indirect_call_knob(self):
        from repro.analysis import andersen
        from repro.analysis.ir import FuncRef, IndirectCall

        spec = ProgramSpec(name="t", n_functions=14, statements_per_function=16,
                           n_types=5, seed=11, indirect_call_prob=0.5)
        program = generate_program(spec)
        icalls = sum(
            1
            for function in program.functions.values()
            for stmt in function.simple_statements()
            if isinstance(stmt, IndirectCall)
        )
        funcrefs = sum(
            1
            for function in program.functions.values()
            for stmt in function.simple_statements()
            if isinstance(stmt, FuncRef)
        )
        assert icalls > 0
        assert funcrefs == icalls  # each icall gets its own fp binding
        # Every generated indirect call resolves to exactly one callee.
        targets = andersen.analyze(program).indirect_call_targets()
        assert all(len(callees) == 1 for callees in targets.values())

    def test_indirect_prob_zero_emits_none(self):
        from repro.analysis.ir import IndirectCall

        program = generate_program(ProgramSpec(name="t", seed=3))
        assert not any(
            isinstance(stmt, IndirectCall)
            for function in program.functions.values()
            for stmt in function.simple_statements()
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_parseable_round_trip(self, seed):
        from repro.analysis.parser import format_program, parse_program

        program = generate_program(
            ProgramSpec(name="t", n_functions=6, statements_per_function=8, seed=seed)
        )
        rebuilt = parse_program(format_program(program))
        assert rebuilt.statement_count() == program.statement_count()


class TestSyntheticMatrices:
    def test_deterministic(self):
        spec = SyntheticSpec(n_pointers=200, n_objects=50, seed=4)
        assert synthesize(spec) == synthesize(spec)

    def test_dimensions(self):
        matrix = synthesize(SyntheticSpec(n_pointers=120, n_objects=30, seed=1))
        assert matrix.n_pointers == 120
        assert matrix.n_objects == 30
        assert matrix.fact_count() > 0

    def test_every_pointer_nonempty(self):
        matrix = synthesize(SyntheticSpec(n_pointers=100, n_objects=25, seed=2))
        assert all(len(row) >= 1 for row in matrix.rows)

    def test_equivalence_ratio_calibrated(self):
        """The generator must land near the requested pointer-class ratio."""
        spec = SyntheticSpec(n_pointers=1000, n_objects=150, seed=3,
                             pointer_class_ratio=0.185)
        stats = characterize(synthesize(spec))
        assert 0.05 <= stats.pointer_class_ratio <= 0.30

    def test_hub_mass_concentated(self):
        """Zipf popularity puts far more than 10% of incidences on the top
        decile of objects."""
        spec = SyntheticSpec(n_pointers=1000, n_objects=200, seed=5)
        stats = characterize(synthesize(spec))
        assert stats.hub_mass_top_decile > 0.2

    def test_uniform_control_has_no_hub_structure(self):
        uniform = synthesize_simple(1000, 200, seed=6)
        stats = characterize(uniform)
        assert stats.hub_mass_top_decile < 0.2

    def test_simple_density_parameter(self):
        matrix = synthesize_simple(50, 20, seed=1, density=1.0)
        assert matrix.fact_count() == 50 * 20


class TestCharacterize:
    def test_hand_computed(self):
        matrix = PointsToMatrix.from_rows([[0], [0], [1]], 2)
        stats = characterize(matrix)
        assert stats.n_pointers == 3
        assert stats.n_objects == 2
        assert stats.facts == 3
        assert stats.pointer_class_ratio == pytest.approx(2 / 3)
        assert stats.object_class_ratio == pytest.approx(1.0)
        assert stats.max_hub_degree > 0

    def test_bucket_fractions_sum_to_one(self):
        matrix = synthesize(SyntheticSpec(n_pointers=300, n_objects=60, seed=8))
        stats = characterize(matrix)
        assert sum(stats.hub_bucket_fractions) == pytest.approx(1.0)

    def test_row_format(self):
        stats = characterize(PointsToMatrix.from_rows([[0]], 1))
        row = stats.row()
        assert row["#Pointers"] == 1
        assert "hub mass top-10% objs" in row

    def test_empty_matrix(self):
        stats = characterize(PointsToMatrix(0, 0))
        assert stats.facts == 0
