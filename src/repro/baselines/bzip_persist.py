"""bzip baseline: off-the-shelf compression of the points-to matrix.

The paper's point (Section 1): a general-purpose compressor shrinks the raw
relation but cannot exploit its semantics and, worse, must be *fully
decompressed* before any query can be answered.  We serialise ``PM`` in a
simple row-major binary layout and run it through ``bz2`` at maximum
compression, exactly mirroring that trade-off.
"""

from __future__ import annotations

import bz2
import os
import struct
from typing import List

from ..matrix.points_to import PointsToMatrix

MAGIC = b"BZPM\x00\x01\x00\x00"

_U32 = struct.Struct("<I")


def _serialize(matrix: PointsToMatrix) -> bytes:
    chunks: List[bytes] = [_U32.pack(matrix.n_pointers), _U32.pack(matrix.n_objects)]
    for row in matrix.rows:
        objects = list(row)
        chunks.append(_U32.pack(len(objects)))
        chunks.extend(_U32.pack(obj) for obj in objects)
    return b"".join(chunks)


def _deserialize(data: bytes) -> PointsToMatrix:
    offset = 0
    n_pointers = _U32.unpack_from(data, offset)[0]
    offset += 4
    n_objects = _U32.unpack_from(data, offset)[0]
    offset += 4
    matrix = PointsToMatrix(n_pointers, n_objects)
    for pointer in range(n_pointers):
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        for _ in range(count):
            matrix.add(pointer, _U32.unpack_from(data, offset)[0])
            offset += 4
    return matrix


class BzipPersistence:
    """bz2-compressed PM persistence; decoding inflates the whole matrix."""

    @staticmethod
    def encode_to_file(matrix: PointsToMatrix, path: str, level: int = 9) -> int:
        payload = MAGIC + bz2.compress(_serialize(matrix), compresslevel=level)
        with open(path, "wb") as stream:
            stream.write(payload)
        return os.path.getsize(path)

    @staticmethod
    def decode_from_file(path: str) -> PointsToMatrix:
        with open(path, "rb") as stream:
            data = stream.read()
        if data[:8] != MAGIC:
            raise ValueError("not a bzip-PM file")
        return _deserialize(bz2.decompress(data[8:]))
