"""bzip baseline: off-the-shelf compression of the points-to matrix.

The paper's point (Section 1): a general-purpose compressor shrinks the raw
relation but cannot exploit its semantics and, worse, must be *fully
decompressed* before any query can be answered.  We serialise ``PM`` in a
simple row-major binary layout and run it through ``bz2`` at maximum
compression, exactly mirroring that trade-off.
"""

from __future__ import annotations

import bz2
import os
import struct
from typing import List

from ..core.ioutil import atomic_write, crc32
from ..matrix.points_to import PointsToMatrix

#: Version 1: magic + bz2 stream.  Version 2 (what we write) appends a
#: CRC32 trailer over everything before it, matching ``PESTRIE3``/BitP.
MAGIC_V1 = b"BZPM\x00\x01\x00\x00"
MAGIC = b"BZPM\x00\x02\x00\x00"

_U32 = struct.Struct("<I")


def _serialize(matrix: PointsToMatrix) -> bytes:
    chunks: List[bytes] = [_U32.pack(matrix.n_pointers), _U32.pack(matrix.n_objects)]
    for row in matrix.rows:
        objects = list(row)
        chunks.append(_U32.pack(len(objects)))
        chunks.extend(_U32.pack(obj) for obj in objects)
    return b"".join(chunks)


def _deserialize(data: bytes) -> PointsToMatrix:
    try:
        offset = 0
        n_pointers = _U32.unpack_from(data, offset)[0]
        offset += 4
        n_objects = _U32.unpack_from(data, offset)[0]
        offset += 4
        matrix = PointsToMatrix(n_pointers, n_objects)
        for pointer in range(n_pointers):
            count = _U32.unpack_from(data, offset)[0]
            offset += 4
            for _ in range(count):
                matrix.add(pointer, _U32.unpack_from(data, offset)[0])
                offset += 4
    except struct.error:
        raise ValueError("truncated bzip-PM payload at offset %d" % offset)
    if offset != len(data):
        raise ValueError("%d trailing bytes after the bzip-PM payload" % (len(data) - offset))
    return matrix


class BzipPersistence:
    """bz2-compressed PM persistence; decoding inflates the whole matrix."""

    @staticmethod
    def encode_to_file(matrix: PointsToMatrix, path: str, level: int = 9) -> int:
        body = MAGIC + bz2.compress(_serialize(matrix), compresslevel=level)
        atomic_write(path, body + _U32.pack(crc32(body)))
        return os.path.getsize(path)

    @staticmethod
    def decode_from_file(path: str) -> PointsToMatrix:
        with open(path, "rb") as stream:
            data = stream.read()
        magic = data[:8]
        if magic == MAGIC:
            if len(data) < 12:
                raise ValueError("truncated bzip-PM file (no checksum trailer)")
            stored = _U32.unpack_from(data, len(data) - 4)[0]
            actual = crc32(data[:-4])
            if stored != actual:
                raise ValueError("bzip-PM checksum mismatch (stored %08x, computed %08x)"
                                 % (stored, actual))
            compressed = data[8:-4]
        elif magic == MAGIC_V1:
            compressed = data[8:]
        else:
            raise ValueError("not a bzip-PM file (bad magic %r)" % magic)
        try:
            raw = bz2.decompress(compressed)
        except OSError as error:
            raise ValueError("corrupt bz2 stream in bzip-PM file: %s" % error)
        return _deserialize(raw)
