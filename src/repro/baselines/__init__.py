"""Persistence and querying baselines: BitP, bzip, demand-driven."""

from .bitmap_persist import BitmapIndex, BitmapPersistence
from .bzip_persist import BzipPersistence
from .demand import DemandDriven

__all__ = ["BitmapIndex", "BitmapPersistence", "BzipPersistence", "DemandDriven"]
