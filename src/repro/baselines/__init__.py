"""Persistence and querying baselines: BitP, ChaBV, bzip, demand-driven."""

from .bitmap_persist import BitmapIndex, BitmapPersistence
from .bzip_persist import BzipPersistence
from .cha_bitvector import ChaBitVectorIndex, ChaBitVectorPersistence
from .demand import DemandDriven

__all__ = [
    "BitmapIndex",
    "BitmapPersistence",
    "BzipPersistence",
    "ChaBitVectorIndex",
    "ChaBitVectorPersistence",
    "DemandDriven",
]
