"""Demand-driven querying baseline (Section 7.1.1).

"To mimic the conventional usage, we only use the PM matrix to evaluate
queries":

* ``IsAlias(p, q)`` intersects the two points-to sets on every call;
* ``ListAliases(p)`` runs ``IsAlias(p, q)`` against every other candidate
  pointer and caches the result under ``p``'s equivalence class, so a later
  query on an equivalent pointer is a cache hit (the paper's cache
  optimisation, which still leaves it 123.6× behind Pestrie).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..matrix.equivalence import partition_rows
from ..matrix.points_to import PointsToMatrix


class DemandDriven:
    """Demand-driven query interface over a raw points-to matrix.

    ``universe`` restricts ``list_aliases`` candidates (the race-detector
    client only cares about base pointers of loads/stores); by default every
    pointer is a candidate.
    """

    def __init__(self, matrix: PointsToMatrix, universe: Optional[Sequence[int]] = None):
        self.matrix = matrix
        self.universe: List[int] = (
            list(universe) if universe is not None else list(range(matrix.n_pointers))
        )
        self._partition = partition_rows(matrix)
        self._cache: Dict[int, List[int]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def is_alias(self, p: int, q: int) -> bool:
        """Intersect the two points-to sets — O(points-to set size)."""
        return self.matrix.rows[p].intersects(self.matrix.rows[q])

    def list_aliases(self, p: int) -> List[int]:
        """IsAlias against every candidate, cached per equivalence class."""
        class_id = self._partition.class_of[p]
        cached = self._cache.get(class_id)
        if cached is not None:
            self.cache_hits += 1
            return [q for q in cached if q != p]
        self.cache_misses += 1
        row = self.matrix.rows[p]
        aliases = [q for q in self.universe if row.intersects(self.matrix.rows[q])]
        self._cache[class_id] = aliases
        return [q for q in aliases if q != p]

    def list_points_to(self, p: int) -> List[int]:
        return list(self.matrix.rows[p])

    def list_pointed_by(self, obj: int) -> List[int]:
        """Full column scan — demand-driven has no pointed-by index."""
        return [p for p, row in enumerate(self.matrix.rows) if obj in row]
