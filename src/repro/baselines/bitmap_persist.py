"""BitP: the sparse-bitmap persistence baseline (Sections 2.1 and 7).

BitP persists *both* matrices the queries need:

* the points-to matrix ``PM`` (for ListPointsTo / ListPointedBy), and
* the alias matrix ``AM = PM · PMᵀ`` (for IsAlias / ListAliases),

each with equivalence-class merging: identical rows are stored once and a
row-to-class table maps every pointer to its representative row.  Rows are
serialised block-wise in the sparse-bitmap's native layout.

Querying follows GCC bitmap semantics: membership requires walking the
block list, so ``IsAlias`` is ``O(n)`` — the behaviour the paper contrasts
with Pestrie's ``O(log n)``.
"""

from __future__ import annotations

import io
import os
import struct
from typing import BinaryIO, List

from ..core.ioutil import atomic_write, crc32
from ..matrix.bitmap import SparseBitmap
from ..matrix.equivalence import partition_rows
from ..matrix.points_to import PointsToMatrix

#: Version 1: bare sections.  Version 2 (written by :meth:`encode`) appends
#: a CRC32 trailer over everything before it, mirroring ``PESTRIE3`` so the
#: paper's size comparison (Table 8) stays integrity-for-integrity fair.
MAGIC_V1 = b"BITP\x00\x01\x00\x00"
MAGIC = b"BITP\x00\x02\x00\x00"

_U32 = struct.Struct("<I")
_BLOCK = struct.Struct("<IQQ")  # block index + 128-bit payload as two u64


def _write_u32(stream: BinaryIO, value: int) -> None:
    stream.write(_U32.pack(value))


def _write_bitmap(stream: BinaryIO, bitmap: SparseBitmap) -> None:
    pairs = list(bitmap.to_block_pairs())
    _write_u32(stream, len(pairs))
    for index, payload in pairs:
        low = payload & 0xFFFFFFFFFFFFFFFF
        high = payload >> 64
        stream.write(_BLOCK.pack(index, low, high))


def _read_exact(stream: BinaryIO, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise ValueError("truncated BitP file (wanted %d bytes, got %d)"
                         % (size, len(data)))
    return data


def _read_u32(stream: BinaryIO) -> int:
    return _U32.unpack(_read_exact(stream, 4))[0]


def _read_bitmap(stream: BinaryIO) -> SparseBitmap:
    count = _read_u32(stream)
    pairs = []
    for _ in range(count):
        index, low, high = _BLOCK.unpack(_read_exact(stream, _BLOCK.size))
        pairs.append((index, (high << 64) | low))
    return SparseBitmap.from_block_pairs(pairs)


def _write_merged_matrix(stream: BinaryIO, matrix: PointsToMatrix) -> None:
    """Write a matrix as (class table, representative rows)."""
    partition = partition_rows(matrix)
    _write_u32(stream, matrix.n_pointers)
    _write_u32(stream, matrix.n_objects)
    _write_u32(stream, partition.n_classes)
    for class_id in partition.class_of:
        _write_u32(stream, class_id)
    for representative in partition.representative:
        _write_bitmap(stream, matrix.rows[representative])


def _read_merged_matrix(stream: BinaryIO) -> PointsToMatrix:
    n_rows = _read_u32(stream)
    n_cols = _read_u32(stream)
    n_classes = _read_u32(stream)
    class_of = [_read_u32(stream) for _ in range(n_rows)]
    class_rows = [_read_bitmap(stream) for _ in range(n_classes)]
    matrix = PointsToMatrix(n_rows, n_cols)
    # Share one bitmap object per class, exactly like the merged encoding.
    matrix.rows = [class_rows[class_of[row]] for row in range(n_rows)]
    return matrix


class BitmapIndex:
    """Decoded BitP data: merged PM and AM, plus PMT derived on load."""

    def __init__(self, pm: PointsToMatrix, am: PointsToMatrix):
        self.pm = pm
        self.am = am
        self._pmt = pm.transpose()

    # The four Table 1 queries, with GCC-bitmap costs.

    def is_alias(self, p: int, q: int) -> bool:
        """Bit probe in AM: O(blocks) linked-list walk."""
        return q in self.am.rows[p]

    def list_aliases(self, p: int) -> List[int]:
        """Pre-computed row of AM — just enumerate it."""
        return [q for q in self.am.rows[p] if q != p]

    def list_points_to(self, p: int) -> List[int]:
        return list(self.pm.rows[p])

    def list_pointed_by(self, obj: int) -> List[int]:
        return list(self._pmt.rows[obj])

    def memory_footprint(self) -> int:
        """Rough decoded-structure size in bytes."""
        blocks = 0
        for matrix in (self.pm, self.am, self._pmt):
            seen = set()
            for row in matrix.rows:
                if id(row) in seen:
                    continue
                seen.add(id(row))
                blocks += row.block_count()
        # A block object: index + payload + next pointer, plus Python slack.
        return blocks * 80


class BitmapPersistence:
    """Encoder/decoder for the BitP persistent format."""

    @staticmethod
    def encode(matrix: PointsToMatrix, stream: BinaryIO) -> None:
        body = io.BytesIO()
        body.write(MAGIC)
        _write_merged_matrix(body, matrix)
        _write_merged_matrix(body, matrix.alias_matrix())
        payload = body.getvalue()
        stream.write(payload)
        stream.write(_U32.pack(crc32(payload)))

    @staticmethod
    def encode_to_file(matrix: PointsToMatrix, path: str) -> int:
        body = io.BytesIO()
        BitmapPersistence.encode(matrix, body)
        atomic_write(path, body.getvalue())
        return os.path.getsize(path)

    @staticmethod
    def decode_buffer(data) -> BitmapIndex:
        """Decode one BitP image from any byte buffer (bytes or memoryview).

        The checksum is computed directly over the buffer, so an mmap-backed
        view is verified zero-copy; only the body sections are materialised.
        """
        magic = bytes(data[:8])
        if magic == MAGIC:
            if len(data) < 12:
                raise ValueError("truncated BitP file (no checksum trailer)")
            stored = _U32.unpack_from(data, len(data) - 4)[0]
            actual = crc32(data[:-4])
            if stored != actual:
                raise ValueError("BitP checksum mismatch (stored %08x, computed %08x)"
                                 % (stored, actual))
            body = io.BytesIO(data[8 : len(data) - 4])
        elif magic == MAGIC_V1:
            body = io.BytesIO(data[8:])
        else:
            raise ValueError("not a BitP file (bad magic %r)" % magic)
        pm = _read_merged_matrix(body)
        am = _read_merged_matrix(body)
        trailing = len(body.read())
        if trailing:
            raise ValueError("%d trailing bytes after the BitP sections" % trailing)
        return BitmapIndex(pm, am)

    @staticmethod
    def decode(stream: BinaryIO) -> BitmapIndex:
        return BitmapPersistence.decode_buffer(stream.read())

    @staticmethod
    def decode_from_file(path: str) -> BitmapIndex:
        from ..store import open_blob

        with open_blob(path) as blob:
            view = blob.buffer
            try:
                return BitmapPersistence.decode_buffer(view)
            finally:
                view.release()
