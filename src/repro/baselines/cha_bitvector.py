"""ChaBV: the class-hierarchy-aware bit-vector persistence baseline.

Toussi's MDE line of work compresses points-to bit vectors by switching the
vector dimension from *objects* to *classes*: allocation sites of one class
collapse into a single bit, and per-class site tables recover the members.
This module reproduces that scheme as a Table 8 baseline:

* objects are partitioned into classes — a caller-supplied hierarchy map
  (``class_of``) when the front end has one, refined by pointed-by-column
  identity so the encoding stays lossless (two sites share a bit only when
  *exactly* the same pointers reach them; with no hierarchy the column
  refinement alone is the partition);
* each pointer's points-to set becomes a dense bit vector over class ids
  (``⌈n_classes/8⌉`` bytes), with identical vectors stored once behind a
  pointer→vector table, the same row merging BitP uses;
* each class stores its pointed-by column once — which is simultaneously
  the member-expansion table for ``ListPointsTo`` and the whole answer to
  ``ListPointedBy``.

Losslessness argument: column refinement guarantees that members of one
class have identical pointed-by sets, so every points-to set is a union of
whole classes and the class vector loses nothing.  ``IsAlias`` is then one
byte-string intersection — O(classes/8) — the scenario-diversity contrast
to BitP's block-list walk and Pestrie's O(log n) probe.
"""

from __future__ import annotations

import io
import os
import struct
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple

from ..core.ioutil import atomic_write, crc32
from ..matrix.points_to import PointsToMatrix

#: ``CHBV`` + version 1 + two reserved bytes, mirroring the BitP magic.
MAGIC = b"CHBV\x00\x01\x00\x00"

_U32 = struct.Struct("<I")


def _write_u32(stream: BinaryIO, value: int) -> None:
    stream.write(_U32.pack(value))


def _read_exact(stream: BinaryIO, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise ValueError("truncated ChaBV file (wanted %d bytes, got %d)"
                         % (size, len(data)))
    return data


def _read_u32(stream: BinaryIO) -> int:
    return _U32.unpack(_read_exact(stream, 4))[0]


def _partition_classes(
    matrix: PointsToMatrix, class_of: Optional[Sequence[int]]
) -> Tuple[List[int], List[List[int]]]:
    """Class id per object plus each class's pointed-by column.

    Classes are ``(hierarchy class, pointed-by column)`` groups, numbered in
    first-object order so the partition is deterministic.
    """
    columns: List[List[int]] = [[] for _ in range(matrix.n_objects)]
    for pointer, row in enumerate(matrix.rows):
        for obj in row:
            columns[obj].append(pointer)
    obj_class = [0] * matrix.n_objects
    table: Dict[Tuple[int, Tuple[int, ...]], int] = {}
    class_columns: List[List[int]] = []
    for obj in range(matrix.n_objects):
        declared = class_of[obj] if class_of is not None else 0
        key = (declared, tuple(columns[obj]))
        class_id = table.get(key)
        if class_id is None:
            class_id = len(class_columns)
            table[key] = class_id
            class_columns.append(columns[obj])
        obj_class[obj] = class_id
    return obj_class, class_columns


class ChaBitVectorIndex:
    """Decoded ChaBV data: class tables plus merged class-vector rows."""

    def __init__(
        self,
        n_pointers: int,
        n_objects: int,
        obj_class: List[int],
        class_members: List[List[int]],
        class_pointers: List[List[int]],
        row_vector_of: List[int],
        vectors: List[bytes],
    ):
        self.n_pointers = n_pointers
        self.n_objects = n_objects
        self._obj_class = obj_class
        self._class_members = class_members
        self._class_pointers = class_pointers
        self._row_vector_of = row_vector_of
        self._vectors = vectors

    def _vector(self, p: int) -> bytes:
        return self._vectors[self._row_vector_of[p]]

    def _classes_of(self, p: int) -> List[int]:
        out = []
        for byte_index, byte in enumerate(self._vector(p)):
            while byte:
                bit = byte & -byte
                out.append(byte_index * 8 + bit.bit_length() - 1)
                byte ^= bit
        return out

    # The four Table 1 queries.

    def is_alias(self, p: int, q: int) -> bool:
        """One byte-string intersection over the class dimension."""
        for a, b in zip(self._vector(p), self._vector(q)):
            if a & b:
                return True
        return False

    def list_aliases(self, p: int) -> List[int]:
        aliases = set()
        for class_id in self._classes_of(p):
            aliases.update(self._class_pointers[class_id])
        aliases.discard(p)
        return sorted(aliases)

    def list_points_to(self, p: int) -> List[int]:
        objects: List[int] = []
        for class_id in self._classes_of(p):
            objects.extend(self._class_members[class_id])
        return sorted(objects)

    def list_pointed_by(self, obj: int) -> List[int]:
        """The class column, verbatim — sharing is the point of the scheme."""
        return list(self._class_pointers[self._obj_class[obj]])

    def memory_footprint(self) -> int:
        """Rough decoded-structure size in bytes."""
        total = 28 * (len(self._obj_class) + len(self._row_vector_of))
        for vector in self._vectors:
            total += len(vector) + 49  # bytes object overhead
        for table in (self._class_members, self._class_pointers):
            for entries in table:
                total += 56 + 28 * len(entries)
        return total


class ChaBitVectorPersistence:
    """Encoder/decoder for the ChaBV persistent format."""

    @staticmethod
    def encode(
        matrix: PointsToMatrix,
        stream: BinaryIO,
        class_of: Optional[Sequence[int]] = None,
    ) -> None:
        """Serialise ``matrix``; ``class_of`` optionally supplies the
        declared class per object (any ints — they only seed the grouping).
        """
        if class_of is not None and len(class_of) != matrix.n_objects:
            raise ValueError(
                "class_of must cover all %d objects, got %d entries"
                % (matrix.n_objects, len(class_of))
            )
        obj_class, class_columns = _partition_classes(matrix, class_of)
        n_classes = len(class_columns)
        width = (n_classes + 7) // 8

        vectors: List[bytes] = []
        vector_ids: Dict[bytes, int] = {}
        row_vector_of: List[int] = []
        for row in matrix.rows:
            vector = bytearray(width)
            for obj in row:
                class_id = obj_class[obj]
                vector[class_id >> 3] |= 1 << (class_id & 7)
            key = bytes(vector)
            vector_id = vector_ids.get(key)
            if vector_id is None:
                vector_id = len(vectors)
                vector_ids[key] = vector_id
                vectors.append(key)
            row_vector_of.append(vector_id)

        body = io.BytesIO()
        body.write(MAGIC)
        for value in (matrix.n_pointers, matrix.n_objects, n_classes, len(vectors)):
            _write_u32(body, value)
        for class_id in obj_class:
            _write_u32(body, class_id)
        for vector_id in row_vector_of:
            _write_u32(body, vector_id)
        for column in class_columns:
            _write_u32(body, len(column))
            for pointer in column:
                _write_u32(body, pointer)
        for vector in vectors:
            body.write(vector)
        payload = body.getvalue()
        stream.write(payload)
        stream.write(_U32.pack(crc32(payload)))

    @staticmethod
    def encode_to_file(
        matrix: PointsToMatrix,
        path: str,
        class_of: Optional[Sequence[int]] = None,
    ) -> int:
        body = io.BytesIO()
        ChaBitVectorPersistence.encode(matrix, body, class_of=class_of)
        atomic_write(path, body.getvalue())
        return os.path.getsize(path)

    @staticmethod
    def decode_buffer(data) -> ChaBitVectorIndex:
        if bytes(data[:8]) != MAGIC:
            raise ValueError("not a ChaBV file (bad magic %r)" % bytes(data[:8]))
        if len(data) < 12:
            raise ValueError("truncated ChaBV file (no checksum trailer)")
        stored = _U32.unpack_from(data, len(data) - 4)[0]
        actual = crc32(data[:-4])
        if stored != actual:
            raise ValueError("ChaBV checksum mismatch (stored %08x, computed %08x)"
                             % (stored, actual))
        body = io.BytesIO(data[8 : len(data) - 4])
        n_pointers = _read_u32(body)
        n_objects = _read_u32(body)
        n_classes = _read_u32(body)
        n_vectors = _read_u32(body)
        obj_class = [_read_u32(body) for _ in range(n_objects)]
        row_vector_of = [_read_u32(body) for _ in range(n_pointers)]
        class_pointers: List[List[int]] = []
        for _ in range(n_classes):
            count = _read_u32(body)
            class_pointers.append([_read_u32(body) for _ in range(count)])
        width = (n_classes + 7) // 8
        vectors = [bytes(_read_exact(body, width)) for _ in range(n_vectors)]
        trailing = len(body.read())
        if trailing:
            raise ValueError("%d trailing bytes after the ChaBV sections" % trailing)
        for class_id in obj_class:
            if class_id >= n_classes:
                raise ValueError("object class id %d out of range" % class_id)
        for vector_id in row_vector_of:
            if vector_id >= n_vectors:
                raise ValueError("row vector id %d out of range" % vector_id)
        class_members: List[List[int]] = [[] for _ in range(n_classes)]
        for obj, class_id in enumerate(obj_class):
            class_members[class_id].append(obj)
        return ChaBitVectorIndex(
            n_pointers=n_pointers,
            n_objects=n_objects,
            obj_class=obj_class,
            class_members=class_members,
            class_pointers=class_pointers,
            row_vector_of=row_vector_of,
            vectors=vectors,
        )

    @staticmethod
    def decode(stream: BinaryIO) -> ChaBitVectorIndex:
        return ChaBitVectorPersistence.decode_buffer(stream.read())

    @staticmethod
    def decode_from_file(path: str) -> ChaBitVectorIndex:
        from ..store import open_blob

        with open_blob(path) as blob:
            view = blob.buffer
            try:
                return ChaBitVectorPersistence.decode_buffer(view)
            finally:
                view.release()
