"""Aliasing-pairs client — the race-detector workload of Section 7.1.1.

A static race detector (Naik et al.) needs all pairs of conflicting load
and store statements whose *base pointers* may alias.  The paper evaluates
two ways of producing them:

* **IsAlias enumeration**: enumerate candidate base-pointer pairs and ask
  ``IsAlias`` for each — quadratic in the base-pointer count;
* **ListAliases**: for each base pointer, retrieve its alias set in one
  query and intersect with the base-pointer universe — output-linear, and
  the source of the paper's 123.6× headline speed-up.

Both are implemented against any backend exposing the Table 1 interface
(PestrieIndex, BitmapIndex, DemandDriven, PointsToBdd), so the benchmark
can run the same client over every encoding.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Sequence, Set, Tuple


class AliasBackend(Protocol):
    """The query surface the client needs (Table 1 subset)."""

    def is_alias(self, p: int, q: int) -> bool: ...

    def list_aliases(self, p: int) -> List[int]: ...


def aliasing_pairs_by_is_alias(
    backend: AliasBackend, base_pointers: Sequence[int]
) -> Set[Tuple[int, int]]:
    """Method 1: enumerate all base-pointer pairs through ``IsAlias``."""
    pairs: Set[Tuple[int, int]] = set()
    pointers = list(base_pointers)
    for i, p in enumerate(pointers):
        for q in pointers[i + 1 :]:
            if backend.is_alias(p, q):
                pairs.add((p, q) if p < q else (q, p))
    return pairs


def aliasing_pairs_by_list_aliases(
    backend: AliasBackend, base_pointers: Sequence[int]
) -> Set[Tuple[int, int]]:
    """Method 2: one ``ListAliases`` per base pointer, filtered to bases."""
    universe = set(base_pointers)
    pairs: Set[Tuple[int, int]] = set()
    for p in base_pointers:
        for q in backend.list_aliases(p):
            if q in universe and q != p:
                pairs.add((p, q) if p < q else (q, p))
    return pairs


def aliasing_pairs_bulk(index, base_pointers: Sequence[int]) -> Set[Tuple[int, int]]:
    """Method 3 (ours): one pass over the rectangle encoding.

    Uses :meth:`PestrieIndex.iter_alias_pairs` to stream every alias pair
    in the program once and keeps those between base pointers — no
    per-pointer query loop at all.  Fastest when the base-pointer set is a
    large fraction of all pointers.
    """
    universe = set(base_pointers)
    return {
        (p, q)
        for p, q in index.iter_alias_pairs()
        if p in universe and q in universe
    }


def conflict_report(
    pairs: Iterable[Tuple[int, int]], pointer_names: Sequence[str]
) -> List[str]:
    """Human-readable conflict lines, sorted for stable output."""
    normalized = {(p, q) if p < q else (q, p) for p, q in pairs}
    lines = []
    for p, q in sorted(normalized):
        lines.append("may-race: %s  <->  %s" % (pointer_names[p], pointer_names[q]))
    return lines
