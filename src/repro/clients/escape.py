"""Variable-escape analysis over persisted pointer information.

A third client in the paper's pipelining scenario (Section 1: leak
detectors, race detectors, and escape/locality questions sharing one
persisted file).  An allocation site *escapes by pointer* when some pointer
variable outside its allocating function — a global, or any other
function's variable — may reference it.

This is exactly the question the persisted PM matrix answers (one
``ListPointedBy`` query per site, no analysis re-run).  Note the scope: a
full stack-allocation legality check additionally needs the *heap cell*
contents (a value stored into a heap object escapes even if no outside
variable names it yet), which live in the analysis result, not in PM —
so treat ``escapes=False`` as "no outside variable ever points at it",
the thin-slicing/locality notion, not a storage-class proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence


class EscapeBackend(Protocol):
    def list_pointed_by(self, obj: int) -> List[int]: ...


@dataclass(frozen=True)
class SiteReport:
    """Escape verdict for one allocation site."""

    site: int
    site_name: str
    escapes: bool
    #: Pointer names outside the owner that reach the site (evidence).
    witnesses: tuple


def owner_of_site(site_name: str) -> str:
    """The allocating function of a qualified site (``f::S`` → ``f``)."""
    if "::" in site_name:
        return site_name.split("::", 1)[0]
    return ""  # function objects ("fn:f") and synthetic sites own nothing


def owner_of_pointer(pointer_name: str) -> str:
    """The owning function of a qualified variable; globals own nothing."""
    if "::" in pointer_name:
        return pointer_name.split("::", 1)[0]
    return ""


def classify_sites(
    backend: EscapeBackend,
    site_names: Sequence[str],
    pointer_names: Sequence[str],
    sites: Sequence[int] | None = None,
) -> List[SiteReport]:
    """Escape verdicts for the given sites (default: all of them)."""
    reports: List[SiteReport] = []
    for site in sites if sites is not None else range(len(site_names)):
        site_name = site_names[site]
        owner = owner_of_site(site_name)
        witnesses = []
        for pointer in backend.list_pointed_by(site):
            pointer_owner = owner_of_pointer(pointer_names[pointer])
            if pointer_owner != owner:
                witnesses.append(pointer_names[pointer])
        reports.append(
            SiteReport(
                site=site,
                site_name=site_name,
                escapes=bool(witnesses),
                witnesses=tuple(sorted(witnesses)),
            )
        )
    return reports


def escape_summary(reports: Sequence[SiteReport]) -> Dict[str, int]:
    """Counts for a one-line report."""
    escaping = sum(1 for report in reports if report.escapes)
    return {
        "sites": len(reports),
        "escaping": escaping,
        "local": len(reports) - escaping,
    }
