"""Change-impact client — a ``ListPointedBy`` consumer (Section 1, use 1).

Given a set of *changed* allocation sites (e.g. a struct whose layout was
modified in a new release), the client computes the blast radius: every
pointer that may reference a changed object, then — transitively through
aliasing — every pointer whose value may be affected.  This is the kind of
regression-analysis pipeline the paper motivates persisting pointer
information for: it runs repeatedly against the *same* release snapshot,
so reloading a Pestrie file beats re-running the points-to analysis by
orders of magnitude.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Set


class ImpactBackend(Protocol):
    def list_pointed_by(self, obj: int) -> List[int]: ...

    def list_aliases(self, p: int) -> List[int]: ...


def direct_impact(backend: ImpactBackend, changed_objects: Iterable[int]) -> Set[int]:
    """Pointers that may directly reference a changed object."""
    impacted: Set[int] = set()
    for obj in changed_objects:
        impacted.update(backend.list_pointed_by(obj))
    return impacted


def transitive_impact(
    backend: ImpactBackend, changed_objects: Iterable[int], rounds: int = 1
) -> Set[int]:
    """Widen the direct impact through aliasing for ``rounds`` steps.

    One round is the usual engineering choice: a pointer aliased with an
    impacted pointer may observe the changed object through it.
    """
    impacted = direct_impact(backend, changed_objects)
    frontier = set(impacted)
    for _ in range(rounds):
        next_frontier: Set[int] = set()
        for pointer in frontier:
            for alias in backend.list_aliases(pointer):
                if alias not in impacted:
                    impacted.add(alias)
                    next_frontier.add(alias)
        if not next_frontier:
            break
        frontier = next_frontier
    return impacted


def version_impact(path: str, v1: int, v2: int, rounds: int = 1,
                   mode: str = "ptlist") -> Set[int]:
    """Blast radius of the edits between two versions of one file.

    The changed-object set is read straight off the delta records between
    the two epochs (no diffing required), then widened through aliasing
    against the newer snapshot.  One file open, two pinned versions.
    """
    from ..delta import load_versions

    versioned = load_versions(path, mode=mode)
    try:
        newer = versioned.as_of(max(v1, v2))
        _, objects = versioned.dirty_between(v1, v2)
        return transitive_impact(newer, objects, rounds=rounds)
    finally:
        versioned.close()
