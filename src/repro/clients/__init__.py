"""Client analyses consuming the Table 1 query interface."""

from .daemon import DaemonClient, DaemonError
from .diff import (
    PointsToDiff,
    diff_points_to,
    diff_versions,
    impacted_pointers,
    new_alias_pairs,
)
from .escape import SiteReport, classify_sites, escape_summary
from .impact import direct_impact, transitive_impact, version_impact
from .race import (
    aliasing_pairs_by_is_alias,
    aliasing_pairs_by_list_aliases,
    conflict_report,
)

__all__ = [
    "DaemonClient",
    "DaemonError",
    "PointsToDiff",
    "SiteReport",
    "aliasing_pairs_by_is_alias",
    "aliasing_pairs_by_list_aliases",
    "classify_sites",
    "conflict_report",
    "escape_summary",
    "diff_points_to",
    "diff_versions",
    "direct_impact",
    "impacted_pointers",
    "new_alias_pairs",
    "transitive_impact",
    "version_impact",
]
