"""Snapshot differencing: compare two persisted pointer-information files.

Regression-analysis pipelines (the paper's Section 1 scenario) want to know
what *changed* between two releases' pointer information: which points-to
facts appeared or disappeared, and which alias pairs are new.  Both indexes
answer from their persisted files — no analysis is re-run — provided the
two runs were archived with correlated variable ids (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..core.query import PestrieIndex


@dataclass
class PointsToDiff:
    """Fact-level difference between two snapshots."""

    added: List[Tuple[int, int]] = field(default_factory=list)
    removed: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def unchanged(self) -> bool:
        return not self.added and not self.removed


def diff_points_to(old: PestrieIndex, new: PestrieIndex) -> PointsToDiff:
    """All ``(pointer, object)`` facts gained or lost between snapshots.

    Pointers/objects present in only one snapshot contribute their whole
    rows to the corresponding side.
    """
    diff = PointsToDiff()
    n_pointers = max(old.n_pointers, new.n_pointers)
    for pointer in range(n_pointers):
        old_row = set(old.list_points_to(pointer)) if pointer < old.n_pointers else set()
        new_row = set(new.list_points_to(pointer)) if pointer < new.n_pointers else set()
        for obj in sorted(new_row - old_row):
            diff.added.append((pointer, obj))
        for obj in sorted(old_row - new_row):
            diff.removed.append((pointer, obj))
    return diff


def new_alias_pairs(
    old: PestrieIndex, new: PestrieIndex, limit: int = 1_000_000
) -> Set[Tuple[int, int]]:
    """Alias pairs present in the new snapshot but not the old one.

    These are exactly the pairs a race/escape re-analysis must look at; the
    bulk rectangle enumeration keeps this output-linear.  ``limit`` bounds
    the answer as a safety valve for degenerate inputs.
    """
    fresh: Set[Tuple[int, int]] = set()
    for p, q in new.iter_alias_pairs():
        if p < old.n_pointers and q < old.n_pointers and old.is_alias(p, q):
            continue
        fresh.add((p, q))
        if len(fresh) >= limit:
            break
    return fresh


def impacted_pointers(old: PestrieIndex, new: PestrieIndex) -> Set[int]:
    """Pointers whose points-to set changed in any direction."""
    diff = diff_points_to(old, new)
    return {pointer for pointer, _ in diff.added} | {
        pointer for pointer, _ in diff.removed
    }
