"""Snapshot differencing: compare two persisted pointer-information files.

Regression-analysis pipelines (the paper's Section 1 scenario) want to know
what *changed* between two releases' pointer information: which points-to
facts appeared or disappeared, and which alias pairs are new.  Both indexes
answer from their persisted files — no analysis is re-run — provided the
two runs were archived with correlated variable ids (Section 6.2).

With the MVCC delta chain, both "snapshots" can also be two *versions* of
the same file: :func:`diff_versions` opens it once and compares any two
epochs, touching only the pointers the intervening delta records dirtied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from ..core.query import PestrieIndex


@dataclass
class PointsToDiff:
    """Fact-level difference between two snapshots."""

    added: List[Tuple[int, int]] = field(default_factory=list)
    removed: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def unchanged(self) -> bool:
        return not self.added and not self.removed


def _pointer_candidates(index) -> Optional[Set[int]]:
    """Pointers that *can* have a non-empty points-to row, or ``None``.

    A pointer outside the trie (``column_of`` is ``None``) has an empty
    base row; for overlays, the delta's dirty pointers are added on top.
    Returns ``None`` when the index exposes no ``column_of`` — the caller
    must fall back to the full id range.
    """
    column_of = getattr(index, "column_of", None)
    if column_of is None:
        return None
    candidates = {
        pointer for pointer in range(index.n_pointers)
        if column_of(pointer) is not None
    }
    dirty = getattr(index, "dirty_pointers", None)
    if dirty is not None:
        candidates.update(dirty())
    return candidates


def diff_points_to(old: PestrieIndex, new: PestrieIndex,
                   candidates: Optional[Iterable[int]] = None) -> PointsToDiff:
    """All ``(pointer, object)`` facts gained or lost between snapshots.

    Pointers/objects present in only one snapshot contribute their whole
    rows to the corresponding side.  Rows are materialised only for
    pointers that can be non-empty in *either* snapshot (pointers outside
    both tries provably contribute nothing), so the cost is proportional
    to the populated rows, not the id space.  ``candidates`` narrows the
    comparison further — e.g. to the dirty set between two versions of
    one file; pointers outside it are assumed (not checked) identical.
    """
    diff = PointsToDiff()
    if candidates is None:
        old_candidates = _pointer_candidates(old)
        new_candidates = _pointer_candidates(new)
        if old_candidates is None or new_candidates is None:
            candidates = range(max(old.n_pointers, new.n_pointers))
        else:
            candidates = sorted(old_candidates | new_candidates)
    else:
        candidates = sorted(set(candidates))
    for pointer in candidates:
        old_row = set(old.list_points_to(pointer)) if pointer < old.n_pointers else set()
        new_row = set(new.list_points_to(pointer)) if pointer < new.n_pointers else set()
        for obj in sorted(new_row - old_row):
            diff.added.append((pointer, obj))
        for obj in sorted(old_row - new_row):
            diff.removed.append((pointer, obj))
    return diff


def diff_versions(path: str, v1: int, v2: int,
                  mode: str = "ptlist") -> PointsToDiff:
    """Fact-level difference between two versions of *one* persisted file.

    Opens the file once through the versioned loader, pins both epochs,
    and compares only the pointers dirtied by the delta records between
    them — never a full id-space scan and never a second file open.
    Raises :class:`~repro.delta.VersionUnavailableError` when either
    version is outside the file's ``[floor, head]`` range.
    """
    from ..delta import load_versions

    versioned = load_versions(path, mode=mode)
    try:
        old = versioned.as_of(v1)
        new = versioned.as_of(v2)
        pointers, _ = versioned.dirty_between(v1, v2)
        return diff_points_to(old, new, candidates=pointers)
    finally:
        versioned.close()


def new_alias_pairs(
    old: PestrieIndex, new: PestrieIndex, limit: int = 1_000_000
) -> Set[Tuple[int, int]]:
    """Alias pairs present in the new snapshot but not the old one.

    These are exactly the pairs a race/escape re-analysis must look at; the
    bulk rectangle enumeration keeps this output-linear.  ``limit`` bounds
    the answer as a safety valve for degenerate inputs.
    """
    fresh: Set[Tuple[int, int]] = set()
    for p, q in new.iter_alias_pairs():
        if p < old.n_pointers and q < old.n_pointers and old.is_alias(p, q):
            continue
        fresh.add((p, q))
        if len(fresh) >= limit:
            break
    return fresh


def impacted_pointers(old: PestrieIndex, new: PestrieIndex) -> Set[int]:
    """Pointers whose points-to set changed in any direction."""
    diff = diff_points_to(old, new)
    return {pointer for pointer, _ in diff.added} | {
        pointer for pointer, _ in diff.removed
    }
