"""A small synchronous client for the alias daemon's unix-socket protocol.

:class:`DaemonClient` speaks the length-prefixed binary frames of
:mod:`repro.daemon.protocol` over one blocking unix-socket connection.
It mirrors the :class:`~repro.serve.AliasService` surface — the four
Table 1 queries in both single and batch form, ``apply_delta``, and
``stats`` — so a caller can swap an in-process service for a remote one
without touching query code.  Batch calls are the point: one frame per
*batch* keeps the per-query wire cost to a few bytes and lets the daemon
pay its batch fast path once.

One client is one connection and is **not** thread-safe (requests are
strictly sequential on the socket); concurrent callers should hold one
client each — connections are cheap, and the daemon multiplexes.

Request-scoped tracing (PR 9): constructed with ``trace_requests=True``
the client mints a fresh request id per round trip, wraps every frame in
the ``TRACED`` protocol extension, and opens a ``client.request`` span
carrying that id — so the client-side span and the daemon's
``daemon.request`` span correlate by ``request_id`` into one logical
tree across the process boundary.  With ``want_cost=True`` the daemon
additionally returns its :class:`~repro.obs.QueryCost` breakdown, parsed
into :attr:`DaemonClient.last_cost` after each successful call.  Both
default off; an untraced client emits byte-identical frames to PR 7.
"""

from __future__ import annotations

import json
import os
import socket
from typing import List, Optional, Sequence, Tuple

from ..obs.tracing import trace

from ..daemon import protocol
from ..daemon.protocol import (
    OP_LIST_ALIASES,
    OP_LIST_POINTED_BY,
    OP_LIST_POINTS_TO,
    ST_OK,
    ST_OVERLOADED,
    ST_UNSUPPORTED,
    STATUS_NAMES,
    ProtocolError,
)


class DaemonError(RuntimeError):
    """The daemon answered with a non-``OK`` status."""

    def __init__(self, status: int, message: str):
        super().__init__(
            "%s: %s" % (STATUS_NAMES.get(status, "status 0x%02x" % status), message)
        )
        self.status = status

    @property
    def overloaded(self) -> bool:
        """Admission control refused the request; retry after backoff."""
        return self.status == ST_OVERLOADED

    @property
    def unsupported(self) -> bool:
        return self.status == ST_UNSUPPORTED


class DaemonClient:
    """One blocking connection to an alias daemon's unix socket."""

    def __init__(self, socket_path: str, timeout: Optional[float] = 30.0, *,
                 trace_requests: bool = False, want_cost: bool = False):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        except BaseException:
            self._sock.close()
            raise
        self._closed = False
        # want_cost implies tracing: the cost ride-along only exists on the
        # TRACED frame.
        self._trace = trace_requests or want_cost
        self._want_cost = want_cost
        #: Request id of the most recent round trip (None until the first
        #: traced request).
        self.last_request_id: Optional[str] = None
        #: Parsed cost breakdown of the most recent successful round trip
        #: (None unless ``want_cost`` and the daemon measured one).
        self.last_cost: Optional[dict] = None

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _recv_exactly(self, count: int) -> bytes:
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ConnectionError("daemon closed the connection mid-frame")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _round_trip(self, request: bytes) -> bytes:
        """Send one request frame, return the ``OK`` response payload."""
        if self._closed:
            raise ValueError("client is closed")
        rid = None
        if self._trace:
            rid = os.urandom(8).hex()
            request = protocol.encode_traced(rid, request,
                                             want_cost=self._want_cost)
            self.last_request_id = rid
            self.last_cost = None
        if rid is None:
            body = self._exchange(request)
        else:
            with trace.span("client.request", request_id=rid):
                body = self._exchange(request)
        if rid is not None and self._want_cost:
            status, cost_json, payload = protocol.split_cost_response(body)
            if cost_json:
                self.last_cost = json.loads(cost_json.decode("ascii"))
        else:
            status, payload = protocol.split_response(body)
        if status != ST_OK:
            raise DaemonError(status, payload.decode("utf-8", "replace"))
        return payload

    def _exchange(self, request: bytes) -> bytes:
        self._sock.sendall(protocol.frame(request))
        length = protocol.body_length(self._recv_exactly(4))
        return self._recv_exactly(length)

    # ------------------------------------------------------------------
    # Table 1 queries
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        self._round_trip(protocol.encode_ping())
        return True

    def is_alias(self, p: int, q: int, as_of: Optional[int] = None) -> bool:
        return self.is_alias_batch([(p, q)], as_of=as_of)[0]

    def is_alias_batch(self, pairs: Sequence[Tuple[int, int]],
                       as_of: Optional[int] = None) -> List[bool]:
        if not pairs:
            return []
        request = protocol.encode_is_alias(pairs)
        if as_of is not None:
            request = protocol.encode_query_at(as_of, request)
        payload = self._round_trip(request)
        return protocol.decode_bools(payload, len(pairs))

    def list_aliases(self, p: int, as_of: Optional[int] = None) -> List[int]:
        return self.list_aliases_many([p], as_of=as_of)[0]

    def list_points_to(self, p: int, as_of: Optional[int] = None) -> List[int]:
        return self.points_to_batch([p], as_of=as_of)[0]

    def list_pointed_by(self, obj: int, as_of: Optional[int] = None) -> List[int]:
        return self.pointed_by_batch([obj], as_of=as_of)[0]

    def list_aliases_many(self, pointers: Sequence[int],
                          as_of: Optional[int] = None) -> List[List[int]]:
        return self._list_batch(OP_LIST_ALIASES, pointers, as_of)

    def points_to_batch(self, pointers: Sequence[int],
                        as_of: Optional[int] = None) -> List[List[int]]:
        return self._list_batch(OP_LIST_POINTS_TO, pointers, as_of)

    def pointed_by_batch(self, objects: Sequence[int],
                         as_of: Optional[int] = None) -> List[List[int]]:
        return self._list_batch(OP_LIST_POINTED_BY, objects, as_of)

    def _list_batch(self, op: int, operands: Sequence[int],
                    as_of: Optional[int] = None) -> List[List[int]]:
        if not operands:
            return []
        request = protocol.encode_list(op, operands)
        if as_of is not None:
            request = protocol.encode_query_at(as_of, request)
        payload = self._round_trip(request)
        return protocol.decode_id_lists(payload, len(operands))

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def apply_delta(self, ops: Sequence[Tuple[str, int, int]]) -> int:
        """Apply an edit script (``("+"/"-", pointer, obj)`` triples).

        Accepts a :class:`~repro.delta.DeltaLog` too (it iterates as those
        triples).  Returns the daemon-side count of invalidated cache
        entries.  Raises :class:`DaemonError` (``unsupported``) against a
        pre-fork worker fleet.
        """
        triples = list(ops)
        payload = self._round_trip(protocol.encode_apply_delta(triples))
        return protocol.decode_u32(payload)

    def stats(self) -> dict:
        """The daemon's service stats snapshot as a plain dict."""
        payload = self._round_trip(protocol.encode_stats())
        return json.loads(payload.decode("utf-8"))

    def metrics(self) -> str:
        """The daemon's Prometheus exposition text, over the unix socket.

        The same families the HTTP ``/metrics`` plane serves — this path
        works even when the daemon was started without an HTTP port.
        """
        payload = self._round_trip(protocol.encode_metrics())
        return payload.decode("utf-8")

    def versions(self) -> Tuple[int, int]:
        """The daemon's answerable version range as ``(floor, head)``.

        Any ``as_of=`` between the two (inclusive) is servable; outside it
        the daemon answers ``BAD_REQUEST`` (surfaced as
        :class:`DaemonError`).  The head advances with every effective
        ``apply_delta``.
        """
        payload = self._round_trip(protocol.encode_versions())
        return protocol.decode_version_range(payload)

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["DaemonClient", "DaemonError", "ProtocolError"]
