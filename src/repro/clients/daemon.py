"""A small synchronous client for the alias daemon's unix-socket protocol.

:class:`DaemonClient` speaks the length-prefixed binary frames of
:mod:`repro.daemon.protocol` over one blocking unix-socket connection.
It mirrors the :class:`~repro.serve.AliasService` surface — the four
Table 1 queries in both single and batch form, ``apply_delta``, and
``stats`` — so a caller can swap an in-process service for a remote one
without touching query code.  Batch calls are the point: one frame per
*batch* keeps the per-query wire cost to a few bytes and lets the daemon
pay its batch fast path once.

One client is one connection and is **not** thread-safe (requests are
strictly sequential on the socket); concurrent callers should hold one
client each — connections are cheap, and the daemon multiplexes.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Sequence, Tuple

from ..daemon import protocol
from ..daemon.protocol import (
    OP_LIST_ALIASES,
    OP_LIST_POINTED_BY,
    OP_LIST_POINTS_TO,
    ST_OK,
    ST_OVERLOADED,
    ST_UNSUPPORTED,
    STATUS_NAMES,
    ProtocolError,
)


class DaemonError(RuntimeError):
    """The daemon answered with a non-``OK`` status."""

    def __init__(self, status: int, message: str):
        super().__init__(
            "%s: %s" % (STATUS_NAMES.get(status, "status 0x%02x" % status), message)
        )
        self.status = status

    @property
    def overloaded(self) -> bool:
        """Admission control refused the request; retry after backoff."""
        return self.status == ST_OVERLOADED

    @property
    def unsupported(self) -> bool:
        return self.status == ST_UNSUPPORTED


class DaemonClient:
    """One blocking connection to an alias daemon's unix socket."""

    def __init__(self, socket_path: str, timeout: Optional[float] = 30.0):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        except BaseException:
            self._sock.close()
            raise
        self._closed = False

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _recv_exactly(self, count: int) -> bytes:
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ConnectionError("daemon closed the connection mid-frame")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _round_trip(self, request: bytes) -> bytes:
        """Send one request frame, return the ``OK`` response payload."""
        if self._closed:
            raise ValueError("client is closed")
        self._sock.sendall(protocol.frame(request))
        length = protocol.body_length(self._recv_exactly(4))
        body = self._recv_exactly(length)
        status, payload = protocol.split_response(body)
        if status != ST_OK:
            raise DaemonError(status, payload.decode("utf-8", "replace"))
        return payload

    # ------------------------------------------------------------------
    # Table 1 queries
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        self._round_trip(protocol.encode_ping())
        return True

    def is_alias(self, p: int, q: int, as_of: Optional[int] = None) -> bool:
        return self.is_alias_batch([(p, q)], as_of=as_of)[0]

    def is_alias_batch(self, pairs: Sequence[Tuple[int, int]],
                       as_of: Optional[int] = None) -> List[bool]:
        if not pairs:
            return []
        request = protocol.encode_is_alias(pairs)
        if as_of is not None:
            request = protocol.encode_query_at(as_of, request)
        payload = self._round_trip(request)
        return protocol.decode_bools(payload, len(pairs))

    def list_aliases(self, p: int, as_of: Optional[int] = None) -> List[int]:
        return self.list_aliases_many([p], as_of=as_of)[0]

    def list_points_to(self, p: int, as_of: Optional[int] = None) -> List[int]:
        return self.points_to_batch([p], as_of=as_of)[0]

    def list_pointed_by(self, obj: int, as_of: Optional[int] = None) -> List[int]:
        return self.pointed_by_batch([obj], as_of=as_of)[0]

    def list_aliases_many(self, pointers: Sequence[int],
                          as_of: Optional[int] = None) -> List[List[int]]:
        return self._list_batch(OP_LIST_ALIASES, pointers, as_of)

    def points_to_batch(self, pointers: Sequence[int],
                        as_of: Optional[int] = None) -> List[List[int]]:
        return self._list_batch(OP_LIST_POINTS_TO, pointers, as_of)

    def pointed_by_batch(self, objects: Sequence[int],
                         as_of: Optional[int] = None) -> List[List[int]]:
        return self._list_batch(OP_LIST_POINTED_BY, objects, as_of)

    def _list_batch(self, op: int, operands: Sequence[int],
                    as_of: Optional[int] = None) -> List[List[int]]:
        if not operands:
            return []
        request = protocol.encode_list(op, operands)
        if as_of is not None:
            request = protocol.encode_query_at(as_of, request)
        payload = self._round_trip(request)
        return protocol.decode_id_lists(payload, len(operands))

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def apply_delta(self, ops: Sequence[Tuple[str, int, int]]) -> int:
        """Apply an edit script (``("+"/"-", pointer, obj)`` triples).

        Accepts a :class:`~repro.delta.DeltaLog` too (it iterates as those
        triples).  Returns the daemon-side count of invalidated cache
        entries.  Raises :class:`DaemonError` (``unsupported``) against a
        pre-fork worker fleet.
        """
        triples = list(ops)
        payload = self._round_trip(protocol.encode_apply_delta(triples))
        return protocol.decode_u32(payload)

    def stats(self) -> dict:
        """The daemon's service stats snapshot as a plain dict."""
        import json

        payload = self._round_trip(protocol.encode_stats())
        return json.loads(payload.decode("utf-8"))

    def versions(self) -> Tuple[int, int]:
        """The daemon's answerable version range as ``(floor, head)``.

        Any ``as_of=`` between the two (inclusive) is servable; outside it
        the daemon answers ``BAD_REQUEST`` (surfaced as
        :class:`DaemonError`).  The head advances with every effective
        ``apply_delta``.
        """
        payload = self._round_trip(protocol.encode_versions())
        return protocol.decode_version_range(payload)

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["DaemonClient", "DaemonError", "ProtocolError"]
