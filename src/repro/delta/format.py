"""On-disk DELTA record codec.

A ``PESTRIE3`` image is immutable — its CRC32 trailer covers every byte —
so incremental updates are persisted LSM-style: self-contained, individually
checksummed DELTA records appended *after* the trailer.  The base header's
per-section byte lengths make the base/delta boundary computable without
trusting anything behind it (:func:`repro.core.decoder.base_image_size`),
and each record carries its own CRC32, so the whole chain is verifiable
front to back.

Record layout (all fixed-width integers little-endian)::

    offset 0   magic "PESDELT1"        8 bytes
    offset 8   flags                   1 byte   (bit 0: compact coding;
                                                 other bits reserved, must be 0)
    offset 9   n_insert                uint32
    offset 13  n_delete                uint32
    offset 17  payload length          uint32
    offset 21  payload                 insert facts, then delete facts
    trailer    CRC32                   uint32 over offsets [0, 21 + payload)

The MVCC variant ``PESDELT2`` inserts one epoch word after the flags::

    offset 0   magic "PESDELT2"        8 bytes
    offset 8   flags                   1 byte   (bit 0: compact coding;
                                                 bit 1: compaction watermark;
                                                 other bits reserved, must be 0)
    offset 9   epoch                   uint32  (must be >= 1)
    offset 13  n_insert                uint32
    offset 17  n_delete                uint32
    offset 21  payload length          uint32
    offset 25  payload                 insert facts, then delete facts
    trailer    CRC32                   uint32 over offsets [0, 25 + payload)

The epoch stamps give every record in a chain a durable version number.
Legacy ``PESDELT1`` records carry no stamp; :func:`decode_records` assigns
them implicit epochs ``previous + 1`` in file order, so a pre-MVCC chain
reads as versions ``1..k`` and mixed chains stay well-defined.  Stamped
epochs must be strictly increasing along the chain (an equal or smaller
stamp is corruption, not an opinion).  A *watermark* record (bit 1, legal
only as the first record of a chain, with zero facts) marks the epoch a
compaction folded into the base image: versions at or below it live in
the base, versions strictly below it are gone and must fail loudly.

Each fact is a ``(pointer, object)`` pair.  Within a record both lists are
strictly sorted by ``(pointer, object)`` and disjoint from each other (a
record stores the *net* effect of an edit script — last op per fact wins),
which makes the encoder canonical: the same net edit always produces
identical bytes.  Raw coding stores two ``uint32`` per fact; compact coding
delta-codes the pointer against the previous fact's pointer and stores the
object as a plain varint.

Decoding treats every input as hostile, mirroring the base decoder: counts
are validated against the declared payload length before allocation, the
CRC is checked before the payload is parsed, and every violation raises
:class:`~repro.core.decoder.CorruptFileError` — never a wrong answer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.decoder import CorruptFileError, _Reader, base_image_size
from ..core.encoder import FLAG_COMPACT, MAGIC_DELTA, MAGIC_DELTA2, _encode_ints
from ..core.ioutil import crc32

_U32 = struct.Struct("<I")

#: Record flag bit 1: this (empty) record is a compaction watermark.
FLAG_WATERMARK = 0x02

#: Fixed-size record prefix: magic, flags, n_insert, n_delete, payload length.
_RECORD_HEADER = 8 + 1 + 3 * 4
_RECORD_MIN_SIZE = _RECORD_HEADER + 4
#: PESDELT2 adds the uint32 epoch word between flags and the counts.
_RECORD_HEADER_V2 = _RECORD_HEADER + 4
_RECORD_MIN_SIZE_V2 = _RECORD_HEADER_V2 + 4

Fact = Tuple[int, int]


@dataclass(frozen=True)
class DeltaRecord:
    """One decoded DELTA record: net insertions and deletions, sorted.

    ``epoch`` is the record's version number.  For a stamped (``PESDELT2``)
    record it is the on-disk stamp; for a legacy record decoded through
    :func:`decode_records` it is the implicit file-order epoch, and for a
    single :func:`decode_record` call it is ``None`` (one legacy record in
    isolation has no epoch).  ``stamped`` distinguishes the two so
    re-encoding stays byte-exact.
    """

    inserts: Tuple[Fact, ...]
    deletes: Tuple[Fact, ...]
    compact: bool
    epoch: Optional[int] = None
    stamped: bool = False
    watermark: bool = False

    def __len__(self) -> int:
        return len(self.inserts) + len(self.deletes)


def _check_facts(kind: str, facts: Sequence[Fact]) -> None:
    previous = None
    for fact in facts:
        pointer, obj = fact
        if pointer < 0 or obj < 0 or pointer > 0xFFFFFFFF or obj > 0xFFFFFFFF:
            raise ValueError("%s fact %r outside the uint32 id domain" % (kind, fact))
        if previous is not None and fact <= previous:
            raise ValueError("%s facts must be strictly sorted; %r follows %r"
                             % (kind, fact, previous))
        previous = fact


def _encode_facts(facts: Sequence[Fact], compact: bool) -> bytes:
    if not compact:
        return _encode_ints([value for fact in facts for value in fact], False)
    flat: List[int] = []
    previous_pointer = 0
    for pointer, obj in facts:
        flat.append(pointer - previous_pointer)
        flat.append(obj)
        previous_pointer = pointer
    return _encode_ints(flat, True)


def encode_record(inserts: Iterable[Fact], deletes: Iterable[Fact],
                  compact: bool = False, epoch: Optional[int] = None,
                  watermark: bool = False) -> bytes:
    """Serialise one net edit into a checksummed DELTA record.

    ``inserts``/``deletes`` are ``(pointer, object)`` facts; they are sorted
    here, must be duplicate-free, and must not share a fact (an edit script
    nets to at most one op per fact — see :meth:`repro.delta.DeltaLog.net`).

    With ``epoch=None`` the record is a legacy ``PESDELT1`` (no version
    stamp); a positive ``epoch`` produces the stamped ``PESDELT2`` variant.
    ``watermark=True`` (stamped only) encodes a compaction watermark, which
    must carry no facts.
    """
    ins = sorted(set(inserts))
    dels = sorted(set(deletes))
    _check_facts("insert", ins)
    _check_facts("delete", dels)
    overlap = set(ins) & set(dels)
    if overlap:
        raise ValueError("facts %r are both inserted and deleted in one record"
                         % sorted(overlap))
    if epoch is not None and not 1 <= epoch <= 0xFFFFFFFF:
        raise ValueError("epoch stamp %r outside the positive uint32 domain" % (epoch,))
    if watermark:
        if epoch is None:
            raise ValueError("a watermark record needs an epoch stamp")
        if ins or dels:
            raise ValueError("a watermark record must carry no facts")
    payload = _encode_facts(ins, compact) + _encode_facts(dels, compact)
    flags = FLAG_COMPACT if compact else 0
    if epoch is None:
        head = [MAGIC_DELTA, bytes([flags])]
    else:
        if watermark:
            flags |= FLAG_WATERMARK
        head = [MAGIC_DELTA2, bytes([flags]), _U32.pack(epoch)]
    body = b"".join(head + [
        _U32.pack(len(ins)),
        _U32.pack(len(dels)),
        _U32.pack(len(payload)),
        payload,
    ])
    return body + _U32.pack(crc32(body))


def _decode_fact_list(reader: _Reader, count: int, compact: bool,
                      n_pointers: int, n_objects: int, kind: str) -> Tuple[Fact, ...]:
    facts: List[Fact] = []
    previous: Fact = (-1, -1)
    previous_pointer = 0
    for _ in range(count):
        if compact:
            pointer = previous_pointer + reader.read_int()
            obj = reader.read_int()
            previous_pointer = pointer
        else:
            pointer = reader.read_u32()
            obj = reader.read_u32()
        if pointer >= n_pointers:
            raise CorruptFileError(
                "delta %s pointer %d outside base range [0, %d)" % (kind, pointer, n_pointers)
            )
        if obj >= n_objects:
            raise CorruptFileError(
                "delta %s object %d outside base range [0, %d)" % (kind, obj, n_objects)
            )
        fact = (pointer, obj)
        if fact <= previous:
            raise CorruptFileError(
                "delta %s facts not strictly sorted at %r" % (kind, fact)
            )
        previous = fact
        facts.append(fact)
    return tuple(facts)


def decode_record(data: bytes, offset: int, n_pointers: int,
                  n_objects: int) -> Tuple[DeltaRecord, int]:
    """Decode one DELTA record at ``offset``; return it and the next offset.

    Both the legacy ``PESDELT1`` and the stamped ``PESDELT2`` layouts are
    accepted; a legacy record comes back with ``epoch=None`` (its implicit
    epoch is a chain property, assigned by :func:`decode_records`).
    """
    remaining = len(data) - offset
    if remaining < _RECORD_MIN_SIZE:
        raise CorruptFileError(
            "truncated delta record at offset %d (%d bytes, minimum is %d)"
            % (offset, remaining, _RECORD_MIN_SIZE)
        )
    magic = bytes(data[offset : offset + 8])
    if magic == MAGIC_DELTA:
        stamped = False
        header_size = _RECORD_HEADER
    elif magic == MAGIC_DELTA2:
        stamped = True
        header_size = _RECORD_HEADER_V2
        if remaining < _RECORD_MIN_SIZE_V2:
            raise CorruptFileError(
                "truncated delta record at offset %d (%d bytes, PESDELT2 "
                "minimum is %d)" % (offset, remaining, _RECORD_MIN_SIZE_V2)
            )
    else:
        raise CorruptFileError(
            "bad delta record magic %r at offset %d" % (magic, offset)
        )
    flags = data[offset + 8]
    legal_flags = FLAG_COMPACT | (FLAG_WATERMARK if stamped else 0)
    if flags & ~legal_flags:
        raise CorruptFileError("unsupported delta record flags 0x%02x" % flags)
    compact = bool(flags & FLAG_COMPACT)
    watermark = bool(flags & FLAG_WATERMARK)
    epoch: Optional[int] = None
    if stamped:
        epoch = _U32.unpack_from(data, offset + 9)[0]
        if epoch == 0:
            raise CorruptFileError("delta record epoch stamp must be positive")
    n_insert, n_delete, payload_length = struct.unpack_from(
        "<3I", data, offset + header_size - 12
    )
    facts = n_insert + n_delete
    if watermark and facts:
        raise CorruptFileError(
            "watermark record declares %d facts; watermarks must be empty" % facts
        )
    # Validate the counts against the declared length before any allocation:
    # raw facts are exactly 8 bytes each, compact facts 2..10 bytes.
    if not compact and payload_length != 8 * facts:
        raise CorruptFileError(
            "delta record declares %d payload bytes for %d raw facts"
            % (payload_length, facts)
        )
    if compact and not 2 * facts <= payload_length <= 10 * facts:
        raise CorruptFileError(
            "delta record declares %d payload bytes for %d compact facts"
            % (payload_length, facts)
        )
    end = offset + header_size + payload_length
    if end + 4 > len(data):
        raise CorruptFileError(
            "delta record payload overruns the file (%d bytes needed, %d present)"
            % (end + 4 - offset, remaining)
        )
    stored = _U32.unpack_from(data, end)[0]
    actual = crc32(data[offset:end])
    if stored != actual:
        raise CorruptFileError(
            "delta record checksum mismatch (stored %08x, computed %08x)" % (stored, actual)
        )
    reader = _Reader(data, compact, offset=offset + header_size, end=end)
    inserts = _decode_fact_list(reader, n_insert, compact, n_pointers, n_objects, "insert")
    deletes = _decode_fact_list(reader, n_delete, compact, n_pointers, n_objects, "delete")
    if reader.offset != end:
        raise CorruptFileError(
            "delta record has %d unread trailing payload bytes" % (end - reader.offset)
        )
    if set(inserts) & set(deletes):
        raise CorruptFileError("delta record inserts and deletes a shared fact")
    record = DeltaRecord(inserts=inserts, deletes=deletes, compact=compact,
                         epoch=epoch, stamped=stamped, watermark=watermark)
    return record, end + 4


def decode_records(data: bytes, offset: int, n_pointers: int,
                   n_objects: int) -> List[DeltaRecord]:
    """Decode the chain of DELTA records from ``offset`` to end of input.

    Every returned record carries a resolved epoch: stamped records keep
    their on-disk stamp (which must strictly increase along the chain),
    legacy records take ``previous + 1`` in file order.  A watermark
    record is legal only at the chain head — compaction always rewrites
    the whole file, so a mid-chain watermark can only be corruption.
    """
    records: List[DeltaRecord] = []
    previous_epoch = 0
    while offset < len(data):
        record, offset = decode_record(data, offset, n_pointers, n_objects)
        if record.watermark and records:
            raise CorruptFileError(
                "watermark record at chain position %d; watermarks are only "
                "legal as the first record" % len(records)
            )
        if record.epoch is None:
            record = replace(record, epoch=previous_epoch + 1)
        elif record.epoch <= previous_epoch:
            raise CorruptFileError(
                "delta chain epoch regression: record stamped %d after epoch %d"
                % (record.epoch, previous_epoch)
            )
        previous_epoch = record.epoch
        records.append(record)
    return records


def chain_floor(records: Sequence[DeltaRecord]) -> int:
    """The compaction watermark of a resolved chain (0 when none).

    Versions strictly below the floor were folded into the base image by a
    compaction and can no longer be materialised; the floor itself *is*
    the base image's state.
    """
    if records and records[0].watermark:
        return records[0].epoch
    return 0


def split_image(data: bytes) -> Tuple[bytes, bytes]:
    """Split a file image into ``(base image, delta tail)``.

    Only ``PESTRIE3`` images can carry a tail (legacy formats have no
    self-delimiting header, so their base is the whole input and the tail is
    empty).  The split is purely structural — use
    :func:`repro.delta.overlay_from_bytes` for a verified decode.
    """
    boundary = base_image_size(data)
    return data[:boundary], data[boundary:]
