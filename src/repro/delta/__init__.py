"""Incremental delta overlay for persistent Pestrie files.

The paper's encoding is write-once: any change to the points-to relation
means a full re-encode.  This package adds the LSM-style middle ground —
checksummed DELTA records appended after the ``PESTRIE3`` CRC trailer, an
in-memory :class:`OverlayIndex` that composes the immutable base with the
net edits, and threshold-triggered compaction back to a clean base image.

Typical flow::

    from repro.delta import DeltaLog, append_delta, load_overlay

    log = DeltaLog().insert(3, 1).delete(0, 2)
    append_delta("facts.pestrie", log)          # microseconds, no re-encode
    index = load_overlay("facts.pestrie")       # answers reflect the edits
    index.is_alias(0, 3)
"""

from .format import (
    DeltaRecord,
    chain_floor,
    decode_record,
    decode_records,
    encode_record,
    split_image,
)
from .log import DELETE, INSERT, DeltaLog
from .overlay import DEFAULT_COMPACTION_RATIO, OverlayIndex
from .persist import (
    AppendResult,
    append_delta,
    compact_file,
    load_overlay,
    overlay_from_bytes,
    tail_to_log,
)
from .versions import (
    VersionedOverlay,
    VersionUnavailableError,
    load_versions,
    versions_from_bytes,
)

__all__ = [
    "AppendResult",
    "DEFAULT_COMPACTION_RATIO",
    "DELETE",
    "DeltaLog",
    "DeltaRecord",
    "INSERT",
    "OverlayIndex",
    "VersionUnavailableError",
    "VersionedOverlay",
    "append_delta",
    "chain_floor",
    "compact_file",
    "decode_record",
    "decode_records",
    "encode_record",
    "load_overlay",
    "load_versions",
    "overlay_from_bytes",
    "split_image",
    "tail_to_log",
    "versions_from_bytes",
]
