"""Durable delta operations: append records to a file, load it back, compact.

The on-disk shape is LSM-like: one immutable ``PESTRIE3`` base image followed
by zero or more checksummed DELTA records (see :mod:`repro.delta.format`).
:func:`append_delta` extends the chain without re-encoding the base — the
whole point of the subsystem — and :func:`compact_file` folds the chain back
into a fresh base image once the overlay outgrows its threshold.

Every path here verifies before it trusts: appending re-checks the base CRC
(never extend a corrupt file) and decodes the existing record chain; loading
decodes the full chain with the hostile-input codec.  Writes go through
:func:`repro.core.ioutil.atomic_write`, so readers of the file never observe
a half-written state.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.decoder import CorruptFileError, decode_bytes, detect_format
from ..core.ioutil import atomic_write, crc32
from ..core.pipeline import persist
from ..obs import get_registry, record_delta_health, trace
from ..core.query import PestrieIndex
from .format import decode_record, decode_records, encode_record, split_image
from .log import DeltaLog
from .overlay import DEFAULT_COMPACTION_RATIO, OverlayIndex


@dataclass(frozen=True)
class AppendResult:
    """What :func:`append_delta` did to the file."""

    #: Bytes appended (0 when the log netted to nothing).
    bytes_appended: int
    #: Total file size after the operation.
    file_size: int
    #: Net delta records now trailing the base (0 after a compaction).
    record_count: int
    #: ``|Δ| / base facts`` after the operation; only computed when an
    #: ``auto_compact_ratio`` was given (it needs a full overlay build).
    delta_ratio: Optional[float]
    #: True when the append tripped the threshold and the file was re-encoded.
    compacted: bool


def _base_dims(base: bytes) -> Tuple[int, int]:
    """``(n_pointers, n_objects)`` from a verified ``PESTRIE3`` base image."""
    n_pointers, n_objects = struct.unpack_from("<2I", base, 9)
    return n_pointers, n_objects


def _verified_base(data: bytes) -> Tuple[bytes, bytes]:
    """Split an image and verify the base is an intact ``PESTRIE3`` file."""
    base, tail = split_image(data)
    version, _compact = detect_format(base)
    if version != 3:
        raise CorruptFileError(
            "delta records require a PESTRIE3 base (file is format v%d); "
            "re-encode it first" % version
        )
    stored = struct.unpack_from("<I", base, len(base) - 4)[0]
    actual = crc32(base[:-4])
    if stored != actual:
        raise CorruptFileError(
            "base image checksum mismatch (stored %08x, computed %08x)"
            % (stored, actual)
        )
    return base, tail


def tail_to_log(data: bytes) -> DeltaLog:
    """Decode a file image's DELTA chain into one composed :class:`DeltaLog`."""
    base, tail = _verified_base(data)
    log = DeltaLog()
    if tail:
        n_pointers, n_objects = _base_dims(base)
        for record in decode_records(data, len(base), n_pointers, n_objects):
            for pointer, obj in record.inserts:
                log.insert(pointer, obj)
            for pointer, obj in record.deletes:
                log.delete(pointer, obj)
    return log


def overlay_from_bytes(data: bytes, mode: str = "ptlist") -> OverlayIndex:
    """Decode a base-plus-delta image into a query-ready :class:`OverlayIndex`.

    A plain image (no trailing records) yields an overlay with an empty
    delta, so callers can use this unconditionally for ``PESTRIE3`` files.
    """
    base_bytes, _tail = _verified_base(data)
    base = PestrieIndex(decode_bytes(base_bytes), mode=mode)
    return OverlayIndex(base, tail_to_log(data))


def load_overlay(path: str, mode: str = "ptlist") -> OverlayIndex:
    """Read a persistent file (with any DELTA tail) into an overlay index."""
    with open(path, "rb") as stream:
        return overlay_from_bytes(stream.read(), mode=mode)


def append_delta(path: str, log: DeltaLog, compact: Optional[bool] = None,
                 auto_compact_ratio: Optional[float] = None) -> AppendResult:
    """Append ``log``'s net effect to the file as one DELTA record.

    The base image and the existing record chain are verified first —
    extending a file we cannot fully decode would launder corruption into
    the chain.  ``compact`` selects the record's integer coding (default:
    whatever the base image uses).  With ``auto_compact_ratio`` set, the
    file is re-encoded in place when the post-append overlay exceeds that
    ``|Δ|/facts`` ratio, resetting the chain to zero records.
    """
    start = time.perf_counter()
    with trace.span("delta.append", path=path, ops=len(log)):
        result = _append_delta(path, log, compact, auto_compact_ratio)
    registry = get_registry()
    if result.bytes_appended or result.compacted:
        registry.counter("repro_delta_appends_total").inc()
        registry.histogram("repro_delta_append_seconds").observe(
            time.perf_counter() - start)
    record_delta_health(result.record_count,
                        net_ops=len(log.net()[0]) + len(log.net()[1]),
                        ratio=result.delta_ratio, trigger=auto_compact_ratio)
    return result


def _append_delta(path: str, log: DeltaLog, compact: Optional[bool],
                  auto_compact_ratio: Optional[float]) -> AppendResult:
    with open(path, "rb") as stream:
        data = stream.read()
    base, tail = _verified_base(data)
    n_pointers, n_objects = _base_dims(base)
    existing = decode_records(data, len(base), n_pointers, n_objects)

    inserts, deletes = log.net()
    if not inserts and not deletes:
        return AppendResult(
            bytes_appended=0,
            file_size=len(data),
            record_count=len(existing),
            delta_ratio=None,
            compacted=False,
        )

    if compact is None:
        compact = bool(base[8] & 0x01)
    record = encode_record(inserts, deletes, compact=compact)
    # Round-trip the fresh record against the base dimensions: out-of-range
    # fact ids are rejected here, before anything touches the disk.
    decode_record(record, 0, n_pointers, n_objects)

    new_image = data + record
    if auto_compact_ratio is None:
        atomic_write(path, new_image)
        return AppendResult(
            bytes_appended=len(record),
            file_size=len(new_image),
            record_count=len(existing) + 1,
            delta_ratio=None,
            compacted=False,
        )

    overlay = overlay_from_bytes(new_image)
    ratio = overlay.delta_ratio()
    if not overlay.needs_compaction(auto_compact_ratio):
        atomic_write(path, new_image)
        return AppendResult(
            bytes_appended=len(record),
            file_size=len(new_image),
            record_count=len(existing) + 1,
            delta_ratio=ratio,
            compacted=False,
        )
    size = _compact_overlay(overlay, path, compact=compact)
    return AppendResult(
        bytes_appended=size - len(data),
        file_size=size,
        record_count=0,
        delta_ratio=0.0,
        compacted=True,
    )


def _compact_overlay(overlay: OverlayIndex, path: str, order: str = "hub",
                     compact: bool = False, version: int = 3) -> int:
    """Re-encode an overlay's effective matrix to ``path``; return the size."""
    start = time.perf_counter()
    with trace.span("delta.compact", path=path, net_ops=overlay.delta_size()):
        size = persist(overlay.materialize(), path, order=order, compact=compact,
                       version=version)
    registry = get_registry()
    registry.counter("repro_delta_compactions_total").inc()
    registry.histogram("repro_delta_compact_seconds").observe(
        time.perf_counter() - start)
    return size


def compact_file(path: str, out: Optional[str] = None, order: str = "hub",
                 compact: Optional[bool] = None, version: int = 3) -> int:
    """Fold a file's DELTA chain into a fresh base image (full re-encode).

    Writes to ``out`` (default: in place), inheriting the base's integer
    coding unless ``compact`` overrides it.  Returns the new file size.
    This is the expensive half of the LSM bargain — amortised by only
    triggering it past :data:`~repro.delta.overlay.DEFAULT_COMPACTION_RATIO`.
    """
    with open(path, "rb") as stream:
        data = stream.read()
    base, _tail = _verified_base(data)
    if compact is None:
        compact = bool(base[8] & 0x01)
    overlay = overlay_from_bytes(data)
    size = _compact_overlay(overlay, out or path, order=order,
                            compact=compact, version=version)
    record_delta_health(0, net_ops=0, ratio=0.0)
    return size
