"""Durable delta operations: append records to a file, load it back, compact.

The on-disk shape is LSM-like: one immutable ``PESTRIE3`` (or ``PESTRIE4``)
base image followed by zero or more checksummed DELTA records (see
:mod:`repro.delta.format`).
:func:`append_delta` extends the chain without re-encoding the base — the
whole point of the subsystem — and :func:`compact_file` folds the chain back
into a fresh base image once the overlay outgrows its threshold.

Every path here verifies before it trusts, through the mmap-backed store
layer: opening a :class:`repro.store.Container` checks the base CRC exactly
once, the existing record chain is decoded with the hostile-input codec
before anything is written, and the parsed header is reused for dimension
checks and compaction decisions instead of re-reading the file.  Appends
are in-place (write + fsync after the chain) — O(record), not O(file); a
crash mid-append can leave a torn final record, which the loader rejects
with :class:`CorruptFileError` exactly like any other corrupt tail.
Compaction rewrites go through :func:`repro.core.ioutil.atomic_write`, so
readers never observe a half-written base image.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..core.decoder import CorruptFileError
from ..core.ioutil import atomic_write
from ..core.pipeline import encode
from ..obs import get_flight_recorder, get_registry, record_delta_health, trace
from ..core.query import PestrieIndex
from .format import decode_record, encode_record
from .log import DeltaLog
from .overlay import DEFAULT_COMPACTION_RATIO, OverlayIndex


@dataclass(frozen=True)
class AppendResult:
    """What :func:`append_delta` did to the file."""

    #: Bytes appended (0 when the log netted to nothing).
    bytes_appended: int
    #: Total file size after the operation.
    file_size: int
    #: Net delta records now trailing the base (0 after a compaction — the
    #: epoch watermark record left behind carries no facts and is not
    #: counted).
    record_count: int
    #: The epoch the appended record was stamped with (the file's new head
    #: version), or the preserved head after a compaction; 0 for a no-op.
    epoch: int
    #: ``|Δ| / base facts`` after the operation; only computed when an
    #: ``auto_compact_ratio`` was given (it needs a full overlay build).
    delta_ratio: Optional[float]
    #: True when the append tripped the threshold and the file was re-encoded.
    compacted: bool


def _delta_container(container) -> None:
    """Reject containers whose base cannot legally carry a DELTA chain."""
    if container.version < 3:
        raise CorruptFileError(
            "delta records require a PESTRIE3/PESTRIE4 base (file is format "
            "v%d); re-encode it first" % container.version
        )


def _records_to_log(records) -> DeltaLog:
    log = DeltaLog()
    for record in records:
        for pointer, obj in record.inserts:
            log.insert(pointer, obj)
        for pointer, obj in record.deletes:
            log.delete(pointer, obj)
    return log


def tail_to_log(data: bytes) -> DeltaLog:
    """Decode a file image's DELTA chain into one composed :class:`DeltaLog`."""
    from ..store import Container

    with Container.from_bytes(data) as container:
        _delta_container(container)
        return _records_to_log(container.tail_records())


def _overlay_from_container(container, mode: str, lazy: bool) -> OverlayIndex:
    from ..core.flat import index_for_container

    _delta_container(container)
    log = _records_to_log(container.tail_records())
    if lazy:
        # PESTRIE4 bases get the zero-copy FlatIndex; the overlay composes
        # over the public query surface, so the flat base needs no shims.
        base = index_for_container(container, mode=mode)
    else:
        base = PestrieIndex(container.payload(), mode=mode)
    return OverlayIndex(base, log)


def overlay_from_bytes(data: bytes, mode: str = "ptlist",
                       lazy: bool = False) -> OverlayIndex:
    """Decode a base-plus-delta image into a query-ready :class:`OverlayIndex`.

    A plain image (no trailing records) yields an overlay with an empty
    delta, so callers can use this unconditionally for ``PESTRIE3`` files.
    The base CRC is verified exactly once, at container open.
    """
    from ..store import Container

    container = Container.from_bytes(data)
    try:
        overlay = _overlay_from_container(container, mode, lazy)
    except BaseException:
        container.close()
        raise
    if not lazy:
        container.close()
    return overlay


def load_overlay(path: str, mode: str = "ptlist", lazy: bool = False) -> OverlayIndex:
    """Read a persistent file (with any DELTA tail) into an overlay index.

    The file is mmap-ped through the store layer.  With ``lazy=True`` the
    base index materialises per structure on first query (the delta edits
    themselves are normalised up front); the mapping stays open — release
    it with ``overlay.base.close()`` when done.  Eager loads release the
    mapping before returning.
    """
    from ..store import Container

    container = Container.open(path)
    try:
        overlay = _overlay_from_container(container, mode, lazy)
    except BaseException:
        container.close()
        raise
    if not lazy:
        container.close()
    return overlay


def append_delta(path: str, log: DeltaLog, compact: Optional[bool] = None,
                 auto_compact_ratio: Optional[float] = None) -> AppendResult:
    """Append ``log``'s net effect to the file as one DELTA record.

    The base image and the existing record chain are verified first —
    extending a file we cannot fully decode would launder corruption into
    the chain.  The record is stamped with the next epoch (chain head plus
    one), so every append is a durable new version answerable via
    :meth:`repro.delta.VersionedOverlay.as_of`.  ``compact`` selects the
    record's integer coding (default: whatever the base image uses).  With
    ``auto_compact_ratio`` set, the file is re-encoded in place when the
    post-append overlay exceeds that ``|Δ|/facts`` ratio, resetting the
    chain to a single watermark record that preserves the epoch head.
    """
    start = time.perf_counter()
    with trace.span("delta.append", path=path, ops=len(log)):
        result = _append_delta(path, log, compact, auto_compact_ratio)
    registry = get_registry()
    if result.bytes_appended or result.compacted:
        registry.counter("repro_delta_appends_total").inc()
        registry.histogram("repro_delta_append_seconds").observe(
            time.perf_counter() - start)
        get_flight_recorder().record(
            "delta_append", path=path, ops=len(log),
            epoch=result.epoch, bytes=result.bytes_appended,
            compacted=result.compacted,
            seconds=round(time.perf_counter() - start, 6))
    record_delta_health(result.record_count,
                        net_ops=len(log.net()[0]) + len(log.net()[1]),
                        ratio=result.delta_ratio, trigger=auto_compact_ratio)
    return result


def _append_delta(path: str, log: DeltaLog, compact: Optional[bool],
                  auto_compact_ratio: Optional[float]) -> AppendResult:
    from ..store import Container

    container = Container.open(path)
    try:
        # One container open = one CRC pass over the base; the parsed header
        # supplies the dimensions and the integer coding from here on.
        _delta_container(container)
        existing = container.tail_records()
        old_size = container.size

        chain = [record for record in existing if not record.watermark]
        head = existing[-1].epoch if existing else 0
        epoch = head + 1

        inserts, deletes = log.net()
        if not inserts and not deletes:
            return AppendResult(
                bytes_appended=0,
                file_size=old_size,
                record_count=len(chain),
                epoch=0,
                delta_ratio=None,
                compacted=False,
            )

        if compact is None:
            compact = container.compact
        # Stamp the record with the next epoch: the append is a new durable
        # version, and the stamp is what lets as_of() find it again.
        record = encode_record(inserts, deletes, compact=compact, epoch=epoch)
        # Round-trip the fresh record against the base dimensions: out-of-range
        # fact ids are rejected here, before anything touches the disk.
        decode_record(record, 0, container.n_pointers, container.n_objects)

        if auto_compact_ratio is None:
            size = container.append_tail(record)
            return AppendResult(
                bytes_appended=len(record),
                file_size=size,
                record_count=len(chain) + 1,
                epoch=epoch,
                delta_ratio=None,
                compacted=False,
            )

        # The compaction decision needs the post-append overlay; build it
        # from the already-open container (base parsed once) plus the chain
        # and the incoming log — no re-read, no second CRC pass.
        combined = _records_to_log(existing)
        for pointer, obj in inserts:
            combined.insert(pointer, obj)
        for pointer, obj in deletes:
            combined.delete(pointer, obj)
        overlay = OverlayIndex(PestrieIndex(container.payload()), combined)
        ratio = overlay.delta_ratio()
        if not overlay.needs_compaction(auto_compact_ratio):
            size = container.append_tail(record)
            return AppendResult(
                bytes_appended=len(record),
                file_size=size,
                record_count=len(chain) + 1,
                epoch=epoch,
                delta_ratio=ratio,
                compacted=False,
            )
        base_version = container.version
        container.close()  # release the mapping before the atomic replace
        # Preserve the base format: auto-compacting a PESTRIE4 file must not
        # silently downgrade it to v3 and lose the flat query sections.
        # The new epoch (the edit that tripped the threshold) becomes the
        # watermark: the compacted base *is* that version's state.
        size = _compact_overlay(overlay, path, compact=compact,
                                version=base_version, watermark=epoch)
        return AppendResult(
            bytes_appended=size - old_size,
            file_size=size,
            record_count=0,
            epoch=epoch,
            delta_ratio=0.0,
            compacted=True,
        )
    finally:
        container.close()


def _compact_overlay(overlay: OverlayIndex, path: str, order: str = "hub",
                     compact: bool = False, version: int = 3,
                     watermark: int = 0) -> int:
    """Re-encode an overlay's effective matrix to ``path``; return the size.

    With ``watermark`` set, a single empty epoch-stamped watermark record
    is written after the fresh base — in the *same* atomic replace, so no
    crash window can produce a compacted file that silently forgot which
    versions it folded away.
    """
    start = time.perf_counter()
    with trace.span("delta.compact", path=path, net_ops=overlay.delta_size()):
        data = encode(overlay.materialize(), order=order, compact=compact,
                      version=version)
        if watermark:
            data += encode_record((), (), compact=compact, epoch=watermark,
                                  watermark=True)
        with trace.span("persist.write", path=path):
            atomic_write(path, data)
        size = len(data)
    registry = get_registry()
    registry.counter("repro_delta_compactions_total").inc()
    registry.histogram("repro_delta_compact_seconds").observe(
        time.perf_counter() - start)
    get_flight_recorder().record(
        "compaction", path=path, net_ops=overlay.delta_size(),
        bytes=size, watermark=watermark,
        seconds=round(time.perf_counter() - start, 6))
    return size


def compact_file(path: str, out: Optional[str] = None, order: str = "hub",
                 compact: Optional[bool] = None,
                 version: Optional[int] = None) -> int:
    """Fold a file's DELTA chain into a fresh base image (full re-encode).

    Writes to ``out`` (default: in place), inheriting the base's format
    version and integer coding unless ``version``/``compact`` override
    them.  When the chain carried any epochs, the rewrite keeps a single
    watermark record after the new base so the epoch head survives:
    ``as_of`` on a pre-compaction version then fails loudly
    (:class:`~repro.delta.versions.VersionUnavailableError`) instead of
    answering from the wrong state.  Returns the new file size.  This is
    the expensive half of the LSM bargain — amortised by only triggering
    it past :data:`~repro.delta.overlay.DEFAULT_COMPACTION_RATIO`.
    """
    from ..store import Container

    with Container.open(path) as container:
        if compact is None:
            compact = container.compact
        if version is None:
            version = container.version
        records = container.tail_records()
        head = records[-1].epoch if records else 0
        overlay = _overlay_from_container(container, "ptlist", lazy=False)
        size = _compact_overlay(overlay, out or path, order=order,
                                compact=compact, version=version,
                                watermark=head)
    record_delta_health(0, net_ops=0, ratio=0.0)
    return size
