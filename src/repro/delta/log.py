"""The in-memory edit script: an ordered log of points-to fact edits.

A :class:`DeltaLog` records *intent* — "pointer p gained object o", "p lost
o" — in arrival order.  Serialisation and overlay composition both work on
the *net* of the log (the last op per fact wins; everything earlier is
shadowed), which is what makes the on-disk record canonical and the overlay
state small.  Validation against a concrete base (is the deleted fact even
present?) happens where the base is known: in
:class:`~repro.delta.overlay.OverlayIndex`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

Fact = Tuple[int, int]

INSERT = "+"
DELETE = "-"

#: One logged edit: ``(op, pointer, object)`` with op ``"+"`` or ``"-"``.
Op = Tuple[str, int, int]


class DeltaLog:
    """An ordered script of points-to fact insertions and deletions."""

    __slots__ = ("_ops",)

    def __init__(self, ops: Iterable[Op] = ()):
        self._ops: List[Op] = []
        for op, pointer, obj in ops:
            self._append(op, pointer, obj)

    def _append(self, op: str, pointer: int, obj: int) -> None:
        if op not in (INSERT, DELETE):
            raise ValueError("unknown delta op %r; expected %r or %r" % (op, INSERT, DELETE))
        if pointer < 0 or obj < 0:
            raise ValueError("delta fact ids must be non-negative, got (%d, %d)"
                             % (pointer, obj))
        self._ops.append((op, pointer, obj))

    def insert(self, pointer: int, obj: int) -> "DeltaLog":
        """Record the fact *pointer may point to obj*; returns self."""
        self._append(INSERT, pointer, obj)
        return self

    def delete(self, pointer: int, obj: int) -> "DeltaLog":
        """Record the retraction of *pointer may point to obj*; returns self."""
        self._append(DELETE, pointer, obj)
        return self

    @classmethod
    def inserting(cls, facts: Iterable[Fact]) -> "DeltaLog":
        return cls((INSERT, pointer, obj) for pointer, obj in facts)

    @classmethod
    def deleting(cls, facts: Iterable[Fact]) -> "DeltaLog":
        return cls((DELETE, pointer, obj) for pointer, obj in facts)

    @property
    def ops(self) -> Tuple[Op, ...]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops)

    def __repr__(self) -> str:
        inserts, deletes = self.net()
        return "DeltaLog(%d ops: +%d -%d net)" % (len(self._ops), len(inserts), len(deletes))

    def net(self) -> Tuple[List[Fact], List[Fact]]:
        """The log's net effect: ``(inserts, deletes)``, each sorted.

        The last op per fact wins — inserting then deleting a fact nets to
        a delete, and vice versa — so the two lists are disjoint, which is
        exactly the shape a DELTA record stores.
        """
        last: Dict[Fact, str] = {}
        for op, pointer, obj in self._ops:
            last[(pointer, obj)] = op
        inserts = sorted(fact for fact, op in last.items() if op == INSERT)
        deletes = sorted(fact for fact, op in last.items() if op == DELETE)
        return inserts, deletes

    def is_no_op(self) -> bool:
        """True when the log nets to nothing at all."""
        inserts, deletes = self.net()
        return not inserts and not deletes
