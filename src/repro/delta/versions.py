"""MVCC over the delta chain: materialise overlay state *as of* any epoch.

A persisted file is an immutable base image plus a chain of epoch-stamped
DELTA records (:mod:`repro.delta.format`).  Because the base never mutates
and records are append-only, every historical version of the points-to
relation is still in the file — state at epoch ``v`` is exactly the base
plus the prefix of records with ``epoch <= v``.  :class:`VersionedOverlay`
makes that first-class:

* :meth:`~VersionedOverlay.as_of` replays a record prefix into an
  immutable :class:`~repro.delta.overlay.OverlayIndex` snapshot — readers
  pin a snapshot by holding it, writers append behind their backs, and no
  locking beyond the construction lock is ever needed because snapshots
  share the base and never change;
* prefix overlays are built incrementally and cached, so ``as_of(k)``
  after ``as_of(k-1)`` costs one :meth:`OverlayIndex.extend`, not a
  replay from scratch;
* :meth:`~VersionedOverlay.diff` compares two versions touching only the
  pointers the intervening records dirtied — never a full id-space scan;
* the compaction watermark is honoured loudly: a version folded into the
  base by compaction raises :class:`VersionUnavailableError`, it never
  silently answers with the wrong state.

The timestamped ``version_link`` chains of flock's ``persistent_ptr`` are
the exemplar: versions form a monotone chain, and a reader's view is
fixed by the link it entered through.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.query import PestrieIndex
from .format import DeltaRecord, chain_floor
from .log import DeltaLog
from .overlay import OverlayIndex

Fact = Tuple[int, int]


class VersionUnavailableError(ValueError):
    """The requested version cannot be materialised from this file.

    Raised for versions strictly below the compaction watermark (their
    records were folded into the base image and destroyed) and for
    versions ahead of the chain head (the file has never seen them).
    Failing loudly here is the MVCC contract: a version query never
    answers from the wrong state.
    """


class VersionedOverlay:
    """Time-travel view over one base index and its resolved record chain.

    ``records`` must come from :func:`repro.delta.format.decode_records`
    (epochs resolved, watermark validated).  The overlay never mutates the
    base or the records; snapshots returned by :meth:`as_of` are immutable
    and stay valid for as long as the caller holds them — including after
    further appends to the underlying file, which this object will not
    see (reload to observe them).
    """

    def __init__(self, base: PestrieIndex, records: Sequence[DeltaRecord]):
        self._base = base
        self._floor = chain_floor(records)
        self._records: Tuple[DeltaRecord, ...] = tuple(
            record for record in records if not record.watermark
        )
        self._epochs: Tuple[int, ...] = tuple(r.epoch for r in self._records)
        self.n_pointers = base.n_pointers
        self.n_objects = base.n_objects
        # Prefix overlays, index k = base + first k records; built lazily
        # and shared (overlays are immutable), guarded by one lock.
        self._prefixes: List[OverlayIndex] = [OverlayIndex(base)]
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def base(self) -> PestrieIndex:
        return self._base

    @property
    def floor(self) -> int:
        """The compaction watermark: the oldest version still answerable."""
        return self._floor

    @property
    def head(self) -> int:
        """The newest version in the chain (the floor when it is empty)."""
        return self._epochs[-1] if self._epochs else self._floor

    @property
    def record_count(self) -> int:
        return len(self._records)

    def versions(self) -> List[int]:
        """Every epoch at which this file's state changed, oldest first.

        The floor leads the list: it is the base image's own version (0
        for a never-compacted file).
        """
        return [self._floor] + list(self._epochs)

    def records(self) -> Tuple[DeltaRecord, ...]:
        return self._records

    def close(self) -> None:
        """Release the base index's backing container, if it has one."""
        close = getattr(self._base, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # Time travel
    # ------------------------------------------------------------------

    def _check_version(self, version: int) -> None:
        if not isinstance(version, int) or isinstance(version, bool):
            raise TypeError("version must be an integer, got %r" % (version,))
        if version < self._floor:
            raise VersionUnavailableError(
                "version %d predates the compaction watermark %d: its delta "
                "records were folded into the base image and cannot be "
                "replayed" % (version, self._floor)
            )
        if version > self.head:
            raise VersionUnavailableError(
                "version %d is ahead of this file's head %d" % (version, self.head)
            )

    def _prefix_length(self, version: int) -> int:
        """How many chain records are visible at ``version``."""
        count = 0
        for epoch in self._epochs:
            if epoch > version:
                break
            count += 1
        return count

    def as_of(self, version: int) -> OverlayIndex:
        """An immutable snapshot of the overlay state at ``version``.

        The snapshot answers all four Table 1 queries as the file did at
        that epoch.  Versions between two record epochs resolve to the
        older record (state only changes at record epochs); versions
        outside ``[floor, head]`` raise :class:`VersionUnavailableError`.
        """
        self._check_version(version)
        return self._prefix_overlay(self._prefix_length(version))

    def head_overlay(self) -> OverlayIndex:
        """The snapshot at :attr:`head` — the file's current state."""
        return self._prefix_overlay(len(self._records))

    def _prefix_overlay(self, count: int) -> OverlayIndex:
        with self._lock:
            while len(self._prefixes) <= count:
                record = self._records[len(self._prefixes) - 1]
                log = DeltaLog()
                for pointer, obj in record.inserts:
                    log.insert(pointer, obj)
                for pointer, obj in record.deletes:
                    log.delete(pointer, obj)
                self._prefixes.append(self._prefixes[-1].extend(log))
            return self._prefixes[count]

    # ------------------------------------------------------------------
    # Cross-version differencing
    # ------------------------------------------------------------------

    def dirty_between(self, v1: int, v2: int) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """``(pointers, objects)`` touched by records between two versions.

        Only ids named by a record with ``min(v1, v2) < epoch <= max(v1,
        v2)`` can differ between the two states — everything else is
        provably identical, which is what keeps version diffs output-sized.
        """
        self._check_version(v1)
        self._check_version(v2)
        low, high = sorted((v1, v2))
        pointers: Set[int] = set()
        objects: Set[int] = set()
        for record in self._records:
            if record.epoch <= low:
                continue
            if record.epoch > high:
                break
            for pointer, obj in record.inserts:
                pointers.add(pointer)
                objects.add(obj)
            for pointer, obj in record.deletes:
                pointers.add(pointer)
                objects.add(obj)
        return frozenset(pointers), frozenset(objects)

    def diff(self, v1: int, v2: int) -> Tuple[List[Fact], List[Fact]]:
        """``(added, removed)`` facts going from version ``v1`` to ``v2``.

        Both lists are sorted.  Cost is proportional to the dirty pointer
        set and its rows, not the id space: the candidate set comes from
        :meth:`dirty_between`, then each candidate row is compared between
        the two snapshots.
        """
        old = self.as_of(v1)
        new = self.as_of(v2)
        pointers, _ = self.dirty_between(v1, v2)
        added: List[Fact] = []
        removed: List[Fact] = []
        for pointer in sorted(pointers):
            old_row = set(old.list_points_to(pointer))
            new_row = set(new.list_points_to(pointer))
            added.extend((pointer, obj) for obj in sorted(new_row - old_row))
            removed.extend((pointer, obj) for obj in sorted(old_row - new_row))
        return added, removed


def _versioned_from_container(container, mode: str, lazy: bool) -> VersionedOverlay:
    from ..core.flat import index_for_container

    from .persist import _delta_container

    _delta_container(container)
    records = container.tail_records()
    if lazy:
        base = index_for_container(container, mode=mode)
    else:
        base = PestrieIndex(container.payload(), mode=mode)
    return VersionedOverlay(base, records)


def versions_from_bytes(data: bytes, mode: str = "ptlist",
                        lazy: bool = False) -> VersionedOverlay:
    """Decode a base-plus-delta image into a :class:`VersionedOverlay`.

    The epoch chain is resolved and validated up front (a hostile tail
    dies here as :class:`~repro.core.decoder.CorruptFileError`); snapshot
    materialisation is deferred to the first :meth:`~VersionedOverlay.as_of`.
    """
    from ..store import Container

    container = Container.from_bytes(data)
    try:
        versioned = _versioned_from_container(container, mode, lazy)
    except BaseException:
        container.close()
        raise
    if not lazy:
        container.close()
    return versioned


def load_versions(path: str, mode: str = "ptlist",
                  lazy: bool = False) -> VersionedOverlay:
    """Open a persistent file (with any DELTA tail) for time-travel queries.

    Mirrors :func:`repro.delta.load_overlay`: the file is mmap-ped through
    the store layer, the base CRC and the whole record chain are verified
    once, and ``lazy=True`` defers base materialisation to first query
    (close with :meth:`VersionedOverlay.close` when done).
    """
    from ..store import Container

    container = Container.open(path)
    try:
        versioned = _versioned_from_container(container, mode, lazy)
    except BaseException:
        container.close()
        raise
    if not lazy:
        container.close()
    return versioned
