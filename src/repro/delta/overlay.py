"""The overlay query structure: immutable base index + in-memory delta.

:class:`OverlayIndex` answers all four Table 1 queries over the *effective*
points-to relation

    eff(p) = (base(p) − deleted(p)) ∪ inserted(p)

without touching the persisted base: the base :class:`PestrieIndex` stays
immutable (and shareable between overlay generations), and the delta is
normalised into two small per-pointer sets.  Normalisation anchors every
edit against the base with the O(log n) membership primitive
``points_to_contains``: inserting a fact the base already has is a no-op
(or un-deletes it), deleting a fact the base lacks is a no-op (or retracts
a pending insert) — so ``inserted(p) ∩ base(p) = ∅`` and
``deleted(p) ⊆ base(p)`` always hold, and the overlay's answer composition
never double-counts.

Query costs, with Δ_p the normalised delta of pointer ``p``:

* ``is_alias(p, q)`` — O(log n + (|Δ_p| + |Δ_q|) log n): base answer, plus
  one membership probe per inserted fact.  Only when the base answer is
  *contested* — the base says alias and a deletion removed a witnessing
  shared object — does it fall back to scanning one base points-to set;
  the compaction threshold keeps that case rare and bounded.
* list queries — output-linear plus |Δ| on the queried row/column.

Instances are immutable after construction: :meth:`extend` composes a
further edit script into a *new* overlay sharing the same base, which is
what lets a live service hot-swap generations under concurrent readers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.query import PestrieIndex
from ..matrix.points_to import PointsToMatrix
from ..obs import get_registry, trace
from .log import DeltaLog

Fact = Tuple[int, int]

#: Default compaction trigger: re-encode once the net delta exceeds this
#: fraction of the base fact count (Section "LSM overlay" of docs/FORMAT.md).
DEFAULT_COMPACTION_RATIO = 0.20

_EMPTY: FrozenSet[int] = frozenset()


class _DeltaState:
    """Normalised delta sets, copy-on-extend."""

    __slots__ = ("inserted", "deleted", "ins_by_obj", "del_by_obj", "base_count")

    def __init__(self):
        self.inserted: Dict[int, Set[int]] = {}
        self.deleted: Dict[int, Set[int]] = {}
        self.ins_by_obj: Dict[int, Set[int]] = {}
        self.del_by_obj: Dict[int, Set[int]] = {}
        #: len(base points-to set), computed once per pointer ever touched.
        self.base_count: Dict[int, int] = {}

    def copy(self) -> "_DeltaState":
        twin = _DeltaState()
        twin.inserted = {p: set(s) for p, s in self.inserted.items()}
        twin.deleted = {p: set(s) for p, s in self.deleted.items()}
        twin.ins_by_obj = {o: set(s) for o, s in self.ins_by_obj.items()}
        twin.del_by_obj = {o: set(s) for o, s in self.del_by_obj.items()}
        twin.base_count = dict(self.base_count)
        return twin

    @staticmethod
    def _add(forward: Dict[int, Set[int]], reverse: Dict[int, Set[int]],
             pointer: int, obj: int) -> None:
        forward.setdefault(pointer, set()).add(obj)
        reverse.setdefault(obj, set()).add(pointer)

    @staticmethod
    def _discard(forward: Dict[int, Set[int]], reverse: Dict[int, Set[int]],
                 pointer: int, obj: int) -> None:
        row = forward.get(pointer)
        if row is not None:
            row.discard(obj)
            if not row:
                del forward[pointer]
        column = reverse.get(obj)
        if column is not None:
            column.discard(pointer)
            if not column:
                del reverse[obj]


class OverlayIndex:
    """Table 1 queries over an immutable base index plus a delta."""

    def __init__(self, base: PestrieIndex, log: Optional[DeltaLog] = None):
        self._base = base
        self.n_pointers = base.n_pointers
        self.n_objects = base.n_objects
        self.n_groups = base.n_groups
        self._state = _DeltaState()
        self._base_facts: Optional[int] = None
        #: Delta generations composed over the base (replay depth: 1 for a
        #: freshly built overlay, +1 per :meth:`extend`).  Cost accounting
        #: reads it to attribute overlay replay depth to a query.
        self.generation = 1
        if log is not None and len(log):
            self._apply(log)

    # ------------------------------------------------------------------
    # Construction / composition
    # ------------------------------------------------------------------

    def _base_row_len(self, pointer: int) -> int:
        count = self._state.base_count.get(pointer)
        if count is None:
            count = len(self._base.list_points_to(pointer))
            self._state.base_count[pointer] = count
        return count

    def _apply(self, log: DeltaLog) -> None:
        """Fold a log into the state, anchoring each net op against the base."""
        state = self._state
        inserts, deletes = log.net()
        with trace.span("overlay.apply", inserts=len(inserts), deletes=len(deletes)):
            self._apply_net(state, inserts, deletes)
        registry = get_registry()
        registry.counter("repro_delta_overlay_extends_total").inc()
        registry.gauge("repro_delta_net_ops").set(self.delta_size())

    def _apply_net(self, state: "_DeltaState", inserts, deletes) -> None:
        for pointer, obj in inserts:
            self._check_pointer(pointer)
            self._check_object(obj)
            self._base_row_len(pointer)
            if obj in state.deleted.get(pointer, _EMPTY):
                state._discard(state.deleted, state.del_by_obj, pointer, obj)
            elif not self._base.points_to_contains(pointer, obj):
                state._add(state.inserted, state.ins_by_obj, pointer, obj)
        for pointer, obj in deletes:
            self._check_pointer(pointer)
            self._check_object(obj)
            self._base_row_len(pointer)
            if obj in state.inserted.get(pointer, _EMPTY):
                state._discard(state.inserted, state.ins_by_obj, pointer, obj)
            elif self._base.points_to_contains(pointer, obj):
                state._add(state.deleted, state.del_by_obj, pointer, obj)

    def extend(self, log: DeltaLog) -> "OverlayIndex":
        """A new overlay over the same base with ``log`` composed on top."""
        twin = OverlayIndex(self._base)
        twin._state = self._state.copy()
        twin._base_facts = self._base_facts
        twin.generation = self.generation + 1
        twin._apply(log)
        return twin

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def base(self) -> PestrieIndex:
        return self._base

    @property
    def mode(self) -> str:
        return self._base.mode

    def close(self) -> None:
        """Release the base index's backing container, if it has one."""
        close = getattr(self._base, "close", None)
        if close is not None:
            close()

    def dirty_pointers(self) -> FrozenSet[int]:
        """Pointers whose effective points-to set differs from the base."""
        return frozenset(self._state.inserted) | frozenset(self._state.deleted)

    def net_delta(self) -> Tuple[List[Fact], List[Fact]]:
        """The normalised delta as sorted ``(inserts, deletes)`` fact lists."""
        inserts = sorted((p, o) for p, row in self._state.inserted.items() for o in row)
        deletes = sorted((p, o) for p, row in self._state.deleted.items() for o in row)
        return inserts, deletes

    def delta_size(self) -> int:
        """Net delta ops currently overlaid on the base."""
        return (sum(len(row) for row in self._state.inserted.values())
                + sum(len(row) for row in self._state.deleted.values()))

    def base_fact_count(self) -> int:
        """Points-to facts in the base (computed once, O(facts))."""
        if self._base_facts is None:
            self._base_facts = sum(
                len(self._base.list_points_to(p)) for p in range(self.n_pointers)
            )
        return self._base_facts

    def delta_ratio(self) -> float:
        """``|Δ| / base facts`` — the compaction trigger metric."""
        return self.delta_size() / max(1, self.base_fact_count())

    def needs_compaction(self, ratio: float = DEFAULT_COMPACTION_RATIO) -> bool:
        """True once the overlay outgrew the configured delta ratio."""
        if ratio < 0:
            raise ValueError("compaction ratio must be non-negative")
        return self.delta_size() > 0 and self.delta_ratio() > ratio

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _check_pointer(self, pointer: int) -> None:
        if not 0 <= pointer < self.n_pointers:
            raise IndexError(
                "pointer id %d out of range [0, %d)" % (pointer, self.n_pointers)
            )

    def _check_object(self, obj: int) -> None:
        if not 0 <= obj < self.n_objects:
            raise IndexError("object id %d out of range [0, %d)" % (obj, self.n_objects))

    def _is_dirty(self, pointer: int) -> bool:
        return pointer in self._state.inserted or pointer in self._state.deleted

    def _eff_count(self, pointer: int) -> int:
        state = self._state
        return (self._base_row_len(pointer)
                - len(state.deleted.get(pointer, _EMPTY))
                + len(state.inserted.get(pointer, _EMPTY)))

    def points_to_contains(self, pointer: int, obj: int) -> bool:
        """Membership in the *effective* points-to set."""
        self._check_pointer(pointer)
        self._check_object(obj)
        state = self._state
        if obj in state.inserted.get(pointer, _EMPTY):
            return True
        if obj in state.deleted.get(pointer, _EMPTY):
            return False
        return self._base.points_to_contains(pointer, obj)

    # ------------------------------------------------------------------
    # Table 1 queries
    # ------------------------------------------------------------------

    def is_alias(self, p: int, q: int) -> bool:
        """Effective IsAlias: do ``eff(p)`` and ``eff(q)`` intersect?"""
        self._check_pointer(p)
        self._check_pointer(q)
        dirty_p = self._is_dirty(p)
        dirty_q = self._is_dirty(q)
        if not dirty_p and not dirty_q:
            return self._base.is_alias(p, q)
        if p == q:
            return self._eff_count(p) > 0
        state = self._state
        # Inserted witnesses: any fresh fact of one side in the other's
        # effective set decides immediately.
        for obj in state.inserted.get(p, _EMPTY):
            if self.points_to_contains(q, obj):
                return True
        for obj in state.inserted.get(q, _EMPTY):
            if self.points_to_contains(p, obj):
                return True
        # Remaining possibility: a surviving base-level witness.
        if not self._base.is_alias(p, q):
            return False
        deleted_p = state.deleted.get(p, _EMPTY)
        deleted_q = state.deleted.get(q, _EMPTY)
        if not deleted_p and not deleted_q:
            return True
        # Was any deleted fact actually part of the base intersection?  If
        # not, the base witness survives untouched.
        contested = any(self._base.points_to_contains(q, obj) for obj in deleted_p)
        if not contested:
            contested = any(obj not in deleted_p and self._base.points_to_contains(p, obj)
                            for obj in deleted_q)
        if not contested:
            return True
        # Deletion-contested pair: scan the smaller deleted side's base row.
        # Rare by construction (compaction bounds |Δ|), and bounded by one
        # points-to set.  Counted because a growing rate of these scans is
        # the first sign an overlay has outlived its compaction budget.
        get_registry().counter("repro_delta_contested_scans_total").inc()
        if deleted_p and (not deleted_q or self._base_row_len(p) <= self._base_row_len(q)):
            side, other, side_deleted = p, q, deleted_p
        else:
            side, other, side_deleted = q, p, deleted_q
        other_deleted = state.deleted.get(other, _EMPTY)
        for obj in self._base.list_points_to(side):
            if obj in side_deleted or obj in other_deleted:
                continue
            if self._base.points_to_contains(other, obj):
                return True
        return False

    def is_alias_batch(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        """Batched IsAlias: clean pairs ride the base's column-sorted path."""
        results = [False] * len(pairs)
        clean: List[Tuple[int, int, int]] = []
        for position, (p, q) in enumerate(pairs):
            self._check_pointer(p)
            self._check_pointer(q)
            if self._is_dirty(p) or self._is_dirty(q):
                results[position] = self.is_alias(p, q)
            else:
                clean.append((position, p, q))
        if clean:
            answers = self._base.is_alias_batch([(p, q) for _, p, q in clean])
            for (position, _, _), answer in zip(clean, answers):
                results[position] = answer
        return results

    def column_of(self, pointer: int) -> Optional[int]:
        """The base ptList column — still the right batching sort key."""
        return self._base.column_of(pointer)

    def list_points_to(self, p: int) -> List[int]:
        self._check_pointer(p)
        if not self._is_dirty(p):
            return self._base.list_points_to(p)
        state = self._state
        deleted = state.deleted.get(p, _EMPTY)
        result = [obj for obj in self._base.list_points_to(p) if obj not in deleted]
        result.extend(sorted(state.inserted.get(p, _EMPTY)))
        return result

    def list_pointed_by(self, obj: int) -> List[int]:
        self._check_object(obj)
        state = self._state
        dropped = state.del_by_obj.get(obj, _EMPTY)
        result = [p for p in self._base.list_pointed_by(obj) if p not in dropped]
        result.extend(sorted(state.ins_by_obj.get(obj, _EMPTY)))
        return result

    def list_aliases(self, p: int) -> List[int]:
        """Effective ListAliases: base candidates plus delta-reached ones.

        Candidates beyond the base answer can only be pointers touched by
        the delta or base pointers of an object ``p`` freshly gained; each
        candidate is confirmed with one overlay ``is_alias``.
        """
        self._check_pointer(p)
        candidates: Set[int] = set(self._base.list_aliases(p))
        candidates.update(self.dirty_pointers())
        for obj in self._state.inserted.get(p, _EMPTY):
            candidates.update(self._base.list_pointed_by(obj))
            candidates.update(self._state.ins_by_obj.get(obj, _EMPTY))
        candidates.discard(p)
        return [q for q in sorted(candidates) if self.is_alias(p, q)]

    # ------------------------------------------------------------------
    # Bulk reconstruction
    # ------------------------------------------------------------------

    def materialize(self) -> PointsToMatrix:
        """The effective points-to matrix (compaction input and test oracle)."""
        matrix = self._base.materialize()
        for pointer, row in self._state.deleted.items():
            for obj in row:
                matrix.rows[pointer].discard(obj)
        for pointer, row in self._state.inserted.items():
            for obj in row:
                matrix.add(pointer, obj)
        return matrix

    def memory_footprint(self) -> int:
        """Base structure bytes plus the overlay's own dictionaries."""
        import sys

        total = self._base.memory_footprint()
        state = self._state
        for table in (state.inserted, state.deleted, state.ins_by_obj, state.del_by_obj):
            total += sys.getsizeof(table)
            for members in table.values():
                total += sys.getsizeof(members) + 28 * len(members)
        total += sys.getsizeof(state.base_count) + 2 * 28 * len(state.base_count)
        return total
