"""End-to-end Pestrie pipeline: matrix → persistent file → query index.

This is the facade most users want: :func:`persist` turns a points-to
matrix into a persistent file, :func:`load_index` turns a persistent file
into a query structure, and :func:`encode`/:func:`index_from_bytes` are the
in-memory equivalents.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..matrix.points_to import PointsToMatrix
from ..obs import trace
from .builder import build_pestrie
from .decoder import decode_bytes, load_payload
from .encoder import DEFAULT_VERSION
from .intervals import assign_intervals
from .query import PestrieIndex
from .rectangles import RectangleSet, generate_rectangles
from .structure import Pestrie


def build_labeled_pestrie(
    matrix: PointsToMatrix,
    order: str = "hub",
    seed: Optional[int] = None,
    explicit_order: Optional[Sequence[int]] = None,
) -> Pestrie:
    """Construct a Pestrie and assign its interval labels."""
    pestrie = build_pestrie(matrix, order=order, seed=seed, explicit_order=explicit_order)
    with trace.span("build.intervals", groups=len(pestrie.groups)):
        assign_intervals(pestrie)
    return pestrie


def encode(
    matrix: PointsToMatrix,
    order: str = "hub",
    seed: Optional[int] = None,
    compact: bool = False,
    explicit_order: Optional[Sequence[int]] = None,
    version: int = DEFAULT_VERSION,
    jobs: Optional[int] = None,
) -> bytes:
    """Encode a matrix straight to persistent-file bytes.

    Runs the staged build pipeline (``repro.core.stages``); ``jobs`` > 1
    fans the parallel stages out over that many worker processes, with
    output byte-identical to the serial run.
    """
    from .stages import run_pipeline  # deferred: stages builds on this layer

    with trace.span("encode", pointers=matrix.n_pointers, objects=matrix.n_objects):
        return run_pipeline(matrix, order=order, seed=seed,
                            explicit_order=explicit_order, compact=compact,
                            version=version, jobs=jobs)


def persist(
    matrix: PointsToMatrix,
    path: str,
    order: str = "hub",
    seed: Optional[int] = None,
    compact: bool = False,
    explicit_order: Optional[Sequence[int]] = None,
    version: int = DEFAULT_VERSION,
    jobs: Optional[int] = None,
) -> int:
    """Encode ``matrix`` and write the persistent file; return its size."""
    from .ioutil import atomic_write
    from .stages import run_pipeline  # deferred: stages builds on this layer

    with trace.span("persist", pointers=matrix.n_pointers, objects=matrix.n_objects):
        payload = run_pipeline(matrix, order=order, seed=seed,
                               explicit_order=explicit_order, compact=compact,
                               version=version, jobs=jobs)
        with trace.span("persist.write", path=path):
            atomic_write(path, payload)
            return len(payload)


def index_from_bytes(data: bytes, mode: str = "ptlist",
                     lazy: bool = False) -> PestrieIndex:
    """Decode persistent-file bytes into a query index.

    ``mode="segment"`` builds the low-memory segment-tree structure
    instead of the per-column rectangle lists (see :class:`PestrieIndex`).
    ``lazy=True`` validates only the container skeleton (header, table of
    contents, CRC) and defers section parsing and structure builds to the
    first query that needs them; on a ``PESTRIE4`` image the lazy path is
    the zero-copy :class:`repro.core.flat.FlatIndex`, which never rebuilds
    sections at all.
    """
    from ..store import Container  # deferred: store builds on core
    from .flat import index_for_container

    if lazy:
        return index_for_container(
            Container.from_bytes(data, allow_tail=False), mode=mode
        )
    payload = decode_bytes(data)
    with trace.span("index.build", mode=mode):
        return PestrieIndex(payload, mode=mode)


def load_index(path: str, mode: str = "ptlist", lazy: bool = False) -> PestrieIndex:
    """Load a persistent file from disk into a query index.

    Both flavours go through the mmap-backed store layer: eager loads
    materialise everything before returning (and release the mapping);
    ``lazy=True`` returns a cheap index whose structures build on first
    query — call ``index.close()`` when done with it.
    """
    from ..store import open_index  # deferred: store builds on core

    if lazy:
        return open_index(path, mode=mode)
    payload = load_payload(path)
    with trace.span("index.build", mode=mode):
        return PestrieIndex(payload, mode=mode)


def rectangles_for(
    matrix: PointsToMatrix,
    order: str = "hub",
    seed: Optional[int] = None,
    prune: bool = True,
) -> RectangleSet:
    """Expose the rectangle set for a matrix (ablation/benchmark hook)."""
    pestrie = build_labeled_pestrie(matrix, order=order, seed=seed)
    return generate_rectangles(pestrie, prune=prune)
