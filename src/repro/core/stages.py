"""The staged build pipeline: the encode path as named, testable stages.

The legacy encode path was an implicit call chain (builder → hub →
rectangles → segment tree → encoder glued together in ``pipeline``).  This
module makes every step an explicit :class:`Stage` with a declared
input/output contract over a :class:`BuildContext`, executed by a pluggable
executor:

========== ========================================== ========== =========
stage      contract (inputs → outputs)                parallel   cost
========== ========================================== ========== =========
normalize  matrix → csr, rows_by_object               no         O(facts)
order      csr → object_order                         hub scores O(facts)
trie       rows_by_object, object_order → pestrie     no         O(nm)
intervals  pestrie → pestrie (labelled)               no         O(groups)
rectangles pestrie → candidates, interval_forest      per-origin O(cands)
dedup      candidates, interval_forest → kept         no         O(cands·d)
sections   pestrie, candidates, kept → header,        varint     O(R log R)
           sections [, flat]                          chunks
assemble   header, sections → payload                 no         O(bytes)
========== ========================================== ========== =========

Parallel stages fan out over chunked ``array``-based payloads through
``Executor.map`` and merge results in task order, so the output bytes are
identical for every worker count — ``encode --jobs N`` is byte-for-byte
the serial file.

**Dedup without the segment tree.**  The Theorem 2 corner test is
reformulated over the laminar family of candidate side intervals: every
side is a DFS prefix range ``[I_y, E_child]`` or a full PES block, so any
two sides are nested or disjoint, and same-start sides of one target node
only shrink as later origins add cross edges.  Hence a candidate's corner
is covered by an earlier *kept* rectangle iff some ancestor pair of its two
side intervals was kept before it — a dictionary-membership test over
packed interval-id pairs that needs no tree at all, is an order of
magnitude faster, and provably discards exactly the rectangles the
segment-tree sweep discards (pinned by differential tests).
"""

from __future__ import annotations

import math
import resource
import struct
import sys
import time
from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..matrix.points_to import PointsToMatrix
from ..obs import get_registry, trace
from . import hub
from .builder import build_pestrie_from_rows, resolve_order
from .encoder import (
    ABSENT,
    DEFAULT_VERSION,
    FLAG_COMPACT,
    MAGIC_COMPACT,
    MAGIC_RAW,
    MAGIC_V3,
    MAGIC_V4,
    _write_varint,
    object_timestamps,
    pointer_timestamps,
    validate_version,
)
from .intervals import assign_intervals
from .ioutil import crc32
from .segment_tree import Rect

_U32 = struct.Struct("<I")

#: Rows per varint-encoding task; small enough to balance 16 workers on a
#: 10^5-pointer section, large enough that pickling is noise.
_SECTION_CHUNK_ROWS = 65536


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class SerialExecutor:
    """Run stage tasks inline; the default and the parity reference."""

    jobs = 1

    def map(self, fn: Callable, payloads: Sequence) -> list:
        return [fn(payload) for payload in payloads]

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ProcessExecutor:
    """Chunked fan-out over a ``ProcessPoolExecutor``.

    ``map`` preserves task order, so merges downstream are deterministic
    and the encoded bytes match the serial run exactly.  The pool is
    created lazily (first parallel stage) and must be :meth:`close`-d;
    ``run_pipeline`` owns executors it creates itself.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError("ProcessExecutor needs jobs >= 2, got %r" % jobs)
        self.jobs = jobs
        self._pool = None

    def _ensure(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        return list(self._ensure().map(fn, payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def make_executor(jobs: Optional[int]):
    """``None``/0/1 → serial; N ≥ 2 → a process pool of N workers."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessExecutor(jobs)


def _chunk_bounds(count: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into ≤ ``parts`` near-even ``[a, b)`` bounds."""
    parts = max(1, min(parts, count))
    step = -(-count // parts) if count else 0
    return [(a, min(a + step, count)) for a in range(0, count, step)] if count else []


# ----------------------------------------------------------------------
# Stage framework
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Stage:
    """One named pipeline step with a declared artifact contract."""

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    parallel: bool
    run: Callable[["BuildContext"], None]


class BuildContext:
    """Artifact store threaded through the stages of one encode run."""

    def __init__(
        self,
        matrix: PointsToMatrix,
        *,
        order: str = "hub",
        seed: Optional[int] = None,
        explicit_order: Optional[Sequence[int]] = None,
        compact: bool = False,
        version: int = DEFAULT_VERSION,
        executor=None,
    ):
        self.matrix = matrix
        self.order = order
        self.seed = seed
        self.explicit_order = explicit_order
        self.compact = compact
        self.version = version
        self.executor = executor if executor is not None else SerialExecutor()
        self.artifacts: Dict[str, object] = {}

    def put(self, key: str, value) -> None:
        self.artifacts[key] = value

    def require(self, key: str):
        if key not in self.artifacts:
            raise KeyError("stage input %r missing from the build context" % key)
        return self.artifacts[key]


@dataclass
class StageReport:
    """Wall clock and peak RSS after one stage of one run."""

    name: str
    seconds: float
    peak_rss_kb: int
    items: int = 0


@dataclass
class BuildReport:
    """Per-stage timings of one pipeline run (``bench_scale_growth`` food)."""

    stages: List[StageReport] = field(default_factory=list)
    jobs: int = 1

    def seconds(self, name: str) -> float:
        return sum(entry.seconds for entry in self.stages if entry.name == name)

    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.stages)


# ----------------------------------------------------------------------
# normalize: PointsToMatrix → CSR + pointed-by adjacency
# ----------------------------------------------------------------------


def _stage_normalize(ctx: BuildContext) -> None:
    matrix = ctx.matrix
    row_ptr = array("I", [0])
    cols = array("I")
    rows_of_object: List[List[int]] = [[] for _ in range(matrix.n_objects)]
    append_ptr = row_ptr.append
    append_col = cols.append
    for pointer, row in enumerate(matrix.rows):
        for obj in row:
            append_col(obj)
            rows_of_object[obj].append(pointer)
        append_ptr(len(cols))
    ctx.put("csr", (row_ptr, cols))
    ctx.put("rows_by_object", rows_of_object)


# ----------------------------------------------------------------------
# order: hub scoring (parallel) or the cheap alternatives
# ----------------------------------------------------------------------


def _hub_chunk(payload):
    """Partial hub sums ``Σ |PM[p]|²`` per object, over one pointer chunk."""
    n_objects, row_ptr, cols = payload
    sums = array("q", bytes(8 * n_objects))
    base = row_ptr[0]
    for i in range(len(row_ptr) - 1):
        start, stop = row_ptr[i], row_ptr[i + 1]
        size = stop - start
        if not size:
            continue
        weight = size * size
        for j in range(start - base, stop - base):
            sums[cols[j]] += weight
    return sums


def _stage_order(ctx: BuildContext) -> None:
    matrix = ctx.matrix
    if ctx.explicit_order is not None:
        ctx.put("object_order", hub.validate_order(ctx.explicit_order, matrix.n_objects))
        return
    if ctx.order == "hub":
        row_ptr, cols = ctx.require("csr")
        n_objects = matrix.n_objects
        bounds = _chunk_bounds(matrix.n_pointers, ctx.executor.jobs * 4)
        payloads = [
            (n_objects, row_ptr[a : b + 1], cols[row_ptr[a] : row_ptr[b]])
            for a, b in bounds
        ]
        totals = [0] * n_objects
        for part in ctx.executor.map(_hub_chunk, payloads):
            for obj, value in enumerate(part):
                if value:
                    totals[obj] += value
        # Integer partial sums merge exactly, so sqrt + the id tie-break
        # reproduce hub.hub_order bit-for-bit regardless of chunking.
        degrees = [math.sqrt(total) for total in totals]
        order = sorted(range(n_objects), key=lambda obj: (-degrees[obj], obj))
        ctx.put("object_order", order)
        return
    if ctx.order == "simple":
        rows_of_object = ctx.require("rows_by_object")
        degrees = [len(row) for row in rows_of_object]
        ctx.put("object_order", sorted(range(matrix.n_objects),
                                       key=lambda obj: (-degrees[obj], obj)))
        return
    # random / identity / unknown-name errors: defer to the one resolver.
    ctx.put("object_order", resolve_order(matrix, ctx.order, ctx.seed))


# ----------------------------------------------------------------------
# trie + intervals
# ----------------------------------------------------------------------


def _stage_trie(ctx: BuildContext) -> None:
    matrix = ctx.matrix
    pestrie = build_pestrie_from_rows(
        matrix.n_pointers,
        matrix.n_objects,
        ctx.require("object_order"),
        ctx.require("rows_by_object"),
        order_name=ctx.order if ctx.explicit_order is None else "explicit",
    )
    ctx.put("pestrie", pestrie)


def _stage_intervals(ctx: BuildContext) -> None:
    assign_intervals(ctx.require("pestrie"))


# ----------------------------------------------------------------------
# rectangles: per-origin candidate extraction (parallel)
# ----------------------------------------------------------------------


def _rect_chunk(payload):
    """Candidate rectangles for one chunk of origins, in emission order.

    Returns parallel arrays ``(x1, x2, y1, y2, x_iid, y_iid, case1)``; the
    merge step concatenates chunks in origin order, which reproduces the
    serial emission order exactly.
    """
    pes_lo, pes_hi, pes_iid, edge_ptr, e_lo, e_hi, e_pes, e_iid = payload
    cx1, cx2, cy1, cy2 = array("I"), array("I"), array("I"), array("I")
    cax, cay = array("I"), array("I")
    cflag = array("B")
    for i in range(len(pes_lo)):
        plo, phi, piid = pes_lo[i], pes_hi[i], pes_iid[i]
        start, stop = edge_ptr[i], edge_ptr[i + 1]
        # Case-1: every cross subtree × the full PES block.  The PES block
        # occupies the newest timestamps, so it always sits right of the
        # subtree interval; anything else breaks Theorem 2 reasoning.
        for j in range(start, stop):
            lo, hi = e_lo[j], e_hi[j]
            if hi >= plo:
                raise AssertionError(
                    "paired sub-tree intervals must be disjoint: %r vs %r"
                    % ((lo, hi), (plo, phi))
                )
            cx1.append(lo)
            cx2.append(hi)
            cy1.append(plo)
            cy2.append(phi)
            cax.append(e_iid[j])
            cay.append(piid)
            cflag.append(1)
        # Case-2: cross subtrees of different PESs pair with each other.
        for j in range(start, stop):
            lo_j, hi_j, pes_j, iid_j = e_lo[j], e_hi[j], e_pes[j], e_iid[j]
            for k in range(j + 1, stop):
                if pes_j == e_pes[k]:
                    continue  # internal pair: answered by PES identity
                lo_k, hi_k, iid_k = e_lo[k], e_hi[k], e_iid[k]
                if lo_j > lo_k:
                    a_lo, a_hi, a_id = lo_k, hi_k, iid_k
                    b_lo, b_hi, b_id = lo_j, hi_j, iid_j
                else:
                    a_lo, a_hi, a_id = lo_j, hi_j, iid_j
                    b_lo, b_hi, b_id = lo_k, hi_k, iid_k
                if a_hi >= b_lo:
                    raise AssertionError(
                        "paired sub-tree intervals must be disjoint: %r vs %r"
                        % ((a_lo, a_hi), (b_lo, b_hi))
                    )
                cx1.append(a_lo)
                cx2.append(a_hi)
                cy1.append(b_lo)
                cy2.append(b_hi)
                cax.append(a_id)
                cay.append(b_id)
                cflag.append(0)
    return cx1, cx2, cy1, cy2, cax, cay, cflag


def _stage_rectangles(ctx: BuildContext) -> None:
    pestrie = ctx.require("pestrie")
    if not pestrie.pre_order:
        raise ValueError("interval labels missing; run assign_intervals first")
    pre = pestrie.pre_order
    max_pre = pestrie.max_pre_order
    groups = pestrie.groups
    by_source = pestrie.cross_edges_by_source()

    # Flatten per-origin PES blocks and cross-edge subtree intervals, and
    # intern every distinct side interval of the candidate universe.
    interned: Dict[Tuple[int, int], int] = {}
    universe: List[Tuple[int, int]] = []

    def intern(lo: int, hi: int) -> int:
        key = (lo, hi)
        iid = interned.get(key)
        if iid is None:
            iid = len(universe)
            interned[key] = iid
            universe.append(key)
        return iid

    pes_lo, pes_hi, pes_iid = array("I"), array("I"), array("I")
    edge_ptr = array("I", [0])
    e_lo, e_hi, e_pes, e_iid = array("I"), array("I"), array("I"), array("I")
    for obj in pestrie.object_order:
        origin = pestrie.origin_of_pes(obj)
        edges = by_source.get(origin.id)
        if not edges:
            continue
        block_lo, block_hi = pre[origin.id], max_pre[origin.id]
        pes_lo.append(block_lo)
        pes_hi.append(block_hi)
        pes_iid.append(intern(block_lo, block_hi))
        for edge in edges:
            target = groups[edge.target]
            lo = pre[target.id]
            if edge.xi < len(target.children):
                hi = max_pre[target.children[edge.xi]]
            else:
                hi = lo
            e_lo.append(lo)
            e_hi.append(hi)
            e_pes.append(target.pes)
            e_iid.append(intern(lo, hi))
        edge_ptr.append(len(e_lo))

    # Laminar containment forest over the side-interval universe: sort by
    # (start asc, end desc); a stack walk links each interval to the
    # smallest enclosing one.  Non-nesting overlap cannot occur (every side
    # is a DFS prefix range or a full PES block) and is asserted.
    count = len(universe)
    sorted_ids = sorted(range(count), key=lambda i: (universe[i][0], -universe[i][1]))
    position = [0] * count
    for pos, iid in enumerate(sorted_ids):
        position[iid] = pos
    parent = [-1] * count
    stack: List[int] = []
    for pos, iid in enumerate(sorted_ids):
        lo, hi = universe[iid]
        while stack and universe[sorted_ids[stack[-1]]][1] < lo:
            stack.pop()
        if stack:
            top = universe[sorted_ids[stack[-1]]]
            if top[1] < hi:
                raise AssertionError(
                    "side intervals not laminar: %r vs %r" % (top, (lo, hi))
                )
            parent[pos] = stack[-1]
        stack.append(pos)
    # Ancestor-or-self chains in sorted-position id space.
    chains: List[Tuple[int, ...]] = [()] * count
    for pos in range(count):
        up = parent[pos]
        chains[pos] = (pos,) + chains[up] if up != -1 else (pos,)

    # Rewrite side ids into sorted-position space so chains index directly.
    for arr in (pes_iid, e_iid):
        for i in range(len(arr)):
            arr[i] = position[arr[i]]

    ctx.put("interval_forest", (count, chains))

    bounds = _chunk_bounds(len(pes_lo), ctx.executor.jobs * 4)
    payloads = []
    for a, b in bounds:
        ptr = edge_ptr[a : b + 1]
        base = ptr[0]
        if base:
            ptr = array("I", [value - base for value in ptr])
        payloads.append(
            (
                pes_lo[a:b],
                pes_hi[a:b],
                pes_iid[a:b],
                ptr,
                e_lo[edge_ptr[a] : edge_ptr[b]],
                e_hi[edge_ptr[a] : edge_ptr[b]],
                e_pes[edge_ptr[a] : edge_ptr[b]],
                e_iid[edge_ptr[a] : edge_ptr[b]],
            )
        )
    merged = (array("I"), array("I"), array("I"), array("I"),
              array("I"), array("I"), array("B"))
    for part in ctx.executor.map(_rect_chunk, payloads):
        for target, chunk in zip(merged, part):
            target.extend(chunk)
    ctx.put("candidates", merged)


# ----------------------------------------------------------------------
# dedup: Theorem 2 pruning over the laminar interval forest
# ----------------------------------------------------------------------


def _stage_dedup(ctx: BuildContext) -> None:
    count, chains = ctx.require("interval_forest")
    cx1, cx2, cy1, cy2, cax, cay, cflag = ctx.require("candidates")
    total = len(cax)
    kept = bytearray(total)
    seen: set = set()
    add = seen.add
    # Premultiplied x-chains turn each (x ancestor, y ancestor) pair into
    # one packed dictionary key.
    packed = [tuple(entry * count for entry in chain) for chain in chains]
    kept_total = 0
    case1_total = 0
    index = 0
    for ax, ay, flag in zip(cax, cay, cflag):
        chain_y = chains[ay]
        pruned = False
        for base in packed[ax]:
            for other in chain_y:
                if base + other in seen:
                    pruned = True
                    break
            if pruned:
                break
        if pruned:
            if flag:
                raise AssertionError(
                    "Case-1 rectangle pruned; Theorem 2 reasoning violated"
                )
        else:
            kept[index] = 1
            kept_total += 1
            case1_total += flag
            add(ax * count + ay)
        index += 1
    ctx.put("kept", kept)

    registry = get_registry()
    registry.counter("repro_encode_rectangles_total", case="case1").inc(case1_total)
    registry.counter("repro_encode_rectangles_total", case="case2").inc(
        kept_total - case1_total)
    registry.counter("repro_encode_rect_pruned_total").inc(total - kept_total)
    registry.counter("repro_encode_segment_inserts_total").inc(kept_total)
    registry.counter("repro_encode_segment_probes_total").inc(total)


# ----------------------------------------------------------------------
# sections: bucket, sort, and serialise (varint chunks parallel)
# ----------------------------------------------------------------------


def _varint_chunk(payload):
    """Varint-encode one run of section rows.

    ``width`` is the integers per row; ``delta_lead`` applies the encoder's
    leading-coordinate delta within the section, seeded by ``prev_lead``
    (the lead of the row preceding this chunk).
    """
    flat, width, delta_lead, prev_lead = payload
    out = bytearray()
    if not delta_lead:
        for value in flat:
            _write_varint(out, value)
        return bytes(out)
    for start in range(0, len(flat), width):
        lead = flat[start]
        _write_varint(out, lead - prev_lead)
        for offset in range(1, width):
            _write_varint(out, flat[start + offset] - lead)
        prev_lead = lead
    return bytes(out)


def _encode_values(values, ctx: BuildContext, tasks, section_id, width: int,
                   delta_lead: bool) -> None:
    """Queue one section's integer stream for raw or chunked-varint coding."""
    if not ctx.compact:
        flat = values if isinstance(values, array) else array("I", values)
        if sys.byteorder == "little":
            tasks.append((section_id, None, flat.tobytes()))
        else:
            tasks.append((section_id, None,
                          b"".join(_U32.pack(value) for value in flat)))
        return
    flat = values if isinstance(values, array) else array("I", values)
    rows = len(flat) // width if width else 0
    bounds = _chunk_bounds(rows, ctx.executor.jobs * 2) or [(0, 0)]
    for a, b in bounds:
        prev_lead = flat[(a - 1) * width] if (delta_lead and a) else 0
        tasks.append(
            (section_id,
             (flat[a * width : b * width], width, delta_lead, prev_lead),
             None)
        )


_SHAPE_WIDTH = {"point": 2, "vline": 3, "hline": 3, "rect": 4}
_SHAPES = ("point", "vline", "hline", "rect")


def _stage_sections(ctx: BuildContext) -> None:
    pestrie = ctx.require("pestrie")
    cx1, cx2, cy1, cy2, _cax, _cay, cflag = ctx.require("candidates")
    kept = ctx.require("kept")

    case1 = {shape: [] for shape in _SHAPES}
    case2 = {shape: [] for shape in _SHAPES}
    for i in range(len(kept)):
        if not kept[i]:
            continue
        x1, x2, y1, y2 = cx1[i], cx2[i], cy1[i], cy2[i]
        bucket = case1 if cflag[i] else case2
        if x1 == x2:
            if y1 == y2:
                bucket["point"].append((x1, y1))
            else:
                bucket["vline"].append((x1, y1, y2))
        elif y1 == y2:
            bucket["hline"].append((x1, x2, y1))
        else:
            bucket["rect"].append((x1, x2, y1, y2))
    for buckets in (case1, case2):
        for shape in _SHAPES:
            # Field tuples sort exactly like Rect.as_tuple: degenerate
            # coordinates drop out of the key without changing the order.
            buckets[shape].sort()

    header = [pestrie.n_pointers, pestrie.n_objects, len(pestrie.groups)]
    for shape in _SHAPES:
        header.append(len(case1[shape]))
        header.append(len(case2[shape]))

    pointer_ts = pointer_timestamps(pestrie)
    object_ts = object_timestamps(pestrie)

    tasks: List[tuple] = []  # (section_id, varint payload | None, raw bytes | None)
    _encode_values(array("I", pointer_ts), ctx, tasks, 0, 1, False)
    _encode_values(array("I", object_ts), ctx, tasks, 1, 1, False)
    section_id = 2
    for buckets in (case1, case2):
        for shape in _SHAPES:
            flat = array("I")
            for row in buckets[shape]:
                flat.extend(row)
            _encode_values(flat, ctx, tasks, section_id, _SHAPE_WIDTH[shape], True)
            section_id += 1

    pending = [(i, payload) for i, (_sid, payload, _raw) in enumerate(tasks)
               if payload is not None]
    encoded = ctx.executor.map(_varint_chunk, [payload for _i, payload in pending])
    parts: List[bytes] = [raw if raw is not None else b""
                          for _sid, _payload, raw in tasks]
    for (task_index, _payload), data in zip(pending, encoded):
        parts[task_index] = data
    sections: List[bytes] = [b""] * 10
    for (sid, _payload, _raw), data in zip(tasks, parts):
        sections[sid] += data
    ctx.put("header", header)
    ctx.put("sections", sections)

    if ctx.version == 4:
        from .flat import build_flat_sections

        decode_order = [
            (Rect(x1=row[0], x2=row[0], y1=row[1], y2=row[1])
             if shape == "point" else
             Rect(x1=row[0], x2=row[0], y1=row[1], y2=row[2])
             if shape == "vline" else
             Rect(x1=row[0], x2=row[1], y1=row[2], y2=row[2])
             if shape == "hline" else
             Rect(x1=row[0], x2=row[1], y1=row[2], y2=row[3]), is_case1)
            for buckets, is_case1 in ((case1, True), (case2, False))
            for shape in _SHAPES
            for row in buckets[shape]
        ]
        counts, flat_sections = build_flat_sections(pointer_ts, object_ts,
                                                    decode_order)
        ctx.put("flat", (counts, flat_sections))


# ----------------------------------------------------------------------
# assemble: container framing (magic, flags, lengths, CRC)
# ----------------------------------------------------------------------


def _stage_assemble(ctx: BuildContext) -> None:
    header = ctx.require("header")
    sections = ctx.require("sections")
    header_bytes = b"".join(_U32.pack(value) for value in header)
    if ctx.version < 3:
        magic = MAGIC_COMPACT if ctx.compact else MAGIC_RAW
        ctx.put("payload", b"".join([magic, header_bytes] + sections))
        return
    lengths = b"".join(_U32.pack(len(section)) for section in sections)
    if ctx.version == 4:
        counts, flat_sections = ctx.require("flat")
        body = b"".join(
            [MAGIC_V4, bytes([0]), header_bytes, lengths,
             struct.pack("<4I", *counts)]
            + sections
            + flat_sections
        )
    else:
        body = b"".join(
            [MAGIC_V3, bytes([FLAG_COMPACT if ctx.compact else 0]),
             header_bytes, lengths]
            + sections
        )
    ctx.put("payload", body + _U32.pack(crc32(body)))


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------

ENCODE_STAGES: Tuple[Stage, ...] = (
    Stage("normalize", ("matrix",), ("csr", "rows_by_object"), False, _stage_normalize),
    Stage("order", ("csr", "rows_by_object"), ("object_order",), True, _stage_order),
    Stage("trie", ("rows_by_object", "object_order"), ("pestrie",), False, _stage_trie),
    Stage("intervals", ("pestrie",), (), False, _stage_intervals),
    Stage("rectangles", ("pestrie",), ("candidates", "interval_forest"), True,
          _stage_rectangles),
    Stage("dedup", ("candidates", "interval_forest"), ("kept",), False, _stage_dedup),
    Stage("sections", ("pestrie", "candidates", "kept"), ("header", "sections"), True,
          _stage_sections),
    Stage("assemble", ("header", "sections"), ("payload",), False, _stage_assemble),
)


def run_pipeline(
    matrix: PointsToMatrix,
    *,
    order: str = "hub",
    seed: Optional[int] = None,
    explicit_order: Optional[Sequence[int]] = None,
    compact: bool = False,
    version: int = DEFAULT_VERSION,
    jobs: Optional[int] = None,
    executor=None,
    report: Optional[BuildReport] = None,
) -> bytes:
    """Run the staged encode pipeline; returns the persistent-file bytes.

    The output is byte-identical to the legacy
    ``build → rectangles → PestrieEncoder`` chain for every version/coding,
    and identical across executors and worker counts.  Pass ``report`` to
    collect per-stage wall clock and peak RSS.
    """
    compact = validate_version(version, compact)
    owns_executor = executor is None
    if executor is None:
        executor = make_executor(jobs)
    ctx = BuildContext(
        matrix,
        order=order,
        seed=seed,
        explicit_order=explicit_order,
        compact=compact,
        version=version,
        executor=executor,
    )
    registry = get_registry()
    stage_seconds: Dict[str, float] = {}
    try:
        with trace.span("encode.staged", pointers=matrix.n_pointers,
                        objects=matrix.n_objects, jobs=executor.jobs):
            for stage in ENCODE_STAGES:
                for key in stage.inputs:
                    if key != "matrix":
                        ctx.require(key)
                start = time.perf_counter()
                with trace.span("stage.%s" % stage.name):
                    stage.run(ctx)
                elapsed = time.perf_counter() - start
                stage_seconds[stage.name] = elapsed
                for key in stage.outputs:
                    ctx.require(key)
                registry.histogram("repro_stage_seconds",
                                   stage=stage.name).observe(elapsed)
                if report is not None:
                    report.stages.append(StageReport(
                        name=stage.name,
                        seconds=elapsed,
                        peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                    ))
    finally:
        if owns_executor:
            executor.close()
    if report is not None:
        report.jobs = executor.jobs
    payload = ctx.artifacts["payload"]
    registry.gauge("repro_encode_parallel_jobs").set(executor.jobs)
    registry.counter("repro_encode_runs_total").inc()
    registry.gauge("repro_encode_bytes").set(len(payload))
    registry.histogram("repro_rectangles_seconds").observe(
        stage_seconds.get("rectangles", 0.0) + stage_seconds.get("dedup", 0.0))
    registry.histogram("repro_encode_seconds").observe(
        stage_seconds.get("sections", 0.0) + stage_seconds.get("assemble", 0.0))
    return payload
