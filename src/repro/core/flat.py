"""The zero-copy v4 query engine: Table 1 answers straight from mapped bytes.

``PESTRIE4`` files carry, after the ten classic sections, a set of *flat*
struct-of-arrays sections whose on-disk form **is** the query form — the
persistent/volatile split of the exemplar ``PPtr`` design, applied to a
whole query structure.  Everything the hot queries need is precomputed by
the encoder into fixed-width little-endian arrays:

* the origin table (``origin_ts`` sorted ascending, ``origin_obj`` /
  ``obj_rank`` as mutually inverse permutations) answers PES membership and
  PES block ranges with one array lookup or ``bisect``;
* ``pes_rank`` collapses ``is_alias``'s internal-pair test to two loads and
  a comparison;
* ``sorted_ptr_ts`` / ``sorted_ptr_id`` serve the range-reporting half of
  every list query;
* the column sweep is persisted as slab columns: ``slab_breaks`` (first
  column per slab), ``slab_offsets`` (entry ranges), and the entry columns
  ``ent_y1`` / ``ent_y2`` / ``ent_flags`` sorted by ``y1`` within a slab —
  the same shared-slab structure :class:`~repro.core.query._ColumnSweep`
  builds in memory, minus the Python objects;
* the per-object Case-1 span table (``c1_offsets`` → ``c1_x1``/``c1_x2``)
  serves ``points_to_contains`` and ``list_pointed_by``.

:class:`FlatIndex` answers every Table 1 query by binary-searching
``memoryview`` casts over these sections — no per-section Python list is
ever rebuilt, so open-to-first-answer is bounded by the container's header
validation plus a one-time O(sections) structural check, not by the
rectangle count.  Corrupted bytes cannot reach a query: the container
verifies the CRC32 trailer over the *whole* image (flat sections included)
at open, and the structural invariants the searches rely on (monotone
breaks and offset tables, in-range ranks) are re-checked once before the
first answer, so a forged-but-checksummed image still fails with
:class:`CorruptFileError` instead of mis-answering.
"""

from __future__ import annotations

import sys
import threading
from bisect import bisect_left, bisect_right, insort
from typing import List, Optional, Sequence, Tuple

from ..matrix.points_to import PointsToMatrix
from .decoder import FLAT_SECTION_NAMES, CorruptFileError
from .encoder import ABSENT, _U32

#: ``ent_flags`` bits.
FLAT_CASE1 = 0x01
FLAT_MIRRORED = 0x02

#: Flat sections per ``PESTRIE4`` image (see ``FLAT_SECTION_NAMES``).
N_FLAT_SECTIONS = len(FLAT_SECTION_NAMES)


# ----------------------------------------------------------------------
# Encode-time construction
# ----------------------------------------------------------------------

def _pack_u32(values: Sequence[int]) -> bytes:
    import struct

    return struct.pack("<%dI" % len(values), *values)


def build_flat_sections(pointer_ts: List[int], object_ts: List[int],
                        rects: Sequence[Tuple[object, bool]]):
    """The flat counts and section payloads for one Pestrie.

    ``pointer_ts`` uses the raw :data:`~repro.core.encoder.ABSENT` sentinel;
    ``rects`` are ``(rect, case1)`` pairs in on-disk decode order, so the
    resulting slab entry lists mirror exactly what a lazy in-memory build
    over the decoded sections would produce.  Returns
    ``((n_tracked, n_slabs, n_entries, n_c1), [section_bytes...])`` with the
    sections in :data:`~repro.core.decoder.FLAT_SECTION_NAMES` order.
    """
    n_objects = len(object_ts)

    order = sorted(range(n_objects), key=object_ts.__getitem__)
    origin_ts = [object_ts[obj] for obj in order]
    obj_rank = [0] * n_objects
    for rank, obj in enumerate(order):
        obj_rank[obj] = rank

    pes_rank = [
        ABSENT if ts == ABSENT else bisect_right(origin_ts, ts) - 1
        for ts in pointer_ts
    ]

    tracked = sorted(
        (ts, pointer) for pointer, ts in enumerate(pointer_ts) if ts != ABSENT
    )
    sorted_ptr_ts = [ts for ts, _ in tracked]
    sorted_ptr_id = [pointer for _, pointer in tracked]

    # The event sweep, exactly as the in-memory _ColumnSweep runs it: one
    # forward and one mirrored span per rectangle, slabs between consecutive
    # event coordinates, entries kept sorted by the unique (y1, serial) key.
    events: List[Tuple[int, int, int, int, int, int]] = []
    serial = 0
    for rect, case1 in rects:
        flags = FLAT_CASE1 if case1 else 0
        for x1, x2, y1, y2, entry_flags in (
            (rect.x1, rect.x2, rect.y1, rect.y2, flags),
            (rect.y1, rect.y2, rect.x1, rect.x2, flags | FLAT_MIRRORED),
        ):
            events.append((x1, 0, serial, y1, y2, entry_flags))
            events.append((x2 + 1, 1, serial, y1, y2, entry_flags))
            serial += 1
    events.sort(key=lambda event: event[0])

    slab_breaks: List[int] = []
    slab_offsets: List[int] = [0]
    ent_y1: List[int] = []
    ent_y2: List[int] = []
    ent_flags: List[int] = []
    active: List[Tuple[int, int, int, int]] = []  # (y1, serial, y2, flags)
    index, count = 0, len(events)
    while index < count:
        coordinate = events[index][0]
        while index < count and events[index][0] == coordinate:
            _, is_end, serial, y1, y2, entry_flags = events[index]
            key = (y1, serial, y2, entry_flags)
            if is_end:
                del active[bisect_left(active, key)]
            else:
                insort(active, key)
            index += 1
        slab_breaks.append(coordinate)
        for y1, _serial, y2, entry_flags in active:
            ent_y1.append(y1)
            ent_y2.append(y2)
            ent_flags.append(entry_flags)
        slab_offsets.append(len(ent_y1))

    # Case-1 spans grouped by pointed-to object, sorted within each group.
    obj_at_ts = {ts: obj for obj, ts in enumerate(object_ts)}
    spans_by_obj: List[List[Tuple[int, int]]] = [[] for _ in range(n_objects)]
    for rect, case1 in rects:
        if case1:
            spans_by_obj[obj_at_ts[rect.y1]].append((rect.x1, rect.x2))
    c1_offsets: List[int] = [0]
    c1_x1: List[int] = []
    c1_x2: List[int] = []
    for spans in spans_by_obj:
        spans.sort()
        for x1, x2 in spans:
            c1_x1.append(x1)
            c1_x2.append(x2)
        c1_offsets.append(len(c1_x1))

    counts = (len(sorted_ptr_ts), len(slab_breaks), len(ent_y1), len(c1_x1))
    sections = [
        _pack_u32(origin_ts),
        _pack_u32(order),
        _pack_u32(obj_rank),
        _pack_u32(pes_rank),
        _pack_u32(sorted_ptr_ts),
        _pack_u32(sorted_ptr_id),
        _pack_u32(slab_breaks),
        _pack_u32(slab_offsets),
        _pack_u32(ent_y1),
        _pack_u32(ent_y2),
        bytes(ent_flags),
        _pack_u32(c1_offsets),
        _pack_u32(c1_x1),
        _pack_u32(c1_x2),
    ]
    return counts, sections


# ----------------------------------------------------------------------
# Query-time engine
# ----------------------------------------------------------------------

def flat_supported(container) -> bool:
    """Whether ``container`` can be served by a :class:`FlatIndex`.

    Requires a ``PESTRIE4`` image and a little-endian host (the flat
    sections are read through native ``memoryview.cast`` windows; on the
    rare big-endian host the classic materialising path takes over).
    """
    return getattr(container, "version", 0) == 4 and sys.byteorder == "little"


def index_for_container(container, mode: str = "ptlist"):
    """The right lazy index for ``container``: flat when possible.

    ``PESTRIE4`` containers asked for the default ``ptlist`` structure get
    a zero-copy :class:`FlatIndex`; everything else (legacy versions,
    ``segment`` mode, big-endian hosts) falls back to the materialising
    :class:`~repro.core.query.PestrieIndex`.
    """
    from .query import PestrieIndex  # deferred: query is layered above flat

    if mode == "ptlist" and flat_supported(container):
        return FlatIndex(container)
    return PestrieIndex.from_container(container, mode=mode)


class FlatIndex:
    """Table 1 queries served directly from a mapped ``PESTRIE4`` image.

    Construction takes ``memoryview`` casts over the container's flat
    sections and reads nothing else; the first query pays a one-time
    structural check of the offset tables (O(slabs + objects), no object
    rebuild), after which every query is pure ``bisect``/indexing over the
    mapped arrays.  The public surface matches
    :class:`~repro.core.query.PestrieIndex`, so overlays, shards and the
    alias service compose over it unchanged.

    The container must stay open for the index's lifetime — there is no
    materialised copy to fall back on.  :meth:`close` releases the views
    and closes the container; queries afterwards raise
    :class:`~repro.store.ContainerClosedError`.
    """

    mode = "flat"

    def __init__(self, container):
        if getattr(container, "version", 0) != 4:
            raise ValueError(
                "FlatIndex needs a PESTRIE4 container (file is format v%d)"
                % getattr(container, "version", 0)
            )
        self._container = container
        self._lock = threading.RLock()
        self._closed = False
        self._validated = False
        self.n_pointers = container.n_pointers
        self.n_objects = container.n_objects
        self.n_groups = container.n_groups
        (self._n_tracked, self._n_slabs,
         self._n_entries, self._n_c1) = container.flat_counts

        self._views: List[memoryview] = []
        self._ptr_ts = self._cast(container.section_view(0))
        self._obj_ts = self._cast(container.section_view(1))
        flat = [container.flat_view(i) for i in range(N_FLAT_SECTIONS)]
        (self._origin_ts, self._origin_obj, self._obj_rank, self._pes_rank,
         self._sorted_ptr_ts, self._sorted_ptr_id, self._slab_breaks,
         self._slab_offsets, self._ent_y1, self._ent_y2) = (
            self._cast(view) for view in flat[:10]
        )
        self._ent_flags = self._track(flat[10])
        self._c1_offsets, self._c1_x1, self._c1_x2 = (
            self._cast(view) for view in flat[11:]
        )

    def _track(self, view: memoryview) -> memoryview:
        self._views.append(view)
        return view

    def _cast(self, view: memoryview) -> memoryview:
        self._track(view)
        return self._track(view.cast("I"))

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release every mapped view and close the backing container.

        Idempotent, and — unlike a naive ``closed`` flag — retryable: if
        the container refuses to unmap (``BufferError``, some caller still
        holds a view exported by the container itself), this index is
        already closed for queries (``ContainerClosedError``) but a later
        ``close()`` finishes the job once the last view is released.
        """
        with self._lock:
            if self._closed and self._container.closed:
                return
            # Casts were appended after the byte views they wrap; release
            # them first so no view ever outlives its exporter.
            for view in reversed(self._views):
                view.release()
            self._views = []
            # Mark closed before the container close: even if it raises,
            # our views are gone, so queries must fail cleanly from here on.
            self._closed = True
            self._container.close()

    def _ready(self) -> None:
        if self._closed:
            from ..store import ContainerClosedError

            raise ContainerClosedError("flat index is closed")
        if not self._validated:
            with self._lock:
                if not self._validated:
                    self._validate()
                    self._validated = True

    def _validate(self) -> None:
        """One-time structural check of the search invariants.

        The container already verified the CRC over the whole image, so
        this only has to reject *forged* images whose checksum is valid but
        whose tables would send a binary search out of bounds or into a
        silent wrong answer.
        """
        origin_ts = self._origin_ts.tolist()
        if any(b <= a for a, b in zip(origin_ts, origin_ts[1:])):
            raise CorruptFileError("flat origin timestamps are not strictly increasing")
        if origin_ts and not origin_ts[-1] < self.n_groups:
            raise CorruptFileError("flat origin timestamp outside group range")
        for name, view in (("origin_obj", self._origin_obj),
                           ("obj_rank", self._obj_rank)):
            if any(not value < self.n_objects for value in view.tolist()):
                raise CorruptFileError("flat %s entry outside object range" % name)
        if any(value != ABSENT and not value < self.n_objects
               for value in self._pes_rank.tolist()):
            raise CorruptFileError("flat pes_rank entry outside object range")
        sorted_ts = self._sorted_ptr_ts.tolist()
        if any(b < a for a, b in zip(sorted_ts, sorted_ts[1:])):
            raise CorruptFileError("flat sorted pointer timestamps are unsorted")
        if any(not value < self.n_pointers for value in self._sorted_ptr_id.tolist()):
            raise CorruptFileError("flat sorted pointer id outside pointer range")
        breaks = self._slab_breaks.tolist()
        if any(b <= a for a, b in zip(breaks, breaks[1:])):
            raise CorruptFileError("flat slab breaks are not strictly increasing")
        for name, offsets, limit in (
            ("slab_offsets", self._slab_offsets.tolist(), self._n_entries),
            ("c1_offsets", self._c1_offsets.tolist(), self._n_c1),
        ):
            if offsets[0] != 0 or offsets[-1] != limit:
                raise CorruptFileError("flat %s table does not span its entries" % name)
            if any(b < a for a, b in zip(offsets, offsets[1:])):
                raise CorruptFileError("flat %s table is not monotone" % name)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _check_pointer(self, pointer: int) -> None:
        if not 0 <= pointer < self.n_pointers:
            raise IndexError(
                "pointer id %d out of range [0, %d)" % (pointer, self.n_pointers)
            )

    def _check_object(self, obj: int) -> None:
        if not 0 <= obj < self.n_objects:
            raise IndexError("object id %d out of range [0, %d)" % (obj, self.n_objects))

    def _pointers_in_range(self, lo: int, hi: int) -> List[int]:
        start = bisect_left(self._sorted_ptr_ts, lo)
        stop = bisect_right(self._sorted_ptr_ts, hi)
        return self._sorted_ptr_id[start:stop].tolist()

    def _pes_range_of_rank(self, rank: int) -> Tuple[int, int]:
        """The timestamp block ``[I, next_I)`` of the PES at origin ``rank``."""
        lo = self._origin_ts[rank]
        if rank + 1 < self.n_objects:
            return lo, self._origin_ts[rank + 1] - 1
        return lo, self.n_groups - 1

    def _slab_range(self, column: int) -> Tuple[int, int]:
        """The ``[lo, hi)`` entry range of the slab containing ``column``."""
        slab = bisect_right(self._slab_breaks, column) - 1
        if slab < 0:
            return 0, 0
        return self._slab_offsets[slab], self._slab_offsets[slab + 1]

    def _covers(self, x: int, y: int) -> bool:
        """Whether a slab entry at column ``x`` spans timestamp ``y``."""
        lo, hi = self._slab_range(x)
        index = bisect_right(self._ent_y1, y, lo, hi) - 1
        return index >= lo and self._ent_y2[index] >= y

    def _object_at_origin_ts(self, ts: int) -> int:
        rank = bisect_left(self._origin_ts, ts)
        if rank == self.n_objects or self._origin_ts[rank] != ts:
            raise CorruptFileError(
                "case-1 entry y1=%d is not an object origin timestamp" % ts
            )
        return self._origin_obj[rank]

    def pes_of(self, pointer: int) -> Optional[int]:
        """The PES identifier (object id) of ``pointer``, if tracked."""
        self._ready()
        self._check_pointer(pointer)
        rank = self._pes_rank[pointer]
        return None if rank == ABSENT else self._origin_obj[rank]

    # ------------------------------------------------------------------
    # Table 1 queries
    # ------------------------------------------------------------------

    def is_alias(self, p: int, q: int) -> bool:
        """Decide whether pointers ``p`` and ``q`` may alias — O(log n)."""
        self._ready()
        self._check_pointer(p)
        self._check_pointer(q)
        ts_p = self._ptr_ts[p]
        ts_q = self._ptr_ts[q]
        if ts_p == ABSENT or ts_q == ABSENT:
            return False
        if p == q:
            return True
        if self._pes_rank[p] == self._pes_rank[q]:
            return True  # internal pair
        return self._covers(*((ts_p, ts_q) if ts_p < ts_q else (ts_q, ts_p)))

    def is_alias_batch(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        """Answer many IsAlias queries, amortising the slab lookups."""
        self._ready()
        results = [False] * len(pairs)
        jobs: List[Tuple[int, int, int]] = []
        for position, (p, q) in enumerate(pairs):
            self._check_pointer(p)
            self._check_pointer(q)
            ts_p = self._ptr_ts[p]
            ts_q = self._ptr_ts[q]
            if ts_p == ABSENT or ts_q == ABSENT:
                continue
            if p == q or self._pes_rank[p] == self._pes_rank[q]:
                results[position] = True
                continue
            x, y = (ts_p, ts_q) if ts_p < ts_q else (ts_q, ts_p)
            jobs.append((x, y, position))
        jobs.sort()
        ent_y1, ent_y2 = self._ent_y1, self._ent_y2
        column, lo, hi = -1, 0, 0
        for x, y, position in jobs:
            if x != column:
                lo, hi = self._slab_range(x)
                column = x
            index = bisect_right(ent_y1, y, lo, hi) - 1
            results[position] = index >= lo and ent_y2[index] >= y
        return results

    def column_of(self, pointer: int) -> Optional[int]:
        """The ptList column (pre-order timestamp) of ``pointer``."""
        self._ready()
        self._check_pointer(pointer)
        ts = self._ptr_ts[pointer]
        return None if ts == ABSENT else ts

    def list_aliases(self, p: int) -> List[int]:
        """All pointers aliased to ``p`` — O(answer size)."""
        self._ready()
        self._check_pointer(p)
        ts_p = self._ptr_ts[p]
        if ts_p == ABSENT:
            return []
        result: List[int] = []
        lo, hi = self._pes_range_of_rank(self._pes_rank[p])
        for pointer in self._pointers_in_range(lo, hi):
            if pointer != p:
                result.append(pointer)
        ent_y1, ent_y2 = self._ent_y1, self._ent_y2
        lo, hi = self._slab_range(ts_p)
        for index in range(lo, hi):
            result.extend(self._pointers_in_range(ent_y1[index], ent_y2[index]))
        return result

    def points_to_contains(self, p: int, obj: int) -> bool:
        """Membership test ``obj ∈ points-to(p)`` in O(log n)."""
        self._ready()
        self._check_pointer(p)
        self._check_object(obj)
        ts_p = self._ptr_ts[p]
        if ts_p == ABSENT:
            return False
        if self._pes_rank[p] == self._obj_rank[obj]:
            return True
        lo, hi = self._c1_offsets[obj], self._c1_offsets[obj + 1]
        index = bisect_right(self._c1_x1, ts_p, lo, hi) - 1
        return index >= lo and self._c1_x2[index] >= ts_p

    def list_points_to(self, p: int) -> List[int]:
        """The points-to set of ``p``."""
        self._ready()
        self._check_pointer(p)
        ts_p = self._ptr_ts[p]
        if ts_p == ABSENT:
            return []
        result = [self._origin_obj[self._pes_rank[p]]]
        ent_y1, ent_flags = self._ent_y1, self._ent_flags
        lo, hi = self._slab_range(ts_p)
        for index in range(lo, hi):
            if ent_flags[index] == FLAT_CASE1:  # case-1 and not mirrored
                result.append(self._object_at_origin_ts(ent_y1[index]))
        return result

    def list_pointed_by(self, obj: int) -> List[int]:
        """All pointers that may point to ``obj``."""
        self._ready()
        self._check_object(obj)
        lo, hi = self._pes_range_of_rank(self._obj_rank[obj])
        result = self._pointers_in_range(lo, hi)
        c1_x1, c1_x2 = self._c1_x1, self._c1_x2
        lo, hi = self._c1_offsets[obj], self._c1_offsets[obj + 1]
        for index in range(lo, hi):
            result.extend(self._pointers_in_range(c1_x1[index], c1_x2[index]))
        return result

    def iter_alias_pairs(self):
        """Yield every unordered alias pair ``(p, q)`` with ``p < q`` once.

        Internal pairs stream from the flat PES blocks; cross pairs need the
        raw rectangle table, which is the one structure the flat layout does
        not duplicate — the container materialises it on first use (bulk
        enumeration is not a zero-copy path).
        """
        self._ready()
        for rank in range(self.n_objects):
            lo, hi = self._pes_range_of_rank(rank)
            members = self._pointers_in_range(lo, hi)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    p, q = members[i], members[j]
                    yield (p, q) if p < q else (q, p)
        for rect, _case1 in self._container.rects():
            x_members = self._pointers_in_range(rect.x1, rect.x2)
            y_members = self._pointers_in_range(rect.y1, rect.y2)
            for p in x_members:
                for q in y_members:
                    yield (p, q) if p < q else (q, p)

    # ------------------------------------------------------------------
    # Bulk reconstruction / accounting
    # ------------------------------------------------------------------

    def materialize(self) -> PointsToMatrix:
        """Recover the full points-to matrix ``PM`` from the flat sections."""
        matrix = PointsToMatrix(self.n_pointers, self.n_objects)
        for pointer in range(self.n_pointers):
            for obj in self.list_points_to(pointer):
                matrix.add(pointer, obj)
        return matrix

    def memory_footprint(self) -> int:
        """Bytes of mapped sections the queries read (no heap structures).

        This is the flat layout's Table 7 story: the query structure *is*
        the file, so the footprint is the mapped section bytes — shared
        read-only across processes — rather than per-process heap.
        """
        total = self._ptr_ts.nbytes + self._obj_ts.nbytes + self._ent_flags.nbytes
        for view in (self._origin_ts, self._origin_obj, self._obj_rank,
                     self._pes_rank, self._sorted_ptr_ts, self._sorted_ptr_id,
                     self._slab_breaks, self._slab_offsets, self._ent_y1,
                     self._ent_y2, self._c1_offsets, self._c1_x1, self._c1_x2):
            total += view.nbytes
        return total


# Referenced by the container for byte accounting; re-exported here so the
# flat layout's writer and reader share one definition of the size table.
__all__ = [
    "FLAT_CASE1",
    "FLAT_MIRRORED",
    "FlatIndex",
    "N_FLAT_SECTIONS",
    "build_flat_sections",
    "flat_supported",
    "index_for_container",
]
