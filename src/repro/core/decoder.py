"""Pestrie persistent-file reader (Section 4, step 1).

Decoding restores the pointer/object timestamps and the rectangle list; the
PES identifiers — deliberately dropped by the encoder to keep the file small
— are recovered by sorting the objects by timestamp (which *is* the
construction object order) and binary-searching each pointer's timestamp
into the origin-timestamp array.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .encoder import ABSENT, MAGIC_COMPACT, MAGIC_RAW
from .segment_tree import Rect

_U32 = struct.Struct("<I")

_SHAPES = ("point", "vline", "hline", "rect")
_SHAPE_ARITY = {"point": 2, "vline": 3, "hline": 3, "rect": 4}


@dataclass
class PestriePayload:
    """Everything stored in a persistent file, decoded."""

    n_pointers: int
    n_objects: int
    n_groups: int
    #: Pre-order timestamp per pointer; ``None`` for untracked pointers.
    pointer_ts: List[Optional[int]]
    #: Pre-order timestamp per object (its origin group's timestamp).
    object_ts: List[int]
    #: ``(rect, case1)`` pairs.
    rects: List[Tuple[Rect, bool]]


class CorruptFileError(ValueError):
    """The byte stream is not a well-formed Pestrie persistent file."""


class _Reader:
    def __init__(self, data: bytes, compact: bool):
        self.data = data
        self.offset = 8  # past the magic
        self.compact = compact

    def read_u32(self) -> int:
        if self.offset + 4 > len(self.data):
            raise CorruptFileError("truncated file at offset %d" % self.offset)
        value = _U32.unpack_from(self.data, self.offset)[0]
        self.offset += 4
        return value

    def read_int(self) -> int:
        if not self.compact:
            return self.read_u32()
        shift = 0
        value = 0
        while True:
            if self.offset >= len(self.data):
                raise CorruptFileError("truncated varint at offset %d" % self.offset)
            if shift > 35:
                raise CorruptFileError("overlong varint at offset %d" % self.offset)
            byte = self.data[self.offset]
            self.offset += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def read_ints(self, count: int) -> List[int]:
        return [self.read_int() for _ in range(count)]


def _inflate(shape: str, values: List[int]) -> Rect:
    if shape == "point":
        x, y = values
        return Rect(x1=x, x2=x, y1=y, y2=y)
    if shape == "vline":
        x, y1, y2 = values
        return Rect(x1=x, x2=x, y1=y1, y2=y2)
    if shape == "hline":
        x1, x2, y = values
        return Rect(x1=x1, x2=x2, y1=y, y2=y)
    x1, x2, y1, y2 = values
    return Rect(x1=x1, x2=x2, y1=y1, y2=y2)


def decode_bytes(data: bytes) -> PestriePayload:
    """Parse a persistent file image into a :class:`PestriePayload`."""
    magic = data[:8]
    if magic == MAGIC_RAW:
        compact = False
    elif magic == MAGIC_COMPACT:
        compact = True
    else:
        raise ValueError("not a Pestrie persistent file (bad magic %r)" % magic)

    reader = _Reader(data, compact)
    # The header is raw uint32 in both formats.
    n_pointers = reader.read_u32()
    n_objects = reader.read_u32()
    n_groups = reader.read_u32()
    counts: List[int] = [reader.read_u32() for _ in range(8)]

    raw_pointer_ts = reader.read_ints(n_pointers)
    pointer_ts: List[Optional[int]] = [None if ts == ABSENT else ts for ts in raw_pointer_ts]
    object_ts = reader.read_ints(n_objects)

    rects: List[Tuple[Rect, bool]] = []
    # Header count order: per shape, (case1, case2).  Section order on disk:
    # all case1 sections (by shape), then all case2 sections (by shape).
    per_shape = {shape: (counts[2 * i], counts[2 * i + 1]) for i, shape in enumerate(_SHAPES)}
    for case_index, case1 in ((0, True), (1, False)):
        for shape in _SHAPES:
            arity = _SHAPE_ARITY[shape]
            section_count = per_shape[shape][case_index]
            previous_lead = 0
            for _ in range(section_count):
                values = reader.read_ints(arity)
                if compact:
                    lead = previous_lead + values[0]
                    values = [lead] + [lead + v for v in values[1:]]
                    previous_lead = lead
                rects.append((_inflate(shape, values), case1))

    # Structural validation: timestamps must name real groups and every
    # rectangle must be well-formed (X before Y, within the group range).
    for ts in object_ts:
        if not 0 <= ts < n_groups:
            raise CorruptFileError("object timestamp %d outside group range" % ts)
    for ts in pointer_ts:
        if ts is not None and not 0 <= ts < n_groups:
            raise CorruptFileError("pointer timestamp %d outside group range" % ts)
    for rect, _ in rects:
        if not (0 <= rect.x1 <= rect.x2 < rect.y1 <= rect.y2 < n_groups):
            raise CorruptFileError("malformed rectangle %r" % (rect.as_tuple(),))

    return PestriePayload(
        n_pointers=n_pointers,
        n_objects=n_objects,
        n_groups=n_groups,
        pointer_ts=pointer_ts,
        object_ts=object_ts,
        rects=rects,
    )


def load_payload(path: str) -> PestriePayload:
    """Read and decode a persistent file from disk."""
    with open(path, "rb") as stream:
        return decode_bytes(stream.read())
