"""Pestrie persistent-file reader (Section 4, step 1).

Decoding restores the pointer/object timestamps and the rectangle list; the
PES identifiers — deliberately dropped by the encoder to keep the file small
— are recovered by sorting the objects by timestamp (which *is* the
construction object order) and binary-searching each pointer's timestamp
into the origin-timestamp array.

The reader accepts all three format versions (see ``docs/FORMAT.md``) and
treats every input as hostile: each count is validated against the bytes
actually present *before* anything is allocated, every varint is capped to
the uint32 domain, trailing bytes after the last section are rejected, and
``PESTRIE3`` files additionally carry a CRC32 that is verified before the
header is even parsed.  Malformed input always raises
:class:`CorruptFileError`; it never hangs, crashes with an uncontrolled
exception, or yields a payload that violates the format invariants.
"""

from __future__ import annotations

import os
import struct
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs import get_registry, trace
from .encoder import FLAG_COMPACT, MAGIC_COMPACT, MAGIC_RAW, MAGIC_V3, MAGIC_V4
from .segment_tree import Rect

_U32 = struct.Struct("<I")

_SHAPES = ("point", "vline", "hline", "rect")
_SHAPE_ARITY = {"point": 2, "vline": 3, "hline": 3, "rect": 4}

#: Fixed-size ``PESTRIE3`` prefix: magic, flags byte, 11-int header and ten
#: per-section byte lengths; the file ends with a 4-byte CRC32 trailer.
_V3_HEADER_END = 8 + 1 + 11 * 4 + 10 * 4
_V3_MIN_SIZE = _V3_HEADER_END + 4

#: Fixed-size ``PESTRIE4`` prefix: the ``PESTRIE3`` fields plus four flat
#: counts (tracked pointers, slabs, slab entries, case-1 spans) from which
#: every flat-section size is computable (see :func:`flat_section_sizes`).
_V4_HEADER_END = _V3_HEADER_END + 4 * 4
_V4_MIN_SIZE = _V4_HEADER_END + 4

#: Names of the ``PESTRIE4`` flat sections, in on-disk order.
FLAT_SECTION_NAMES = (
    "origin_ts",
    "origin_obj",
    "obj_rank",
    "pes_rank",
    "sorted_ptr_ts",
    "sorted_ptr_id",
    "slab_breaks",
    "slab_offsets",
    "ent_y1",
    "ent_y2",
    "ent_flags",
    "c1_offsets",
    "c1_x1",
    "c1_x2",
)


def flat_section_sizes(n_pointers: int, n_objects: int,
                       counts: Tuple[int, int, int, int]) -> List[int]:
    """Byte size of every ``PESTRIE4`` flat section, in on-disk order.

    All flat sections are fixed-width little-endian arrays — ``uint32``
    everywhere except ``ent_flags`` (one byte per slab entry) — so the whole
    flat table of contents follows from the header dimensions plus the four
    flat counts ``(n_tracked, n_slabs, n_entries, n_c1_spans)``.
    """
    n_tracked, n_slabs, n_entries, n_c1 = counts
    return [
        4 * n_objects,        # origin_ts: origin timestamps, sorted ascending
        4 * n_objects,        # origin_obj: object id at each origin rank
        4 * n_objects,        # obj_rank: origin rank of each object id
        4 * n_pointers,       # pes_rank: origin rank per pointer (ABSENT if untracked)
        4 * n_tracked,        # sorted_ptr_ts: tracked pointer timestamps, ascending
        4 * n_tracked,        # sorted_ptr_id: pointer ids in timestamp order
        4 * n_slabs,          # slab_breaks: first column of each sweep slab
        4 * (n_slabs + 1),    # slab_offsets: entry-range offsets per slab
        4 * n_entries,        # ent_y1: slab entry y-interval starts
        4 * n_entries,        # ent_y2: slab entry y-interval ends
        n_entries,            # ent_flags: case-1 / mirrored bits per entry
        4 * (n_objects + 1),  # c1_offsets: case-1 span-range offsets per object
        4 * n_c1,             # c1_x1: case-1 span starts
        4 * n_c1,             # c1_x2: case-1 span ends
    ]


@dataclass
class PestriePayload:
    """Everything stored in a persistent file, decoded."""

    n_pointers: int
    n_objects: int
    n_groups: int
    #: Pre-order timestamp per pointer; ``None`` for untracked pointers.
    pointer_ts: List[Optional[int]]
    #: Pre-order timestamp per object (its origin group's timestamp).
    object_ts: List[int]
    #: ``(rect, case1)`` pairs.
    rects: List[Tuple[Rect, bool]]


class CorruptFileError(ValueError):
    """The byte stream is not a well-formed Pestrie persistent file."""


class _Reader:
    """Bounded integer reader over ``data[offset:end)``."""

    def __init__(self, data: bytes, compact: bool, offset: int = 8, end: Optional[int] = None):
        self.data = data
        self.offset = offset
        self.end = len(data) if end is None else end
        self.compact = compact

    def read_u32(self) -> int:
        if self.offset + 4 > self.end:
            raise CorruptFileError("truncated file at offset %d" % self.offset)
        value = _U32.unpack_from(self.data, self.offset)[0]
        self.offset += 4
        return value

    def read_int(self) -> int:
        if not self.compact:
            return self.read_u32()
        shift = 0
        value = 0
        while True:
            if self.offset >= self.end:
                raise CorruptFileError("truncated varint at offset %d" % self.offset)
            # uint32 needs at most five varint bytes (shifts 0..28); a sixth
            # continuation byte can only encode values the raw format cannot.
            if shift > 28:
                raise CorruptFileError("overlong varint at offset %d" % self.offset)
            byte = self.data[self.offset]
            self.offset += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                if value > 0xFFFFFFFF:
                    raise CorruptFileError(
                        "varint exceeds uint32 range at offset %d" % self.offset
                    )
                return value
            shift += 7

    def require(self, count: int) -> None:
        """Fail fast unless ``count`` integers can still fit in the input.

        Called before any bulk read: a corrupted 4-byte count would
        otherwise drive a list allocation of up to 2^32 entries before the
        first truncated-read error fires.
        """
        min_bytes = count if self.compact else 4 * count
        if self.offset + min_bytes > self.end:
            raise CorruptFileError(
                "count %d needs %d bytes but only %d remain at offset %d"
                % (count, min_bytes, self.end - self.offset, self.offset)
            )

    def read_ints(self, count: int) -> List[int]:
        self.require(count)
        return [self.read_int() for _ in range(count)]


def _inflate(shape: str, values: List[int]) -> Rect:
    if shape == "point":
        x, y = values
        return Rect(x1=x, x2=x, y1=y, y2=y)
    if shape == "vline":
        x, y1, y2 = values
        return Rect(x1=x, x2=x, y1=y1, y2=y2)
    if shape == "hline":
        x1, x2, y = values
        return Rect(x1=x1, x2=x2, y1=y, y2=y)
    x1, x2, y1, y2 = values
    return Rect(x1=x1, x2=x2, y1=y1, y2=y2)


def _decode_rect_section(shape: str, case1: bool, values: List[int], compact: bool,
                         rects: List[Tuple[Rect, bool]]) -> None:
    """Turn one flat integer section into inflated ``(rect, case1)`` pairs."""
    arity = _SHAPE_ARITY[shape]
    previous_lead = 0
    for start in range(0, len(values), arity):
        entry = values[start : start + arity]
        if compact:
            lead = previous_lead + entry[0]
            entry = [lead] + [lead + v for v in entry[1:]]
            previous_lead = lead
        rects.append((_inflate(shape, entry), case1))


def _validate_timestamps(n_groups: int, pointer_ts: List[Optional[int]],
                         object_ts: List[int]) -> set:
    """Range/uniqueness checks for the two timestamp sections.

    Returns the set of object origin timestamps — the Case-1 rectangle
    validation (:func:`_validate_rects`) needs it, and the container caches
    it so lazy rectangle materialisation never re-derives it.
    """
    seen_origin = set()
    for ts in object_ts:
        if not 0 <= ts < n_groups:
            raise CorruptFileError("object timestamp %d outside group range" % ts)
        if ts in seen_origin:
            raise CorruptFileError("duplicate object origin timestamp %d" % ts)
        seen_origin.add(ts)
    min_origin = min(object_ts) if object_ts else None
    for ts in pointer_ts:
        if ts is None:
            continue
        if not 0 <= ts < n_groups:
            raise CorruptFileError("pointer timestamp %d outside group range" % ts)
        if min_origin is None or ts < min_origin:
            raise CorruptFileError(
                "pointer timestamp %d precedes every object origin" % ts
            )
    return seen_origin


def _validate_rects(n_groups: int, rects: List[Tuple[Rect, bool]],
                    seen_origin: set) -> None:
    """Shape/range checks for the rectangle list (Case 1 needs the origins)."""
    for rect, case1 in rects:
        if not (0 <= rect.x1 <= rect.x2 < rect.y1 <= rect.y2 < n_groups):
            raise CorruptFileError("malformed rectangle %r" % (rect.as_tuple(),))
        if case1 and rect.y1 not in seen_origin:
            raise CorruptFileError(
                "case-1 rectangle y1=%d is not an object origin timestamp" % rect.y1
            )


def _validate(payload: PestriePayload) -> PestriePayload:
    """Enforce the structural invariants of a well-formed payload.

    Beyond the range checks, cross-consistency matters: the query structure
    recovers PES identifiers by binary search into the origin timestamps and
    maps every Case-1 rectangle's ``Y1`` back to an object, so a payload
    violating those assumptions would crash (or silently mis-answer) at
    query-build time instead of failing cleanly here.
    """
    seen_origin = _validate_timestamps(
        payload.n_groups, payload.pointer_ts, payload.object_ts
    )
    _validate_rects(payload.n_groups, payload.rects, seen_origin)
    return payload


def _section_value_counts(header: List[int]) -> List[int]:
    """Integers stored per section, in on-disk section order."""
    n_pointers, n_objects = header[0], header[1]
    counts = header[3:]
    per_section = [n_pointers, n_objects]
    for case_index in (0, 1):
        for shape_index, shape in enumerate(_SHAPES):
            entries = counts[2 * shape_index + case_index]
            per_section.append(entries * _SHAPE_ARITY[shape])
    return per_section


def base_image_size(data: bytes) -> int:
    """Byte length of the leading persistent image inside ``data``.

    ``PESTRIE3`` headers carry per-section byte lengths, so the size of a
    complete image is computable from its fixed-width prefix without
    trusting anything behind it — which is what lets DELTA records (see
    ``repro.delta``) be appended after the CRC trailer.  Legacy formats are
    never followed by appended records, so their base is the whole input.
    The size is bounds-checked against the bytes actually present; the
    image content is *not* otherwise verified.
    """
    version, _compact = detect_format(data)
    if version < 3:
        return len(data)
    min_size = _V4_MIN_SIZE if version == 4 else _V3_MIN_SIZE
    if len(data) < min_size:
        raise CorruptFileError(
            "truncated file (%d bytes, PESTRIE%d minimum is %d)"
            % (len(data), version, min_size)
        )
    lengths = struct.unpack_from("<10I", data, 9 + 11 * 4)
    size = _V3_HEADER_END + sum(lengths) + 4
    if version == 4:
        n_pointers, n_objects = struct.unpack_from("<2I", data, 9)
        counts = struct.unpack_from("<4I", data, _V3_HEADER_END)
        size += 4 * 4 + sum(flat_section_sizes(n_pointers, n_objects, counts))
    if size > len(data):
        raise CorruptFileError(
            "section lengths add up to %d bytes but the file has %d" % (size, len(data))
        )
    return size


def detect_format(data: bytes) -> Tuple[int, bool]:
    """The ``(version, compact)`` pair a file image claims to be.

    Raises :class:`CorruptFileError` on a short file or unknown magic; the
    claim is *not* otherwise verified — use :func:`decode_bytes` for that.
    """
    if len(data) < 8:
        raise CorruptFileError("truncated file (%d bytes, magic needs 8)" % len(data))
    magic = bytes(data[:8])
    if magic == MAGIC_RAW:
        return 1, False
    if magic == MAGIC_COMPACT:
        return 2, True
    if magic == MAGIC_V3:
        if len(data) < 9:
            raise CorruptFileError("truncated file (PESTRIE3 flags byte missing)")
        return 3, bool(data[8] & FLAG_COMPACT)
    if magic == MAGIC_V4:
        # The flat layout stores raw little-endian arrays only; the flags
        # byte must be zero, which the container enforces at open.
        return 4, False
    raise CorruptFileError("not a Pestrie persistent file (bad magic %r)" % magic)


def _instrumented_decode(supplier, nbytes: int) -> PestriePayload:
    """Run one eager decode under the ``repro_decode_*`` instrumentation.

    ``supplier`` produces a fully validated payload (and is expected to fail
    only with :class:`CorruptFileError`); both the in-memory and the
    mmap-backed decode paths funnel through here so the telemetry contract
    is identical regardless of how the bytes arrived.
    """
    start = time.perf_counter()
    registry = get_registry()
    try:
        with trace.span("decode", bytes=nbytes):
            payload = supplier()
    except CorruptFileError:
        registry.counter("repro_decode_total", result="corrupt").inc()
        registry.gauge("repro_decode_intact").set(0)
        raise
    registry.counter("repro_decode_total", result="ok").inc()
    registry.gauge("repro_decode_intact").set(1)
    registry.gauge("repro_decode_bytes").set(nbytes)
    registry.gauge("repro_decode_rectangles").set(len(payload.rects))
    registry.histogram("repro_decode_seconds").observe(time.perf_counter() - start)
    return payload


def decode_bytes(data: bytes) -> PestriePayload:
    """Parse a persistent file image into a :class:`PestriePayload`.

    A thin eager wrapper over :class:`repro.store.Container`: the container
    validates the skeleton (magic, flags, header, table of contents, CRC)
    and every section is materialised and cross-validated before returning,
    so the result — and every hostile-input outcome — matches the classic
    all-at-once decode.

    The image must be exactly one persistent file: a ``PESTRIE3`` image
    followed by appended DELTA records is rejected here with a pointer at
    the delta-aware loader (``repro.delta.load_overlay``), because silently
    ignoring the records would serve pre-update answers.
    """
    from ..store import Container  # deferred: store builds on this module

    def supplier() -> PestriePayload:
        return Container.from_bytes(data, allow_tail=False).payload()

    return _instrumented_decode(supplier, len(data))


def load_payload(path: str) -> PestriePayload:
    """Read and decode a persistent file from disk (mmap-backed)."""
    from ..store import Container  # deferred: store builds on this module

    nbytes = os.path.getsize(path)

    def supplier() -> PestriePayload:
        with Container.open(path, allow_tail=False) as container:
            return container.payload()

    return _instrumented_decode(supplier, nbytes)
