"""Pestrie construction by row partitioning (Section 3.1).

The builder scans the pointed-by matrix ``PMT`` one object row at a time, in
the chosen object order.  Processing row ``o``:

1. a fresh *origin* group is created holding ``o`` and every pointer of the
   row not yet present in the trie;
2. every existing group ``g`` holding some row pointers is split: the row
   pointers move to a new child of ``g`` (tree edge labelled with ``g``'s
   current tree-edge count) and the origin gains a cross edge to the child
   (ξ = 0) — *unless* the move would empty ``g``, in which case the pointers
   stay put and the origin's cross edge targets ``g`` itself with
   ξ = ``g``'s current tree-edge count (the paper's no-empty-groups rule,
   which is what makes ξ-reachability necessary).

Only non-origin groups can be emptied (objects never move), so cross edges
always target non-origin groups.  The whole pass is ``O(nm)``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..matrix.points_to import PointsToMatrix
from ..obs import get_registry, trace
from . import hub
from .structure import Pestrie

#: Recognised object-order heuristics for :func:`build_pestrie`.
ORDER_CHOICES = ("hub", "simple", "random", "identity")


def resolve_order(
    matrix: PointsToMatrix,
    order: str = "hub",
    seed: Optional[int] = None,
    explicit: Optional[Sequence[int]] = None,
) -> list:
    """Turn an order name (or an explicit permutation) into an object order."""
    if explicit is not None:
        return hub.validate_order(explicit, matrix.n_objects)
    if order == "hub":
        return hub.hub_order(matrix)
    if order == "simple":
        return hub.simple_degree_order(matrix)
    if order == "random":
        return hub.random_order(matrix, seed)
    if order == "identity":
        return hub.identity_order(matrix)
    raise ValueError("unknown object order %r; expected one of %s" % (order, ORDER_CHOICES))


def rows_by_object(matrix: PointsToMatrix) -> list:
    """Pointed-by adjacency: ascending pointer ids per object.

    Equivalent to iterating ``matrix.transpose().rows`` but built with one
    list-append pass over the PM rows — no sparse-bitmap block churn, which
    is what made the transpose the build path's super-linear hot spot at
    10^5+ pointers.
    """
    rows: list = [[] for _ in range(matrix.n_objects)]
    for pointer, row in enumerate(matrix.rows):
        for obj in row:
            rows[obj].append(pointer)
    return rows


def build_pestrie(
    matrix: PointsToMatrix,
    order: str = "hub",
    seed: Optional[int] = None,
    explicit_order: Optional[Sequence[int]] = None,
) -> Pestrie:
    """Construct the Pestrie for ``matrix`` using the given object order.

    ``order`` selects the heuristic (``"hub"`` is the paper's default;
    ``"random"`` is the Figure 7 baseline; ``"identity"`` reproduces the
    worked example).  ``explicit_order`` overrides the heuristic with a
    caller-supplied permutation.
    """
    start = time.perf_counter()
    with trace.span("build.pestrie", pointers=matrix.n_pointers,
                    objects=matrix.n_objects, order=order):
        object_order = resolve_order(matrix, order, seed, explicit_order)
        pestrie = _build_from_rows(matrix.n_pointers, matrix.n_objects,
                                   object_order, rows_by_object(matrix))
    registry = get_registry()
    registry.counter("repro_build_runs_total").inc()
    registry.counter("repro_build_groups_total").inc(len(pestrie.groups))
    registry.histogram("repro_build_seconds").observe(time.perf_counter() - start)
    return pestrie


def build_pestrie_from_rows(
    n_pointers: int,
    n_objects: int,
    object_order: Sequence[int],
    rows: Sequence[Sequence[int]],
    order_name: str = "staged",
) -> Pestrie:
    """Staged-pipeline entry: construct from a precomputed object order and
    pointed-by adjacency (``rows[obj]`` = ascending pointer ids).

    Emits the same telemetry as :func:`build_pestrie`; the resulting trie is
    identical to building from the matrix with the same order.
    """
    start = time.perf_counter()
    with trace.span("build.pestrie", pointers=n_pointers,
                    objects=n_objects, order=order_name):
        pestrie = _build_from_rows(n_pointers, n_objects, list(object_order), rows)
    registry = get_registry()
    registry.counter("repro_build_runs_total").inc()
    registry.counter("repro_build_groups_total").inc(len(pestrie.groups))
    registry.histogram("repro_build_seconds").observe(time.perf_counter() - start)
    return pestrie


def _build_from_rows(
    n_pointers: int,
    n_objects: int,
    object_order: list,
    rows: Sequence[Sequence[int]],
) -> Pestrie:
    pestrie = Pestrie(n_pointers, n_objects, object_order)
    groups = pestrie.groups
    group_of_pointer = pestrie.group_of_pointer

    for obj in object_order:
        origin = pestrie.new_group(object_id=obj)
        origin.pes = obj
        pestrie.group_of_object[obj] = origin.id

        # Bucket the row's pointers by their current group; pointers seen
        # for the first time land in the origin group directly.
        buckets: dict = {}
        for pointer in rows[obj]:
            group_id = group_of_pointer[pointer]
            if group_id is None:
                origin.pointers.append(pointer)
                group_of_pointer[pointer] = origin.id
            else:
                buckets.setdefault(group_id, []).append(pointer)

        # Split or annex each touched group.  Iterating in ascending group
        # id keeps construction deterministic.
        for group_id in sorted(buckets):
            group = groups[group_id]
            moved = buckets[group_id]
            if not group.is_origin and len(moved) == len(group.pointers):
                # Moving everything would leave an empty group; keep the
                # members in place and remember the hidden split via the
                # ξ-value on the cross edge.
                pestrie.add_cross_edge(origin, group)
                continue
            child = pestrie.new_group()
            moved_set = set(moved)
            child.pointers = [p for p in group.pointers if p in moved_set]
            group.pointers = [p for p in group.pointers if p not in moved_set]
            for pointer in child.pointers:
                group_of_pointer[pointer] = child.id
            pestrie.add_tree_edge(group, child)
            pestrie.add_cross_edge(origin, child)

    return pestrie
