"""Rectangle generation and Theorem 2 pruning (Section 3.4.1, Table 6).

Origins are visited in the construction object order.  For each origin we
gather the timestamp intervals of the ξ-subtrees induced by its cross edges,
plus the origin's own PES interval, and pair them:

* **Case-1 rectangle** — a cross subtree × the PES interval.  Besides alias
  pairs it records points-to facts: every pointer in the X-range points to
  the origin object, whose timestamp is ``Y1``.  Case-1 rectangles are never
  enclosed by earlier ones (the PES block is fresh timestamp territory), so
  ``ListPointsTo`` stays complete after pruning; this is asserted.
* **Case-2 rectangle** — two cross subtrees of the same origin lying in
  *different* PESs (same-PES pairs are internal pairs, already answered by
  PES-identifier equality, and are not encoded — cf. Figure 4, where the
  pair {p3}×{p1} of origin o5 produces no rectangle).

A candidate whose lower-left corner is covered by a stored rectangle is
fully enclosed by it (Theorem 2) and discarded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Tuple

from ..obs import get_registry, trace
from .intervals import cross_edge_interval, group_interval
from .segment_tree import Rect, SegmentTree
from .structure import Pestrie


@dataclass(frozen=True)
class LabeledRect:
    """A stored rectangle plus its Case-1/Case-2 classification.

    For Case-1 rectangles ``object_id`` is the origin object the X-side
    points to (its timestamp equals ``rect.y1``).
    """

    rect: Rect
    case1: bool
    object_id: int = -1


@dataclass
class RectangleSet:
    """Output of rectangle generation, ready for the encoder."""

    rects: List[LabeledRect] = field(default_factory=list)
    #: Candidates pruned by the Theorem 2 corner test (kept for the
    #: pruning ablation and for tests).
    pruned: List[Rect] = field(default_factory=list)

    def case1(self) -> List[LabeledRect]:
        return [entry for entry in self.rects if entry.case1]

    def case2(self) -> List[LabeledRect]:
        return [entry for entry in self.rects if not entry.case1]


def _ordered(first: Tuple[int, int], second: Tuple[int, int]) -> Rect:
    """Combine two disjoint intervals into ``<X1,X2,Y1,Y2>`` with X < Y."""
    if first[0] > second[0]:
        first, second = second, first
    if first[1] >= second[0]:
        raise AssertionError(
            "paired sub-tree intervals must be disjoint: %r vs %r" % (first, second)
        )
    return Rect(x1=first[0], x2=first[1], y1=second[0], y2=second[1])


def generate_rectangles(pestrie: Pestrie, prune: bool = True) -> RectangleSet:
    """Generate and deduplicate the rectangle encoding of all cross pairs.

    ``prune=False`` disables the Theorem 2 corner test (used only by the
    pruning ablation benchmark; the output is then redundant but still
    correct for queries).
    """
    if not pestrie.pre_order:
        raise ValueError("interval labels missing; run assign_intervals first")
    start = time.perf_counter()
    by_source = pestrie.cross_edges_by_source()
    storage = SegmentTree(len(pestrie.groups))
    result = RectangleSet()

    def emit(rect: Rect, case1: bool, object_id: int = -1) -> bool:
        if prune and storage.covers(rect.x1, rect.y1):
            result.pruned.append(rect)
            return False
        storage.insert(rect)
        result.rects.append(LabeledRect(rect=rect, case1=case1, object_id=object_id))
        return True

    span = trace.span("encode.rectangles", groups=len(pestrie.groups), prune=prune)
    with span:
        _generate(pestrie, by_source, emit, prune)

    registry = get_registry()
    case1_total = sum(1 for entry in result.rects if entry.case1)
    registry.counter("repro_encode_rectangles_total", case="case1").inc(case1_total)
    registry.counter("repro_encode_rectangles_total", case="case2").inc(
        len(result.rects) - case1_total)
    registry.counter("repro_encode_rect_pruned_total").inc(len(result.pruned))
    registry.counter("repro_encode_segment_inserts_total").inc(storage.insert_count)
    registry.counter("repro_encode_segment_probes_total").inc(storage.probe_count)
    registry.histogram("repro_rectangles_seconds").observe(time.perf_counter() - start)
    return result


def _generate(pestrie: Pestrie, by_source, emit, prune: bool) -> None:
    for obj in pestrie.object_order:
        origin = pestrie.origin_of_pes(obj)
        pes_interval = group_interval(pestrie, origin.id)
        edges = by_source.get(origin.id, [])
        subtrees = [
            (cross_edge_interval(pestrie, edge), pestrie.groups[edge.target].pes)
            for edge in edges
        ]

        # Case-1: every cross subtree pairs with the full PES block.  The
        # PES block occupies the newest timestamps, so the corner test can
        # never discard these — ListPointsTo completeness depends on it.
        for interval, _pes in subtrees:
            kept = emit(_ordered(interval, pes_interval), case1=True, object_id=obj)
            assert kept or not prune, "Case-1 rectangle pruned; Theorem 2 reasoning violated"

        # Case-2: cross subtrees of different PESs pair with each other.
        for i in range(len(subtrees)):
            interval_i, pes_i = subtrees[i]
            for j in range(i + 1, len(subtrees)):
                interval_j, pes_j = subtrees[j]
                if pes_i == pes_j:
                    continue  # internal pair: answered by PES identity
                emit(_ordered(interval_i, interval_j), case1=False)
