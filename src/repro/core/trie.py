"""The standard Trie of Appendix A and the Lemma 3 correspondence.

The paper names its structure *Pestrie* because its cross-edge sharing
mirrors node sharing in a standard trie built over the pointed-by matrix:
insert each ``PMT`` row (object first... actually pointers then the object,
Appendix A step 2) as a record whose attributes are the objects in the
construction order, extending each pointer's tail path.

Lemma 3: after processing the j-th row, ``|cross edges of the Pestrie| =
|trie nodes excluding the root| − j``.  Minimising cross edges is therefore
the NP-hard optimal-trie problem (Theorem 4) — which is why Pestrie settles
for the hub-degree heuristic.  This module exists to make that
correspondence executable; the tests check Lemma 3 for every prefix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..matrix.points_to import PointsToMatrix


class TrieNode:
    """One node of the standard trie; edges are labelled by object ids."""

    __slots__ = ("children",)

    def __init__(self):
        self.children: Dict[int, "TrieNode"] = {}

    def child(self, label: int) -> "TrieNode":
        node = self.children.get(label)
        if node is None:
            node = TrieNode()
            self.children[label] = node
        return node


class StandardTrie:
    """Appendix A's trie over the pointed-by matrix.

    Every pointer (and, after its row is processed, every object) keeps a
    *tail* pointer to the deepest trie node on its path; processing row
    ``o_i`` extends the tails of all pointers in the row (and of ``o_i``
    itself) by an ``o_i``-labelled edge.
    """

    def __init__(self, matrix: PointsToMatrix, object_order: Optional[Sequence[int]] = None):
        self.root = TrieNode()
        self._node_count = 1
        self._tail_pointer: List[TrieNode] = [self.root] * matrix.n_pointers
        self._tail_object: List[TrieNode] = [self.root] * matrix.n_objects
        self._matrix = matrix
        self._transposed = matrix.transpose()
        self._order = list(object_order) if object_order is not None else list(
            range(matrix.n_objects)
        )
        self._processed = 0
        #: Node count (root excluded) after each processed row — Lemma 3's
        #: left-hand side trace.
        self.size_trace: List[int] = []

    def process_next_row(self) -> None:
        """Insert the next object row into the trie (Appendix A step 2)."""
        obj = self._order[self._processed]
        for pointer in self._transposed.rows[obj]:
            self._tail_pointer[pointer] = self._extend(self._tail_pointer[pointer], obj)
        self._tail_object[obj] = self._extend(self._tail_object[obj], obj)
        self._processed += 1
        self.size_trace.append(self._node_count - 1)

    def _extend(self, tail: TrieNode, label: int) -> TrieNode:
        before = label in tail.children
        node = tail.child(label)
        if not before:
            self._node_count += 1
        return node

    def process_all(self) -> "StandardTrie":
        while self._processed < len(self._order):
            self.process_next_row()
        return self

    def node_count(self) -> int:
        """Nodes excluding the root (the quantity of Lemma 3)."""
        return self._node_count - 1


def lemma_3_holds(matrix: PointsToMatrix, object_order: Optional[Sequence[int]] = None) -> bool:
    """Check ``|cross edges| == |trie| − j`` after every prefix of rows.

    Builds the Pestrie and the standard trie side by side under the same
    object order and compares the two traces.
    """
    from .builder import build_pestrie

    order = list(object_order) if object_order is not None else list(range(matrix.n_objects))
    trie = StandardTrie(matrix, order)
    trie.process_all()

    # Re-run the Pestrie construction prefix by prefix.  O(m) full builds —
    # fine for test-sized matrices.
    for j in range(1, matrix.n_objects + 1):
        prefix = order[:j]
        # Restrict the matrix to the first j objects of the order.
        restricted = PointsToMatrix(matrix.n_pointers, matrix.n_objects)
        for obj in prefix:
            for pointer in matrix.transpose().rows[obj]:
                restricted.add(pointer, obj)
        pestrie = build_pestrie(restricted, explicit_order=prefix + [
            obj for obj in range(matrix.n_objects) if obj not in set(prefix)
        ])
        # Only cross edges created while processing the prefix count; the
        # remaining objects have empty rows and create none.
        if len(pestrie.cross_edges) != trie.size_trace[j - 1] - j:
            return False
    return True
