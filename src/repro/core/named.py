"""Name-level query veneer over a Pestrie index.

The Section 6 transforms produce matrices whose rows are *derived* pointers
(``p_l``, ``p_c``, ``p|predicate``).  ``NamedIndex`` binds those name
tables to a :class:`PestrieIndex` so clients can ask questions in source
terms, including the constrained forms the paper mentions —
``ListPointsTo(c, p)`` is just ``list_points_to("f[c]::p")`` here — and
stem-level questions that aggregate over all versions of a variable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from .query import PestrieIndex

if TYPE_CHECKING:  # avoid a core -> analysis import cycle at runtime
    from ..analysis.transform import NamedMatrix


class NamedIndex:
    """Query a persisted matrix by pointer/object names."""

    def __init__(
        self,
        index: PestrieIndex,
        pointer_index: Dict[str, int],
        object_index: Dict[str, int],
    ):
        self.index = index
        self.pointer_index = dict(pointer_index)
        self.object_index = dict(object_index)
        self._pointer_names = _invert(self.pointer_index)
        self._object_names = _invert(self.object_index)
        self._stems: Dict[str, List[int]] = {}
        for name, row in self.pointer_index.items():
            self._stems.setdefault(stem_of(name), []).append(row)

    @classmethod
    def over(cls, named: "NamedMatrix", index: PestrieIndex) -> "NamedIndex":
        return cls(index, named.pointer_index, named.object_index)

    # ------------------------------------------------------------------
    # Exact-name queries (the Table 1 interface, in source terms)
    # ------------------------------------------------------------------

    def is_alias(self, p: str, q: str) -> bool:
        return self.index.is_alias(self.pointer_index[p], self.pointer_index[q])

    def list_points_to(self, p: str) -> List[str]:
        return sorted(
            self._object_names[obj]
            for obj in self.index.list_points_to(self.pointer_index[p])
        )

    def list_pointed_by(self, o: str) -> List[str]:
        return sorted(
            self._pointer_names[p]
            for p in self.index.list_pointed_by(self.object_index[o])
        )

    def list_aliases(self, p: str) -> List[str]:
        return sorted(
            self._pointer_names[q]
            for q in self.index.list_aliases(self.pointer_index[p])
        )

    # ------------------------------------------------------------------
    # Stem-level queries: aggregate over all versions of one variable
    # ------------------------------------------------------------------

    def versions_of(self, stem: str) -> List[str]:
        """All derived rows of a base variable, e.g. every ``p@L*``."""
        return sorted(self._pointer_names[row] for row in self._stems.get(stem, ()))

    def stem_points_to(self, stem: str) -> List[str]:
        """Union of the points-to sets of every version — the
        flow-/context-insensitive projection of the precise result."""
        objects = set()
        for row in self._stems.get(stem, ()):
            objects.update(self.index.list_points_to(row))
        return sorted(self._object_names[obj] for obj in objects)

    def stem_may_alias(self, stem_a: str, stem_b: str) -> bool:
        """May *any* version of the two variables alias?"""
        rows_b = self._stems.get(stem_b, ())
        for row_a in self._stems.get(stem_a, ()):
            for row_b in rows_b:
                if self.index.is_alias(row_a, row_b):
                    return True
        return False


def stem_of(row_name: str) -> str:
    """Reduce a transformed row name to its ``function::variable`` stem.

    Strips flow-sensitive ``@L7``/``@entry(f)`` suffixes, context brackets
    ``f[12]::v``, and path-predicate suffixes ``p|l1``.
    """
    base = row_name.split("@", 1)[0]
    base = base.split("|", 1)[0]
    if "[" in base:
        head, _, tail = base.partition("[")
        closing = tail.find("]::")
        if closing != -1:
            base = head + "::" + tail[closing + 3 :]
    return base


def _invert(index: Dict[str, int]) -> Dict[int, str]:
    return {value: key for key, value in index.items()}
