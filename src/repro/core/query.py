"""The Pestrie query structure (Section 4, step 2).

From a decoded payload we build:

* the origin-timestamp array (objects sorted by timestamp — this *is* the
  construction object order), so each pointer's PES identifier is recovered
  with one binary search;
* ``ptList``: for every timestamp column ``x``, the rectangles whose
  x-interval contains ``x``, sorted by ``Y1``.  Every rectangle is inserted
  twice — once as stored and once mirrored — because aliasing is symmetric
  and ``ListAliases`` needs both directions.  Mirrored copies are flagged so
  ``ListPointsTo`` only follows the directed Case-1 facts.

The ptList is *not* materialised column by column (a single wide rectangle
would cost its full width in time and memory).  Instead the build is an
event sweep over the rectangle x-interval endpoints: the 2R start/end
events are sorted once, and one shared entry list is stored per *slab* —
a maximal column range between consecutive events over which the set of
stabbing rectangles is constant.  A column lookup is a binary search into
the slab boundaries, so construction is O(R log R + S) for S total slab
entries (linear in the rectangle count in the common case, never more than
the overlap structure demands) while ``is_alias`` stays O(log n).

Query costs match the paper: ``is_alias`` is a PES-identifier comparison
plus one binary search (rectangles sharing a column have disjoint
y-intervals); ``list_aliases`` is output-linear; ``list_points_to`` /
``list_pointed_by`` scan the relevant rectangle lists.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..matrix.points_to import PointsToMatrix
from .decoder import CorruptFileError, PestriePayload


@dataclass(frozen=True)
class _Entry:
    """One ptList element: a y-range plus provenance flags."""

    y1: int
    y2: int
    #: Case-1 rectangles record that x-side pointers point to the object
    #: whose timestamp is ``y1`` — only on forward (non-mirrored) copies.
    case1: bool
    mirrored: bool


class _ColumnSweep:
    """Interval stabbing over entry x-intervals, built by one event sweep.

    Given ``(x1, x2, entry)`` spans, sorts the ``2·R`` start/end events and
    records, for every *slab* (maximal column range between consecutive
    events), the entries stabbing it, sorted by ``y1``.  Lookup is a binary
    search over the slab boundaries; consecutive columns with the same
    active set share one tuple.  Entries sharing a slab are guaranteed by
    the Pestrie disjointness invariant to have pairwise-disjoint (hence
    uniquely-ordered) y-intervals, which is what the predecessor search in
    ``is_alias`` relies on.
    """

    __slots__ = ("_breaks", "_slabs")

    def __init__(self, spans: Sequence[Tuple[int, int, _Entry]]):
        events: List[Tuple[int, int, int, _Entry]] = []
        for serial, (x1, x2, entry) in enumerate(spans):
            events.append((x1, 0, serial, entry))
            events.append((x2 + 1, 1, serial, entry))
        events.sort(key=lambda event: event[0])

        breaks: List[int] = []
        slabs: List[Tuple[_Entry, ...]] = []
        #: Active entries as parallel sorted lists; the ``(y1, serial)`` key
        #: is unique, so removal finds the exact inserted slot.
        active_keys: List[Tuple[int, int]] = []
        active: List[_Entry] = []
        index, count = 0, len(events)
        while index < count:
            coordinate = events[index][0]
            while index < count and events[index][0] == coordinate:
                _, is_end, serial, entry = events[index]
                key = (entry.y1, serial)
                if is_end:
                    position = bisect_left(active_keys, key)
                    del active_keys[position]
                    del active[position]
                else:
                    position = bisect_left(active_keys, key)
                    active_keys.insert(position, key)
                    active.insert(position, entry)
                index += 1
            breaks.append(coordinate)
            slabs.append(tuple(active))
        self._breaks = breaks
        self._slabs = slabs

    def entries_at(self, x: int) -> Tuple[_Entry, ...]:
        """The entries whose x-interval contains column ``x``."""
        index = bisect_right(self._breaks, x) - 1
        if index < 0:
            return ()
        return self._slabs[index]

    def slab_count(self) -> int:
        return len(self._slabs)

    def memory_footprint(self) -> int:
        """Bytes held by the slab arrays (entries counted by the caller)."""
        import sys

        total = sys.getsizeof(self._breaks) + sys.getsizeof(self._slabs)
        total += 28 * len(self._breaks)  # one int per slab boundary
        for slab in self._slabs:
            total += sys.getsizeof(slab)
        return total


class PestrieIndex:
    """In-memory query structure for one persistent Pestrie file.

    Two structures are available (``mode``):

    * ``"ptlist"`` (default, the paper's Section 4 structure): per-column
      rectangle lists, realised as event-sweep slabs that share one entry
      list per run of columns with identical stabbing sets.  O(log R)
      ``is_alias`` and output-linear list queries; construction is
      O(R log R) and memory follows the rectangle count, not the summed
      rectangle widths;
    * ``"segment"``: a single segment tree over the stored rectangles.
      O(log² n) ``is_alias`` and slower list queries, with strictly O(R)
      memory — the trade the paper's query-memory column (Table 7) is
      about.
    """

    #: Attributes materialised together from the two timestamp sections.
    _LAZY_TIMESTAMPS = frozenset((
        "_pointer_ts", "_object_ts", "_origin_ts", "_origin_obj",
        "_pes_of_pointer", "_sorted_ptr_ts", "_sorted_ptr_id", "_object_at_ts",
    ))

    def __init__(self, payload: PestriePayload, mode: str = "ptlist"):
        if mode not in ("ptlist", "segment"):
            raise ValueError("unknown query mode %r" % mode)
        self._container = None
        self._lock = threading.RLock()
        self.mode = mode
        self.n_pointers = payload.n_pointers
        self.n_objects = payload.n_objects
        self.n_groups = payload.n_groups
        self._build_timestamps(payload.pointer_ts, payload.object_ts)
        self._build_structure(payload.rects)
        self._build_case1(payload.rects)
        # Raw rectangles, kept for bulk enumeration.
        self._rects = list(payload.rects)

    @classmethod
    def from_container(cls, container, mode: str = "ptlist") -> "PestrieIndex":
        """A lazy index over an open :class:`repro.store.Container`.

        Construction reads nothing beyond the already-parsed header, so
        ``info``/``column_of``-style calls never pay for the ptList.  Each
        query structure materialises on the first query that needs it —
        ``is_alias``/``list_aliases`` build the column sweep (or segment
        tree), ``points_to_contains``/``list_pointed_by`` the Case-1 table —
        pulling sections out of the container at most once.  Corruption
        inside an unread section therefore surfaces as
        :class:`CorruptFileError` at first touch, never as a wrong answer.

        The container must stay open until every structure the caller needs
        has materialised; a structure built before ``close()`` keeps
        answering afterwards.
        """
        if mode not in ("ptlist", "segment"):
            raise ValueError("unknown query mode %r" % mode)
        self = object.__new__(cls)
        self._container = container
        self._lock = threading.RLock()
        self.mode = mode
        self.n_pointers = container.n_pointers
        self.n_objects = container.n_objects
        self.n_groups = container.n_groups
        return self

    # ------------------------------------------------------------------
    # Construction pieces (shared by the eager and lazy paths)
    # ------------------------------------------------------------------

    def _build_timestamps(self, pointer_ts: List[Optional[int]],
                          object_ts: List[int]) -> None:
        self._pointer_ts = pointer_ts

        # Objects sorted by timestamp == the construction object order.
        order = sorted(range(self.n_objects), key=lambda obj: object_ts[obj])
        self._origin_ts = [object_ts[obj] for obj in order]
        self._origin_obj = order
        self._object_ts = object_ts

        # PES identifier per pointer (an object id), by binary search.  The
        # decoder validates file images, but payloads can also be built by
        # hand — guard the search so a timestamp below every origin raises
        # cleanly instead of silently wrapping to the last PES.
        self._pes_of_pointer: List[Optional[int]] = []
        for ts in pointer_ts:
            if ts is None:
                self._pes_of_pointer.append(None)
            else:
                rank = bisect_right(self._origin_ts, ts) - 1
                if rank < 0:
                    raise CorruptFileError(
                        "pointer timestamp %d precedes every object origin" % ts
                    )
                self._pes_of_pointer.append(order[rank])

        # Pointers sorted by timestamp, for range reporting.
        tracked = [(ts, p) for p, ts in enumerate(pointer_ts) if ts is not None]
        tracked.sort()
        self._sorted_ptr_ts = [ts for ts, _ in tracked]
        self._sorted_ptr_id = [p for _, p in tracked]

        # Objects indexed by timestamp (origin timestamps are unique).
        self._object_at_ts: Dict[int, int] = {ts: obj for obj, ts in enumerate(object_ts)}

    def _build_structure(self, rects) -> None:
        # ptList: shared slab entry lists from one event sweep — never a
        # per-column expansion of the rectangle x-intervals.
        sweep: Optional[_ColumnSweep] = None
        segment = None
        if self.mode == "ptlist":
            spans: List[Tuple[int, int, _Entry]] = []
            for rect, case1 in rects:
                forward = _Entry(y1=rect.y1, y2=rect.y2, case1=case1, mirrored=False)
                spans.append((rect.x1, rect.x2, forward))
                mirror = _Entry(y1=rect.x1, y2=rect.x2, case1=case1, mirrored=True)
                spans.append((rect.y1, rect.y2, mirror))
            sweep = _ColumnSweep(spans)
        else:
            from .segment_tree import SegmentTree

            segment = SegmentTree(self.n_groups)
            for rect, _case1 in rects:
                segment.insert(rect)
        self._sweep = sweep
        self._segment = segment

    def _build_case1(self, rects) -> None:
        # Case-1 rectangles per pointed-to object, for ListPointedBy and the
        # O(log n) membership test.  Spans of one object are sorted; they are
        # pairwise disjoint (same-object Case-1 rectangles share the object's
        # PES y-block, so rectangle disjointness forces disjoint x-ranges),
        # which is what the predecessor search in points_to_contains needs.
        case1_by_object: Dict[int, List[tuple]] = {}
        for rect, case1 in rects:
            if case1:
                obj = self._object_at_ts.get(rect.y1)
                if obj is None:
                    raise CorruptFileError(
                        "case-1 rectangle y1=%d is not an object origin timestamp" % rect.y1
                    )
                case1_by_object.setdefault(obj, []).append((rect.x1, rect.x2))
        for spans in case1_by_object.values():
            spans.sort()
        self._case1_by_object = case1_by_object

    # ------------------------------------------------------------------
    # Lazy materialisation (container-backed instances only)
    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        # Fires only for attributes not yet in __dict__, so fully built
        # (eager) instances never pay for this dispatch.
        container = self.__dict__.get("_container")
        if container is None or not name.startswith("_") or name.startswith("__"):
            raise AttributeError(
                "%r object has no attribute %r" % (type(self).__name__, name)
            )
        if name in self._LAZY_TIMESTAMPS:
            with self._lock:
                if name not in self.__dict__:
                    pointer_ts, object_ts = container.timestamps()
                    self._build_timestamps(pointer_ts, object_ts)
        elif name in ("_sweep", "_segment"):
            with self._lock:
                if name not in self.__dict__:
                    self._build_structure(container.rects())
        elif name == "_case1_by_object":
            with self._lock:
                if name not in self.__dict__:
                    self._object_at_ts  # ensure the origin map exists first
                    self._build_case1(container.rects())
        elif name == "_rects":
            with self._lock:
                if name not in self.__dict__:
                    self._rects = list(container.rects())
        else:
            raise AttributeError(
                "%r object has no attribute %r" % (type(self).__name__, name)
            )
        return self.__dict__[name]

    def close(self) -> None:
        """Close the backing container, if any (eager indexes are no-ops).

        Structures already materialised keep answering; anything not yet
        built raises ``ContainerClosedError`` on first touch afterwards.

        Taking ``_lock`` serialises the close against a concurrent
        first-touch materialisation in :meth:`__getattr__`: without it the
        container could vanish mid-build, turning a clean
        ``ContainerClosedError`` into a half-built structure or an
        attribute error from inside the build.
        """
        with self._lock:
            container = self.__dict__.get("_container")
            if container is not None:
                container.close()

    # ------------------------------------------------------------------
    # Internal range helpers
    # ------------------------------------------------------------------

    def _pointers_in_range(self, lo: int, hi: int) -> List[int]:
        """Pointer ids with timestamps in ``[lo, hi]``."""
        start = bisect_left(self._sorted_ptr_ts, lo)
        stop = bisect_right(self._sorted_ptr_ts, hi)
        return self._sorted_ptr_id[start:stop]

    def _pes_range(self, object_id: int) -> tuple:
        """The timestamp block ``[I, next_I)`` of ``PES object_id``."""
        ts = self._object_ts[object_id]
        rank = bisect_left(self._origin_ts, ts)
        if rank + 1 < len(self._origin_ts):
            return ts, self._origin_ts[rank + 1] - 1
        # The last PES extends to the end of the timestamp space.
        return ts, self.n_groups - 1

    def _check_pointer(self, pointer: int) -> None:
        if not 0 <= pointer < self.n_pointers:
            raise IndexError(
                "pointer id %d out of range [0, %d)" % (pointer, self.n_pointers)
            )

    def _check_object(self, obj: int) -> None:
        if not 0 <= obj < self.n_objects:
            raise IndexError("object id %d out of range [0, %d)" % (obj, self.n_objects))

    def pes_of(self, pointer: int) -> Optional[int]:
        """The PES identifier (object id) of ``pointer``, if tracked."""
        self._check_pointer(pointer)
        return self._pes_of_pointer[pointer]

    # ------------------------------------------------------------------
    # Table 1 queries
    # ------------------------------------------------------------------

    def is_alias(self, p: int, q: int) -> bool:
        """Decide whether pointers ``p`` and ``q`` may alias — O(log n)."""
        self._check_pointer(p)
        self._check_pointer(q)
        ts_p = self._pointer_ts[p]
        ts_q = self._pointer_ts[q]
        if ts_p is None or ts_q is None:
            return False
        if p == q:
            return True
        if self._pes_of_pointer[p] == self._pes_of_pointer[q]:
            return True  # internal pair
        if self._segment is not None:
            x, y = (ts_p, ts_q) if ts_p < ts_q else (ts_q, ts_p)
            return self._segment.covers(x, y)
        entries = self._sweep.entries_at(ts_p)
        if not entries:
            return False
        index = bisect_right(entries, ts_q, key=lambda entry: entry.y1) - 1
        return index >= 0 and entries[index].y2 >= ts_q

    def is_alias_batch(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        """Answer many IsAlias queries, amortising the column lookups.

        Queries are sorted by their ptList column so every run of pairs
        sharing a column pays for one slab lookup; beyond that each pair
        costs the same predecessor search as :meth:`is_alias`.
        """
        results = [False] * len(pairs)
        jobs: List[Tuple[int, int, int]] = []
        for position, (p, q) in enumerate(pairs):
            self._check_pointer(p)
            self._check_pointer(q)
            ts_p = self._pointer_ts[p]
            ts_q = self._pointer_ts[q]
            if ts_p is None or ts_q is None:
                continue
            if p == q or self._pes_of_pointer[p] == self._pes_of_pointer[q]:
                results[position] = True
                continue
            x, y = (ts_p, ts_q) if ts_p < ts_q else (ts_q, ts_p)
            jobs.append((x, y, position))
        if self._segment is not None:
            for x, y, position in jobs:
                results[position] = self._segment.covers(x, y)
            return results
        jobs.sort()
        column, entries = -1, ()
        for x, y, position in jobs:
            if x != column:
                entries = self._sweep.entries_at(x)
                column = x
            if not entries:
                continue
            index = bisect_right(entries, y, key=lambda entry: entry.y1) - 1
            results[position] = index >= 0 and entries[index].y2 >= y
        return results

    def column_of(self, pointer: int) -> Optional[int]:
        """The ptList column (pre-order timestamp) of ``pointer``."""
        self._check_pointer(pointer)
        return self._pointer_ts[pointer]

    def list_aliases(self, p: int) -> List[int]:
        """All pointers aliased to ``p`` — O(answer size)."""
        self._check_pointer(p)
        ts_p = self._pointer_ts[p]
        if ts_p is None:
            return []
        result: List[int] = []
        lo, hi = self._pes_range(self._pes_of_pointer[p])
        for pointer in self._pointers_in_range(lo, hi):
            if pointer != p:
                result.append(pointer)
        if self._segment is not None:
            # Low-memory mode: scan the rectangle table (O(R + answer)).
            for rect, _case1 in self._rects:
                if rect.x1 <= ts_p <= rect.x2:
                    result.extend(self._pointers_in_range(rect.y1, rect.y2))
                elif rect.y1 <= ts_p <= rect.y2:
                    result.extend(self._pointers_in_range(rect.x1, rect.x2))
            return result
        for entry in self._sweep.entries_at(ts_p):
            result.extend(self._pointers_in_range(entry.y1, entry.y2))
        return result

    def points_to_contains(self, p: int, obj: int) -> bool:
        """Membership test ``obj ∈ points-to(p)`` in O(log n).

        ``p`` points to ``obj`` iff ``obj`` is ``p``'s own PES object or a
        Case-1 rectangle of ``obj`` spans ``p``'s column; the per-object
        span lists are sorted and disjoint, so one predecessor search
        decides the latter.  This is the primitive the delta overlay uses
        to normalise edits against the immutable base.
        """
        self._check_pointer(p)
        self._check_object(obj)
        ts_p = self._pointer_ts[p]
        if ts_p is None:
            return False
        if self._pes_of_pointer[p] == obj:
            return True
        spans = self._case1_by_object.get(obj)
        if not spans:
            return False
        index = bisect_right(spans, (ts_p, 0x7FFFFFFFFFFFFFFF)) - 1
        return index >= 0 and spans[index][1] >= ts_p

    def list_points_to(self, p: int) -> List[int]:
        """The points-to set of ``p``."""
        self._check_pointer(p)
        ts_p = self._pointer_ts[p]
        if ts_p is None:
            return []
        result = [self._pes_of_pointer[p]]
        if self._segment is not None:
            for rect, case1 in self._rects:
                if case1 and rect.x1 <= ts_p <= rect.x2:
                    result.append(self._object_at_ts[rect.y1])
            return result
        for entry in self._sweep.entries_at(ts_p):
            if entry.case1 and not entry.mirrored:
                result.append(self._object_at_ts[entry.y1])
        return result

    def list_pointed_by(self, obj: int) -> List[int]:
        """All pointers that may point to ``obj``."""
        self._check_object(obj)
        lo, hi = self._pes_range(obj)
        result = list(self._pointers_in_range(lo, hi))
        for x1, x2 in self._case1_by_object.get(obj, ()):
            result.extend(self._pointers_in_range(x1, x2))
        return result

    def iter_alias_pairs(self):
        """Yield every unordered alias pair ``(p, q)`` with ``p < q`` once.

        Internal pairs come from PES blocks, cross pairs straight from the
        stored rectangles (which are pairwise disjoint, so no pair repeats
        across rectangles); within a rectangle the two timestamp ranges are
        disjoint, so no pair repeats inside one either.  This is the bulk
        route for whole-program clients — no per-pointer query loop.
        """
        # Internal pairs: every pointer pair inside one PES.
        for obj in self._origin_obj:
            lo, hi = self._pes_range(obj)
            members = self._pointers_in_range(lo, hi)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    p, q = members[i], members[j]
                    yield (p, q) if p < q else (q, p)
        # Cross pairs: the rectangle encoding, expanded.
        for rect, _case1 in self._rects:
            x_members = self._pointers_in_range(rect.x1, rect.x2)
            y_members = self._pointers_in_range(rect.y1, rect.y2)
            for p in x_members:
                for q in y_members:
                    yield (p, q) if p < q else (q, p)

    # ------------------------------------------------------------------
    # Bulk reconstruction
    # ------------------------------------------------------------------

    def materialize(self) -> PointsToMatrix:
        """Recover the full points-to matrix ``PM`` from the index.

        The paper suggests this as the fastest way to serve repeated
        ``ListPointsTo`` queries; it is also the round-trip oracle used by
        the tests.
        """
        matrix = PointsToMatrix(self.n_pointers, self.n_objects)
        for pointer in range(self.n_pointers):
            for obj in self.list_points_to(pointer):
                matrix.add(pointer, obj)
        return matrix

    def memory_footprint(self) -> int:
        """Measured query-structure size in bytes (Table 7's memory column).

        Every live structure is accounted for: the slab sweep (or the
        segment tree, walked node by node), the timestamp/id arrays, the
        ``_object_at_ts`` map, the Case-1 per-object table, and the raw
        rectangle list.  Objects referenced from several places (slab
        entries, stored ``Rect`` instances) are counted once.
        """
        import sys

        seen = set()

        def sized(obj) -> int:
            if id(obj) in seen:
                return 0
            seen.add(id(obj))
            return sys.getsizeof(obj)

        total = 0
        if self._sweep is not None:
            total += self._sweep.memory_footprint()
            # Distinct slab entries, by construction: exactly one forward
            # and one mirrored ``_Entry`` per rectangle, every one a fixed
            # size (frozen dataclass, no dict growth).  The closed form
            # replaces a walk over every slab's tuple — Σ|slab| grows
            # super-linearly in the rectangle count (an entry repeats in
            # every slab its x-range stabs), which made this accessor
            # dominate footprint reporting at 10^5+ pointers.
            if self._rects:
                sample = _Entry(y1=0, y2=0, case1=False, mirrored=False)
                total += 2 * len(self._rects) * sys.getsizeof(sample)
        if self._segment is not None:
            total += self._segment.memory_footprint()
        for array in (
            self._pointer_ts,
            self._origin_ts,
            self._origin_obj,
            self._pes_of_pointer,
            self._sorted_ptr_ts,
            self._sorted_ptr_id,
        ):
            total += sized(array) + 28 * len(array)
        # Timestamp -> object map: one boxed int pair per object.
        total += sized(self._object_at_ts) + 2 * 28 * len(self._object_at_ts)
        # Case-1 spans per pointed-to object.
        total += sized(self._case1_by_object)
        for spans in self._case1_by_object.values():
            total += sized(spans)
            for span in spans:
                total += sized(span) + 2 * 28
        # The raw rectangle table: (Rect, case1) tuples; the Rect objects
        # are shared with the segment-tree node lists and counted once.
        total += sized(self._rects)
        for pair in self._rects:
            total += sized(pair) + sized(pair[0])
        return total
