"""Interval labelling of the Pestrie forest (Section 3.4.1).

A DFS over tree edges assigns each group ``[I, E]``: ``I`` its pre-order
timestamp and ``E`` the largest timestamp in its subtree, so tree
reachability is interval containment.  Two ordering rules make every
ξ-subtree a *contiguous* timestamp range:

* PESs are visited in the construction object order (so each PES occupies a
  contiguous block after all earlier PESs);
* inside a non-origin node, children are visited in *reversed* creation
  order (the k-th tree edge before the (k-1)-th), so the children created
  after any cross edge — exactly the ξ-reachable ones — sit immediately
  after their parent.  Origins may use any child order (a ξ-path cannot pass
  an origin); we use creation order, which matches the paper's Table 5.

After labelling, the ξ-subtree of a cross edge ``x --ω--> y`` is
``[I_y, E_z]`` with ``z`` the target of tree edge ``y --ω--> z``, or
``[I_y, I_y]`` when ``y`` has fewer than ``ω + 1`` tree edges.
"""

from __future__ import annotations

from typing import Tuple

from .structure import CrossEdge, Pestrie


def assign_intervals(pestrie: Pestrie) -> None:
    """Fill ``pestrie.pre_order`` / ``pestrie.max_pre_order`` in place."""
    n_groups = len(pestrie.groups)
    pre_order = [-1] * n_groups
    max_pre_order = [-1] * n_groups
    counter = 0

    for obj in pestrie.object_order:
        root = pestrie.origin_of_pes(obj)
        # Iterative DFS; entries are (group_id, entered) frames.
        stack = [(root.id, False)]
        while stack:
            group_id, entered = stack.pop()
            group = pestrie.groups[group_id]
            if entered:
                max_pre_order[group_id] = counter - 1
                continue
            pre_order[group_id] = counter
            counter += 1
            stack.append((group_id, True))
            if group.is_origin:
                children = reversed(group.children)  # stack pop restores creation order
            else:
                children = iter(group.children)  # stack pop yields reversed creation order
            for child in children:
                stack.append((child, False))

    pestrie.pre_order = pre_order
    pestrie.max_pre_order = max_pre_order


def group_interval(pestrie: Pestrie, group_id: int) -> Tuple[int, int]:
    """The ``[I, E]`` label of a group (labelling must have run)."""
    return pestrie.pre_order[group_id], pestrie.max_pre_order[group_id]


def cross_edge_interval(pestrie: Pestrie, edge: CrossEdge) -> Tuple[int, int]:
    """The contiguous timestamp range of the edge's ξ-subtree."""
    target = pestrie.groups[edge.target]
    start = pestrie.pre_order[target.id]
    if edge.xi < len(target.children):
        boundary_child = target.children[edge.xi]
        return start, pestrie.max_pre_order[boundary_child]
    return start, start


def contains(outer: Tuple[int, int], inner: Tuple[int, int]) -> bool:
    """Interval containment: reachability on trees in O(1)."""
    return outer[0] <= inner[0] and inner[1] <= outer[1]
