"""Round-trip fuzzing harness for the Pestrie persistent formats.

The persistence contract has exactly two legal outcomes for any input:

* a clean, uncorrupted file decodes to a payload whose materialised matrix
  equals the one that was encoded, and re-encoding that matrix reproduces
  the file byte-for-byte (the encoder is canonical);
* anything else — bit flips, truncations, appended garbage, spliced header
  counts — either still decodes to a payload satisfying every format
  invariant (possible only for the legacy un-checksummed versions) or
  raises :class:`~repro.core.decoder.CorruptFileError`.  Never a hang,
  never an uncontrolled exception.

For ``PESTRIE3`` and ``PESTRIE4`` the contract is strictly stronger: the
CRC32 trailer means *any* effective mutation must be rejected.  ``PESTRIE4``
cases additionally target the flat query sections specifically (they sit
behind the classic sections, so untargeted mutants rarely land there) and
check the zero-copy :class:`~repro.core.flat.FlatIndex` against the eager
decoder on every Table 1 query — corruption must surface as
:class:`CorruptFileError` at open or first touch, never as a wrong answer.

Delta-bearing images (a ``PESTRIE3`` base followed by appended DELTA
records, see :mod:`repro.delta`) are fuzzed too.  Their clean contract:
the overlay decode reproduces the edited matrix, and every record
re-encodes byte-exactly.  Their corruption contract: a mutated image
either raises :class:`~repro.core.decoder.CorruptFileError` or decodes to
the result of applying a *prefix* of the record chain — the one legal
survival, since truncating exactly at a record boundary is
indistinguishable from a shorter (valid) chain.  A decode to anything
else is a wrong answer, and a failure.

Every mutant is additionally decoded through the lazy storage layer
(:class:`~repro.store.Container` + deferred section materialisation).  The
lazy path must mirror the eager verdict exactly: corruption in a lazily
parsed section surfaces as :class:`CorruptFileError` at open or at first
materialisation — never a wrong answer, never an uncontrolled exception —
and a mutant the eager decoder legally accepts must produce the identical
matrix.

Run it as a module::

    python -m repro.core.fuzz --iterations 500 --seed 0

Exit status 0 means every case honoured the contract.  The harness is
deterministic: the same ``--seed`` explores the same cases, so a failing
case number is a reproducible bug report.
"""

from __future__ import annotations

import argparse
import random
import struct
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..matrix.points_to import PointsToMatrix
from .decoder import _V3_HEADER_END, CorruptFileError, decode_bytes
from .pipeline import encode, index_from_bytes

#: Mutation kinds applied to clean files.
MUTATIONS = ("bit_flip", "byte_set", "truncate", "extend", "splice_count")

#: Mutants whose decoded structures would be pathologically large are not
#: index-built (legacy files cannot prevent a mutated ``n_groups``); the
#: decode itself is still required to be clean.
_INDEX_GROUP_LIMIT = 100_000

#: Sentinel for an eager verdict that leaves nothing for the lazy path to
#: mirror (a failure was already recorded, or the index is too large).
_SKIP = object()


@dataclass
class FuzzFailure:
    """One contract violation, with enough context to replay it."""

    case: int
    version: int
    mutation: Optional[str]
    detail: str

    def __str__(self) -> str:
        stage = self.mutation or "clean"
        return "case %d (PESTRIE%d, %s): %s" % (self.case, self.version, stage, self.detail)


@dataclass
class FuzzReport:
    """Aggregate outcome of one :func:`run_fuzz` sweep."""

    cases: int = 0
    clean_round_trips: int = 0
    delta_round_trips: int = 0
    versioned_round_trips: int = 0
    as_of_checks: int = 0
    corruptions: int = 0
    rejected: int = 0
    survived: int = 0
    lazy_checks: int = 0
    flat_checks: int = 0
    parallel_checks: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (
            "%d cases: %d clean round-trips (+%d delta-chain, %d versioned), "
            "%d as_of checks, "
            "%d corruptions (%d rejected, %d survived validation), "
            "%d lazy-parity checks, %d flat-parity checks, "
            "%d parallel-parity checks, %d failures"
            % (self.cases, self.clean_round_trips, self.delta_round_trips,
               self.versioned_round_trips, self.as_of_checks,
               self.corruptions, self.rejected, self.survived,
               self.lazy_checks, self.flat_checks, self.parallel_checks,
               len(self.failures))
        )


def random_matrix(rng: random.Random, max_pointers: int = 24, max_objects: int = 10) -> PointsToMatrix:
    """A small random points-to matrix, spanning empty to dense shapes."""
    n_pointers = rng.randint(1, max_pointers)
    n_objects = rng.randint(1, max_objects)
    density = rng.choice((0.0, 0.05, 0.15, 0.4, 0.8))
    matrix = PointsToMatrix(n_pointers, n_objects)
    for pointer in range(n_pointers):
        for obj in range(n_objects):
            if rng.random() < density:
                matrix.add(pointer, obj)
    return matrix


def corrupt(rng: random.Random, data: bytes, delta_offset: Optional[int] = None,
            flat_offset: Optional[int] = None) -> tuple:
    """One random mutation of ``data``; returns ``(kind, mutated_bytes)``.

    With ``delta_offset`` given (the byte where appended DELTA records
    start), mutations target the record tail: flips and sets land inside
    it, truncation cuts within it (keeping the base image intact — the
    hardest case for the decoder, since the base alone is valid), and
    count splices hit a record's ``n_insert``/``n_delete``/length words.

    With ``flat_offset`` given (the byte where a ``PESTRIE4`` image's flat
    sections start), flips/sets/truncations land in the flat region and
    count splices hit one of the four flat count words — the bytes the
    zero-copy query engine reads directly.
    """
    kind = rng.choice(MUTATIONS)
    low = 0
    if delta_offset is not None:
        low = delta_offset
    elif flat_offset is not None:
        low = flat_offset
    blob = bytearray(data)
    if kind == "bit_flip":
        position = rng.randrange(low, len(blob))
        blob[position] ^= 1 << rng.randrange(8)
    elif kind == "byte_set":
        position = rng.randrange(low, len(blob))
        blob[position] = rng.randrange(256)
    elif kind == "truncate":
        blob = blob[: rng.randrange(low, len(blob))]
    elif kind == "extend":
        blob += bytes(rng.randrange(256) for _ in range(rng.randint(1, 12)))
    else:  # splice_count: overwrite a header word with a huge count
        if delta_offset is not None:
            position = low + 8 + 1 + 4 * rng.randrange(3)
        elif flat_offset is not None:
            position = _V3_HEADER_END + 4 * rng.randrange(4)
        else:
            position = 8 + 4 * rng.randrange(11)
        if position + 4 <= len(blob):
            value = rng.choice((0xFFFFFFFF, 0x7FFFFFFF, 0x10000, len(blob) * 8))
            blob[position : position + 4] = value.to_bytes(4, "little")
    if delta_offset is not None:
        kind = "delta_" + kind
    elif flat_offset is not None:
        kind = "flat_" + kind
    return kind, bytes(blob)


def _check_clean(case: int, version: int, compact: bool, order: str,
                 matrix: PointsToMatrix, data: bytes, report: FuzzReport) -> None:
    try:
        index = index_from_bytes(data)
        recovered = index.materialize()
    except Exception as error:  # noqa: BLE001 — any exception here is a bug
        report.failures.append(FuzzFailure(case, version, None,
                                           "clean file failed to decode: %r" % (error,)))
        return
    if recovered != matrix:
        report.failures.append(FuzzFailure(case, version, None,
                                           "materialised matrix differs from input"))
        return
    re_encoded = encode(recovered, order=order, compact=compact, version=version)
    if re_encoded != data:
        report.failures.append(FuzzFailure(case, version, None,
                                           "re-encoding is not byte-exact"))
        return
    report.clean_round_trips += 1


def _check_parallel(case: int, version: int, compact: bool, order: str,
                    matrix: PointsToMatrix, data: bytes, executor,
                    report: FuzzReport) -> None:
    """A 2-process staged encode must reproduce the serial bytes exactly."""
    from .stages import run_pipeline

    try:
        parallel = run_pipeline(matrix, order=order, compact=compact,
                                version=version, executor=executor)
    except Exception as error:  # noqa: BLE001 — any exception here is a bug
        report.failures.append(FuzzFailure(case, version, None,
                                           "parallel encode failed: %r" % (error,)))
        return
    if parallel != data:
        report.failures.append(FuzzFailure(case, version, None,
                                           "parallel encode is not byte-identical to serial"))
        return
    report.parallel_checks += 1


def _check_flat_clean(case: int, matrix: PointsToMatrix, data: bytes,
                      report: FuzzReport) -> None:
    """The flat engine must answer every Table 1 query like the eager index."""
    from ..store import Container
    from .flat import FlatIndex

    try:
        eager = index_from_bytes(data)
        flat = FlatIndex(Container.from_bytes(data, allow_tail=False))
    except Exception as error:  # noqa: BLE001 — any exception here is a bug
        report.failures.append(FuzzFailure(case, 4, None,
                                           "clean flat open failed: %r" % (error,)))
        return
    try:
        if flat.materialize() != matrix:
            report.failures.append(FuzzFailure(case, 4, None,
                                               "flat materialise differs from input"))
            return
        pointers = range(flat.n_pointers)
        pairs = [(p, q) for p in pointers for q in pointers]
        if flat.is_alias_batch(pairs) != eager.is_alias_batch(pairs):
            report.failures.append(FuzzFailure(case, 4, None,
                                               "flat is_alias_batch disagrees with eager"))
            return
        for p in pointers:
            if (flat.is_alias(p, (p * 7 + 3) % flat.n_pointers)
                    != eager.is_alias(p, (p * 7 + 3) % flat.n_pointers)
                    or flat.list_points_to(p) != eager.list_points_to(p)
                    or flat.list_aliases(p) != eager.list_aliases(p)
                    or flat.pes_of(p) != eager.pes_of(p)
                    or flat.column_of(p) != eager.column_of(p)):
                report.failures.append(FuzzFailure(case, 4, None,
                    "flat pointer query disagrees with eager at p=%d" % p))
                return
        for obj in range(flat.n_objects):
            if flat.list_pointed_by(obj) != eager.list_pointed_by(obj):
                report.failures.append(FuzzFailure(case, 4, None,
                    "flat list_pointed_by disagrees with eager at obj=%d" % obj))
                return
        report.flat_checks += 1
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, 4, None,
                                           "flat query crashed: %r" % (error,)))
    finally:
        flat.close()


def _check_mutant(case: int, version: int, kind: str, mutated: bytes,
                  report: FuzzReport) -> None:
    report.corruptions += 1
    eager = _eager_outcome(case, version, kind, mutated, report)
    if eager is not _SKIP:
        _check_lazy_mutant(case, version, kind, mutated, eager, report)


def _eager_outcome(case: int, version: int, kind: str, mutated: bytes,
                   report: FuzzReport):
    """The eager decoder's verdict on ``mutated``.

    Returns ``None`` when the bytes were rejected with
    :class:`CorruptFileError`, the materialised matrix when they survived,
    or :data:`_SKIP` when there is nothing for the lazy path to mirror.
    """
    try:
        payload = decode_bytes(mutated)
    except CorruptFileError:
        report.rejected += 1
        return None
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, kind,
                                           "uncontrolled exception %r" % (error,)))
        return _SKIP
    if version >= 3:
        # The CRC makes acceptance of any effective mutation a bug.
        report.failures.append(FuzzFailure(case, version, kind,
                                           "PESTRIE%d accepted corrupted bytes" % version))
        return _SKIP
    # Legacy formats may accept a mutation that happens to stay inside the
    # format invariants; the payload must then build a queryable index
    # without an uncontrolled crash.
    report.survived += 1
    if payload.n_groups > _INDEX_GROUP_LIMIT:
        return _SKIP
    try:
        return index_from_bytes(mutated).materialize()
    except CorruptFileError:
        report.rejected += 1
        return None
    except Exception as error:  # noqa: BLE001
        report.failures.append(FuzzFailure(case, version, kind,
                                           "index build crashed: %r" % (error,)))
        return _SKIP


def _check_lazy_mutant(case: int, version: int, kind: str, mutated: bytes,
                       eager, report: FuzzReport) -> None:
    """The lazy storage path must mirror the eager verdict on ``mutated``.

    Corruption in a lazily parsed section must surface as
    :class:`CorruptFileError` at open or at first materialisation; a mutant
    the eager decoder accepted must produce the identical matrix.
    """
    from ..store import Container
    from .flat import FlatIndex, index_for_container

    report.lazy_checks += 1
    container = None
    try:
        container = Container.from_bytes(mutated, allow_tail=False)
        index = index_for_container(container)
        # Touch every lazily parsed structure: a query pattern that skips a
        # section legally never sees its corruption, so the parity check
        # must force full materialisation the way the eager decoder does.
        # The flat engine validates every flat section before its first
        # answer, so materialize() alone covers it.
        if not isinstance(index, FlatIndex):
            index._rects  # noqa: B018 — forces timestamps + all rectangle sections
        recovered = index.materialize()
    except CorruptFileError:
        if eager is not None:
            report.failures.append(FuzzFailure(case, version, kind,
                "lazy decode rejected bytes the eager decoder accepted"))
        return
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, kind,
                                           "lazy path uncontrolled exception %r" % (error,)))
        return
    finally:
        if container is not None:
            container.close()
    if eager is None:
        report.failures.append(FuzzFailure(case, version, kind,
            "lazy decode accepted bytes the eager decoder rejected"))
    elif recovered != eager:
        report.failures.append(FuzzFailure(case, version, kind,
            "lazy decode disagrees with the eager answer"))


def _random_edits(rng: random.Random, matrix: PointsToMatrix):
    """A random edit script over ``matrix``'s id space, plus the edited matrix."""
    import copy

    from ..delta import DeltaLog

    log = DeltaLog()
    edited = copy.deepcopy(matrix)
    for _ in range(rng.randint(1, 8)):
        pointer = rng.randrange(matrix.n_pointers)
        obj = rng.randrange(matrix.n_objects)
        members = list(edited.rows[pointer])
        if members and rng.random() < 0.4:
            obj = rng.choice(members)  # bias deletions towards present facts
            log.delete(pointer, obj)
            edited.rows[pointer].discard(obj)
        elif rng.random() < 0.6:
            log.insert(pointer, obj)
            edited.add(pointer, obj)
        else:
            log.delete(pointer, obj)
            edited.rows[pointer].discard(obj)
    return log, edited


def _delta_chain(rng: random.Random, matrix: PointsToMatrix, data: bytes):
    """Append 1–2 random DELTA records to ``data``.

    Returns ``(image, prefix_matrices)`` where ``prefix_matrices[i]`` is
    the matrix after applying the first ``i`` records — the full set of
    answers a (possibly boundary-truncated) decode may legally produce.
    """
    from ..delta import encode_record

    image = data
    prefixes = [matrix]
    current = matrix
    for _ in range(rng.randint(1, 2)):
        log, current = _random_edits(rng, current)
        inserts, deletes = log.net()
        image += encode_record(inserts, deletes, compact=rng.random() < 0.5)
        prefixes.append(current)
    return image, prefixes


def _check_delta_clean(case: int, version: int, image: bytes, final: PointsToMatrix,
                       report: FuzzReport) -> None:
    from ..delta import decode_records, encode_record, overlay_from_bytes, split_image

    try:
        overlay = overlay_from_bytes(image)
        recovered = overlay.materialize()
    except Exception as error:  # noqa: BLE001 — any exception here is a bug
        report.failures.append(FuzzFailure(case, version, None,
                                           "clean delta image failed to decode: %r" % (error,)))
        return
    if recovered != final:
        report.failures.append(FuzzFailure(case, version, None,
                                           "overlay matrix differs from the edited input"))
        return
    base, tail = split_image(image)
    records = decode_records(image, len(base), overlay.n_pointers, overlay.n_objects)
    rebuilt = b"".join(
        encode_record(record.inserts, record.deletes, compact=record.compact,
                      epoch=record.epoch if record.stamped else None,
                      watermark=record.watermark)
        for record in records
    )
    if rebuilt != tail:
        report.failures.append(FuzzFailure(case, version, None,
                                           "delta record re-encoding is not byte-exact"))
        return
    report.delta_round_trips += 1


def _check_delta_mutant(case: int, version: int, kind: str, mutated: bytes,
                        prefixes: Sequence[PointsToMatrix], report: FuzzReport) -> None:
    from ..delta import overlay_from_bytes

    report.corruptions += 1
    try:
        recovered = overlay_from_bytes(mutated).materialize()
    except CorruptFileError:
        report.rejected += 1
        recovered = None
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, kind,
                                           "uncontrolled exception %r" % (error,)))
        return
    if recovered is not None:
        # Per-record CRCs leave exactly one legal survival: a truncation at
        # a record boundary, which is indistinguishable from a shorter chain
        # and must decode to the corresponding prefix application.
        if not any(recovered == prefix for prefix in prefixes):
            report.failures.append(FuzzFailure(case, version, kind,
                                               "delta image decoded to a non-prefix matrix"))
            return
        report.survived += 1
    _check_lazy_delta_mutant(case, version, kind, mutated, recovered, report)


def _check_lazy_delta_mutant(case: int, version: int, kind: str, mutated: bytes,
                             eager: Optional[PointsToMatrix],
                             report: FuzzReport) -> None:
    """A lazily opened overlay must mirror the eager overlay's verdict."""
    from ..delta import overlay_from_bytes

    report.lazy_checks += 1
    overlay = None
    try:
        overlay = overlay_from_bytes(mutated, lazy=True)
        recovered = overlay.materialize()
    except CorruptFileError:
        if eager is not None:
            report.failures.append(FuzzFailure(case, version, kind,
                "lazy overlay rejected an image the eager overlay accepted"))
        return
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, kind,
                                           "lazy overlay uncontrolled exception %r" % (error,)))
        return
    finally:
        if overlay is not None:
            overlay.close()
    if eager is None:
        report.failures.append(FuzzFailure(case, version, kind,
            "lazy overlay accepted an image the eager overlay rejected"))
    elif recovered != eager:
        report.failures.append(FuzzFailure(case, version, kind,
            "lazy overlay disagrees with the eager overlay"))


def _stamped_chain(rng: random.Random, matrix: PointsToMatrix, data: bytes):
    """Append 1–3 epoch-stamped (``PESDELT2``) records to ``data``.

    Returns ``(image, prefixes, spans)``: ``prefixes[k]`` is the matrix as
    of epoch ``k`` (index 0 is the base), and ``spans[i]`` is the
    ``(offset, length)`` of record ``i`` in the image — record ``i``
    carries epoch ``i + 1``.
    """
    from ..delta import encode_record

    image = data
    prefixes = [matrix]
    spans: List[Tuple[int, int]] = []
    current = matrix
    for index in range(rng.randint(1, 3)):
        log, current = _random_edits(rng, current)
        inserts, deletes = log.net()
        record = encode_record(inserts, deletes, compact=rng.random() < 0.5,
                               epoch=index + 1)
        spans.append((len(image), len(record)))
        image += record
        prefixes.append(current)
    return image, prefixes, spans


def _check_versioned_clean(case: int, version: int, image: bytes,
                           prefixes: Sequence[PointsToMatrix],
                           report: FuzzReport) -> None:
    """Every epoch of a clean stamped chain must replay to its exact prefix."""
    from ..delta import versions_from_bytes

    try:
        versioned = versions_from_bytes(image)
        if versioned.floor != 0 or versioned.head != len(prefixes) - 1:
            report.failures.append(FuzzFailure(case, version, None,
                "versioned chain resolved to [%d, %d], expected [0, %d]"
                % (versioned.floor, versioned.head, len(prefixes) - 1)))
            return
        for epoch, prefix in enumerate(prefixes):
            report.as_of_checks += 1
            if versioned.as_of(epoch).materialize() != prefix:
                report.failures.append(FuzzFailure(case, version, None,
                    "as_of(%d) differs from the epoch-%d prefix" % (epoch, epoch)))
                return
    except Exception as error:  # noqa: BLE001 — any exception here is a bug
        report.failures.append(FuzzFailure(case, version, None,
            "clean versioned image failed: %r" % (error,)))
        return
    report.versioned_round_trips += 1


def _check_versioned_mutant(case: int, version: int, kind: str, mutated: bytes,
                            prefixes: Sequence[PointsToMatrix],
                            report: FuzzReport) -> None:
    """A mutated stamped chain must reject or answer as a clean prefix.

    When the decode survives (legal only for a truncation at a record
    boundary), *every* epoch it claims to answer must replay to that
    epoch's exact prefix matrix — never a wrong ``as_of``.
    """
    from ..delta import versions_from_bytes

    report.corruptions += 1
    try:
        versioned = versions_from_bytes(mutated)
    except CorruptFileError:
        report.rejected += 1
        return
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, kind,
                                           "uncontrolled exception %r" % (error,)))
        return
    try:
        epochs = versioned.versions()
        if any(epoch >= len(prefixes) for epoch in epochs):
            report.failures.append(FuzzFailure(case, version, kind,
                "mutated chain claims epochs %r beyond the clean head %d"
                % (epochs, len(prefixes) - 1)))
            return
        for epoch in epochs:
            report.as_of_checks += 1
            if versioned.as_of(epoch).materialize() != prefixes[epoch]:
                report.failures.append(FuzzFailure(case, version, kind,
                    "mutated chain answers as_of(%d) wrongly" % epoch))
                return
        report.survived += 1
    except CorruptFileError:
        report.rejected += 1
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, kind,
                                           "uncontrolled exception %r" % (error,)))


def _corrupt_epoch(rng: random.Random, image: bytes,
                   spans: Sequence[Tuple[int, int]]) -> bytes:
    """Patch one record's epoch stamp to an illegal value, fixing its CRC.

    The CRC is recomputed so the checksum cannot save the decoder — only
    the semantic epoch validation (positive, strictly increasing) can.
    Record ``i`` carries epoch ``i + 1``, so ``0`` is always illegal and
    any value ``<= i`` is a regression for ``i > 0``.
    """
    index = rng.randrange(len(spans))
    offset, length = spans[index]
    value = 0 if index == 0 else rng.choice((0, index, rng.randint(1, index)))
    blob = bytearray(image)
    struct.pack_into("<I", blob, offset + 9, value)
    body_end = offset + length - 4
    struct.pack_into("<I", blob, body_end,
                     _fuzz_crc32(bytes(blob[offset:body_end])))
    return bytes(blob)


def _fuzz_crc32(data: bytes) -> int:
    from .ioutil import crc32

    return crc32(data)


def _check_epoch_mutant(case: int, version: int, mutated: bytes,
                        report: FuzzReport) -> None:
    """An illegal (but correctly checksummed) epoch stamp must be rejected."""
    from ..delta import versions_from_bytes

    report.corruptions += 1
    try:
        versions_from_bytes(mutated)
    except CorruptFileError:
        report.rejected += 1
        return
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, "epoch_patch",
                                           "uncontrolled exception %r" % (error,)))
        return
    report.failures.append(FuzzFailure(case, version, "epoch_patch",
        "chain with an illegal epoch stamp was accepted"))


def _check_misplaced_watermark(case: int, version: int, image: bytes,
                               head: int, report: FuzzReport) -> None:
    """A watermark record anywhere but the chain head must be rejected."""
    from ..delta import encode_record, versions_from_bytes

    report.corruptions += 1
    bad = image + encode_record((), (), epoch=head + 1, watermark=True)
    try:
        versions_from_bytes(bad)
    except CorruptFileError:
        report.rejected += 1
        return
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, "watermark_tail",
                                           "uncontrolled exception %r" % (error,)))
        return
    report.failures.append(FuzzFailure(case, version, "watermark_tail",
        "mid-chain watermark record was accepted"))


def run_fuzz(iterations: int = 500, seed: int = 0, mutants_per_case: int = 3,
             versions: Optional[Sequence[int]] = None,
             versioned_tails: Optional[bool] = None) -> FuzzReport:
    """Run ``iterations`` seeded cases; see the module docstring for the contract.

    ``versions`` restricts the format-version pool (e.g. ``(4,)`` for a
    flat-layout-only sweep); the default pool covers every version with a
    bias towards the checksummed formats.
    """
    from ..store import Container

    pool = tuple(versions) if versions else (1, 2, 3, 3, 4)
    report = FuzzReport()
    parallel_executor = None
    for case in range(iterations):
        rng = random.Random("pestrie-fuzz-%d-%d" % (seed, case))
        matrix = random_matrix(rng)
        version = rng.choice(pool)
        compact = version == 2 or (version == 3 and rng.random() < 0.5)
        order = rng.choice(("hub", "identity", "simple"))
        data = encode(matrix, order=order, compact=compact, version=version)
        report.cases += 1

        _check_clean(case, version, compact, order, matrix, data, report)

        # A slice of cases re-encodes through a shared 2-process executor:
        # chunked fan-out and merge must reproduce the serial bytes.
        if rng.random() < 0.12:
            if parallel_executor is None:
                from .stages import ProcessExecutor

                parallel_executor = ProcessExecutor(2)
            _check_parallel(case, version, compact, order, matrix, data,
                            parallel_executor, report)
        for _ in range(mutants_per_case):
            kind, mutated = corrupt(rng, data)
            if mutated == data:
                continue  # the mutation was a no-op; nothing to assert
            _check_mutant(case, version, kind, mutated, report)

        if version == 4:
            # Flat-engine parity on the clean file, plus mutants aimed at
            # the flat sections (generic mutants mostly land in front).
            _check_flat_clean(case, matrix, data, report)
            with Container.from_bytes(data) as container:
                flat_start = container.flat_range[0]
            for _ in range(mutants_per_case):
                kind, mutated = corrupt(rng, data, flat_offset=flat_start)
                if mutated == data:
                    continue
                _check_mutant(case, version, kind, mutated, report)

        # Half the PESTRIE3/4 cases also fuzz an append→decode round-trip.
        if version >= 3 and rng.random() < 0.5:
            image, prefixes = _delta_chain(rng, matrix, data)
            _check_delta_clean(case, version, image, prefixes[-1], report)
            for _ in range(mutants_per_case):
                kind, mutated = corrupt(rng, image, delta_offset=len(data))
                if mutated == image:
                    continue
                _check_delta_mutant(case, version, kind, mutated, prefixes, report)

        # Versioned (epoch-stamped) tails: as_of must replay exact prefixes
        # on clean chains and never answer wrongly on mutated ones.
        want_versioned = (versioned_tails if versioned_tails is not None
                          else rng.random() < 0.5)
        if version >= 3 and want_versioned:
            image, prefixes, spans = _stamped_chain(rng, matrix, data)
            _check_versioned_clean(case, version, image, prefixes, report)
            for _ in range(mutants_per_case):
                kind, mutated = corrupt(rng, image, delta_offset=len(data))
                if mutated == image:
                    continue
                _check_versioned_mutant(case, version, kind, mutated,
                                        prefixes, report)
            _check_epoch_mutant(case, version,
                                _corrupt_epoch(rng, image, spans), report)
            _check_misplaced_watermark(case, version, image,
                                       len(prefixes) - 1, report)
    if parallel_executor is not None:
        parallel_executor.close()
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.fuzz",
        description="Seeded round-trip/corruption fuzzing of the Pestrie formats",
    )
    parser.add_argument("--iterations", type=int, default=500,
                        help="number of seeded cases (default 500)")
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument("--mutants-per-case", type=int, default=3,
                        help="corrupted variants derived from each clean file")
    parser.add_argument("--versions", type=str, default=None,
                        help="comma-separated format versions to restrict the "
                             "pool to (e.g. '4' for a flat-layout-only sweep)")
    parser.add_argument("--versioned-tails", action="store_true",
                        help="append an epoch-stamped PESDELT2 chain to every "
                             "PESTRIE3/4 case (default: half of them)")
    parser.add_argument("--quiet", action="store_true", help="only print on failure")
    args = parser.parse_args(argv)

    versions = None
    if args.versions:
        versions = tuple(int(value) for value in args.versions.split(","))
    report = run_fuzz(iterations=args.iterations, seed=args.seed,
                      mutants_per_case=args.mutants_per_case, versions=versions,
                      versioned_tails=args.versioned_tails or None)
    if not args.quiet or not report.ok:
        print("fuzz: " + report.summary())
    for failure in report.failures[:20]:
        print("fuzz FAILURE: %s" % failure, file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
