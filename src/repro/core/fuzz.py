"""Round-trip fuzzing harness for the Pestrie persistent formats.

The persistence contract has exactly two legal outcomes for any input:

* a clean, uncorrupted file decodes to a payload whose materialised matrix
  equals the one that was encoded, and re-encoding that matrix reproduces
  the file byte-for-byte (the encoder is canonical);
* anything else — bit flips, truncations, appended garbage, spliced header
  counts — either still decodes to a payload satisfying every format
  invariant (possible only for the legacy un-checksummed versions) or
  raises :class:`~repro.core.decoder.CorruptFileError`.  Never a hang,
  never an uncontrolled exception.

For ``PESTRIE3`` the contract is strictly stronger: the CRC32 trailer means
*any* effective mutation must be rejected.

Run it as a module::

    python -m repro.core.fuzz --iterations 500 --seed 0

Exit status 0 means every case honoured the contract.  The harness is
deterministic: the same ``--seed`` explores the same cases, so a failing
case number is a reproducible bug report.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..matrix.points_to import PointsToMatrix
from .decoder import CorruptFileError, decode_bytes
from .pipeline import encode, index_from_bytes

#: Mutation kinds applied to clean files.
MUTATIONS = ("bit_flip", "byte_set", "truncate", "extend", "splice_count")

#: Mutants whose decoded structures would be pathologically large are not
#: index-built (legacy files cannot prevent a mutated ``n_groups``); the
#: decode itself is still required to be clean.
_INDEX_GROUP_LIMIT = 100_000


@dataclass
class FuzzFailure:
    """One contract violation, with enough context to replay it."""

    case: int
    version: int
    mutation: Optional[str]
    detail: str

    def __str__(self) -> str:
        stage = self.mutation or "clean"
        return "case %d (PESTRIE%d, %s): %s" % (self.case, self.version, stage, self.detail)


@dataclass
class FuzzReport:
    """Aggregate outcome of one :func:`run_fuzz` sweep."""

    cases: int = 0
    clean_round_trips: int = 0
    corruptions: int = 0
    rejected: int = 0
    survived: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (
            "%d cases: %d clean round-trips, %d corruptions "
            "(%d rejected, %d survived legacy validation), %d failures"
            % (self.cases, self.clean_round_trips, self.corruptions,
               self.rejected, self.survived, len(self.failures))
        )


def random_matrix(rng: random.Random, max_pointers: int = 24, max_objects: int = 10) -> PointsToMatrix:
    """A small random points-to matrix, spanning empty to dense shapes."""
    n_pointers = rng.randint(1, max_pointers)
    n_objects = rng.randint(1, max_objects)
    density = rng.choice((0.0, 0.05, 0.15, 0.4, 0.8))
    matrix = PointsToMatrix(n_pointers, n_objects)
    for pointer in range(n_pointers):
        for obj in range(n_objects):
            if rng.random() < density:
                matrix.add(pointer, obj)
    return matrix


def corrupt(rng: random.Random, data: bytes) -> tuple:
    """One random mutation of ``data``; returns ``(kind, mutated_bytes)``."""
    kind = rng.choice(MUTATIONS)
    blob = bytearray(data)
    if kind == "bit_flip":
        position = rng.randrange(len(blob))
        blob[position] ^= 1 << rng.randrange(8)
    elif kind == "byte_set":
        position = rng.randrange(len(blob))
        blob[position] = rng.randrange(256)
    elif kind == "truncate":
        blob = blob[: rng.randrange(len(blob))]
    elif kind == "extend":
        blob += bytes(rng.randrange(256) for _ in range(rng.randint(1, 12)))
    else:  # splice_count: overwrite a header word with a huge count
        position = 8 + 4 * rng.randrange(11)
        if position + 4 <= len(blob):
            value = rng.choice((0xFFFFFFFF, 0x7FFFFFFF, 0x10000, len(blob) * 8))
            blob[position : position + 4] = value.to_bytes(4, "little")
    return kind, bytes(blob)


def _check_clean(case: int, version: int, compact: bool, order: str,
                 matrix: PointsToMatrix, data: bytes, report: FuzzReport) -> None:
    try:
        index = index_from_bytes(data)
        recovered = index.materialize()
    except Exception as error:  # noqa: BLE001 — any exception here is a bug
        report.failures.append(FuzzFailure(case, version, None,
                                           "clean file failed to decode: %r" % (error,)))
        return
    if recovered != matrix:
        report.failures.append(FuzzFailure(case, version, None,
                                           "materialised matrix differs from input"))
        return
    re_encoded = encode(recovered, order=order, compact=compact, version=version)
    if re_encoded != data:
        report.failures.append(FuzzFailure(case, version, None,
                                           "re-encoding is not byte-exact"))
        return
    report.clean_round_trips += 1


def _check_mutant(case: int, version: int, kind: str, mutated: bytes,
                  report: FuzzReport) -> None:
    report.corruptions += 1
    try:
        payload = decode_bytes(mutated)
    except CorruptFileError:
        report.rejected += 1
        return
    except Exception as error:  # noqa: BLE001 — uncontrolled escape
        report.failures.append(FuzzFailure(case, version, kind,
                                           "uncontrolled exception %r" % (error,)))
        return
    if version == 3:
        # The CRC makes acceptance of any effective mutation a bug.
        report.failures.append(FuzzFailure(case, version, kind,
                                           "PESTRIE3 accepted corrupted bytes"))
        return
    # Legacy formats may accept a mutation that happens to stay inside the
    # format invariants; the payload must then build a queryable index
    # without an uncontrolled crash.
    report.survived += 1
    if payload.n_groups > _INDEX_GROUP_LIMIT:
        return
    try:
        index_from_bytes(mutated)
    except CorruptFileError:
        report.rejected += 1
    except Exception as error:  # noqa: BLE001
        report.failures.append(FuzzFailure(case, version, kind,
                                           "index build crashed: %r" % (error,)))


def run_fuzz(iterations: int = 500, seed: int = 0, mutants_per_case: int = 3) -> FuzzReport:
    """Run ``iterations`` seeded cases; see the module docstring for the contract."""
    report = FuzzReport()
    for case in range(iterations):
        rng = random.Random("pestrie-fuzz-%d-%d" % (seed, case))
        matrix = random_matrix(rng)
        version = rng.choice((1, 2, 3, 3))  # bias towards the current format
        compact = version == 2 or (version == 3 and rng.random() < 0.5)
        order = rng.choice(("hub", "identity", "simple"))
        data = encode(matrix, order=order, compact=compact, version=version)
        report.cases += 1

        _check_clean(case, version, compact, order, matrix, data, report)
        for _ in range(mutants_per_case):
            kind, mutated = corrupt(rng, data)
            if mutated == data:
                continue  # the mutation was a no-op; nothing to assert
            _check_mutant(case, version, kind, mutated, report)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.fuzz",
        description="Seeded round-trip/corruption fuzzing of the Pestrie formats",
    )
    parser.add_argument("--iterations", type=int, default=500,
                        help="number of seeded cases (default 500)")
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument("--mutants-per-case", type=int, default=3,
                        help="corrupted variants derived from each clean file")
    parser.add_argument("--quiet", action="store_true", help="only print on failure")
    args = parser.parse_args(argv)

    report = run_fuzz(iterations=args.iterations, seed=args.seed,
                      mutants_per_case=args.mutants_per_case)
    if not args.quiet or not report.ok:
        print("fuzz: " + report.summary())
    for failure in report.failures[:20]:
        print("fuzz FAILURE: %s" % failure, file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
