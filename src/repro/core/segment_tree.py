"""Segment tree for rectangle point-enclosure queries (Section 3.4.1).

During rectangle generation the encoder must test whether the corner of a
candidate rectangle is covered by an already-stored one (Theorem 2 then
licenses discarding the whole candidate).  The paper's structure: a segment
tree over the x-axis ``[0, Ne)`` where every node owns the rectangles whose
x-interval crosses its midline, kept sorted by their ``Y1`` coordinate.

Because stored rectangles are pairwise disjoint and all rectangles at a node
share an x-point (the midline), their y-intervals are pairwise disjoint too
— so a predecessor binary search on ``Y1`` finds the only possible covering
rectangle at each node.  A point query therefore visits ``O(log Ne)`` nodes
with an ``O(log R)`` search at each: ``O(log² n)`` total.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True, order=True)
class Rect:
    """An axis-aligned rectangle ``<X1, X2, Y1, Y2>`` over timestamps.

    Field order makes the natural sort the ``Y1``-major one needed by the
    per-node balanced lists.
    """

    y1: int
    y2: int
    x1: int
    x2: int

    def covers(self, x: int, y: int) -> bool:
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def encloses(self, other: "Rect") -> bool:
        return (
            self.x1 <= other.x1
            and other.x2 <= self.x2
            and self.y1 <= other.y1
            and other.y2 <= self.y2
        )

    def as_tuple(self) -> tuple:
        """The paper's ``<X1, X2, Y1, Y2>`` presentation order."""
        return (self.x1, self.x2, self.y1, self.y2)


@dataclass
class _Node:
    lo: int
    hi: int
    #: Parallel sorted arrays: ``keys[i] == rects[i].y1``.
    keys: List[int] = field(default_factory=list)
    rects: List[Rect] = field(default_factory=list)
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def mid(self) -> int:
        return (self.lo + self.hi) // 2


class SegmentTree:
    """Point-enclosure structure over x-range ``[0, size)``.

    Only correct for pairwise-disjoint rectangle sets; the encoder maintains
    that invariant by construction (Theorem 2 pruning).
    """

    def __init__(self, size: int):
        if size <= 0:
            size = 1
        self._root = _Node(0, size)
        self._count = 0
        # Plain-int telemetry counters: the tree sits on the single-threaded
        # encode hot path, so increments stay lock-free here and the caller
        # (rectangle generation) flushes them into the shared registry once.
        self.insert_count = 0
        self.probe_count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, rect: Rect) -> None:
        """Store a rectangle at the highest node whose midline it crosses."""
        self.insert_count += 1
        node = self._root
        while True:
            mid = node.mid
            if rect.x2 < mid:
                if node.left is None:
                    node.left = _Node(node.lo, mid)
                node = node.left
            elif rect.x1 > mid:
                if node.right is None:
                    node.right = _Node(mid, node.hi)
                node = node.right
            else:
                position = bisect_right(node.keys, rect.y1)
                node.keys.insert(position, rect.y1)
                node.rects.insert(position, rect)
                self._count += 1
                return

    def find_covering(self, x: int, y: int) -> Optional[Rect]:
        """The unique stored rectangle covering ``(x, y)``, or ``None``."""
        self.probe_count += 1
        node = self._root
        while node is not None:
            if node.keys:
                # Predecessor by Y1: the only candidate at this node.
                index = bisect_right(node.keys, y) - 1
                if index >= 0 and node.rects[index].covers(x, y):
                    return node.rects[index]
            mid = node.mid
            if x < mid:
                node = node.left
            elif x > mid:
                node = node.right
            else:
                return None
        return None

    def covers(self, x: int, y: int) -> bool:
        return self.find_covering(x, y) is not None

    def memory_footprint(self) -> int:
        """Measured tree size in bytes: nodes plus their key/rect arrays.

        The stored :class:`Rect` objects themselves are not counted — the
        caller owns (and typically shares) them and counts them once.
        """
        import sys

        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += sys.getsizeof(node)
            total += sys.getsizeof(node.keys) + 28 * len(node.keys)
            total += sys.getsizeof(node.rects)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total
