"""Durable file I/O shared by every persistence backend.

A persistent points-to file is computed once and read for years (the
paper's whole premise), so a crash mid-write must never leave a torn file
at the destination path.  :func:`atomic_write` stages the bytes in a
temporary file in the *same directory* (so the rename cannot cross a
filesystem boundary), fsyncs it, publishes it with ``os.replace``, and
then fsyncs the parent directory — the rename itself lives in the
directory inode, so without that last step a crash right after the
replace could still roll the directory entry back to the old file.
Readers observe either the old file or the complete new one, never a
prefix.
"""

from __future__ import annotations

import os
import tempfile
import zlib


def atomic_write(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a fsynced temp-file + rename."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, staging = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def _fsync_directory(directory: str) -> None:
    """Flush a directory's entry table so a just-renamed file survives a crash.

    Directories cannot be fsynced on every platform (Windows refuses to
    open them; some filesystems reject the fsync) — durability of the data
    bytes is already guaranteed by the temp-file fsync, so failures here
    are ignored rather than turned into spurious write errors.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def crc32(data: bytes) -> int:
    """The CRC32 checksum as an unsigned 32-bit integer."""
    return zlib.crc32(data) & 0xFFFFFFFF
