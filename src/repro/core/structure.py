"""The Pestrie structure: ES groups, PES trees, labelled edges (Section 3).

A *group* (equivalent set, ES) holds pointers whose points-to sets are
identical, plus at most one object (the *origin* of its PES).  Groups are
linked by

* **tree edges** — ``parent → child`` created when members are extracted
  from ``parent``; the k-th tree edge of a node carries label ``k``; and
* **cross edges** — ``origin → group`` created when an existing group's
  members also point to the origin's object; each carries a ξ-value equal to
  the target's tree-edge count at creation time.

The groups connected by tree edges form a *partially equivalent set* (PES),
a tree rooted at the unique origin group; the object of that origin is the
PES identifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Group:
    """One Pestrie node: an equivalent set of pointers, maybe with an object."""

    #: Dense group id in creation order.
    id: int
    #: The object contained in this group, or ``None`` for non-origin groups.
    object_id: Optional[int] = None
    #: Pointer members (current membership; final after construction).
    pointers: List[int] = field(default_factory=list)
    #: The PES this group belongs to, named by its origin's object id.
    pes: int = -1
    #: Parent group id via tree edge, or ``None`` for PES roots.
    parent: Optional[int] = None
    #: Label of the tree edge from ``parent`` to this group.
    parent_label: int = -1
    #: Child group ids in creation (label) order: child k is ``children[k]``.
    children: List[int] = field(default_factory=list)

    @property
    def is_origin(self) -> bool:
        return self.object_id is not None

    def tree_edge_count(self) -> int:
        return len(self.children)


@dataclass(frozen=True)
class CrossEdge:
    """A cross edge ``origin_group --ξ--> target_group``."""

    source: int
    target: int
    xi: int


class Pestrie:
    """The constructed Pestrie for one points-to matrix.

    Holds the group forest, the cross edges grouped by source origin, the
    per-pointer/per-object group assignment, and the object order used for
    construction.  Interval labels are attached later by
    :mod:`repro.core.intervals`.
    """

    def __init__(self, n_pointers: int, n_objects: int, object_order: List[int]):
        self.n_pointers = n_pointers
        self.n_objects = n_objects
        #: Construction object order (a permutation of object ids).
        self.object_order = object_order
        self.groups: List[Group] = []
        #: Cross edges in creation order.
        self.cross_edges: List[CrossEdge] = []
        #: Group id holding each pointer; ``None`` for pointers that point
        #: to nothing (they never enter the trie).
        self.group_of_pointer: List[Optional[int]] = [None] * n_pointers
        #: Origin group id of each object (every object gets an origin).
        self.group_of_object: List[int] = [-1] * n_objects
        #: Interval labels ``[I, E]`` per group; filled by the DFS pass.
        self.pre_order: List[int] = []
        self.max_pre_order: List[int] = []

    # ------------------------------------------------------------------
    # Construction helpers (used by the builder)
    # ------------------------------------------------------------------

    def new_group(self, object_id: Optional[int] = None) -> Group:
        group = Group(id=len(self.groups), object_id=object_id)
        self.groups.append(group)
        return group

    def add_tree_edge(self, parent: Group, child: Group) -> int:
        """Link ``child`` under ``parent``; return the new edge's label."""
        label = parent.tree_edge_count()
        parent.children.append(child.id)
        child.parent = parent.id
        child.parent_label = label
        child.pes = parent.pes
        return label

    def add_cross_edge(self, origin: Group, target: Group) -> CrossEdge:
        """Add ``origin → target`` with ξ = target's current tree-edge count."""
        edge = CrossEdge(source=origin.id, target=target.id, xi=target.tree_edge_count())
        self.cross_edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def origin_of_pes(self, object_id: int) -> Group:
        """The root group of ``PES object_id``."""
        return self.groups[self.group_of_object[object_id]]

    def pes_of_pointer(self, pointer: int) -> Optional[int]:
        """The PES identifier (an object id) of ``pointer``, if any."""
        group_id = self.group_of_pointer[pointer]
        return self.groups[group_id].pes if group_id is not None else None

    def cross_edges_by_source(self) -> Dict[int, List[CrossEdge]]:
        """Cross edges grouped by source group id, creation order preserved."""
        by_source: Dict[int, List[CrossEdge]] = {}
        for edge in self.cross_edges:
            by_source.setdefault(edge.source, []).append(edge)
        return by_source

    def group_members(self) -> List[Tuple[Optional[int], List[int]]]:
        """``(object_id, pointers)`` per group, for debugging and tests."""
        return [(group.object_id, list(group.pointers)) for group in self.groups]

    def internal_pair_count(self) -> int:
        """Number of unordered pointer pairs that share a PES (Section 5.1)."""
        sizes: Dict[int, int] = {}
        for group_id in self.group_of_pointer:
            if group_id is None:
                continue
            pes = self.groups[group_id].pes
            sizes[pes] = sizes.get(pes, 0) + 1
        return sum(size * (size - 1) // 2 for size in sizes.values())

    def stats(self) -> Dict[str, int]:
        """Size statistics used by the heuristic experiments."""
        return {
            "groups": len(self.groups),
            "cross_edges": len(self.cross_edges),
            "internal_pairs": self.internal_pair_count(),
        }

    def __repr__(self) -> str:
        return "Pestrie(%d groups, %d cross edges, %d pointers, %d objects)" % (
            len(self.groups),
            len(self.cross_edges),
            self.n_pointers,
            self.n_objects,
        )
