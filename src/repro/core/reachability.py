"""ξ-reachability (Section 3.3) — the semantic core of Pestrie.

Theorem 1: pointer ``p`` points to object ``o`` iff ``p`` is ξ-reachable
from ``o``.  A ξ-path starts at an origin, takes one cross edge
``o --ω--> y``, and may then descend tree edges ``y --ω'--> z --> ...``
provided the *first* tree edge satisfies ``ω' ≥ ω`` (the ξ-condition: every
tree edge on the path was created after the cross edge).  Within ``o``'s own
PES no cross edge is involved and plain tree reachability from the origin
applies.

This module is the executable reference semantics: the rectangle encoder and
the query index are both validated against it.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from .structure import CrossEdge, Pestrie


def tree_descendants(pestrie: Pestrie, group_id: int) -> Iterator[int]:
    """All groups in the tree rooted at ``group_id`` (pre-order)."""
    stack = [group_id]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(pestrie.groups[current].children))


def xi_subtree(pestrie: Pestrie, edge: CrossEdge) -> Iterator[int]:
    """Groups ξ-reachable through ``edge``: the target plus the subtrees of
    its children whose tree-edge label is ≥ the edge's ξ-value."""
    target = pestrie.groups[edge.target]
    yield target.id
    for label, child in enumerate(target.children):
        if label >= edge.xi:
            yield from tree_descendants(pestrie, child)


def xi_reachable_groups(pestrie: Pestrie, object_id: int) -> Set[int]:
    """All groups whose pointers point to ``object_id`` (Theorem 1)."""
    origin = pestrie.origin_of_pes(object_id)
    reachable = set(tree_descendants(pestrie, origin.id))
    for edge in pestrie.cross_edges:
        if edge.source == origin.id:
            reachable.update(xi_subtree(pestrie, edge))
    return reachable


def pointed_by(pestrie: Pestrie, object_id: int) -> List[int]:
    """ListPointedBy computed directly on the trie (reference oracle)."""
    pointers: List[int] = []
    for group_id in xi_reachable_groups(pestrie, object_id):
        pointers.extend(pestrie.groups[group_id].pointers)
    return sorted(pointers)


def points_to(pestrie: Pestrie, pointer: int) -> List[int]:
    """ListPointsTo computed directly on the trie (reference oracle).

    Quadratic in the trie size — use the rectangle index for real queries.
    """
    return sorted(
        obj for obj in range(pestrie.n_objects) if pointer in set(pointed_by(pestrie, obj))
    )


def verify_theorem_1(pestrie: Pestrie, matrix) -> bool:
    """Check Theorem 1 exhaustively against the source matrix."""
    for obj in range(pestrie.n_objects):
        if set(pointed_by(pestrie, obj)) != set(matrix.list_pointed_by(obj)):
            return False
    return True
