"""Pestrie core: construction, labelling, rectangles, persistence, queries."""

from .builder import ORDER_CHOICES, build_pestrie, resolve_order
from .decoder import CorruptFileError, PestriePayload, decode_bytes, detect_format, load_payload
from .encoder import ABSENT, DEFAULT_VERSION, PestrieEncoder, save_pestrie
from .ioutil import atomic_write
from .hub import (
    hub_degrees,
    hub_order,
    identity_order,
    partition_objective,
    random_order,
    simple_degree_order,
    simple_degrees,
)
from .named import NamedIndex, stem_of
from .trie import StandardTrie, lemma_3_holds
from .intervals import assign_intervals, contains, cross_edge_interval, group_interval
from .pipeline import (
    build_labeled_pestrie,
    encode,
    index_from_bytes,
    load_index,
    persist,
    rectangles_for,
)
from .query import PestrieIndex
from .reachability import pointed_by, points_to, verify_theorem_1, xi_reachable_groups
from .rectangles import LabeledRect, RectangleSet, generate_rectangles
from .segment_tree import Rect, SegmentTree
from .stages import (
    ENCODE_STAGES,
    BuildContext,
    BuildReport,
    ProcessExecutor,
    SerialExecutor,
    Stage,
    StageReport,
    make_executor,
    run_pipeline,
)
from .structure import CrossEdge, Group, Pestrie

__all__ = [
    "ABSENT",
    "DEFAULT_VERSION",
    "ENCODE_STAGES",
    "ORDER_CHOICES",
    "BuildContext",
    "BuildReport",
    "CorruptFileError",
    "CrossEdge",
    "Group",
    "LabeledRect",
    "NamedIndex",
    "StandardTrie",
    "Pestrie",
    "PestrieEncoder",
    "PestrieIndex",
    "PestriePayload",
    "ProcessExecutor",
    "Rect",
    "RectangleSet",
    "SegmentTree",
    "SerialExecutor",
    "Stage",
    "StageReport",
    "assign_intervals",
    "atomic_write",
    "build_labeled_pestrie",
    "build_pestrie",
    "contains",
    "cross_edge_interval",
    "decode_bytes",
    "detect_format",
    "encode",
    "generate_rectangles",
    "group_interval",
    "hub_degrees",
    "lemma_3_holds",
    "stem_of",
    "hub_order",
    "identity_order",
    "index_from_bytes",
    "load_index",
    "load_payload",
    "make_executor",
    "partition_objective",
    "persist",
    "pointed_by",
    "points_to",
    "random_order",
    "rectangles_for",
    "resolve_order",
    "run_pipeline",
    "save_pestrie",
    "simple_degree_order",
    "simple_degrees",
    "verify_theorem_1",
    "xi_reachable_groups",
]
