"""Pestrie persistent-file writer (Section 3.4.2, Figure 5).

Three format versions share one logical layout (all integers little-endian):

* ``PESTRIE1`` — raw uint32 payload;
* ``PESTRIE2`` — varint/delta-compressed payload (an extension of ours);
* ``PESTRIE3`` — the hardened production format: a flags byte selecting the
  integer coding, per-section byte lengths in the header (so a reader can
  bounds-check every count before allocating) and a CRC32 trailer over the
  whole file.

The shared logical layout is:

* header: ``n_pointers``, ``n_objects``, ``n_groups`` and eight shape
  counts — Case-1/Case-2 quantities of points, vertical lines, horizontal
  lines, and full rectangles;
* the pre-order timestamp of every pointer (``ABSENT`` for pointers with
  empty points-to sets, which never enter the trie) and of every object;
* eight rectangle sections, Case-1 before Case-2 within each shape.

Splitting rectangles by shape is the paper's size trick: a degenerate
rectangle is a point (2 integers) or a line (3 integers) instead of 4.
"""

from __future__ import annotations

import struct
import time
from typing import BinaryIO, List, Sequence, Tuple

from ..obs import get_registry, trace
from .ioutil import atomic_write, crc32
from .rectangles import LabeledRect
from .segment_tree import Rect
from .structure import Pestrie

MAGIC_RAW = b"PESTRIE1"
MAGIC_COMPACT = b"PESTRIE2"
MAGIC_V3 = b"PESTRIE3"
MAGIC_V4 = b"PESTRIE4"

#: Magic of a DELTA record appended after a complete ``PESTRIE3`` image
#: (see ``repro.delta``).  Lives here with the other magics so the decoder
#: can tell "trailing garbage" from "delta records you must decode with the
#: delta-aware loader".
MAGIC_DELTA = b"PESDELT1"

#: Magic of the epoch-stamped DELTA record variant (``repro.delta.format``):
#: same layout as ``PESDELT1`` plus a uint32 epoch after the flags byte.
MAGIC_DELTA2 = b"PESDELT2"

#: The format version new files are written in.
DEFAULT_VERSION = 3

#: ``PESTRIE3`` flags byte: bit 0 selects varint/delta integer coding.
FLAG_COMPACT = 0x01

#: Timestamp sentinel for pointers outside the trie (empty points-to set).
ABSENT = 0xFFFFFFFF

_U32 = struct.Struct("<I")


def pointer_timestamps(pestrie: Pestrie) -> List[int]:
    """Per-pointer group pre-order timestamps (``ABSENT`` when untracked)."""
    stamps = []
    for pointer in range(pestrie.n_pointers):
        group_id = pestrie.group_of_pointer[pointer]
        stamps.append(ABSENT if group_id is None else pestrie.pre_order[group_id])
    return stamps


def object_timestamps(pestrie: Pestrie) -> List[int]:
    """Per-object origin-group pre-order timestamps."""
    return [pestrie.pre_order[pestrie.group_of_object[obj]] for obj in range(pestrie.n_objects)]


def _classify(rect: Rect) -> str:
    if rect.x1 == rect.x2 and rect.y1 == rect.y2:
        return "point"
    if rect.x1 == rect.x2:
        return "vline"
    if rect.y1 == rect.y2:
        return "hline"
    return "rect"


_SHAPES = ("point", "vline", "hline", "rect")

#: Integers stored per shape entry.
_SHAPE_FIELDS = {
    "point": lambda r: (r.x1, r.y1),
    "vline": lambda r: (r.x1, r.y1, r.y2),
    "hline": lambda r: (r.x1, r.x2, r.y1),
    "rect": lambda r: (r.x1, r.x2, r.y1, r.y2),
}


def _write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint; the domain is exactly ``uint32``."""
    if value < 0:
        # ``value >>= 7`` never reaches 0 for Python's arbitrary-precision
        # negatives, so this would loop forever instead of failing.
        raise ValueError("varint value must be non-negative, got %d" % value)
    if value > 0xFFFFFFFF:
        raise ValueError("varint value %d exceeds uint32 range" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def validate_version(version: int, compact: bool) -> bool:
    """Check a (version, compact) pair; return the effective compact flag."""
    if version not in (1, 2, 3, 4):
        raise ValueError("unknown Pestrie format version %r" % version)
    if version == 1 and compact:
        raise ValueError(
            "format version 1 stores raw uint32s; use version 2 or 3 for compact coding"
        )
    if version == 4 and compact:
        raise ValueError(
            "format version 4 stores raw uint32 sections so queries can run "
            "zero-copy over the mapped bytes; compact coding is not available"
        )
    return True if version == 2 else compact


def _encode_ints(values: Sequence[int], compact: bool) -> bytes:
    if not compact:
        return b"".join(_U32.pack(v) for v in values)
    out = bytearray()
    for value in values:
        _write_varint(out, value)
    return bytes(out)


class PestrieEncoder:
    """Serialises a labelled Pestrie plus its rectangle set to bytes.

    ``version`` selects the on-disk format: 1 (raw uint32), 2 (varint/delta,
    implies ``compact``), 3 (the default: checksummed header with
    per-section lengths; ``compact`` selects the integer coding) or 4 (the
    flat zero-copy layout: the ``PESTRIE3`` sections in raw coding plus
    directly queryable struct-of-arrays sections, see ``repro.core.flat``).
    """

    def __init__(
        self,
        pestrie: Pestrie,
        rects: Sequence[LabeledRect],
        compact: bool = False,
        version: int = DEFAULT_VERSION,
    ):
        compact = validate_version(version, compact)
        self.pestrie = pestrie
        self.rects = list(rects)
        self.compact = compact
        self.version = version

    def _sections(self) -> Tuple[dict, dict]:
        """Bucket rectangles into ``(case1, case2)`` shape dictionaries."""
        case1 = {shape: [] for shape in _SHAPES}
        case2 = {shape: [] for shape in _SHAPES}
        for entry in self.rects:
            bucket = case1 if entry.case1 else case2
            bucket[_classify(entry.rect)].append(entry.rect)
        for buckets in (case1, case2):
            for shape in _SHAPES:
                # Sorting by the leading coordinate makes delta encoding in
                # the compact format effective and the output canonical.
                buckets[shape].sort(key=Rect.as_tuple)
        return case1, case2

    def _section_payloads(self) -> Tuple[List[int], List[bytes]]:
        """The header integers and the ten encoded section payloads.

        Section order on disk: pointer timestamps, object timestamps, then
        the eight rectangle sections (all Case-1 shapes, then all Case-2).
        """
        pestrie = self.pestrie
        case1, case2 = self._sections()

        header = [pestrie.n_pointers, pestrie.n_objects, len(pestrie.groups)]
        for shape in _SHAPES:
            header.append(len(case1[shape]))
            header.append(len(case2[shape]))

        sections = [
            _encode_ints(pointer_timestamps(pestrie), self.compact),
            _encode_ints(object_timestamps(pestrie), self.compact),
        ]
        for buckets in (case1, case2):
            for shape in _SHAPES:
                fields = _SHAPE_FIELDS[shape]
                flat: List[int] = []
                previous_lead = 0
                for rect in buckets[shape]:
                    values = list(fields(rect))
                    if self.compact:
                        # Delta-encode the leading coordinate within the
                        # section; the remaining fields are offsets from it.
                        lead = values[0]
                        encoded = [lead - previous_lead] + [v - lead for v in values[1:]]
                        previous_lead = lead
                        flat.extend(encoded)
                    else:
                        flat.extend(values)
                sections.append(_encode_ints(flat, self.compact))
        return header, sections

    def to_bytes(self) -> bytes:
        start = time.perf_counter()
        with trace.span("encode.serialize", rects=len(self.rects),
                        version=self.version, compact=self.compact):
            payload = self._to_bytes()
        registry = get_registry()
        registry.counter("repro_encode_runs_total").inc()
        registry.gauge("repro_encode_bytes").set(len(payload))
        registry.histogram("repro_encode_seconds").observe(time.perf_counter() - start)
        return payload

    def _to_bytes(self) -> bytes:
        header, sections = self._section_payloads()
        header_bytes = b"".join(_U32.pack(v) for v in header)
        if self.version < 3:
            magic = MAGIC_COMPACT if self.compact else MAGIC_RAW
            return b"".join([magic, header_bytes] + sections)
        lengths = b"".join(_U32.pack(len(section)) for section in sections)
        if self.version == 4:
            return self._to_bytes_v4(header_bytes, lengths, sections)
        body = b"".join(
            [
                MAGIC_V3,
                bytes([FLAG_COMPACT if self.compact else 0]),
                header_bytes,
                lengths,
            ]
            + sections
        )
        return body + _U32.pack(crc32(body))

    def _to_bytes_v4(self, header_bytes: bytes, lengths: bytes,
                     sections: List[bytes]) -> bytes:
        # Deferred import: ``flat`` pulls in the decoder, which imports this
        # module for the magic constants.
        from .flat import build_flat_sections

        case1, case2 = self._sections()
        # The flat structures are derived from the rectangles in on-disk
        # decode order, so the slab entry lists come out identical to the
        # ones a lazy ``PestrieIndex`` builds from the decoded sections.
        decode_order = [(rect, True) for shape in _SHAPES for rect in case1[shape]]
        decode_order += [(rect, False) for shape in _SHAPES for rect in case2[shape]]
        counts, flat_sections = build_flat_sections(
            pointer_timestamps(self.pestrie),
            object_timestamps(self.pestrie),
            decode_order,
        )
        body = b"".join(
            [
                MAGIC_V4,
                bytes([0]),
                header_bytes,
                lengths,
                struct.pack("<4I", *counts),
            ]
            + sections
            + flat_sections
        )
        return body + _U32.pack(crc32(body))

    def write(self, stream: BinaryIO) -> int:
        payload = self.to_bytes()
        stream.write(payload)
        return len(payload)


def save_pestrie(
    pestrie: Pestrie,
    rects: Sequence[LabeledRect],
    path: str,
    compact: bool = False,
    version: int = DEFAULT_VERSION,
) -> int:
    """Write the persistent file atomically; return its size in bytes.

    The bytes land in a temporary file in the target directory which is
    fsynced and renamed over ``path``, so a crash mid-write never leaves a
    torn persistent file behind.
    """
    encoder = PestrieEncoder(pestrie, rects, compact=compact, version=version)
    payload = encoder.to_bytes()
    atomic_write(path, payload)
    return len(payload)
