"""Pestrie persistent-file writer (Section 3.4.2, Figure 5).

Layout (all integers little-endian):

* 8-byte magic ``PESTRIE1`` (raw uint32 payload) or ``PESTRIE2``
  (varint/delta-compressed payload, an extension of ours);
* header: ``n_pointers``, ``n_objects``, ``n_groups`` and eight shape
  counts — Case-1/Case-2 quantities of points, vertical lines, horizontal
  lines, and full rectangles;
* the pre-order timestamp of every pointer (``ABSENT`` for pointers with
  empty points-to sets, which never enter the trie) and of every object;
* eight rectangle sections, Case-1 before Case-2 within each shape.

Splitting rectangles by shape is the paper's size trick: a degenerate
rectangle is a point (2 integers) or a line (3 integers) instead of 4.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, List, Sequence, Tuple

from .rectangles import LabeledRect
from .segment_tree import Rect
from .structure import Pestrie

MAGIC_RAW = b"PESTRIE1"
MAGIC_COMPACT = b"PESTRIE2"

#: Timestamp sentinel for pointers outside the trie (empty points-to set).
ABSENT = 0xFFFFFFFF

_U32 = struct.Struct("<I")


def pointer_timestamps(pestrie: Pestrie) -> List[int]:
    """Per-pointer group pre-order timestamps (``ABSENT`` when untracked)."""
    stamps = []
    for pointer in range(pestrie.n_pointers):
        group_id = pestrie.group_of_pointer[pointer]
        stamps.append(ABSENT if group_id is None else pestrie.pre_order[group_id])
    return stamps


def object_timestamps(pestrie: Pestrie) -> List[int]:
    """Per-object origin-group pre-order timestamps."""
    return [pestrie.pre_order[pestrie.group_of_object[obj]] for obj in range(pestrie.n_objects)]


def _classify(rect: Rect) -> str:
    if rect.x1 == rect.x2 and rect.y1 == rect.y2:
        return "point"
    if rect.x1 == rect.x2:
        return "vline"
    if rect.y1 == rect.y2:
        return "hline"
    return "rect"


_SHAPES = ("point", "vline", "hline", "rect")

#: Integers stored per shape entry.
_SHAPE_FIELDS = {
    "point": lambda r: (r.x1, r.y1),
    "vline": lambda r: (r.x1, r.y1, r.y2),
    "hline": lambda r: (r.x1, r.x2, r.y1),
    "rect": lambda r: (r.x1, r.x2, r.y1, r.y2),
}


def _write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _encode_ints(values: Sequence[int], compact: bool) -> bytes:
    if not compact:
        return b"".join(_U32.pack(v) for v in values)
    out = bytearray()
    for value in values:
        _write_varint(out, value)
    return bytes(out)


class PestrieEncoder:
    """Serialises a labelled Pestrie plus its rectangle set to bytes."""

    def __init__(self, pestrie: Pestrie, rects: Sequence[LabeledRect], compact: bool = False):
        self.pestrie = pestrie
        self.rects = list(rects)
        self.compact = compact

    def _sections(self) -> Tuple[dict, dict]:
        """Bucket rectangles into ``(case1, case2)`` shape dictionaries."""
        case1 = {shape: [] for shape in _SHAPES}
        case2 = {shape: [] for shape in _SHAPES}
        for entry in self.rects:
            bucket = case1 if entry.case1 else case2
            bucket[_classify(entry.rect)].append(entry.rect)
        for buckets in (case1, case2):
            for shape in _SHAPES:
                # Sorting by the leading coordinate makes delta encoding in
                # the compact format effective and the output canonical.
                buckets[shape].sort(key=Rect.as_tuple)
        return case1, case2

    def to_bytes(self) -> bytes:
        pestrie = self.pestrie
        case1, case2 = self._sections()

        header = [pestrie.n_pointers, pestrie.n_objects, len(pestrie.groups)]
        for shape in _SHAPES:
            header.append(len(case1[shape]))
            header.append(len(case2[shape]))

        chunks = [MAGIC_COMPACT if self.compact else MAGIC_RAW]
        chunks.append(b"".join(_U32.pack(v) for v in header))
        chunks.append(_encode_ints(pointer_timestamps(pestrie), self.compact))
        chunks.append(_encode_ints(object_timestamps(pestrie), self.compact))
        for buckets in (case1, case2):
            for shape in _SHAPES:
                fields = _SHAPE_FIELDS[shape]
                flat: List[int] = []
                previous_lead = 0
                for rect in buckets[shape]:
                    values = list(fields(rect))
                    if self.compact:
                        # Delta-encode the leading coordinate within the
                        # section; the remaining fields are offsets from it.
                        lead = values[0]
                        encoded = [lead - previous_lead] + [v - lead for v in values[1:]]
                        previous_lead = lead
                        flat.extend(encoded)
                    else:
                        flat.extend(values)
                chunks.append(_encode_ints(flat, self.compact))
        return b"".join(chunks)

    def write(self, stream: BinaryIO) -> int:
        payload = self.to_bytes()
        stream.write(payload)
        return len(payload)


def save_pestrie(
    pestrie: Pestrie,
    rects: Sequence[LabeledRect],
    path: str,
    compact: bool = False,
) -> int:
    """Write the persistent file; return its size in bytes."""
    encoder = PestrieEncoder(pestrie, rects, compact=compact)
    with open(path, "wb") as stream:
        return encoder.write(stream)
