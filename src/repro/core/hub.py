"""Hub degrees and object orders (Sections 2.2 and 5.2).

The *hub degree* of an object ``o`` is

    H_o = sqrt( Σ_{p ∈ PMT[o]} |PM[p]|² )

the L2 norm of the points-to-set sizes of the pointers pointing to ``o`` —
equivalently, a two-round iteration of the HITS hub score on the points-to
bipartite graph.  Pestrie partitions pointers using objects in *descending*
hub-degree order; Theorem 3 shows the induced uneven partition maximises the
internal-pair objective, and Comer's trie heuristic argues it also keeps the
cross-edge count low.

Alternative orders (simple pointed-by count, random, caller-supplied) are
provided for the Figure 7 experiment and our ordering ablation.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from ..matrix.points_to import PointsToMatrix


def hub_degrees(matrix: PointsToMatrix) -> List[float]:
    """Definition 1 hub degree for every object of ``matrix``."""
    row_sizes = [len(row) for row in matrix.rows]
    sums = [0] * matrix.n_objects
    for pointer, row in enumerate(matrix.rows):
        weight = row_sizes[pointer] ** 2
        for obj in row:
            sums[obj] += weight
    return [math.sqrt(total) for total in sums]


def simple_degrees(matrix: PointsToMatrix) -> List[int]:
    """The naive alternative metric ``|PMT[o]|`` (pointed-by count)."""
    counts = [0] * matrix.n_objects
    for row in matrix.rows:
        for obj in row:
            counts[obj] += 1
    return counts


def hub_order(matrix: PointsToMatrix) -> List[int]:
    """Objects sorted by descending hub degree (ties by ascending id).

    This is the paper's construction order; the id tie-break makes the
    resulting Pestrie deterministic.
    """
    degrees = hub_degrees(matrix)
    return sorted(range(matrix.n_objects), key=lambda obj: (-degrees[obj], obj))


def simple_degree_order(matrix: PointsToMatrix) -> List[int]:
    """Objects sorted by descending pointed-by count (ablation order)."""
    degrees = simple_degrees(matrix)
    return sorted(range(matrix.n_objects), key=lambda obj: (-degrees[obj], obj))


def random_order(matrix: PointsToMatrix, seed: Optional[int] = None) -> List[int]:
    """A uniformly random object order — the Pes_rand baseline of Figure 7."""
    order = list(range(matrix.n_objects))
    random.Random(seed).shuffle(order)
    return order


def identity_order(matrix: PointsToMatrix) -> List[int]:
    """Objects in id order; matches the paper's worked example (Table 4)."""
    return list(range(matrix.n_objects))


def validate_order(order: Sequence[int], n_objects: int) -> List[int]:
    """Check that ``order`` is a permutation of ``0..n_objects-1``."""
    order = list(order)
    if sorted(order) != list(range(n_objects)):
        raise ValueError("object order must be a permutation of 0..%d" % (n_objects - 1))
    return order


def partition_objective(matrix: PointsToMatrix, order: Sequence[int]) -> int:
    """The OPP objective ``O_π = Σ I_i²`` for object order ``π`` (Section 5.1).

    ``I_i`` is the number of pointers first claimed by the i-th object: a
    pointer belongs to the earliest object in the order it points to.
    """
    order = validate_order(order, matrix.n_objects)
    position = [0] * matrix.n_objects
    for rank, obj in enumerate(order):
        position[obj] = rank
    sizes = [0] * matrix.n_objects
    for row in matrix.rows:
        best = min((position[obj] for obj in row), default=None)
        if best is not None:
            sizes[best] += 1
    return sum(size * size for size in sizes)
