"""Command-line interface: analyse, encode, inspect, and query.

Mirrors the workflow of the paper's released C++ artefact (a pair of
``pestrie``/``bitmap`` command-line codecs), plus the analysis frontend:

    repro-pestrie analyze  app.ir out/            # IR -> archive directory
    repro-pestrie encode   app.ir app.pes         # IR -> persistent file
    repro-pestrie info     app.pes                # header & section stats
    repro-pestrie verify   app.pes                # integrity check (CRC etc.)
    repro-pestrie query    app.pes is_alias 3 7
    repro-pestrie query    app.pes list_points_to 3
    repro-pestrie delta-append app.pes --insert 3:1 --delete 0:2
    repro-pestrie compact  app.pes                # fold DELTA records back in
    repro-pestrie bench    app.ir                 # size comparison table
    repro-pestrie serve-stats app.pes lib.pes     # service throughput/stats
    repro-pestrie daemon app.pes --socket /tmp/p.sock   # network query tier

Matrices can also be given directly as ``.pm`` text files: first line
``<n_pointers> <n_objects>``, then one ``<pointer> <object>`` fact per line.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .analysis import andersen, context_sensitive, flow_sensitive, parse_program
from .analysis.correlate import save_archive
from .analysis.transform import context_sensitive_to_matrix, flow_sensitive_to_matrix
from .baselines.bitmap_persist import BitmapPersistence
from .baselines.bzip_persist import BzipPersistence
from .core.decoder import CorruptFileError, decode_bytes, detect_format
from .core.pipeline import load_index, persist
from .core.query import PestrieIndex
from .matrix.points_to import PointsToMatrix

ANALYSES = ("andersen", "steensgaard", "flow-sensitive", "1-callsite", "2-callsite")


def load_matrix_file(path: str) -> PointsToMatrix:
    """Read a ``.pm`` text matrix: header line, then pointer/object pairs."""
    with open(path) as stream:
        header = stream.readline().split()
        if len(header) != 2:
            raise ValueError("%s: first line must be '<n_pointers> <n_objects>'" % path)
        matrix = PointsToMatrix(int(header[0]), int(header[1]))
        for line_number, line in enumerate(stream, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 2:
                raise ValueError("%s:%d: expected '<pointer> <object>'" % (path, line_number))
            matrix.add(int(fields[0]), int(fields[1]))
        return matrix


def save_matrix_file(matrix: PointsToMatrix, path: str) -> None:
    """Write a matrix in the ``.pm`` text format."""
    with open(path, "w") as stream:
        stream.write("%d %d\n" % (matrix.n_pointers, matrix.n_objects))
        for pointer, obj in matrix.pairs():
            stream.write("%d %d\n" % (pointer, obj))


def _matrix_from_source(path: str, analysis: str) -> PointsToMatrix:
    if path.endswith(".pm"):
        return load_matrix_file(path)
    with open(path) as stream:
        program = parse_program(stream.read())
    if analysis == "andersen":
        return andersen.analyze(program).to_matrix()
    if analysis == "steensgaard":
        from .analysis import steensgaard

        return steensgaard.analyze(program).to_matrix()
    if analysis == "flow-sensitive":
        return flow_sensitive_to_matrix(flow_sensitive.analyze(program)).matrix
    if analysis in ("1-callsite", "2-callsite"):
        k = int(analysis[0])
        return context_sensitive_to_matrix(context_sensitive.analyze(program, k=k)).matrix
    raise ValueError("unknown analysis %r" % analysis)


def cmd_encode(args: argparse.Namespace) -> int:
    matrix = _matrix_from_source(args.source, args.analysis)
    size = persist(matrix, args.output, order=args.order, compact=args.compact,
                   version=args.format_version, jobs=args.jobs)
    print("%s: %d pointers, %d objects, %d facts -> %d bytes"
          % (args.output, matrix.n_pointers, matrix.n_objects,
             matrix.fact_count(), size))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    with open(args.source) as stream:
        program = parse_program(stream.read())
    result = andersen.analyze(program)
    save_archive(
        args.output,
        program,
        result.to_matrix(),
        dict(result.symbols.variable_ids),
        dict(result.symbols.site_ids),
        compact=args.compact,
    )
    print("archive written to %s/ (program.ir, variables.json, call_edges.json,"
          " points_to.pes)" % args.output.rstrip("/"))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Header and section stats, straight from the container's TOC.

    Only the headers and the pointer-timestamp section are parsed: the
    rectangle shape breakdown comes from the eight header counts (the
    encoder classifies by degeneracy, so points/lines/full rectangles are
    header facts), and a DELTA tail is decoded record by record.  The full
    index is never built — that thoroughness lives in ``verify``.
    """
    from .core.encoder import ABSENT
    from .store import open_container

    with open_container(args.file) as container:
        print("format:       PESTRIE%d (%s ints)"
              % (container.version, "varint" if container.compact else "raw"))
        tracked = sum(1 for ts in container.section_values(0) if ts != ABSENT)
        # Header count order: per shape (point, vline, hline, rect), the
        # (case1, case2) pair.
        counts = container.shape_counts
        total = sum(counts)
        case1 = sum(counts[0::2])
        points = counts[0] + counts[1]
        lines = counts[2] + counts[3] + counts[4] + counts[5]
        print("pointers:     %d (%d tracked)" % (container.n_pointers, tracked))
        print("objects:      %d" % container.n_objects)
        print("groups (ES):  %d" % container.n_groups)
        print("rectangles:   %d (%d case-1, %d case-2)" % (total, case1, total - case1))
        print("  points:     %d" % points)
        print("  lines:      %d" % lines)
        print("  full rects: %d" % (total - points - lines))
        if container.has_tail:
            records = container.tail_records()
            inserts = sum(len(record.inserts) for record in records)
            deletes = sum(len(record.deletes) for record in records)
            print("delta:        %d record(s), +%d/-%d facts, %d bytes"
                  % (len(records), inserts, deletes,
                     container.size - container.base_size))
    print("file size:    %d bytes" % os.path.getsize(args.file))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Decode a persistent file end-to-end and report whether it is intact."""
    from .delta import decode_records, split_image

    try:
        with open(args.file, "rb") as stream:
            data = stream.read()
        version, _compact = detect_format(data)
        base, tail = split_image(data)
        payload = decode_bytes(base)
        # Building the query structure exercises the cross-consistency the
        # clients rely on, not just the byte-level checks.
        PestrieIndex(payload)
        records = []
        if tail:
            records = decode_records(data, len(base), payload.n_pointers,
                                     payload.n_objects)
    except CorruptFileError as error:
        print("%s: CORRUPT — %s" % (args.file, error), file=sys.stderr)
        return 1
    delta_note = ", %d delta record(s)" % len(records) if records else ""
    print("%s: OK (PESTRIE%d, %d pointers, %d objects, %d groups, %d rectangles%s)"
          % (args.file, version, payload.n_pointers, payload.n_objects,
             payload.n_groups, len(payload.rects), delta_note))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    if args.as_of is not None:
        from .delta import VersionUnavailableError, load_versions

        try:
            versioned = load_versions(args.file, mode=args.mode, lazy=True)
            index = versioned.as_of(args.as_of)
        except (CorruptFileError, VersionUnavailableError) as error:
            print("%s: %s" % (args.file, error), file=sys.stderr)
            return 1
    else:
        index = _load_queryable(args.file, args.mode)
    operands = [int(value) for value in args.operands]
    if args.kind == "is_alias" and len(operands) != 2:
        print("is_alias needs two pointer ids", file=sys.stderr)
        return 2
    if args.kind != "is_alias" and len(operands) != 1:
        print("%s needs one id" % args.kind, file=sys.stderr)
        return 2

    from .obs import measure

    # One measured context around the query: with a lazy open, any section
    # the answer forces is parsed *here*, so --explain attributes it.
    with measure() as cost:
        if args.kind == "is_alias":
            answer = "true" if index.is_alias(*operands) else "false"
        else:
            if args.kind == "list_points_to":
                values = index.list_points_to(operands[0])
            elif args.kind == "list_pointed_by":
                values = index.list_pointed_by(operands[0])
            else:
                values = index.list_aliases(operands[0])
            answer = " ".join(str(value) for value in sorted(values))
    print(answer)
    if args.explain:
        cost.queries = max(cost.queries, 1)
        depth = getattr(index, "generation", 0)
        cost.replay_depth = max(cost.replay_depth, depth)
        if cost.epoch is None and args.as_of is not None:
            cost.epoch = args.as_of
        print("--- cost ---")
        print(cost.render())
    return 0


def _load_queryable(path: str, mode: str, lazy: bool = True):
    """Load a file into a query structure, delta-aware for PESTRIE3/4.

    Defaults to a lazy mmap-backed open: a single CLI query pays only for
    the structures that query touches (on a ``PESTRIE4`` file, none — the
    flat engine answers from the mapped bytes).  The mapping lives until
    process exit, which for a one-shot CLI invocation is the file's
    natural scope.
    """
    with open(path, "rb") as stream:
        prefix = stream.read(9)
    if detect_format(prefix)[0] >= 3:
        from .delta import load_overlay

        return load_overlay(path, mode=mode, lazy=lazy)
    return load_index(path, mode=mode, lazy=lazy)


def _parse_fact(text: str) -> tuple:
    fields = text.split(":")
    if len(fields) != 2:
        raise ValueError("fact %r must be '<pointer>:<object>'" % text)
    return int(fields[0]), int(fields[1])


def _log_from_args(args: argparse.Namespace):
    """Build the edit script: --edits file lines first, then --insert/--delete."""
    from .delta import DeltaLog

    log = DeltaLog()
    if args.edits:
        with open(args.edits) as stream:
            for line_number, line in enumerate(stream, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split()
                if len(fields) != 3 or fields[0] not in ("+", "-"):
                    raise ValueError("%s:%d: expected '+ <pointer> <object>' or "
                                     "'- <pointer> <object>'" % (args.edits, line_number))
                if fields[0] == "+":
                    log.insert(int(fields[1]), int(fields[2]))
                else:
                    log.delete(int(fields[1]), int(fields[2]))
    for fact in args.insert or ():
        log.insert(*_parse_fact(fact))
    for fact in args.delete or ():
        log.delete(*_parse_fact(fact))
    return log


def cmd_delta_append(args: argparse.Namespace) -> int:
    """Append an edit script to a .pes file as a checksummed DELTA record."""
    from .delta import append_delta

    log = _log_from_args(args)
    if log.is_no_op():
        print("no edits given; %s unchanged" % args.file, file=sys.stderr)
        return 2
    try:
        result = append_delta(args.file, log, auto_compact_ratio=args.auto_compact)
    except CorruptFileError as error:
        print("%s: CORRUPT — %s" % (args.file, error), file=sys.stderr)
        return 1
    if result.compacted:
        print("%s: delta ratio exceeded %.2f — compacted to %d bytes"
              % (args.file, args.auto_compact, result.file_size))
    else:
        print("%s: appended %d bytes (%d record(s), %d ops) -> %d bytes"
              % (args.file, result.bytes_appended, result.record_count,
                 len(log), result.file_size))
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Fold a file's DELTA records into a fresh base image."""
    from .delta import compact_file

    out = args.output or args.file
    try:
        size = compact_file(args.file, out=args.output, order=args.order)
    except CorruptFileError as error:
        print("%s: CORRUPT — %s" % (args.file, error), file=sys.stderr)
        return 1
    print("%s: compacted -> %s (%d bytes)" % (args.file, out, size))
    return 0


def cmd_versions(args: argparse.Namespace) -> int:
    """List the versions a file's delta chain can answer ``as_of``."""
    from .delta import load_versions

    try:
        versioned = load_versions(args.file)
    except CorruptFileError as error:
        print("%s: CORRUPT — %s" % (args.file, error), file=sys.stderr)
        return 1
    try:
        print("%s: %d record(s), versions %d..%d"
              % (args.file, versioned.record_count,
                 versioned.floor, versioned.head))
        if args.verbose:
            print("  v%-6d base image%s"
                  % (versioned.floor,
                     " (compaction watermark)" if versioned.floor else ""))
            for record in versioned.records():
                print("  v%-6d +%d -%d fact(s)"
                      % (record.epoch, len(record.inserts), len(record.deletes)))
    finally:
        versioned.close()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import tempfile

    matrix = _matrix_from_source(args.source, args.analysis)
    directory = tempfile.mkdtemp(prefix="repro-bench-")
    rows = [
        ("pestrie", persist(matrix, os.path.join(directory, "m.pes"))),
        ("pestrie-compact", persist(matrix, os.path.join(directory, "m.pesz"), compact=True)),
        ("bitmap (PM+AM)", BitmapPersistence.encode_to_file(matrix, os.path.join(directory, "m.bitp"))),
        ("bzip (PM only)", BzipPersistence.encode_to_file(matrix, os.path.join(directory, "m.bz"))),
    ]
    if matrix.n_pointers <= args.bdd_limit:
        from .bdd import BddPersistence, encode_matrix

        rows.append(
            ("bdd (PM only)",
             BddPersistence.encode_to_file(encode_matrix(matrix), os.path.join(directory, "m.bdd")))
        )
    width = max(len(name) for name, _ in rows)
    print("%d pointers, %d objects, %d facts" % (matrix.n_pointers, matrix.n_objects,
                                                 matrix.fact_count()))
    for name, size in rows:
        print("  %-*s %10d bytes" % (width, name, size))
    return 0


def cmd_serve_stats(args: argparse.Namespace) -> int:
    """Load files into an AliasService, replay a mixed workload, print stats."""
    import time

    from .bench.workloads import IS_ALIAS, TraceSpec, generate_trace
    from .serve import AliasService

    service = AliasService.from_files(args.files, mode=args.mode,
                                      cache_size=args.cache_size)
    trace = generate_trace(
        TraceSpec(length=args.queries, seed=args.seed),
        pointers=list(range(service.n_pointers)),
        objects=list(range(service.n_objects)),
    )
    start = time.perf_counter()
    if args.batch_size > 1:
        # Serve like a real batching front-end: coalesce runs of IsAlias
        # into one batch call, everything else through the single-query API.
        pending = []
        for kind, operands in trace.operations:
            if kind == IS_ALIAS:
                pending.append(operands)
                if len(pending) >= args.batch_size:
                    service.is_alias_batch(pending)
                    pending = []
            else:
                getattr(service, kind)(*operands)
        if pending:
            service.is_alias_batch(pending)
    else:
        for kind, operands in trace.operations:
            getattr(service, kind)(*operands)
    elapsed = time.perf_counter() - start

    shards = getattr(service.backend, "shard_count", 1)
    print("%d file(s), %d shard(s), %d pointers, %d objects"
          % (len(args.files), shards, service.n_pointers, service.n_objects))
    print("replayed %d queries in %.3fs (%.0f queries/s, batch size %d)"
          % (len(trace), elapsed, len(trace) / max(elapsed, 1e-9), args.batch_size))
    print(service.stats().render())
    return 0


def cmd_daemon(args: argparse.Namespace) -> int:
    """Serve .pes files over a unix socket (single process or pre-fork)."""
    from .daemon import run_daemon, run_workers
    from .serve import AliasService

    if args.workers > 1:
        return run_workers(
            args.files, args.socket, args.workers,
            http_port=args.http_port, mode=args.mode,
            cache_size=args.cache_size, max_pending=args.max_pending,
        )
    service = AliasService.from_files(args.files, mode=args.mode, lazy=True,
                                      cache_size=args.cache_size)
    try:
        print("daemon: serving %d file(s) on %s%s"
              % (len(args.files), args.socket,
                 "" if args.http_port is None
                 else " (http on port %d)" % args.http_port),
              file=sys.stderr, flush=True)
        return run_daemon(service, args.socket, http_port=args.http_port,
                          max_pending=args.max_pending, close_service=True)
    except BaseException:
        service.close()
        raise


def _exercise_pipeline(source: str, analysis: str, queries: int, seed: int) -> None:
    """Run one encode → delta-append → decode → query pass in a temp dir.

    Populates every metric family (build/encode, delta, decode, serve) so a
    ``metrics`` dump from this fresh process reflects a real workload.
    """
    import shutil
    import tempfile

    from .bench.workloads import TraceSpec, generate_trace
    from .delta import DeltaLog, append_delta
    from .obs import record_index_footprint
    from .serve import AliasService

    matrix = _matrix_from_source(source, analysis)
    directory = tempfile.mkdtemp(prefix="repro-metrics-")
    try:
        path = os.path.join(directory, "m.pes")
        persist(matrix, path)
        log = DeltaLog()
        log.insert(0, 0)
        append_delta(path, log, auto_compact_ratio=0.9)
        index = _load_queryable(path, "ptlist", lazy=False)
        record_index_footprint(index)
        service = AliasService.from_index(index)
        workload = generate_trace(
            TraceSpec(length=queries, seed=seed),
            pointers=list(range(service.n_pointers)),
            objects=list(range(service.n_objects)),
        )
        for kind, operands in workload.operations:
            getattr(service, kind)(*operands)
        if service.n_pointers >= 2:
            service.is_alias_batch([(0, 1), (1, 0), (0, 0)])
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _scrape_url(url: str, timeout: float = 5.0) -> str:
    """GET a daemon HTTP endpoint; bare host:port URLs get ``/metrics``."""
    from urllib.parse import urlparse
    from urllib.request import urlopen

    if urlparse(url).path in ("", "/"):
        url = url.rstrip("/") + "/metrics"
    with urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def cmd_metrics(args: argparse.Namespace) -> int:
    """Dump the process metrics registry, optionally after a pipeline run.

    With ``--socket`` or ``--url`` the dump comes from a *running daemon*
    (unix-socket METRICS op / HTTP ``/metrics``) instead of this process.
    """
    from .obs import get_registry

    if args.socket:
        from .clients import DaemonClient

        with DaemonClient(args.socket) as client:
            sys.stdout.write(client.metrics())
        return 0
    if args.url:
        sys.stdout.write(_scrape_url(args.url))
        return 0
    if args.source:
        _exercise_pipeline(args.source, args.analysis, args.queries, args.seed)
    registry = get_registry()
    if args.format == "prom":
        sys.stdout.write(registry.to_prometheus())
    else:
        print(registry.to_json())
    return 0


def _top_row(label: str, stats: dict, previous: dict) -> str:
    """One worker's line of the ``top`` display, qps from counter deltas."""
    import time

    total = int(stats.get("total_queries", 0))
    now = time.perf_counter()
    qps = 0.0
    last = previous.get(label)
    if last is not None and now > last[1]:
        qps = max(0.0, (total - last[0]) / (now - last[1]))
    previous[label] = (total, now)
    counts = stats.get("counts") or {}
    busiest = max(counts, key=counts.get) if counts else ""
    p50 = 1e6 * stats.get("latency_p50", {}).get(busiest, 0.0)
    p95 = 1e6 * stats.get("latency_p95", {}).get(busiest, 0.0)
    hit_rate = 100.0 * stats.get("cache_hit_rate", 0.0)
    return "%-24s %8.0f %10d %7.1f%% %9.1f %9.1f %8d" % (
        label, qps, total, hit_rate, p50, p95, stats.get("version", 0))


def cmd_top(args: argparse.Namespace) -> int:
    """Poll running daemon(s) and render a qps/latency/cache table.

    Curses-free: each refresh clears the screen with ANSI codes when
    stdout is a terminal, and just appends otherwise (pipeable).  One
    ``--url`` per pre-fork worker (ports stack as ``http_port + slot``)
    gives the per-worker fleet view.
    """
    import json as jsonlib
    import time

    from .clients import DaemonClient, DaemonError

    targets: List[tuple] = []
    if args.socket:
        targets.append(("socket:%s" % args.socket, "socket", args.socket))
    for url in args.url or ():
        targets.append((url, "url", url))
    if not targets:
        print("top needs --socket PATH and/or --url URL", file=sys.stderr)
        return 2

    clients: dict = {}
    previous: dict = {}
    header = "%-24s %8s %10s %8s %9s %9s %8s" % (
        "worker", "qps", "queries", "cache", "p50 (us)", "p95 (us)", "version")
    refreshes = 0
    try:
        while True:
            rows = []
            for label, kind, target in targets:
                try:
                    if kind == "socket":
                        client = clients.get(target)
                        if client is None:
                            client = clients[target] = DaemonClient(target)
                        stats = client.stats()
                    else:
                        from urllib.parse import urlparse

                        url = target
                        if urlparse(url).path in ("", "/"):
                            url = url.rstrip("/") + "/stats"
                        stats = jsonlib.loads(_scrape_url(url))
                    rows.append(_top_row(label, stats, previous))
                except (OSError, ValueError, DaemonError) as error:
                    clients.pop(target, None)
                    rows.append("%-24s unreachable (%s)" % (label, error))
            if sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            print(time.strftime("%H:%M:%S"), "-", len(targets), "worker(s)")
            print(header)
            for row in rows:
                print(row)
            sys.stdout.flush()
            refreshes += 1
            if args.iterations and refreshes >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        for client in clients.values():
            client.close()


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one pipeline stage under tracing and print the phase-timing tree."""
    import shutil
    import tempfile

    from .obs import record_index_footprint, trace as tracer

    directory = None
    try:
        with tracer.capture() as spans:
            if args.stage == "decode":
                index = _load_queryable(args.file, args.mode, lazy=False)
                record_index_footprint(index)
            else:
                matrix = _matrix_from_source(args.file, args.analysis)
                directory = tempfile.mkdtemp(prefix="repro-trace-")
                path = os.path.join(directory, "m.pes")
                persist(matrix, path)
                if args.stage == "pipeline":
                    index = _load_queryable(path, args.mode, lazy=False)
                    record_index_footprint(index)
                    if index.n_pointers >= 2:
                        index.is_alias(0, 1)
                        index.list_points_to(0)
    finally:
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)
    if not spans:
        print("(no spans recorded)", file=sys.stderr)
        return 1
    for span in spans:
        print(span.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pestrie",
        description="Persistent pointer information (Pestrie, PLDI 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    encode = sub.add_parser("encode", help="encode IR or a .pm matrix into a .pes file")
    encode.add_argument("source", help="IR source file or .pm matrix file")
    encode.add_argument("output", help="persistent file to write")
    encode.add_argument("--analysis", choices=ANALYSES, default="andersen")
    encode.add_argument("--order", default="hub",
                        choices=("hub", "simple", "identity", "random"))
    encode.add_argument("--compact", action="store_true",
                        help="varint/delta-compressed integer coding")
    encode.add_argument("--format-version", type=int, choices=(1, 2, 3, 4), default=3,
                        help="on-disk format version (3 = checksummed PESTRIE3, "
                             "the default; 4 = PESTRIE4 with zero-copy flat query "
                             "sections; 1/2 = legacy uncheck-summed formats)")
    encode.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the parallel build stages "
                             "(default: serial; output is byte-identical "
                             "regardless of N)")
    encode.set_defaults(handler=cmd_encode)

    analyze = sub.add_parser("analyze", help="analyse IR into a reusable archive dir")
    analyze.add_argument("source")
    analyze.add_argument("output")
    analyze.add_argument("--compact", action="store_true")
    analyze.set_defaults(handler=cmd_analyze)

    info = sub.add_parser("info", help="show persistent-file statistics")
    info.add_argument("file")
    info.set_defaults(handler=cmd_info)

    verify = sub.add_parser(
        "verify", help="check a .pes file's integrity (checksum, bounds, invariants)"
    )
    verify.add_argument("file")
    verify.set_defaults(handler=cmd_verify)

    query = sub.add_parser("query", help="run one query against a .pes file")
    query.add_argument("file")
    query.add_argument(
        "kind",
        choices=("is_alias", "list_points_to", "list_pointed_by", "list_aliases"),
    )
    query.add_argument("operands", nargs="+")
    query.add_argument("--mode", default="ptlist", choices=("ptlist", "segment"),
                       help="query structure: per-column lists or low-memory segment tree")
    query.add_argument("--as-of", type=int, default=None, metavar="VERSION",
                       help="answer as of this delta-chain version (epoch) "
                            "instead of the file's head state")
    query.add_argument("--explain", action="store_true",
                       help="print the query's cost breakdown (bytes parsed, "
                            "sections materialised, replay depth, ...) after "
                            "the answer")
    query.set_defaults(handler=cmd_query)

    delta_append = sub.add_parser(
        "delta-append",
        help="append points-to fact edits to a .pes file without re-encoding",
    )
    delta_append.add_argument("file")
    delta_append.add_argument("--insert", action="append", metavar="P:O",
                              help="insert the fact 'pointer P points to object O' "
                                   "(repeatable)")
    delta_append.add_argument("--delete", action="append", metavar="P:O",
                              help="retract the fact 'pointer P points to object O' "
                                   "(repeatable)")
    delta_append.add_argument("--edits", metavar="FILE",
                              help="edit-script file: one '+ P O' or '- P O' per "
                                   "line, applied before --insert/--delete")
    delta_append.add_argument("--auto-compact", type=float, default=None,
                              metavar="RATIO",
                              help="re-encode in place once |delta|/facts exceeds "
                                   "RATIO (e.g. 0.2)")
    delta_append.set_defaults(handler=cmd_delta_append)

    compact = sub.add_parser(
        "compact", help="fold a .pes file's DELTA records into a fresh base image"
    )
    compact.add_argument("file")
    compact.add_argument("-o", "--output", default=None,
                         help="write the compacted file here (default: in place)")
    compact.add_argument("--order", default="hub",
                         choices=("hub", "simple", "identity", "random"))
    compact.set_defaults(handler=cmd_compact)

    versions = sub.add_parser(
        "versions",
        help="list the delta-chain versions a .pes file can answer as-of",
    )
    versions.add_argument("file")
    versions.add_argument("-v", "--verbose", action="store_true",
                          help="also print each version's edit counts")
    versions.set_defaults(handler=cmd_versions)

    serve_stats = sub.add_parser(
        "serve-stats",
        help="replay a mixed query workload through the AliasService and "
             "report throughput, cache hit rate, and latency quantiles",
    )
    serve_stats.add_argument("files", nargs="+",
                             help=".pes shard files (pointer-id ranges stack "
                                  "in argument order)")
    serve_stats.add_argument("--queries", type=int, default=10_000,
                             help="workload length (default 10000)")
    serve_stats.add_argument("--seed", type=int, default=0)
    serve_stats.add_argument("--mode", default="ptlist",
                             choices=("ptlist", "segment"))
    serve_stats.add_argument("--batch-size", type=int, default=64,
                             help="IsAlias batching window; 1 disables batching")
    serve_stats.add_argument("--cache-size", type=int, default=4096,
                             help="LRU result-cache capacity; 0 disables caching")
    serve_stats.set_defaults(handler=cmd_serve_stats)

    daemon = sub.add_parser(
        "daemon",
        help="serve .pes files to out-of-process clients over a unix socket "
             "(binary batch protocol + /metrics HTTP endpoint)",
    )
    daemon.add_argument("files", nargs="+",
                        help=".pes shard files (pointer-id ranges stack in "
                             "argument order)")
    daemon.add_argument("--socket", required=True, metavar="PATH",
                        help="unix socket path to listen on")
    daemon.add_argument("--http-port", type=int, default=None, metavar="PORT",
                        help="also serve GET /metrics, /healthz, /stats on "
                             "this localhost port (0 picks a free port)")
    daemon.add_argument("--workers", type=int, default=1,
                        help="pre-fork this many worker processes over the "
                             "shared mmap (disables live deltas; default 1)")
    daemon.add_argument("--mode", default="ptlist", choices=("ptlist", "segment"))
    daemon.add_argument("--cache-size", type=int, default=4096,
                        help="per-process LRU result-cache capacity")
    daemon.add_argument("--max-pending", type=int, default=64,
                        help="admission-control bound on in-flight request "
                             "frames before fast OVERLOADED rejection")
    daemon.set_defaults(handler=cmd_daemon)

    bench = sub.add_parser("bench", help="compare encoding sizes on one input")
    bench.add_argument("source")
    bench.add_argument("--analysis", choices=ANALYSES, default="andersen")
    bench.add_argument("--bdd-limit", type=int, default=5000,
                       help="skip the BDD encoding above this pointer count")
    bench.set_defaults(handler=cmd_bench)

    metrics = sub.add_parser(
        "metrics",
        help="dump the telemetry registry (optionally after running the "
             "encode -> delta -> decode -> query pipeline on an input)",
    )
    metrics.add_argument("source", nargs="?", default=None,
                         help="IR source or .pm matrix to run the pipeline on "
                              "first; omit to dump the (mostly empty) registry")
    metrics.add_argument("--format", default="json", choices=("json", "prom"),
                         help="JSON snapshot or Prometheus text exposition 0.0.4")
    metrics.add_argument("--analysis", choices=ANALYSES, default="andersen")
    metrics.add_argument("--queries", type=int, default=1000,
                         help="workload length replayed through the service")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--socket", default=None, metavar="PATH",
                         help="scrape a running daemon over its unix socket "
                              "(Prometheus text; ignores source/--format)")
    metrics.add_argument("--url", default=None, metavar="URL",
                         help="scrape a running daemon's HTTP /metrics "
                              "endpoint (bare host:port URLs get /metrics "
                              "appended)")
    metrics.set_defaults(handler=cmd_metrics)

    top = sub.add_parser(
        "top",
        help="live polling view of running daemon(s): qps, latency "
             "quantiles, cache hit rate, and MVCC version per worker",
    )
    top.add_argument("--socket", default=None, metavar="PATH",
                     help="poll a daemon over its unix socket")
    top.add_argument("--url", action="append", metavar="URL",
                     help="poll a daemon's HTTP /stats endpoint; repeat once "
                          "per pre-fork worker (ports are http_port + slot)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default 2)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="stop after N refreshes (0 = run until ^C)")
    top.set_defaults(handler=cmd_top)

    trace = sub.add_parser(
        "trace",
        help="run one pipeline stage under span tracing and print the "
             "hierarchical phase-timing tree",
    )
    trace.add_argument("stage", choices=("encode", "decode", "pipeline"),
                       help="encode: source -> .pes; decode: .pes -> index; "
                            "pipeline: encode then decode then query")
    trace.add_argument("file", help=".pm/IR source (encode, pipeline) or "
                                    ".pes file (decode)")
    trace.add_argument("--analysis", choices=ANALYSES, default="andersen")
    trace.add_argument("--mode", default="ptlist", choices=("ptlist", "segment"))
    trace.set_defaults(handler=cmd_trace)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (OSError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
