"""A dependency-free sampling profiler for live daemon introspection.

``sample_profile(seconds)`` polls :func:`sys._current_frames` from a
sampling thread at a fixed interval, aggregates the stacks it sees, and
renders a text report: hottest leaf frames and hottest whole stacks,
weighted by sample count.  It is statistical (the GIL serialises what a
sample can observe) and deliberately coarse — its job is the on-call
question "what is this daemon *doing* right now?", answered over HTTP by
``/debug/profile?seconds=N`` without installing anything or restarting
the process.

The sampler excludes its own thread and imposes a hard ceiling on the
window (``MAX_PROFILE_SECONDS``) so a fat-fingered query parameter cannot
park a profiler thread for an hour.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import List, Optional

__all__ = ["MAX_PROFILE_SECONDS", "sample_profile"]

#: Hard ceiling on one profiling window.
MAX_PROFILE_SECONDS = 30.0

#: Seconds between samples.
DEFAULT_INTERVAL = 0.005


def _frame_label(frame) -> str:
    code = frame.f_code
    return "%s (%s:%d)" % (code.co_name, code.co_filename.rsplit("/", 1)[-1],
                           code.co_firstlineno)


def _stack_labels(frame) -> List[str]:
    labels: List[str] = []
    while frame is not None:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return labels


def sample_profile(seconds: float, interval: float = DEFAULT_INTERVAL,
                   top: int = 15,
                   exclude_threads: Optional[set] = None) -> str:
    """Sample every thread for ``seconds`` and render a text report."""
    if seconds <= 0:
        raise ValueError("profile window must be positive")
    seconds = min(float(seconds), MAX_PROFILE_SECONDS)
    skip = set(exclude_threads or ())
    skip.add(threading.get_ident())

    leaf_counts: Counter = Counter()
    stack_counts: Counter = Counter()
    samples = 0
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        for ident, frame in sys._current_frames().items():
            if ident in skip:
                continue
            labels = _stack_labels(frame)
            if not labels:
                continue
            leaf_counts[labels[-1]] += 1
            stack_counts[" <- ".join(reversed(labels[-8:]))] += 1
        samples += 1
        time.sleep(interval)

    lines = [
        "profile: %.2fs window, %d samples, %d distinct stacks"
        % (seconds, samples, len(stack_counts)),
        "",
        "hottest frames:",
    ]
    if not leaf_counts:
        lines.append("  (no samples — all other threads idle)")
    for label, count in leaf_counts.most_common(top):
        lines.append("  %6.1f%%  %s" % (100.0 * count / max(1, samples), label))
    lines.append("")
    lines.append("hottest stacks (leaf first):")
    for stack, count in stack_counts.most_common(max(1, top // 3)):
        lines.append("  %6.1f%%  %s" % (100.0 * count / max(1, samples), stack))
    return "\n".join(lines)
