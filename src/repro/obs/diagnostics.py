"""Diagnostics: slow-query capture and structure-health gauge helpers.

The slow-query log answers the on-call question "*which* queries were
slow, not just how many": a bounded ring of the most recent offenders with
enough context (kind, operands, latency, cache outcome, batch membership)
to reproduce each one with ``repro-pestrie query``.  Recording is gated on
a threshold compare, so a service running with the default threshold pays
one float comparison per query until something is actually slow.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from .cost import QueryCost
from .flight import get_flight_recorder
from .registry import get_registry

#: Default slow-query latency threshold (seconds, per query).
DEFAULT_SLOW_THRESHOLD = 0.010

#: Default bound on retained slow-query entries.
DEFAULT_SLOW_CAPACITY = 128


@dataclass(frozen=True)
class SlowQuery:
    """One query (or batch call) that crossed the latency threshold."""

    kind: str
    operands: Tuple
    seconds: float
    cache_hit: bool
    batched: bool
    #: Queries covered by the call (> 1 for a batch; ``seconds`` is the
    #: whole call's wall time, so per-query cost is ``seconds / queries``).
    queries: int
    #: ``time.time()`` at capture, for correlating with external logs.
    wall_time: float
    #: MVCC epoch answered at (``as_of`` pins it; ``None`` pre-MVCC).
    epoch: Optional[int] = None
    #: Itemised cost breakdown when the call ran under ``obs.measure()``.
    cost: Optional[QueryCost] = None

    def render(self) -> str:
        per_query = self.seconds / max(1, self.queries)
        detail = "batch of %d" % self.queries if self.batched else "single"
        outcome = "hit" if self.cache_hit else "miss"
        line = "%-16s %9.3f ms/query  (%s, cache %s, operands %r)" % (
            self.kind, 1e3 * per_query, detail, outcome, self.operands)
        if self.epoch is not None:
            line += "  @epoch %d" % self.epoch
        if self.cost is not None:
            line += "\n%18s%s" % ("", self.cost.summary())
        return line


class SlowQueryLog:
    """Bounded, thread-safe ring of the most recent slow queries."""

    def __init__(self, threshold: Optional[float] = DEFAULT_SLOW_THRESHOLD,
                 capacity: int = DEFAULT_SLOW_CAPACITY, service: str = ""):
        if capacity <= 0:
            raise ValueError("slow-query log capacity must be positive")
        if threshold is not None and threshold < 0:
            raise ValueError("slow-query threshold must be non-negative")
        self.threshold = threshold
        self._entries: Deque[SlowQuery] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._service = service
        self._counters = {}

    def _counter(self, kind: str):
        counter = self._counters.get(kind)
        if counter is None:
            counter = get_registry().counter(
                "repro_serve_slow_queries_total", kind=kind, service=self._service)
            self._counters[kind] = counter
        return counter

    def record(self, kind: str, operands: Tuple, seconds: float, *,
               cache_hit: bool = False, batched: bool = False,
               queries: int = 1, epoch: Optional[int] = None,
               cost: Optional[QueryCost] = None) -> bool:
        """Capture the call if its *per-query* latency crosses the threshold."""
        threshold = self.threshold
        if threshold is None or seconds / max(1, queries) < threshold:
            return False
        entry = SlowQuery(kind=kind, operands=tuple(operands), seconds=seconds,
                          cache_hit=cache_hit, batched=batched, queries=queries,
                          wall_time=time.time(), epoch=epoch, cost=cost)
        with self._lock:
            self._entries.append(entry)
            counter = self._counter(kind)
        counter.inc()
        flight = get_flight_recorder()
        if flight.enabled:
            flight.record(
                "slow_query", service=self._service, query_kind=kind,
                seconds=round(seconds, 6), queries=queries,
                cache_hit=cache_hit,
                epoch=epoch if epoch is not None else -1,
                cost=cost.as_dict() if cost is not None else None)
        return True

    def entries(self) -> List[SlowQuery]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def render(self) -> str:
        entries = self.entries()
        if not entries:
            return "(no slow queries recorded)"
        return "\n".join(entry.render() for entry in entries)


# ----------------------------------------------------------------------
# Structure-health gauges
# ----------------------------------------------------------------------


def record_delta_health(record_count: int, net_ops: int, ratio: Optional[float],
                        trigger: Optional[float] = None) -> None:
    """Publish the delta-chain health gauges after an append/compact/load."""
    registry = get_registry()
    registry.gauge("repro_delta_records").set(record_count)
    registry.gauge("repro_delta_net_ops").set(net_ops)
    if ratio is not None:
        registry.gauge("repro_delta_ratio").set(ratio)
        if trigger is not None:
            registry.gauge("repro_delta_compaction_headroom").set(
                max(0.0, trigger - ratio))


def record_index_footprint(index) -> int:
    """Measure and publish a query structure's memory footprint gauge.

    Kept out of the decode path on purpose: ``memory_footprint()`` walks
    the whole structure, so it is only measured when a diagnostic consumer
    (the ``metrics``/``trace`` CLI, a benchmark snapshot) asks for it.
    """
    footprint = index.memory_footprint()
    get_registry().gauge("repro_index_footprint_bytes").set(footprint)
    return footprint
