"""Span-based phase tracing for the encode → persist → decode → serve pipeline.

Usage::

    from repro.obs import trace

    with trace.span("encode.rectangles", rects=len(rects)):
        ...

Spans nest through a thread-local stack, so one enabled run of the full
pipeline produces a hierarchical phase-timing tree (the ``repro-pestrie
trace`` subcommand renders it).  Tracing is **disabled by default** and
costs one attribute check plus a no-op context manager per call site when
off — cheap enough to leave the ``span(...)`` calls on every phase
boundary permanently.

Exception safety: ``__exit__`` always pops the stack and stamps the
duration; a span that exits through an exception is flagged ``error`` but
its parents and siblings keep timing correctly.

Enabled spans also observe their duration into the shared registry's
``repro_trace_span_seconds{span=...}`` histogram, so repeated phases
accumulate a distribution besides the last tree.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from .registry import get_registry

#: Completed root spans kept per tracer (oldest evicted first).
DEFAULT_ROOT_CAPACITY = 64


class Span:
    """One timed phase: name, attributes, duration, children."""

    __slots__ = ("name", "attrs", "start", "seconds", "children", "error")

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.seconds = 0.0
        self.children: List["Span"] = []
        self.error = False

    def tree_lines(self, indent: int = 0) -> List[str]:
        label = self.name
        if self.attrs:
            label += " [%s]" % ", ".join(
                "%s=%s" % (key, value) for key, value in sorted(self.attrs.items())
            )
        if self.error:
            label += " !error"
        lines = ["%s%-*s %10.3f ms" % ("  " * indent, 44 - 2 * indent, label,
                                       1e3 * self.seconds)]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines

    def render(self) -> str:
        return "\n".join(self.tree_lines())

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            match = child.find(name)
            if match is not None:
                return match
        return None


class _ActiveSpan:
    """The context manager driving one :class:`Span`'s lifetime."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span.start = time.perf_counter()
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.seconds = time.perf_counter() - span.start
        span.error = exc_type is not None
        stack = self._tracer._stack()
        # The span may not be on top if a nested span leaked (it cannot via
        # this API, but never corrupt the stack on behalf of a bug).
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            self._tracer._finish_root(span)
        get_registry().histogram("repro_trace_span_seconds", span=span.name).observe(
            span.seconds
        )
        return False


class _Propagation:
    """Pushes an adopted parent span onto another thread's stack.

    Unlike :class:`_ActiveSpan` it never stamps the span's duration or
    finishes it — the owning thread's context manager does that; this one
    only makes the span the attachment point for the block's children.
    ``Span.children`` mutation is a single ``list.append`` (atomic under
    the GIL), so the owning thread may read the finished tree afterwards
    without extra locking.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        elif self._span in stack:
            stack.remove(self._span)
        return False


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class Tracer:
    """Per-process tracer; the module-level :data:`trace` is the default."""

    def __init__(self, root_capacity: int = DEFAULT_ROOT_CAPACITY):
        self._enabled = False
        self._local = threading.local()
        self._roots: Deque[Span] = deque(maxlen=root_capacity)
        self._roots_lock = threading.Lock()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish_root(self, span: Span) -> None:
        with self._roots_lock:
            self._roots.append(span)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """A context manager timing one phase (no-op while disabled)."""
        if not self._enabled:
            return _NOOP
        return _ActiveSpan(self, Span(name, attrs))

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread, or ``None``.

        Capture it before handing work to another thread, then re-attach
        there with :meth:`propagate` — the stack is thread-local, so
        without this a span opened under ``run_in_executor`` becomes an
        orphaned root instead of a child of the request that spawned it.
        """
        if not self._enabled:
            return None
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        return None

    def propagate(self, parent: Optional[Span]):
        """Adopt ``parent`` as the current span for a block on this thread::

            parent = trace.current()          # submitting thread
            def job():
                with trace.propagate(parent): # executor thread
                    with trace.span("work"):
                        ...

        Spans opened inside the block become ``parent``'s children even
        though they run on a different thread.  The caller must guarantee
        ``parent`` outlives the block (the daemon does: it awaits the
        executor future before closing the request span).  No-op when
        disabled or ``parent`` is ``None``, so call sites need no guards.
        """
        if not self._enabled or parent is None:
            return _NOOP
        return _Propagation(self, parent)

    def roots(self) -> List[Span]:
        """Completed top-level spans, oldest first."""
        with self._roots_lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._roots_lock:
            self._roots.clear()

    def capture(self) -> "_Capture":
        """Enable tracing for a ``with`` block and collect its root spans::

            with trace.capture() as spans:
                run_pipeline()
            print(spans[0].render())
        """
        return _Capture(self)

    def render(self) -> str:
        """Every retained root span as one indented phase-timing tree."""
        roots = self.roots()
        if not roots:
            return "(no completed spans)"
        return "\n".join(root.render() for root in roots)


class _Capture:
    __slots__ = ("_tracer", "_was_enabled", "_before", "spans")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self.spans: List[Span] = []

    def __enter__(self) -> List[Span]:
        self._was_enabled = self._tracer.enabled
        self._before = len(self._tracer.roots())
        self._tracer.enable()
        return self.spans

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._was_enabled:
            self._tracer.disable()
        self.spans.extend(self._tracer.roots()[self._before:])
        return False


#: The default tracer every instrumented module uses.
trace = Tracer()


def spans(tracer: Optional[Tracer] = None) -> Iterator[Span]:
    """Iterate every retained span (roots and descendants), depth-first."""
    stack = list((tracer or trace).roots())
    while stack:
        span = stack.pop()
        yield span
        stack.extend(span.children)
